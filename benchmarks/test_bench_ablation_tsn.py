"""Ablation — what TSN gating buys over priority queueing.

Sweeps the protection mechanism for one cyclic flow under saturating
best-effort interference: FIFO queues, strict priority, and a synthesized
no-wait gate schedule.  The jitter ordering quantifies Section 1.1's
"TSN enables pre-computed transmission schedules" argument.
"""

import numpy as np
from conftest import print_table

from repro.metrics import jitter_report
from repro.net import (
    CyclicSender,
    FlowSpec,
    PoissonSender,
    TrafficClass,
    build_line,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS, SEC
from repro.tsn import ScheduleSynthesizer, enable_preemption

CYCLE = 2 * MS


def run_mechanism(mechanism):
    """One run; ``fifo`` is emulated by putting the interfering traffic in
    the same class as the cyclic flow (within a class, service is FIFO)."""
    sim = Simulator(seed=21)
    topo = build_line(sim, 4)
    # Give the interfering host a fast access link so a real backlog can
    # form at the shared fabric links (otherwise its own 1 Gbit/s access
    # link paces it and no queue ever builds).
    topo.link_between("sw1", "h1").bandwidth_bps = 10e9
    install_shortest_path_routes(topo)
    spec = FlowSpec(
        "rt", "h0", "h3", period_ns=CYCLE, payload_bytes=50,
        traffic_class=TrafficClass.CYCLIC_RT,
    )
    if mechanism == "gated":
        schedule = ScheduleSynthesizer(topo).synthesize([spec])
        schedule.install_gate_control(slack_ns=5_000)
    elif mechanism == "preemption":
        for switch in topo.switches():
            for port in switch.ports:
                enable_preemption(port)
    arrivals = []
    topo.devices["h3"].on_flow("rt", lambda p: arrivals.append(sim.now))
    CyclicSender(sim, topo.devices["h0"], spec).start()
    noise = PoissonSender(
        sim,
        topo.devices["h1"],
        FlowSpec(
            "noise", "h1", "h3", payload_bytes=1_400,
            traffic_class=(
                TrafficClass.CYCLIC_RT if mechanism == "fifo"
                else TrafficClass.BEST_EFFORT
            ),
        ),
        rate_pps=50_000,
        rng=sim.streams.stream("noise"),
    )
    noise.start()
    sim.run(until=3 * SEC)
    return jitter_report(arrivals[5:], CYCLE)


def run_all():
    return {m: run_mechanism(m) for m in ("fifo", "priority", "preemption", "gated")}


def test_bench_tsn_protection_ablation(benchmark):
    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{report.mean_abs_jitter_ns / 1000:.2f}",
            f"{report.max_abs_jitter_ns / 1000:.2f}",
        ]
        for name, report in reports.items()
    ]
    print_table(
        "Ablation — cyclic-flow jitter (us) by protection mechanism",
        ["mechanism", "mean", "worst"],
        rows,
    )

    # Gating eliminates interference jitter entirely (no-wait schedule);
    # preemption shrinks the blocking to fragment tails; priority bounds
    # it at one full frame per hop; FIFO (traffic in the same class) is
    # strictly worse.
    assert reports["gated"].max_abs_jitter_ns == 0
    assert (
        reports["preemption"].max_abs_jitter_ns
        < reports["priority"].max_abs_jitter_ns / 3
    )
    # One in-service 1400 B frame is ~11.5 us; the path has three shared
    # switch hops, so priority's worst case is bounded by ~3 blockings.
    assert reports["priority"].max_abs_jitter_ns <= 3 * 11_540 + 2_000
    assert (
        reports["fifo"].mean_abs_jitter_ns
        > reports["priority"].mean_abs_jitter_ns
    )

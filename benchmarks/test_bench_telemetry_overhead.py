"""E-tel — cost of the in-band telemetry plane on the figure-6 kernel.

The design budget: with telemetry off (no capture scope, the default for
every figure run) the plane must cost the fig6 kernel **at most 1.05x**
of its pre-telemetry wall time.  The off path is the null-object
pattern — every component caches ``get_telemetry().*_probe(self)`` as
``None`` at construction and the hot paths pay one ``is not None`` check
— so the budget holds structurally; the cross-PR enforcement is the
recorded fig6 kernel bench in the append-only history that ``repro
bench compare`` judges.  What *this* benchmark proves in-process:

- **off** and **telemetry** runs of the same seeded kernel produce
  *identical* figure numbers (the plane observes, never perturbs);
- telemetry-on overhead stays inside a loose hard bound — rings,
  postcard sampling, and the flight recorder are all O(1) per event;
- the off path really is unwired (probe attributes are ``None``).

The table reports the kernel wall time in both configurations.  The
1.05x off-mode budget is restated as a constant so the history tooling
and the docs quote one number.
"""

import time
import warnings

from conftest import print_table

from repro import obs
from repro.mlnet import OBJECT_IDENTIFICATION, run_point
from repro.simcore.units import MS

#: One mid-scale fig6 point: big enough to dominate setup, < a few s.
CLIENTS = 64
TOPOLOGY = "leaf-spine"
DURATION_NS = 400 * MS
SEED = 0
ROUNDS = 3

#: Cross-PR budget for the *off* path, enforced by the bench history.
OFF_BUDGET_RATIO = 1.05
#: Design target for telemetry *on* (warning only — this is a report).
ON_TARGET_RATIO = 2.0
#: Hard CI bound: only a real per-event regression reaches this.
ON_HARD_RATIO = 4.0


def _kernel():
    return run_point(
        OBJECT_IDENTIFICATION, TOPOLOGY, CLIENTS,
        duration_ns=DURATION_NS, seed=SEED,
    )


def _best_of(fn, rounds: int = ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_telemetry_overhead(benchmark):
    off_s, off_point = benchmark.pedantic(
        lambda: _best_of(_kernel), rounds=1, iterations=1
    )

    def telemetry_run():
        with obs.capture(metrics=False, tracing=False, telemetry=True) as cap:
            point = _kernel()
        return point, cap.telemetry

    on_s, (on_point, hub) = _best_of(telemetry_run)

    rows = [
        ["off", f"{off_s * 1e3:.0f}", "1.00x"],
        ["telemetry", f"{on_s * 1e3:.0f}", f"{on_s / off_s:.2f}x"],
    ]
    print_table(
        f"Telemetry — fig6 kernel overhead ({TOPOLOGY}, {CLIENTS} clients, "
        f"best of {ROUNDS}; off-mode budget {OFF_BUDGET_RATIO:.2f}x "
        "vs bench history)",
        ["config", "wall ms", "vs off"],
        rows,
    )

    # The plane observes without perturbing: same seed, same numbers.
    assert (
        off_point.mean_latency_ms,
        off_point.p99_latency_ms,
        off_point.frames_measured,
    ) == (
        on_point.mean_latency_ms,
        on_point.p99_latency_ms,
        on_point.frames_measured,
    )
    # The telemetry run actually sampled something.
    assert hub.packets_sampled > 0

    on_ratio = on_s / off_s
    if on_ratio >= ON_TARGET_RATIO:
        warnings.warn(
            f"telemetry/off ratio {on_ratio:.2f}x exceeds the "
            f"{ON_TARGET_RATIO:.1f}x design target (non-blocking; hard "
            f"bound {ON_HARD_RATIO:.1f}x)",
            stacklevel=1,
        )
    assert on_ratio < ON_HARD_RATIO


def test_off_path_is_unwired():
    """Outside a capture scope no component holds a telemetry probe."""
    from repro.net.host import Host
    from repro.net.link import Link
    from repro.simcore import Simulator
    from repro.net.topology import Topology

    sim = Simulator(seed=0)
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, b)
    assert isinstance(a, Host)
    for node in (a, b):
        assert node._tel is None
    for link in topo.links:
        assert isinstance(link, Link)
        assert link._tel is None

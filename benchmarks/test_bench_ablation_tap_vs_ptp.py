"""Ablation — measurement methodology: single-clock tap vs PTP.

Quantifies Section 3's justification for the tap-based design: the same
ground-truth one-way delays measured through both methods, reporting the
error distributions.
"""

import numpy as np
from conftest import print_table

from repro.reflection import compare_tap_vs_ptp
from repro.simcore.clock import PtpSyncModel

ASYMMETRIES = (100.0, 200.0, 500.0)


def run_sweep():
    results = {}
    for asymmetry in ASYMMETRIES:
        ptp = PtpSyncModel(path_asymmetry_ns=asymmetry)
        results[asymmetry] = compare_tap_vs_ptp(ptp=ptp, seed=0)
    return results


def test_bench_tap_vs_ptp(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for asymmetry, result in results.items():
        rows.append(
            [
                f"{asymmetry:.0f}",
                f"{result.tap_p99_ns():.1f}",
                f"{result.ptp_p99_ns():.1f}",
                f"{result.advantage_factor():.0f}x",
            ]
        )
    print_table(
        "Section 3 — one-way delay measurement error (p99, ns)",
        ["path asymmetry (ns)", "tap", "PTP pair", "tap advantage"],
        rows,
    )

    for result in results.values():
        # The tap's error never exceeds its quantization; PTP's grows with
        # asymmetry and is never competitive.
        assert result.tap_errors_ns.max() <= 8.5 + 1e-6
        assert result.advantage_factor() > 5
    # PTP error scales with asymmetry; the tap's does not.
    p99s = [results[a].ptp_p99_ns() for a in ASYMMETRIES]
    assert p99s == sorted(p99s)
    taps = [results[a].tap_p99_ns() for a in ASYMMETRIES]
    assert max(taps) - min(taps) < 2.0

"""E-runner — the parallel experiment engine.

Two claims:

1. **Parallel speedup** — ``repro all --jobs 4`` style sweeps complete
   >= 2x faster than ``--jobs 1`` on a multi-core box (skipped when fewer
   than 4 CPUs are available, since the pool then cannot demonstrate it).
2. **Warm cache** — rerunning an identical sweep against a populated
   result cache performs *zero* figure recomputation and is an order of
   magnitude faster than the cold run.
"""

import os
import time

import pytest

from conftest import print_table

from repro.runner import ResultCache, expand_grid, run_jobs

#: A sweep sized to dominate pool startup (~4 s serial on one core).
SWEEP_FIGURES = ["fig1", "fig4-delay", "fig4-jitter", "fig5"]
SWEEP_SEEDS = [0, 1]
SWEEP_GRID = {"cycles": [200]}


def _sweep(workers, cache=None):
    jobs = expand_grid(SWEEP_FIGURES, seeds=SWEEP_SEEDS, grid=SWEEP_GRID)
    return run_jobs(jobs, workers=workers, cache=cache)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 CPUs",
)
def test_bench_parallel_speedup(benchmark):
    t0 = time.perf_counter()
    serial = _sweep(workers=1)
    serial_s = time.perf_counter() - t0

    result = benchmark.pedantic(
        lambda: _sweep(workers=4), rounds=1, iterations=1
    )
    parallel_s = result.manifest.wall_time_s

    print_table(
        "Runner — serial vs parallel sweep",
        ["workers", "jobs", "wall s"],
        [
            ["1", str(len(serial.outcomes)), f"{serial_s:.2f}"],
            ["4", str(len(result.outcomes)), f"{parallel_s:.2f}"],
        ],
    )
    # Identical rows regardless of worker count.
    for a, b in zip(serial.outcomes, result.outcomes):
        assert a.rows.to_csv() == b.rows.to_csv()
    assert serial_s / parallel_s >= 2.0


def test_bench_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = _sweep(workers=1, cache=cache)
    cold_s = time.perf_counter() - t0

    warm = benchmark.pedantic(
        lambda: _sweep(workers=1, cache=cache), rounds=1, iterations=1
    )
    warm_s = time.perf_counter() - t0 - cold_s

    print_table(
        "Runner — cold vs warm cache sweep",
        ["run", "hits", "misses", "wall s"],
        [
            ["cold", str(cold.manifest.cache_hits),
             str(cold.manifest.cache_misses), f"{cold_s:.2f}"],
            ["warm", str(warm.manifest.cache_hits),
             str(warm.manifest.cache_misses), f"{warm_s:.2f}"],
        ],
    )
    # The warm run recomputed nothing…
    assert cold.manifest.cache_misses == len(cold.outcomes)
    assert warm.manifest.cache_hits == len(warm.outcomes)
    assert warm.manifest.cache_misses == 0
    # …returned identical data…
    for a, b in zip(cold.outcomes, warm.outcomes):
        assert a.rows.to_csv() == b.rows.to_csv()
    # …and was dramatically faster than simulating.
    assert warm.manifest.wall_time_s < cold_s / 5

"""Ablation — TSN schedule synthesis algorithms.

The paper notes TSN "enables the usage of arbitrary scheduling algorithms".
This ablation compares the two synthesizers on increasingly tight flow
sets: grid-based greedy first-fit (fast, incomplete) vs simulated
annealing (slower, finds tighter packings).
"""

from conftest import print_table

from repro.net import FlowSpec, Topology, TrafficClass
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator
from repro.tsn import (
    AnnealingSynthesizer,
    InfeasibleScheduleError,
    ScheduleSynthesizer,
)

PERIOD_NS = 25_000  # one frame is ~7 us at 100 Mbit/s


def flow_set(count):
    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("a"), topo.add_host("b")
    topo.connect(a, b, bandwidth_bps=1e8)
    install_shortest_path_routes(topo)
    specs = [
        FlowSpec(
            f"f{i}", "a", "b", period_ns=PERIOD_NS, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        for i in range(count)
    ]
    return topo, specs


def attempt(synthesizer_factory, count):
    topo, specs = flow_set(count)
    try:
        synthesizer_factory(topo).synthesize(specs)
        return True
    except InfeasibleScheduleError:
        return False


def run_comparison():
    algorithms = {
        "greedy (10 us grid)": lambda topo: ScheduleSynthesizer(
            topo, granularity_ns=10_000
        ),
        "greedy (1 us grid)": lambda topo: ScheduleSynthesizer(
            topo, granularity_ns=1_000
        ),
        "annealing": lambda topo: AnnealingSynthesizer(
            topo, iterations=20_000, seed=1
        ),
    }
    # Utilization sweep: 1..4 flows of ~7 us each in a 25 us period
    # (4 flows = 113% utilization: impossible for everyone).
    return {
        name: [attempt(factory, count) for count in (1, 2, 3, 4)]
        for name, factory in algorithms.items()
    }


def test_bench_scheduler_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = [
        [name] + ["yes" if ok else "NO" for ok in feasible]
        for name, feasible in results.items()
    ]
    print_table(
        "Ablation — schedulability at rising utilization (flows of ~7 us "
        "per 25 us period)",
        ["algorithm", "1 flow (28%)", "2 (56%)", "3 (85%)", "4 (113%)"],
        rows,
    )

    # The coarse grid gives up at 85% utilization; the fine grid and
    # annealing both pack it; nobody schedules the impossible set.
    assert results["greedy (10 us grid)"] == [True, True, False, False]
    assert results["greedy (1 us grid)"][2] is True
    assert results["annealing"][2] is True
    assert all(not feasible[3] for feasible in results.values())

"""E4 — Figure 5: InstaPLC data-plane switchover.

Reruns the paper's scenario — primary vPLC killed at t=1.5 s of a 3 s run —
and prints the packets-per-50 ms series of both panels.  Asserts the
figure's shape: vPLC1's rate collapses to zero, the to-I/O rate continues
essentially uninterrupted, and the device never trips its watchdog.
"""

import numpy as np
from conftest import print_table

from repro.instaplc import run_fig5
from repro.simcore.units import MS, SEC


def run_scenario():
    return run_fig5(duration_ns=3 * SEC, crash_ns=round(1.5 * SEC), seed=0)


def test_bench_fig5_switchover(benchmark):
    result = benchmark.pedantic(run_scenario, rounds=1, iterations=1)

    vplc1 = result.binned("vplc1").counts
    vplc2 = result.binned("vplc2").counts
    to_io = result.binned("to_io").counts
    rows = [
        [f"{i * 50} ms", str(vplc1[i]), str(vplc2[i]), str(to_io[i])]
        for i in range(0, len(to_io), 6)
    ]
    print_table(
        "Figure 5 — packets per 50 ms",
        ["t", "from vPLC1", "from vPLC2", "to I/O"],
        rows,
    )
    latency_ms = (result.switchover_latency_ns or 0) / 1e6
    print(f"switchover detected {latency_ms:.2f} ms after the crash")
    print(f"max to-I/O gap: {result.max_io_gap_after_ns(500 * MS) / 1e6:.2f} ms")

    crash_bin = result.crash_ns // result.bin_width_ns
    expected_rate = result.bin_width_ns // result.cycle_ns
    # Panel (a): vPLC1 at full rate before the crash, silent after.
    assert all(vplc1[2:crash_bin - 1] == expected_rate)
    assert all(vplc1[crash_bin + 1:] == 0)
    # vPLC2 transmits throughout (absorbed, then forwarded).
    assert all(vplc2[6:] > 0)
    # Panel (b): the I/O device keeps receiving at (almost) full rate —
    # at most a few frames lost in the handover bin.
    assert to_io[2:].min() >= expected_rate - 3
    # One switchover, detected within two cycles, no watchdog trip.
    assert len(result.switchovers) == 1
    assert result.switchover_latency_ns < 2 * result.cycle_ns
    assert result.device_watchdog_expirations == 0
    assert not result.device_fail_safe

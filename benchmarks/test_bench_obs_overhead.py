"""E-obs — cost of the observability layer on the event loop.

The design claim: with no capture scope open every observability call
site degrades to a no-op (null registry / null tracer / one local
``profiler is None`` check per event), so the disabled layer costs the
event loop only a few percent.  Profiling is the expensive opt-in — it
wraps every callback in two ``perf_counter_ns`` reads.

The table reports event-loop throughput in three configurations:

- **off** — no capture scope (the default for every figure run);
- **capture** — metrics + tracing live (``obs.capture()``), which adds a
  per-``run()`` span but nothing per event;
- **profile** — ``obs.capture(profile=True)``, paying per-event timing.

Thresholds are deliberately loose (this is a report, not a gate): the
meaningful regression signal is the off-vs-capture gap, which must stay
small because neither configuration touches the per-event fast path.
"""

import time
import warnings

from conftest import print_table

from repro import obs
from repro.simcore import Simulator

#: Events per measured run: large enough to dominate setup, small enough
#: to keep the whole benchmark under a few seconds.
EVENTS = 200_000
ROUNDS = 3

#: Design-target overhead ratios (reported as warnings when exceeded).
CAPTURE_TARGET_RATIO = 1.5
PROFILE_TARGET_RATIO = 10.0
#: Hard CI bounds: only a real per-event regression reaches these.
CAPTURE_HARD_RATIO = 3.0
PROFILE_HARD_RATIO = 15.0


def _pump(events: int) -> Simulator:
    """Drain ``events`` self-rescheduling callbacks through one simulator."""
    sim = Simulator()
    remaining = [events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(tick, after=1)

    sim.schedule(tick, after=1)
    sim.run()
    assert sim.stats.events_executed == events
    return sim


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_obs_overhead(benchmark):
    off_s = benchmark.pedantic(
        lambda: _best_of(lambda: _pump(EVENTS)), rounds=1, iterations=1
    )

    def capture_run():
        with obs.capture():
            _pump(EVENTS)

    def profile_run():
        with obs.capture(profile=True) as cap:
            _pump(EVENTS)
        assert sum(s.calls for s in cap.profiler.hotspots()) == EVENTS

    capture_s = _best_of(capture_run)
    profile_s = _best_of(profile_run)

    rows = [
        ["off", f"{off_s * 1e3:.1f}", f"{EVENTS / off_s / 1e6:.2f}", "1.00x"],
        ["capture", f"{capture_s * 1e3:.1f}",
         f"{EVENTS / capture_s / 1e6:.2f}", f"{capture_s / off_s:.2f}x"],
        ["profile", f"{profile_s * 1e3:.1f}",
         f"{EVENTS / profile_s / 1e6:.2f}", f"{profile_s / off_s:.2f}x"],
    ]
    print_table(
        "Observability — event-loop overhead "
        f"({EVENTS} events, best of {ROUNDS})",
        ["config", "wall ms", "Mevents/s", "vs off"],
        rows,
    )

    # Two tiers of checking.  The *hard* bounds below are wide enough
    # that only a real regression (an accidental per-event cost on the
    # disabled path) trips them, even on noisy shared CI runners where
    # wall-clock ratios routinely wobble by tens of percent.  The
    # *design-target* ratios are reported as warnings, not failures:
    # they are the numbers to investigate, never a reason to flake a
    # build that changed nothing.
    capture_ratio = capture_s / off_s
    profile_ratio = profile_s / off_s
    if capture_ratio >= CAPTURE_TARGET_RATIO:
        warnings.warn(
            f"capture/off ratio {capture_ratio:.2f}x exceeds the "
            f"{CAPTURE_TARGET_RATIO:.1f}x design target (non-blocking; "
            f"hard bound {CAPTURE_HARD_RATIO:.1f}x)",
            stacklevel=1,
        )
    if profile_ratio >= PROFILE_TARGET_RATIO:
        warnings.warn(
            f"profile/off ratio {profile_ratio:.2f}x exceeds the "
            f"{PROFILE_TARGET_RATIO:.1f}x design target (non-blocking; "
            f"hard bound {PROFILE_HARD_RATIO:.1f}x)",
            stacklevel=1,
        )
    # Neither disabled nor metrics+tracing capture touches the per-event
    # path, so even a noisy runner cannot triple the loop.
    assert capture_ratio < CAPTURE_HARD_RATIO
    # Profiling pays two clock reads per event; it must still be usable.
    assert profile_ratio < PROFILE_HARD_RATIO

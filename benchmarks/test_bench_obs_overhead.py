"""E-obs — cost of the observability layer on the event loop.

The design claim: with no capture scope open every observability call
site degrades to a no-op (null registry / null tracer / one local
``profiler is None`` check per event), so the disabled layer costs the
event loop only a few percent.  Profiling is the expensive opt-in — it
wraps every callback in two ``perf_counter_ns`` reads.

The table reports event-loop throughput in three configurations:

- **off** — no capture scope (the default for every figure run);
- **capture** — metrics + tracing live (``obs.capture()``), which adds a
  per-``run()`` span but nothing per event;
- **profile** — ``obs.capture(profile=True)``, paying per-event timing.

Thresholds are deliberately loose (this is a report, not a gate): the
meaningful regression signal is the off-vs-capture gap, which must stay
small because neither configuration touches the per-event fast path.
"""

import time

from conftest import print_table

from repro import obs
from repro.simcore import Simulator

#: Events per measured run: large enough to dominate setup, small enough
#: to keep the whole benchmark under a few seconds.
EVENTS = 200_000
ROUNDS = 3


def _pump(events: int) -> Simulator:
    """Drain ``events`` self-rescheduling callbacks through one simulator."""
    sim = Simulator()
    remaining = [events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(1, tick)

    sim.schedule(1, tick)
    sim.run()
    assert sim.stats.events_executed == events
    return sim


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_obs_overhead(benchmark):
    off_s = benchmark.pedantic(
        lambda: _best_of(lambda: _pump(EVENTS)), rounds=1, iterations=1
    )

    def capture_run():
        with obs.capture():
            _pump(EVENTS)

    def profile_run():
        with obs.capture(profile=True) as cap:
            _pump(EVENTS)
        assert sum(s.calls for s in cap.profiler.hotspots()) == EVENTS

    capture_s = _best_of(capture_run)
    profile_s = _best_of(profile_run)

    rows = [
        ["off", f"{off_s * 1e3:.1f}", f"{EVENTS / off_s / 1e6:.2f}", "1.00x"],
        ["capture", f"{capture_s * 1e3:.1f}",
         f"{EVENTS / capture_s / 1e6:.2f}", f"{capture_s / off_s:.2f}x"],
        ["profile", f"{profile_s * 1e3:.1f}",
         f"{EVENTS / profile_s / 1e6:.2f}", f"{profile_s / off_s:.2f}x"],
    ]
    print_table(
        "Observability — event-loop overhead "
        f"({EVENTS} events, best of {ROUNDS})",
        ["config", "wall ms", "Mevents/s", "vs off"],
        rows,
    )

    # Neither disabled nor metrics+tracing capture touches the per-event
    # path; allow generous noise headroom so the report never flakes CI.
    assert capture_s / off_s < 1.5
    # Profiling pays two clock reads per event; it must still be usable.
    assert profile_s / off_s < 10.0

"""Ablation — InstaPLC's detection threshold.

The paper makes the switchover trigger "a configurable number of I/O
cycles".  This ablation sweeps the threshold and shows the trade: lower
thresholds hand over faster (larger margin to the device watchdog), while
every setting below the watchdog factor keeps the device alive.
"""

from conftest import print_table

from repro.instaplc import run_fig5
from repro.simcore.units import MS, SEC

CYCLE = 1_250_000
THRESHOLDS = (1.0, 1.5, 2.0)


def run_threshold_sweep():
    results = {}
    for detection_cycles in THRESHOLDS:
        result = run_fig5(
            cycle_ns=CYCLE,
            duration_ns=3 * SEC,
            crash_ns=round(1.5 * SEC),
            detection_cycles=detection_cycles,
            watchdog_factor=3,
            seed=0,
        )
        results[detection_cycles] = result
    return results


def test_bench_instaplc_detection_threshold(benchmark):
    results = benchmark.pedantic(run_threshold_sweep, rounds=1, iterations=1)

    rows = []
    for threshold, result in results.items():
        latency = result.switchover_latency_ns or 0
        gap = result.max_io_gap_after_ns(500 * MS)
        rows.append(
            [
                f"{threshold:.1f}",
                f"{latency / 1e6:.2f}",
                f"{gap / 1e6:.2f}",
                str(result.device_watchdog_expirations),
            ]
        )
    print_table(
        "Ablation — InstaPLC detection threshold (cycles)",
        ["threshold", "switchover (ms)", "max I/O gap (ms)", "wd expirations"],
        rows,
    )

    latencies = [
        results[t].switchover_latency_ns for t in THRESHOLDS
    ]
    # Faster detection with lower thresholds, monotonically.
    assert latencies == sorted(latencies)
    # Every threshold below the watchdog factor keeps the device alive
    # and the I/O gap within the watchdog budget.
    for result in results.values():
        assert result.device_watchdog_expirations == 0
        assert result.max_io_gap_after_ns(500 * MS) < 3 * CYCLE

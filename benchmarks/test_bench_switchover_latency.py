"""E7 — Section 4's switchover numbers: InstaPLC vs the baselines.

The paper motivates InstaPLC against two mechanisms: hardware redundant
pairs ("within 50 ms to 300 ms") and vPLC-as-Kubernetes-pod ("~110 ms to
~55.4 s").  This benchmark measures the I/O-observed outage of all three
under the same failure and prints the comparison table.
"""

import numpy as np
from conftest import print_table

from repro.fieldbus import IoDeviceApp
from repro.instaplc import run_fig5
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import (
    HW_SWITCHOVER_MAX_NS,
    HW_SWITCHOVER_MIN_NS,
    KubernetesFailoverModel,
    PlcRuntime,
    RedundantPlcPair,
    passthrough_program,
)
from repro.simcore import Simulator, MS, SEC

CYCLE = 10 * MS
SEEDS = (0, 1, 2)


def outage_ns(rx_times, failure_ns):
    stamps = np.asarray(rx_times, dtype=np.int64)
    return int(np.diff(stamps[stamps > failure_ns - SEC]).max())


def measure_instaplc(seed):
    result = run_fig5(
        cycle_ns=CYCLE, duration_ns=4 * SEC, crash_ns=2 * SEC, seed=seed
    )
    assert result.device_watchdog_expirations == 0
    return result.max_io_gap_after_ns(1 * SEC)


def measure_hw_pair(seed):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 3)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h2"])
    primary = PlcRuntime(sim, topo.devices["h0"], passthrough_program({}),
                         cycle_ns=CYCLE, name="p")
    secondary = PlcRuntime(sim, topo.devices["h1"], passthrough_program({}),
                           cycle_ns=CYCLE, name="s")
    primary.assign_device("h2")
    secondary.assign_device("h2")
    pair = RedundantPlcPair(sim, primary, secondary)
    pair.start()
    sim.run(until=2 * SEC)
    pair.inject_primary_failure()
    sim.run(until=10 * SEC)
    return outage_ns(device.stats.rx_times_ns, 2 * SEC)


def measure_k8s(seed):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    plc = PlcRuntime(sim, topo.devices["h0"], passthrough_program({}),
                     cycle_ns=CYCLE, name="pod")
    plc.assign_device("h1")
    model = KubernetesFailoverModel(sim, plc)
    model.start()
    sim.run(until=2 * SEC)
    model.inject_primary_failure()
    sim.run(until=120 * SEC)
    return outage_ns(device.stats.rx_times_ns, 2 * SEC)


def run_comparison():
    return {
        "InstaPLC": [measure_instaplc(seed) for seed in SEEDS],
        "hw-pair": [measure_hw_pair(seed) for seed in SEEDS],
        "k8s-pod": [measure_k8s(seed) for seed in SEEDS],
    }


def test_bench_switchover_comparison(benchmark):
    outages = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    paper_bands = {
        "InstaPLC": "(in-cycle)",
        "hw-pair": "50-300 ms (+detection)",
        "k8s-pod": "110 ms - 55.4 s",
    }
    rows = [
        [
            name,
            f"{min(values) / 1e6:.2f}",
            f"{max(values) / 1e6:.2f}",
            paper_bands[name],
        ]
        for name, values in outages.items()
    ]
    print_table(
        "Section 4 — I/O-observed outage (ms) across mechanisms",
        ["mechanism", "min", "max", "paper band"],
        rows,
    )

    # Ordering: InstaPLC << hardware pair << k8s, for every seed.
    assert max(outages["InstaPLC"]) < min(outages["hw-pair"])
    assert max(outages["hw-pair"]) < max(outages["k8s-pod"])
    # InstaPLC stays within the device watchdog (sub-3-cycle outage).
    assert max(outages["InstaPLC"]) < 3 * CYCLE
    # Hardware pair lands in the paper band plus detection/reconnect slack.
    assert all(
        HW_SWITCHOVER_MIN_NS <= v <= HW_SWITCHOVER_MAX_NS + 300 * MS
        for v in outages["hw-pair"]
    )
    # The k8s tail exceeds the hardware band.
    assert max(outages["k8s-pod"]) > HW_SWITCHOVER_MAX_NS

"""Ablation — kernel configuration under Traffic Reflection.

Section 2.1 discusses PREEMPT_RT vs stock kernels.  This ablation runs the
Base reflector on all three kernel models and shows the tail-latency
ordering that motivates dedicating isolated RT cores to vPLC packet paths.
"""

from conftest import print_table

from repro.ebpf import build_base
from repro.hoststack import PREEMPT_RT_ISOLATED, PREEMPT_RT_SHARED, STOCK_KERNEL
from repro.reflection import run_reflection

KERNELS = {
    "preempt-rt-isolated": PREEMPT_RT_ISOLATED,
    "preempt-rt-shared": PREEMPT_RT_SHARED,
    "stock": STOCK_KERNEL,
}
CYCLES = 600


def run_kernels():
    return {
        name: run_reflection(build_base(), cycles=CYCLES, kernel=kernel)
        for name, kernel in KERNELS.items()
    }


def test_bench_kernel_ablation(benchmark):
    results = benchmark.pedantic(run_kernels, rounds=1, iterations=1)

    cdfs = {name: r.delay_cdf() for name, r in results.items()}
    rows = [
        [
            name,
            f"{cdf.quantile(0.5):.2f}",
            f"{cdf.quantile(0.999):.2f}",
            f"{cdf.xs.max():.2f}",
        ]
        for name, cdf in cdfs.items()
    ]
    print_table(
        "Ablation — reflection delay (us) by kernel config",
        ["kernel", "p50", "p99.9", "worst"],
        rows,
    )

    # Medians are close (the fast path is the same)...
    assert abs(cdfs["stock"].median - cdfs["preempt-rt-isolated"].median) < 3.0
    # ...but the tails separate: stock kernels stall for tens to hundreds
    # of microseconds, exactly the paper's "cannot be considered hard
    # real-time" argument.
    assert (
        cdfs["stock"].xs.max()
        > cdfs["preempt-rt-shared"].xs.max()
        >= cdfs["preempt-rt-isolated"].xs.max()
    )
    assert cdfs["stock"].xs.max() > 30.0  # > 30 us worst case
    assert cdfs["preempt-rt-isolated"].xs.max() < 40.0

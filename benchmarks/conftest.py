"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures (or a stated
numeric claim), prints the same rows/series the paper reports, and asserts
the figure's qualitative *shape* so a regression fails the suite.
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    """Render a small aligned table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

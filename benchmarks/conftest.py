"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures (or a stated
numeric claim), prints the same rows/series the paper reports, and asserts
the figure's qualitative *shape* so a regression fails the suite.

**Bench recording hook:** when the ``REPRO_BENCH_OUT`` environment
variable names a file, this conftest records the call-phase wall time of
every passing test and writes them all as one JSON samples document at
session end::

    {"schema": "repro.obs/bench-samples/v1",
     "samples": [{"name": "<nodeid>", "value_s": 1.284,
                  "unit": "s", "rounds": 1}]}

``repro bench record`` drives pytest with that variable set, converts the
samples into a ``BENCH_<date>.json`` report (schema
``repro.obs/bench/v1``, see :mod:`repro.obs.history`), and appends it to
the append-only bench history that ``repro bench compare`` judges
regressions against.  The hook is stdlib-only and dormant unless the
variable is set, so plain ``pytest benchmarks`` runs are unaffected.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Environment variable naming the samples output file.
BENCH_OUT_ENV = "REPRO_BENCH_OUT"

SAMPLES_SCHEMA = "repro.obs/bench-samples/v1"

_samples: list[dict] = []


def pytest_runtest_logreport(report) -> None:
    """Record the call-phase duration of every passing test."""
    if os.environ.get(BENCH_OUT_ENV) and report.when == "call" and report.passed:
        _samples.append(
            {
                "name": report.nodeid,
                "value_s": round(report.duration, 6),
                "unit": "s",
                "rounds": 1,
            }
        )


def pytest_sessionfinish(session) -> None:
    """Flush the collected samples once, at session end."""
    target = os.environ.get(BENCH_OUT_ENV)
    if not target or not _samples:
        return
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"schema": SAMPLES_SCHEMA, "samples": sorted(
                _samples, key=lambda s: s["name"]
            )},
            indent=2,
        )
        + "\n"
    )


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    """Render a small aligned table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

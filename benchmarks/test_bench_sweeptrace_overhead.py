"""E-swt — cost of end-to-end sweep tracing on the sweep control plane.

The design budget: with ``sweeptrace`` off (the default) the trace plane
must cost a sweep **at most 1.05x** of its pre-tracing wall time.  The
off path is a ``recorder is None`` check per lifecycle event — the
engine builds no recorder, backends emit through the same ``on_event``
channel that already served the status heartbeat — so the budget holds
structurally; the cross-PR enforcement is the recorded sweep bench in
the append-only history that ``repro bench compare`` judges.  What
*this* benchmark proves in-process:

- **off** and **traced** runs of the same seeded grid produce
  *byte-identical* rows (the trace observes the control plane, never
  perturbs job payloads or results);
- tracing-on overhead stays inside a loose hard bound — one JSONL
  append per lifecycle event, O(1) each;
- the traced run actually recorded a full event stream.

The grid is a multi-job ``fig4-delay`` sweep rather than one huge
kernel: control-plane overhead scales with lifecycle events (jobs ×
attempts), not with kernel weight, so many small jobs are the honest
worst case.
"""

import time
import warnings

from conftest import print_table

from repro.runner import SerialBackend, make_job, run_jobs

#: Enough jobs for per-job event overhead to show, < 1 s per sweep.
SEEDS = 4
CYCLES = 200
ROUNDS = 3

#: Cross-PR budget for the *off* path, enforced by the bench history.
OFF_BUDGET_RATIO = 1.05
#: Design target for tracing *on* (warning only — this is a report).
ON_TARGET_RATIO = 1.5
#: Hard CI bound: only a real per-event regression reaches this.
ON_HARD_RATIO = 3.0


def _sweep(sweeptrace=None):
    return run_jobs(
        [
            make_job("fig4-delay", seed=seed, params={"cycles": CYCLES})
            for seed in range(SEEDS)
        ],
        backend=SerialBackend(),
        sweeptrace=sweeptrace,
    )


def _best_of(fn, rounds: int = ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_sweeptrace_overhead(benchmark, tmp_path):
    off_s, off_result = benchmark.pedantic(
        lambda: _best_of(_sweep), rounds=1, iterations=1
    )
    events_path = tmp_path / "sweep.events.jsonl"
    on_s, on_result = _best_of(lambda: _sweep(sweeptrace=events_path))

    rows = [
        ["off", f"{off_s * 1e3:.0f}", "1.00x"],
        ["sweeptrace", f"{on_s * 1e3:.0f}", f"{on_s / off_s:.2f}x"],
    ]
    print_table(
        f"Sweep tracing — control-plane overhead (fig4-delay x{SEEDS}, "
        f"cycles={CYCLES}, best of {ROUNDS}; off-mode budget "
        f"{OFF_BUDGET_RATIO:.2f}x vs bench history)",
        ["config", "wall ms", "vs off"],
        rows,
    )

    # The trace observes without perturbing: same grid, same bytes.
    for off_out, on_out in zip(off_result.outcomes, on_result.outcomes):
        assert off_out.rows.to_csv() == on_out.rows.to_csv()
    # The traced run recorded a full event stream.
    from repro.obs.sweeptrace import build_timeline, load_events

    events = load_events(events_path)
    assert events[0]["ev"] == "sweep_start"
    assert events[-1]["ev"] == "sweep_end"
    timeline = build_timeline(events)
    assert len(timeline.attempts) == SEEDS

    on_ratio = on_s / off_s
    if on_ratio >= ON_TARGET_RATIO:
        warnings.warn(
            f"sweeptrace/off ratio {on_ratio:.2f}x exceeds the "
            f"{ON_TARGET_RATIO:.1f}x design target (non-blocking; hard "
            f"bound {ON_HARD_RATIO:.1f}x)",
            stacklevel=1,
        )
    assert on_ratio < ON_HARD_RATIO


def test_off_path_builds_no_recorder():
    """Without ``sweeptrace=`` the engine never constructs a recorder —
    job payloads stay 11 elements and records carry no trace fields."""
    result = _sweep()
    for record in result.manifest.records:
        assert record.span is None
        assert record.queue_s is None
        assert record.attempt_timings is None

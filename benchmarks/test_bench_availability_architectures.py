"""E8 — Section 2.2's consolidation-risk argument, quantified.

The paper: industrial automation demands >= 99.9999 % availability, while
"consolidating virtual PLCs in centralized data centers increases potential
for failures: even a short-lived outage can simultaneously affect dozens of
production cells".  This benchmark composes component MTBF/MTTR profiles
into the three candidate plant architectures and prints the comparison.
"""

from conftest import print_table

from repro.core import compare_architectures
from repro.metrics import availability_to_nines

CELLS = 24


def run_comparison():
    return compare_architectures(CELLS)


def test_bench_availability_architectures(benchmark):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = []
    for name, metrics in report.items():
        rows.append(
            [
                name,
                f"{availability_to_nines(metrics['cell_availability']):.1f}",
                f"{metrics['cell_downtime_s_per_year']:.0f}",
                f"{metrics['blast_radius_cells']:.0f}",
                f"{metrics['cell_outages_per_year']:.2f}",
            ]
        )
    print_table(
        f"Section 2.2 — plant architectures at {CELLS} cells",
        ["architecture", "nines/cell", "downtime s/yr", "blast radius",
         "cell-outages/yr"],
        rows,
    )

    classic = report["classic-ot"]
    consolidated = report["consolidated-vplc"]
    redundant = report["redundant-vplc"]
    # Naive consolidation loses about a nine per cell and multiplies
    # simultaneous cell outages by the plant size.
    assert consolidated["cell_availability"] < classic["cell_availability"]
    assert consolidated["blast_radius_cells"] == CELLS
    assert (
        consolidated["cell_outages_per_year"]
        > 50 * classic["cell_outages_per_year"]
    )
    # Redundancy (the InstaPLC direction) more than recovers the loss.
    assert redundant["cell_availability"] > classic["cell_availability"]
    assert redundant["cell_outages_per_year"] < classic["cell_outages_per_year"]

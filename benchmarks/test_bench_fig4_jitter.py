"""E3 — Figure 4 (right): jitter growth with concurrent TSN flows.

Runs the Base reflector under 1 vs 25 flows (plus intermediate points)
and reproduces the claim that more real-time flows handled by eBPF/XDP
increase jitter.
"""

from conftest import print_table

from repro.ebpf import build_base
from repro.metrics import dominance_fraction
from repro.reflection import run_flow_scaling

FLOW_COUNTS = [1, 5, 25]
CYCLES = 400


def run_scaling():
    return run_flow_scaling(build_base(), FLOW_COUNTS, cycles=CYCLES)


def test_bench_fig4_jitter_vs_flows(benchmark):
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    cdfs = {count: r.jitter_cdf() for count, r in results.items()}
    rows = [
        [
            str(count),
            f"{cdf.quantile(0.5):.0f}",
            f"{cdf.quantile(0.9):.0f}",
            f"{cdf.quantile(0.99):.0f}",
        ]
        for count, cdf in cdfs.items()
    ]
    print_table(
        "Figure 4 (right) — jitter (ns) vs concurrent flows",
        ["flows", "p50", "p90", "p99"],
        rows,
    )

    # The 25-flow CDF lies right of the 1-flow CDF over (nearly) all
    # quantiles — the paper's monotone shift.
    assert dominance_fraction(cdfs[25], cdfs[1]) > 0.9
    assert cdfs[25].quantile(0.9) > cdfs[5].quantile(0.9) > cdfs[1].quantile(0.9)
    # Magnitudes in the paper's sub-microsecond band, with the 25-flow
    # tail reaching toward ~1000 ns.
    assert cdfs[1].quantile(0.9) < 1_000
    assert 400 < cdfs[25].quantile(0.99) < 4_000

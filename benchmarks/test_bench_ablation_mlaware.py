"""Ablation — the ML-aware design space (cell size, frame compression).

Explores the knobs the optimizer sets for Figure 6's winning topology:
cell size trades cost against latency, and the accuracy-preserving frame
compression is where most of the traffic savings come from.
"""

from conftest import print_table

from repro.mlnet import (
    MlAwareOptimizer,
    OBJECT_IDENTIFICATION,
    build_ml_aware_deployment,
    run_deployment,
)
from repro.simcore import Simulator
from repro.simcore.units import MS

CLIENTS = 128
CELL_SIZES = (16, 32, 64)


def run_cell_sweep():
    measured = {}
    for cell_size in CELL_SIZES:
        sim = Simulator(seed=0)
        deployment = build_ml_aware_deployment(
            sim, CLIENTS, OBJECT_IDENTIFICATION, cell_size=cell_size
        )
        mean_ms, p99_ms, _ = run_deployment(
            deployment, OBJECT_IDENTIFICATION, sim, duration_ns=400 * MS
        )
        design = MlAwareOptimizer(OBJECT_IDENTIFICATION).design(
            CLIENTS, cell_size
        )
        measured[cell_size] = (mean_ms, p99_ms, design.cost_units)
    return measured


def test_bench_mlaware_cell_size(benchmark):
    measured = benchmark.pedantic(run_cell_sweep, rounds=1, iterations=1)

    rows = [
        [str(size), f"{mean:.2f}", f"{p99:.2f}", f"{cost:.0f}"]
        for size, (mean, p99, cost) in measured.items()
    ]
    print_table(
        f"Ablation — ML-aware cell size at {CLIENTS} clients",
        ["cell size", "mean (ms)", "p99 (ms)", "cost units"],
        rows,
    )

    costs = [measured[size][2] for size in CELL_SIZES]
    means = [measured[size][0] for size in CELL_SIZES]
    # Cost falls with bigger cells (fewer switches/servers)...
    assert costs == sorted(costs, reverse=True)
    # ...while latency stays within a narrow band (the optimizer keeps
    # compute utilization bounded at every size).
    assert max(means) - min(means) < 0.5


def test_bench_mlaware_compression_value(benchmark):
    def run_compression_pair():
        results = {}
        for label, frame_bytes in (
            ("optimized", None),  # optimizer's accuracy-preserving minimum
            ("reference", OBJECT_IDENTIFICATION.reference_frame_bytes),
        ):
            sim = Simulator(seed=0)
            deployment = build_ml_aware_deployment(
                sim, CLIENTS, OBJECT_IDENTIFICATION, frame_bytes=frame_bytes
            )
            mean_ms, _, _ = run_deployment(
                deployment, OBJECT_IDENTIFICATION, sim, duration_ns=400 * MS
            )
            results[label] = (deployment.frame_bytes, mean_ms)
        return results

    results = benchmark.pedantic(run_compression_pair, rounds=1, iterations=1)
    rows = [
        [label, str(frame), f"{mean:.2f}"]
        for label, (frame, mean) in results.items()
    ]
    print_table(
        "Ablation — accuracy-preserving compression",
        ["frames", "bytes/frame", "mean latency (ms)"],
        rows,
    )
    optimized_frame, optimized_ms = results["optimized"]
    reference_frame, reference_ms = results["reference"]
    assert optimized_frame < reference_frame / 1.5
    assert optimized_ms < reference_ms

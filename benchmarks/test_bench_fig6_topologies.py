"""E5 — Figure 6: ML inference latency across topologies.

Sweeps 32/64/128/256 clients for both applications over the industrial
ring, leaf-spine, and the ML-aware design, printing the figure's series and
asserting its shape: ring worst, leaf-spine slightly better, ML-aware
lowest with a widening gap at scale.
"""

from conftest import print_table

from repro.mlnet import (
    DEFECT_DETECTION,
    OBJECT_IDENTIFICATION,
    PAPER_CLIENT_COUNTS,
    run_point,
)
from repro.simcore.units import MS

DURATION_NS = 400 * MS
TOPOLOGIES = ("ring", "leaf-spine", "ml-aware")


def run_app_sweep(app):
    series = {}
    for topology in TOPOLOGIES:
        series[topology] = [
            run_point(app, topology, clients, duration_ns=DURATION_NS).mean_latency_ms
            for clients in PAPER_CLIENT_COUNTS
        ]
    return series


def check_shape(series):
    counts = PAPER_CLIENT_COUNTS
    for i, clients in enumerate(counts):
        ring = series["ring"][i]
        leaf_spine = series["leaf-spine"][i]
        ml_aware = series["ml-aware"][i]
        # Ordering: ring >= leaf-spine > ml-aware (ties allowed at the
        # smallest scale where all designs are uncongested).
        if clients >= 64:
            assert ring > leaf_spine > ml_aware, (clients, series)
        assert ring >= ml_aware
    # The gap widens with scale; the ML-aware curve stays essentially flat.
    assert (series["ring"][-1] - series["ml-aware"][-1]) > (
        series["ring"][0] - series["ml-aware"][0]
    )
    flatness = max(series["ml-aware"]) - min(series["ml-aware"])
    assert flatness < 0.5
    # Latencies in the paper's single-digit-ms band.
    assert all(0.5 < v < 10.0 for row in series.values() for v in row)


def print_series(title, series):
    rows = [
        [topology] + [f"{v:.2f}" for v in values]
        for topology, values in series.items()
    ]
    print_table(
        title,
        ["topology"] + [str(c) for c in PAPER_CLIENT_COUNTS],
        rows,
    )


def test_bench_fig6_object_identification(benchmark):
    series = benchmark.pedantic(
        run_app_sweep, args=(OBJECT_IDENTIFICATION,), rounds=1, iterations=1
    )
    print_series("Figure 6 — object identification, latency (ms)", series)
    check_shape(series)


def test_bench_fig6_defect_detection(benchmark):
    series = benchmark.pedantic(
        run_app_sweep, args=(DEFECT_DETECTION,), rounds=1, iterations=1
    )
    print_series("Figure 6 — defect detection, latency (ms)", series)
    check_shape(series)

"""E6 — Section 2's quantitative claims, checked against the models.

The paper states its requirements as a compact set of numbers (timing
classes, the six-nines budget, the traffic mix).  This benchmark measures
our platform models against those classes and prints the compliance matrix:
hardware PLCs meet motion control, vPLC stacks do not — the paper's core
timing argument.
"""

import numpy as np
from conftest import print_table

from repro.core import (
    ConvergedFactory,
    FactoryConfig,
    INDUSTRIAL_SIX_NINES,
    MACHINE_TOOLS,
    MOTION_CONTROL,
    PROCESS_AUTOMATION,
)
from repro.plc import HARDWARE_PLC, PLATFORMS, VPLC_PREEMPT_RT, VPLC_STOCK_KERNEL
from repro.simcore import Simulator
from repro.simcore.units import MS, SEC, US


def measure_platform_jitter():
    """Worst-case release jitter per platform over many activations."""
    worst = {}
    for name, model in PLATFORMS.items():
        sampler = model.jitter_sampler(np.random.default_rng(0))
        worst[name] = max(sampler() for _ in range(50_000))
    return worst


def run_factory_compliance():
    """End-to-end: a converged factory measured against the timing classes."""
    sim = Simulator(seed=6)
    factory = ConvergedFactory(
        sim, FactoryConfig(cells=2, devices_per_cell=1, cycle_ns=2 * MS)
    )
    factory.start()
    sim.run(until=3 * SEC)
    return factory


def test_bench_requirements_matrix(benchmark):
    worst = benchmark.pedantic(measure_platform_jitter, rounds=1, iterations=1)

    classes = (MOTION_CONTROL, MACHINE_TOOLS, PROCESS_AUTOMATION)
    rows = []
    for name, jitter in worst.items():
        rows.append(
            [name, f"{jitter / 1000:.1f}"]
            + ["PASS" if jitter <= c.max_jitter_ns else "fail" for c in classes]
        )
    print_table(
        "Section 2.1 — worst-case release jitter vs timing classes",
        ["platform", "worst (us)"]
        + [f"{c.name} (<= {c.max_jitter_ns / 1000:.0f} us)" for c in classes],
        rows,
    )

    # The paper's argument, quantified:
    assert worst["hardware-plc"] <= MOTION_CONTROL.max_jitter_ns
    assert worst["vplc-preempt-rt"] > MOTION_CONTROL.max_jitter_ns
    assert worst["vplc-stock-kernel"] > MACHINE_TOOLS.max_jitter_ns
    # Even the noisy stack serves process automation (10-100 ms cycles).
    assert worst["vplc-preempt-rt"] <= PROCESS_AUTOMATION.max_jitter_ns

    factory = run_factory_compliance()
    results = factory.timing_compliance(PROCESS_AUTOMATION)
    assert results and all(r.passed for r in results.values())
    strict = factory.timing_compliance(MOTION_CONTROL)
    assert not any(r.passed for r in strict.values())

    # Section 2.2: the six-nines budget is 31.5 s/year.
    assert abs(INDUSTRIAL_SIX_NINES.downtime_budget_s_per_year - 31.536) < 0.1

"""E2 — Figure 4 (left): per-variant eBPF/XDP delay CDFs.

Runs Traffic Reflection for all six program variants and reproduces the
panel's claims: small code changes shift the CDF, and the ring-buffer
variants form a clearly slower cluster.
"""

from conftest import print_table

from repro.ebpf import paper_variants, verify
from repro.metrics import dominates
from repro.reflection import run_variant_sweep

CYCLES = 400


def run_sweep():
    return run_variant_sweep(paper_variants(), flow_count=1, cycles=CYCLES)


def test_bench_fig4_delay_cdfs(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    cdfs = {name: r.delay_cdf() for name, r in results.items()}
    bounds = {p.name: verify(p) for p in paper_variants()}
    rows = [
        [
            name,
            f"{cdf.quantile(0.5):.2f}",
            f"{cdf.quantile(0.9):.2f}",
            f"{cdf.quantile(0.99):.2f}",
            f"{bounds[name].expected_ns / 1000:.2f}",
        ]
        for name, cdf in cdfs.items()
    ]
    print_table(
        "Figure 4 (left) — reflection delay (us)",
        ["variant", "p50", "p90", "p99", "static eBPF cost"],
        rows,
    )

    # Claim 1: adding helpers shifts the CDF right, in program order.
    assert cdfs["Base"].median < cdfs["TS"].median < cdfs["TS-TS"].median
    # Claim 2: the ring-buffer cluster is clearly separated (paper: the
    # left panel splits into "No Ring Buffer" vs "Ring Buffer" groups).
    no_rb_max = max(
        cdfs[name].quantile(0.9) for name in ("Base", "TS", "TS-TS", "TS-OW")
    )
    rb_min = min(cdfs[name].quantile(0.1) for name in ("TS-RB", "TS-D-RB"))
    assert rb_min > no_rb_max
    # Distribution-level: TS-RB dominates Base at every probed quantile.
    assert dominates(cdfs["TS-RB"], cdfs["Base"])
    # All delays sit in the paper's ~10-20 us band.
    assert 8.0 < cdfs["Base"].median < 14.0
    assert cdfs["TS-D-RB"].quantile(0.99) < 25.0

"""E1 — Figure 1: terminology gap in SIGCOMM/HotNets proceedings.

Regenerates the thirteen-bar occurrence chart over the synthetic corpus
and checks the published counts and the orders-of-magnitude gap.
"""

from conftest import print_table

from repro.corpus import PAPER_COUNTS, analyze_corpus, generate_corpus


def run_fig1():
    documents = generate_corpus(seed=0)
    return analyze_corpus(documents)


def test_bench_fig1_term_gap(benchmark):
    report = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = [
        [name, str(count), str(PAPER_COUNTS[name])]
        for name, count in sorted(report.counts.items(), key=lambda i: i[1])
    ]
    print_table(
        "Figure 1 — occurrences (with permutations)",
        ["term group", "measured", "paper"],
        rows,
    )
    print(f"research gap ratio (general/industrial): {report.gap_ratio:.1f}x")

    # Exact reproduction of the published counts.
    assert report.counts == PAPER_COUNTS
    # The figure's message: the gap spans about two orders of magnitude.
    assert report.gap_ratio > 50
    # vPLC never appears; the top-3 general terms each exceed 1900.
    assert report.counts["vPLC"] == 0
    assert min(
        report.counts["TCP/UDP/IPv4/IPv6"],
        report.counts["Internet"],
        report.counts["Datacenter"],
    ) > 1900

#!/usr/bin/env python3
"""InstaPLC (Section 4): seamless vPLC switchover in the data plane.

Recreates Figure 5: two vPLCs control one I/O device through an InstaPLC
switch; the primary is crashed mid-run and the data-plane watchdog hands
control to the secondary before the device's own watchdog can fire.
Prints both panels as packets-per-50 ms bar rows.

Run:  python examples/instaplc_failover.py
"""

from repro.instaplc import run_fig5
from repro.simcore.units import MS, SEC

def bars(counts, full):
    """Render a count series as a compact bar string."""
    glyphs = " .:-=+*#"
    out = []
    for count in counts:
        level = min(len(glyphs) - 1, round(count / full * (len(glyphs) - 1)))
        out.append(glyphs[level])
    return "".join(out)

def main() -> None:
    crash_ns = round(1.5 * SEC)
    print("running the Figure 5 scenario (3 s, crash at 1.5 s)...")
    result = run_fig5(duration_ns=3 * SEC, crash_ns=crash_ns, seed=0)

    full = result.bin_width_ns // result.cycle_ns
    print(f"\ncycle time {result.cycle_ns / 1e6:.2f} ms "
          f"-> {full} packets per 50 ms bin at full rate")
    print(f"{'':10s}0s{' ' * 26}1.5s (crash){' ' * 14}3s")
    for name in ("vplc1", "vplc2", "to_io"):
        series = result.binned(name)
        print(f"{name:>8s}  |{bars(series.counts, full)}|")

    event = result.switchovers[0]
    latency_ms = (event.detected_ns - crash_ns) / 1e6
    print(f"\nswitchover: {event.old_primary} -> {event.new_primary}, "
          f"detected {latency_ms:.2f} ms after the crash")
    print(f"largest to-I/O gap: "
          f"{result.max_io_gap_after_ns(500 * MS) / 1e6:.2f} ms "
          f"(device watchdog budget: {3 * result.cycle_ns / 1e6:.2f} ms)")
    print(f"device watchdog expirations: {result.device_watchdog_expirations}")
    print(f"device in fail-safe: {result.device_fail_safe}")
    print("\nThe I/O device never noticed: control continuity across a")
    print("controller crash, with no dedicated sync links between vPLCs.")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Industrial ring redundancy: surviving a cable cut.

A six-switch production ring carries a cyclic control relation.  At t=1 s a
ring link is cut; the redundancy manager (MRP-style) detects the failure,
unblocks the standby link, and reroutes — well inside the fieldbus
watchdog, so the control relation never drops.

Run:  python examples/ring_redundancy.py
"""

import numpy as np

from repro.fieldbus import ConnectionParams, CyclicConnection, IoDeviceApp
from repro.net import RingRedundancyManager, build_ring
from repro.simcore import Simulator
from repro.simcore.units import MS, SEC

def main() -> None:
    sim = Simulator(seed=4)
    topo = build_ring(sim, 6, hosts_per_switch=1)
    standby = topo.link_between("sw0", "sw5")
    manager = RingRedundancyManager(sim, topo, standby_link=standby)
    installed = manager.commission()
    manager.start()
    print(f"ring commissioned: {installed} routes, "
          f"standby link sw0<->sw5 blocked")

    device = IoDeviceApp(sim, topo.devices["h3_0"])
    connection = CyclicConnection(
        sim, topo.devices["h0_0"], "h3_0",
        ConnectionParams(cycle_ns=10 * MS, watchdog_factor=10),
    )
    connection.open()
    sim.run(until=1 * SEC)
    print(f"relation running, device received "
          f"{device.stats.cyclic_received} cyclic frames")

    print("\ncutting ring link sw2<->sw3 at t=1s ...")
    topo.link_between("sw2", "sw3").set_down()
    sim.run(until=3 * SEC)

    event = manager.events[0]
    print(f"manager detected the failure and reconverged in "
          f"{event.reconvergence_ns / 1e6:.1f} ms after detection")
    gaps = np.diff(np.asarray(device.stats.rx_times_ns))
    print(f"worst cyclic gap at the device: {gaps.max() / 1e6:.1f} ms "
          f"(watchdog budget: 100 ms)")
    print(f"device watchdog expirations: {device.stats.watchdog_expirations}")
    print(f"relation state: {connection.state.name}")
    print("\nThe standby link absorbed the failure: this is the availability")
    print("engineering classic OT gets from MRP-style ring redundancy, and")
    print("the bar any converged IT/OT fabric has to clear (Section 2.2).")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Programming a vPLC in IEC 61131-3 Structured Text.

Compiles an ST program — the language real PLCs are programmed in — and
runs it in a vPLC whose control loop closes over the simulated network:
a silo filling line with two-point level control, a discharge interlock,
and a batch counter.

Run:  python examples/structured_text.py
"""

from repro.fieldbus import IoDeviceApp
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import PlcRuntime
from repro.plc.st import compile_st
from repro.simcore import Simulator
from repro.simcore.units import MS, SEC

SILO_CONTROL = """
(* silo filling with two-point control and discharge interlock *)
VAR_INPUT
    level   : REAL;   (* percent *)
    request : BOOL;   (* downstream asks for material *)
END_VAR
VAR_OUTPUT
    fill_valve      : BOOL;
    discharge_valve : BOOL;
    batches         : INT;
END_VAR
VAR
    filling  : BOOL := TRUE;
    settle   : TON;
    dispatch : R_TRIG;
    counter  : CTU;
END_VAR

(* two-point control with hysteresis *)
IF filling AND level >= 95.0 THEN
    filling := FALSE;
ELSIF NOT filling AND level <= 55.0 THEN
    filling := TRUE;
END_IF;
fill_valve := filling;

(* discharge only when full enough, settled, and requested *)
settle(IN := level > 50.0, PT := T#300ms);
discharge_valve := request AND settle.Q AND NOT fill_valve;

(* count dispatched batches on the discharge edge *)
dispatch(CLK := discharge_valve);
counter(CU := dispatch.Q, PV := 9999);
batches := counter.CV;
"""

class Silo:
    """Level physics: fill and discharge flows."""

    def __init__(self):
        self.level = 0.0
        self.filling = False
        self.discharging = False
        self.tick = 0

    def sample(self):
        self.tick += 1
        if self.filling:
            self.level = min(100.0, self.level + 0.9)
        if self.discharging:
            self.level = max(0.0, self.level - 2.5)
        # Downstream requests material in bursts.
        request = (self.tick // 150) % 2 == 1
        return {"level": round(self.level, 2), "request": request}

    def apply(self, outputs):
        self.filling = bool(outputs.get("fill_valve"))
        self.discharging = bool(outputs.get("discharge_valve"))

def main() -> None:
    sim = Simulator(seed=21)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    silo = Silo()
    IoDeviceApp(sim, topo.devices["h1"],
                sample_inputs=silo.sample, apply_outputs=silo.apply)
    program = compile_st(
        SILO_CONTROL,
        input_map={"h1.level": "level", "h1.request": "request"},
        output_map={
            "h1.fill_valve": "fill_valve",
            "h1.discharge_valve": "discharge_valve",
            "h1.batches": "batches",
        },
    )
    plc = PlcRuntime(sim, topo.devices["h0"], program,
                     cycle_ns=5 * MS, name="st-vplc")
    plc.assign_device("h1")
    plc.start()

    print("t(s)  level(%)  fill  discharge  batches")
    for step in range(1, 13):
        sim.run(until=step * SEC)
        print(f"{step:3d}   {silo.level:7.1f}  "
              f"{'open' if silo.filling else '  - ':>4s}  "
              f"{'open' if silo.discharging else '   - ':>9s}  "
              f"{program.variable('batches'):6d}")
    print(f"\nscans executed: {plc.stats.scans}, overruns: "
          f"{plc.stats.overruns}")
    print("An IEC 61131-3 program, token for token, running in a vPLC")
    print("with its I/O crossing the converged network each 5 ms cycle.")

if __name__ == "__main__":
    main()

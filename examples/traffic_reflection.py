#!/usr/bin/env python3
"""Traffic Reflection (Section 3): reveal eBPF/XDP's hidden delays.

Reproduces both panels of Figure 4 in text form:

- left: delay CDFs of the six eBPF program variants;
- right: jitter growth when the same XDP hook serves 1 vs 25 TSN flows.

Run:  python examples/traffic_reflection.py
"""

import numpy as np

from repro.ebpf import paper_variants, verify
from repro.reflection import run_flow_scaling, run_variant_sweep

def ascii_cdf(cdf, low, high, width=48, marker="#"):
    """One-line CDF sparkline between `low` and `high`."""
    cells = []
    for i in range(width):
        x = low + (high - low) * i / (width - 1)
        cells.append(marker if cdf.evaluate(x) >= 0.5 else ".")
    return "".join(cells)

def main() -> None:
    print("verifying the six XDP programs (static cost bounds)...")
    programs = paper_variants()
    for program in programs:
        bound = verify(program)
        rb = "ring-buffer" if program.uses_ringbuf else "           "
        print(f"  {program.name:8s} {len(program.instructions):2d} insns "
              f"{rb}  expected {bound.expected_ns:7.1f} ns "
              f"(+/- {bound.deviation_ns:5.1f})")

    print("\n--- Figure 4 (left): reflection delay per variant ---")
    results = run_variant_sweep(programs, cycles=400)
    print(f"{'variant':8s} {'p50':>7s} {'p90':>7s} {'p99':>7s}   "
          f"10us {'-' * 40} 20us")
    for name, result in results.items():
        cdf = result.delay_cdf()
        print(f"{name:8s} {cdf.quantile(0.5):7.2f} {cdf.quantile(0.9):7.2f} "
              f"{cdf.quantile(0.99):7.2f}   |{ascii_cdf(cdf, 10, 20)}|")
    print("(medians in us; '#' marks where the CDF has passed 50%)")

    print("\n--- Figure 4 (right): jitter vs concurrent flows ---")
    scaling = run_flow_scaling(programs[0], [1, 5, 25], cycles=400)
    for flows, result in scaling.items():
        cdf = result.jitter_cdf()
        print(f"  {flows:2d} flows: p50 {cdf.quantile(0.5):6.0f} ns, "
              f"p90 {cdf.quantile(0.9):6.0f} ns, "
              f"p99 {cdf.quantile(0.99):6.0f} ns")

    print("\nTakeaways (matching the paper):")
    print(" 1. small code changes (one helper call) visibly shift the CDF;")
    print(" 2. bpf_ringbuf_output splits the variants into two clusters;")
    print(" 3. more concurrent real-time flows => more jitter.")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Resilient sweeps: crash isolation, retries, checkpoint/resume.

Registers a deliberately flaky figure alongside a real one, sweeps both
with a checkpoint, and shows that (1) the flaky cell becomes a failed
manifest record instead of aborting the sweep, and (2) resuming from the
checkpoint recomputes only the failed cell — the healthy one is served
from the result cache.

Run:  python examples/resilient_sweep.py
"""

import tempfile
from pathlib import Path

from repro import figures
from repro.figures import FigureSpec, ParamSpec, Rows
from repro.runner import ResultCache, make_job, run_jobs


def flaky_figure(seed: int = 0, marker: str = "") -> Rows:
    """Fails until its marker file exists ("the bug got fixed")."""
    if not Path(marker).exists():
        raise RuntimeError("flaky-figure: not fixed yet")
    return Rows([{"seed": seed, "status": "recovered"}])


FLAKY = FigureSpec(
    name="flaky-figure",
    doc="Demo: raises until its marker file exists.",
    fn=flaky_figure,
    params=(ParamSpec("marker", "", "path that fixes the figure", parse=str),),
)


def main() -> None:
    figures._SPECS[FLAKY.name] = FLAKY
    try:
        with tempfile.TemporaryDirectory() as tmp:
            workdir = Path(tmp)
            marker = workdir / "fixed"
            checkpoint = workdir / "manifest.json"
            cache = ResultCache(workdir / "cache")
            jobs = [
                make_job("flaky-figure", params={"marker": str(marker)}),
                make_job("fig1"),
            ]

            print("--- first sweep (flaky figure is broken) ---")
            result = run_jobs(
                jobs, workers=2, cache=cache,
                retries=1, checkpoint=checkpoint,
            )
            for outcome in result.outcomes:
                record = outcome.record
                detail = record.error or f"{record.rows} rows"
                print(f"  {record.figure}: {record.status} "
                      f"(attempts={record.attempts}) {detail}")
            print(f"  degraded: {not result.ok}; "
                  f"checkpoint has {len(result.manifest.records)} records")

            print("--- fix the figure, resume from the checkpoint ---")
            marker.write_text("")
            resumed = run_jobs(
                jobs, workers=2, cache=cache, resume_from=checkpoint,
            )
            for outcome in resumed.outcomes:
                record = outcome.record
                print(f"  {record.figure}: {record.status}")
            print(f"  degraded: {not resumed.ok}")
            print(f"  flaky rows: {list(resumed.rows_for('flaky-figure'))}")
    finally:
        figures._SPECS.pop(FLAKY.name, None)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""TSN schedule synthesis: deterministic microflows by construction.

Synthesizes a no-wait 802.1Qbv schedule for several cyclic flows crossing
a line topology, installs the gate control lists, and measures what the
gates buy: zero jitter under saturating best-effort interference, versus
visible jitter without them.

Run:  python examples/tsn_scheduling.py
"""

from repro.metrics import jitter_report
from repro.net import (
    CyclicSender,
    FlowSpec,
    PoissonSender,
    TrafficClass,
    build_line,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS, SEC
from repro.simcore.units import format_duration
from repro.tsn import ScheduleSynthesizer

CYCLE = 2 * MS

def build(gated):
    sim = Simulator(seed=7)
    topo = build_line(sim, 5)
    topo.link_between("sw1", "h1").bandwidth_bps = 10e9  # fast IT host
    install_shortest_path_routes(topo)
    specs = [
        FlowSpec(f"rt{i}", "h0", f"h{4 - i}", period_ns=CYCLE,
                 payload_bytes=50, traffic_class=TrafficClass.CYCLIC_RT)
        for i in range(3)
    ]
    schedule = None
    if gated:
        schedule = ScheduleSynthesizer(topo).synthesize(specs)
        schedule.install_gate_control(slack_ns=5_000)
    return sim, topo, specs, schedule

def run(gated):
    sim, topo, specs, schedule = build(gated)
    arrivals = {spec.flow_id: [] for spec in specs}
    for spec in specs:
        topo.devices[spec.dst].on_flow(
            spec.flow_id,
            lambda p, fid=spec.flow_id: arrivals[fid].append(sim.now),
        )
        CyclicSender(sim, topo.devices["h0"], spec).start()
    noise = PoissonSender(
        sim, topo.devices["h1"],
        FlowSpec("it", "h1", "h4", payload_bytes=1_400,
                 traffic_class=TrafficClass.BEST_EFFORT),
        rate_pps=50_000, rng=sim.streams.stream("it"),
    )
    noise.start()
    sim.run(until=3 * SEC)
    return arrivals, schedule

def main() -> None:
    print("synthesizing a no-wait schedule for 3 cyclic flows...")
    gated_arrivals, schedule = run(gated=True)
    print(f"  hyperperiod: {format_duration(schedule.hyperperiod_ns)}")
    for flow_id, offset in sorted(schedule.offsets().items()):
        print(f"  {flow_id}: injection offset {format_duration(offset)}")
    ports = schedule.port_windows()
    print(f"  gate control lists installed on {len(ports)} ports")

    plain_arrivals, _ = run(gated=False)

    print("\nworst-case interarrival jitter under 50 kpps IT interference:")
    print(f"{'flow':6s} {'gated':>12s} {'priority only':>16s}")
    for flow_id in sorted(gated_arrivals):
        gated = jitter_report(gated_arrivals[flow_id][5:], CYCLE)
        plain = jitter_report(plain_arrivals[flow_id][5:], CYCLE)
        print(f"{flow_id:6s} {gated.max_abs_jitter_ns:9.0f} ns "
              f"{plain.max_abs_jitter_ns:13.0f} ns")

    print("\nPre-computed transmission schedules make the cyclic microflows")
    print("deterministic by construction - the TSN promise of Section 1.1.")

if __name__ == "__main__":
    main()

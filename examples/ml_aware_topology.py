#!/usr/bin/env python3
"""ML-aware industrial networks (Section 5): topology matters.

Reproduces a slice of Figure 6: mean inference latency of the industrial
ring, a leaf-spine fabric, and the traffic-aware ML-aware design, as the
number of ML clients grows — and shows what the optimizer decided.

Run:  python examples/ml_aware_topology.py
"""

from repro.mlnet import (
    MlAwareOptimizer,
    NetworkDegradation,
    OBJECT_IDENTIFICATION,
    run_point,
)
from repro.simcore.units import MS

CLIENT_COUNTS = (32, 128, 256)

def main() -> None:
    profile = OBJECT_IDENTIFICATION
    print(f"application: {profile.name}")
    print(f"  reference frame {profile.reference_frame_bytes} B at "
          f"{profile.fps:.0f} fps, target accuracy {profile.target_accuracy}")

    optimizer = MlAwareOptimizer(profile)
    design = optimizer.design(client_count=128)
    degradation = NetworkDegradation.from_frame_bytes(
        design.frame_bytes, profile.reference_frame_bytes
    )
    print("\noptimizer's ML-aware design (128 clients):")
    print(f"  frame size     : {design.frame_bytes} B "
          f"(compression {degradation.compression_ratio:.1f}x, "
          f"predicted accuracy {design.predicted_accuracy:.3f})")
    print(f"  edge servers   : {design.servers_per_cell} per "
          f"{design.cell_size}-client cell")
    print(f"  est. latency   : {design.estimated_latency_ms:.2f} ms "
          f"(analytic M/M/c screen)")
    print(f"  cost           : {design.cost_units:.0f} units")

    print("\nsimulated mean inference latency (ms):")
    header = f"{'topology':12s}" + "".join(f"{n:>8d}" for n in CLIENT_COUNTS)
    print(header)
    print("-" * len(header))
    for topology in ("ring", "leaf-spine", "ml-aware"):
        row = [f"{topology:12s}"]
        for clients in CLIENT_COUNTS:
            point = run_point(
                profile, topology, clients, duration_ns=400 * MS
            )
            row.append(f"{point.mean_latency_ms:8.2f}")
        print("".join(row))

    print("\nAs in Figure 6: the legacy ring degrades with scale, leaf-spine")
    print("only slightly improves it, and the traffic-aware design stays")
    print("flat by sizing edge compute and compressing frames only as far")
    print("as the accuracy target allows.")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: a converged IT/OT factory in ~40 lines.

Builds the paper's Figure 2 picture — virtual PLCs in a small leaf-spine
data center controlling I/O devices out in production cells — runs it for
five simulated seconds, and checks the cyclic traffic against the paper's
Section 2 timing classes.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ConvergedFactory,
    FactoryConfig,
    MOTION_CONTROL,
    PROCESS_AUTOMATION,
)
from repro.simcore import Simulator
from repro.simcore.units import MS, SEC

def main() -> None:
    sim = Simulator(seed=42)
    factory = ConvergedFactory(
        sim,
        FactoryConfig(cells=3, devices_per_cell=2, cycle_ns=2 * MS),
    )
    factory.start()
    sim.run(until=5 * SEC)

    print(f"factory running: {factory.all_running()}")
    print(f"devices: {[device.name for device in factory.devices()]}")
    print()

    for requirement in (PROCESS_AUTOMATION, MOTION_CONTROL):
        print(f"--- compliance vs {requirement.name} "
              f"(jitter bound {requirement.max_jitter_ns / 1000:.0f} us) ---")
        for device_name, result in factory.timing_compliance(requirement).items():
            verdict = "PASS" if result.passed else "FAIL"
            jitter_us = result.details["max_abs_jitter_ns"] / 1000
            print(f"  {device_name}: {verdict}  "
                  f"(worst-case jitter {jitter_us:.1f} us)")
            for violation in result.violations:
                print(f"      {violation}")
        print()

    print("The vPLC platform meets process automation (10-100 ms cycles)")
    print("but not motion control's 1 us jitter - Section 2.1's core claim.")

if __name__ == "__main__":
    main()

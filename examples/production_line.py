#!/usr/bin/env python3
"""A realistic production line on the converged infrastructure.

Addresses the paper's criticism that existing vPLC evaluations "only
consider basic application scenarios, such as simple ping-pong tests" and
"do not evaluate realistic industrial automation applications, e.g., a
production line".

The line: a furnace with a PID temperature loop, a conveyor moving parts
past a counting light barrier, and a reject gate driven by the counter —
all expressed as IEC 61131-style function blocks executing in a vPLC in
the data-center fabric, closing their loops over the network every 2 ms.

Run:  python examples/production_line.py
"""

from repro.core import ConvergedFactory, FactoryConfig, PROCESS_AUTOMATION
from repro.plc import Ctu, FunctionBlockProgram, Lambda, Limit, Pid, Ton
from repro.simcore import Simulator
from repro.simcore.units import MS, SEC

def build_line_program(cell):
    """PID furnace control + conveyor part counting for one cell."""
    furnace, conveyor = cell.devices[0].name, cell.devices[1].name
    program = FunctionBlockProgram()
    # Furnace: PID drives heater power toward a 450 C setpoint.
    program.add_block(Lambda("setpoint", lambda i: {"out": 450.0}))
    program.add_block(Pid("pid", kp=0.8, ki=0.4, kd=0.05,
                          out_low=0.0, out_high=100.0))
    program.add_block(Limit("power", low=0.0, high=100.0))
    program.connect("setpoint", "out", "pid", "sp")
    program.connect("pid", "out", "power", "in")
    program.input_map[f"{furnace}.temperature"] = ("pid", "pv")
    program.output_map[f"{furnace}.heater_power"] = ("power", "out")
    # Conveyor: count parts at the light barrier; after 10 parts, hold the
    # belt for a batch change (TON gives the operator 0.5 s of warning).
    program.add_block(Ctu("batch", pv=10))
    program.add_block(Ton("warn", pt_s=0.5))
    program.add_block(Lambda("belt", lambda i: {"out": not bool(i.get("stop"))}))
    program.connect("batch", "q", "warn", "in")
    program.connect("warn", "q", "belt", "stop")
    program.input_map[f"{conveyor}.light_barrier"] = ("batch", "cu")
    program.output_map[f"{conveyor}.belt_run"] = ("belt", "out")
    program.output_map[f"{conveyor}.batch_count"] = ("batch", "cv")
    return program

class FurnacePhysics:
    """First-order furnace: temperature chases heater power."""

    def __init__(self):
        self.temperature = 20.0
        self.power = 0.0

    def sample(self):
        # Called once per device cycle (2 ms): simple thermal response.
        ambient_pull = (20.0 - self.temperature) * 0.0004
        heating = self.power * 0.012
        self.temperature += ambient_pull + heating
        return {"temperature": round(self.temperature, 2)}

    def apply(self, outputs):
        self.power = float(outputs.get("heater_power", 0.0))

class ConveyorPhysics:
    """Parts pass the light barrier every ~60 ms while the belt runs."""

    def __init__(self):
        self.running = True
        self.phase = 0

    def sample(self):
        self.phase = (self.phase + 1) % 30 if self.running else self.phase
        return {"light_barrier": self.running and self.phase == 0}

    def apply(self, outputs):
        self.running = bool(outputs.get("belt_run", True))

def main() -> None:
    sim = Simulator(seed=11)
    furnace, conveyor = FurnacePhysics(), ConveyorPhysics()
    factory = ConvergedFactory(
        sim,
        FactoryConfig(cells=1, devices_per_cell=2, cycle_ns=2 * MS),
        program_factory=build_line_program,
    )
    furnace_dev, conveyor_dev = factory.cells[0].devices
    furnace_dev.sample_inputs = furnace.sample
    furnace_dev.apply_outputs = furnace.apply
    conveyor_dev.sample_inputs = conveyor.sample
    conveyor_dev.apply_outputs = conveyor.apply

    factory.start()
    print("t(s)   furnace(C)  heater(%)  parts  belt")
    for step in range(1, 11):
        sim.run(until=step * SEC)
        outputs = conveyor_dev.outputs
        print(f"{step:3d}    {furnace.temperature:8.1f}   "
              f"{furnace.power:7.1f}   {outputs.get('batch_count', 0):4d}  "
              f"{'run' if conveyor.running else 'HOLD'}")

    result = list(factory.timing_compliance(PROCESS_AUTOMATION).values())
    print(f"\nprocess-automation compliance: "
          f"{'PASS' if all(r.passed for r in result) else 'FAIL'} "
          f"across {len(result)} devices")
    print("The furnace loop settles near its setpoint and the conveyor")
    print("halts after the 10-part batch - a production line whose every")
    print("control decision crossed the converged network.")

if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diff two or more sweep manifests cell by cell.

CI's distributed-smoke job runs the *same* sweep on every executor
backend (serial, local-pool, subprocess) and pipes the manifests through
this tool: per (figure, seed, params) cell it compares status, verdict,
row counts, and — when the sweeps streamed their rows — the row
payloads byte for byte.  Execution metadata that legitimately differs
across backends (wall times, attempt counters, chunk paths, the
``backend`` field itself) is ignored.

Stdlib-only on purpose: it must run anywhere CI can run ``python3``,
without PYTHONPATH or an installed package.

Usage::

    python tools/diff_sweeps.py serial.json pool.json subprocess.json

Exit status: 0 when all manifests agree, 1 on any divergence (each
difference is printed), 2 on usage errors.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_rows(record: dict) -> list | None:
    """The cell's rows, from streamed chunks; None when not streamed."""
    chunks = record.get("row_chunks")
    if not chunks:
        return None
    rows = []
    for chunk in chunks:
        with open(chunk) as handle:
            rows.extend(json.loads(line) for line in handle if line.strip())
    return rows


def cell_key(record: dict) -> str:
    params = json.dumps(record.get("params") or {}, sort_keys=True)
    return f"{record['figure']} seed={record['seed']} {params}"


def load_cells(path: str) -> dict[str, dict]:
    manifest = json.loads(Path(path).read_text())
    cells = {}
    for record in manifest.get("jobs", []):
        key = cell_key(record)
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = record
    return cells


def compare(base_name: str, base: dict, other_name: str, other: dict) -> list:
    problems = []

    def report(key: str, what: str, left, right) -> None:
        problems.append(
            f"{key}: {what} diverged: "
            f"{base_name}={left!r} vs {other_name}={right!r}"
        )

    for key in sorted(set(base) | set(other)):
        if key not in base or key not in other:
            where = other_name if key not in other else base_name
            problems.append(f"{key}: missing from {where}")
            continue
        left, right = base[key], other[key]
        for field in ("status", "verdict", "rows"):
            if left.get(field) != right.get(field):
                report(key, field, left.get(field), right.get(field))
        left_rows, right_rows = load_rows(left), load_rows(right)
        if left_rows is not None and right_rows is not None:
            if left_rows != right_rows:
                report(
                    key, "row payloads",
                    f"{len(left_rows)} rows", f"{len(right_rows)} rows",
                )
    return problems


def main(argv: list[str]) -> int:
    paths = [a for a in argv if not a.startswith("-")]
    if len(paths) < 2 or any(a.startswith("-") for a in argv):
        print(__doc__, file=sys.stderr)
        return 2
    base_name, *other_names = paths
    base = load_cells(base_name)
    failed = False
    for other_name in other_names:
        problems = compare(base_name, base, other_name, load_cells(other_name))
        if problems:
            failed = True
            for problem in problems:
                print(f"DIFF {problem}")
        else:
            print(
                f"OK {other_name} matches {base_name} "
                f"({len(base)} cells)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

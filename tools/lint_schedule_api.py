#!/usr/bin/env python
"""Fail if in-repo code uses the deprecated scheduling signatures.

The redesigned API is keyword-only::

    sim.schedule(fn)                  # now
    sim.schedule(fn, after=delay)     # relative
    sim.schedule(fn, at=deadline)     # absolute

The deprecated forms — ``sim.schedule(delay, fn)`` (two or more
positional arguments) and ``sim.schedule_at(...)`` — still work for
out-of-tree callers but are banned in this repository.  This linter
walks the AST (so strings and comments never false-positive) and flags:

- any ``*.schedule(...)`` call with two or more positional arguments;
- any ``*.schedule(...)`` call using the legacy ``callback=`` keyword;
- any ``*.schedule_at(...)`` call.

Only attribute calls are checked, so unrelated module-level functions
named ``schedule`` are left alone.  Usage::

    python tools/lint_schedule_api.py [paths...]
    # default: src tests benchmarks examples figures
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "figures")

#: Files allowed to mention the legacy forms: the shim itself and its tests.
ALLOWED = {
    Path("src/repro/simcore/simulator.py"),
    Path("tests/simcore/test_schedule_api.py"),
    Path("tools/lint_schedule_api.py"),
}


def find_violations(tree: ast.AST) -> list[tuple[int, str]]:
    """Return ``(lineno, message)`` pairs for deprecated scheduling calls."""
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "schedule_at":
            violations.append(
                (node.lineno,
                 "schedule_at() is deprecated; use schedule(fn, at=time)")
            )
        elif func.attr == "schedule":
            if len(node.args) >= 2:
                violations.append(
                    (node.lineno,
                     "positional schedule(delay, fn) is deprecated; "
                     "use schedule(fn, after=delay)")
                )
            elif any(kw.arg == "callback" for kw in node.keywords):
                violations.append(
                    (node.lineno,
                     "schedule(callback=...) is the legacy spelling; "
                     "pass the callable positionally")
                )
    return violations


def lint_paths(paths: list[str], root: Path) -> list[str]:
    """Lint every ``.py`` file under ``paths``; return formatted failures."""
    failures: list[str] = []
    for base in paths:
        base_path = root / base
        if not base_path.exists():
            continue
        files = (
            [base_path] if base_path.is_file() else sorted(base_path.rglob("*.py"))
        )
        for file in files:
            relative = file.relative_to(root)
            if relative in ALLOWED:
                continue
            try:
                tree = ast.parse(file.read_text(), filename=str(relative))
            except SyntaxError as error:
                failures.append(f"{relative}: unparseable: {error}")
                continue
            for lineno, message in find_violations(tree):
                failures.append(f"{relative}:{lineno}: {message}")
    return failures


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = argv or list(DEFAULT_PATHS)
    failures = lint_paths(paths, root)
    for failure in failures:
        print(failure)
    if failures:
        print(f"\n{len(failures)} deprecated scheduling call(s) found")
        return 1
    print("scheduling API lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""The content-addressed result cache."""

import json

from repro.figures import Rows
from repro.runner import ResultCache, cache_key


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        a = cache_key("fig5", 0, {"duration_ms": 3000, "crash_ms": 1500})
        b = cache_key("fig5", 0, {"crash_ms": 1500, "duration_ms": 3000})
        assert a == b  # param order must not matter

    def test_sensitive_to_every_component(self):
        base = cache_key("fig5", 0, {"duration_ms": 3000})
        assert cache_key("fig6", 0, {"duration_ms": 3000}) != base
        assert cache_key("fig5", 1, {"duration_ms": 3000}) != base
        assert cache_key("fig5", 0, {"duration_ms": 100}) != base
        assert cache_key("fig5", 0, {"duration_ms": 3000}, version="9.9") != base

    def test_tuple_params_hash_like_lists(self):
        assert cache_key("f", 0, {"flows": (1, 5)}) == cache_key(
            "f", 0, {"flows": [1, 5]}
        )


class TestResultCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rows = Rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        key = cache_key("fig1", 0, {})
        cache.put(key, rows, figure="fig1", seed=0, params={})
        cached = cache.get(key)
        assert cached == rows
        assert isinstance(cached, Rows)
        assert cached.to_csv() == rows.to_csv()
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig1", 0, {})
        path = cache.put(key, Rows([{"a": 1}]), figure="fig1", seed=0, params={})
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_mismatched_key_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig1", 0, {})
        path = cache.put(key, Rows([{"a": 1}]), figure="fig1", seed=0, params={})
        payload = json.loads(path.read_text())
        payload["key"] = "f" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        # A writer killed mid-write (or a full disk) must cost one
        # recomputation, never a crash.
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig1", 0, {})
        path = cache.put(key, Rows([{"a": 1}] * 50), figure="fig1",
                         seed=0, params={})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get(key) is None

    def test_rows_field_missing_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig1", 0, {})
        path = cache.put(key, Rows([{"a": 1}]), figure="fig1", seed=0,
                         params={})
        payload = json.loads(path.read_text())
        del payload["rows"]
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_rows_field_of_wrong_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig1", 0, {})
        path = cache.put(key, Rows([{"a": 1}]), figure="fig1", seed=0,
                         params={})
        for bad_rows in ("not-a-list", [1, 2, 3], [{"a": 1}, "oops"]):
            payload = json.loads(path.read_text())
            payload["rows"] = bad_rows
            path.write_text(json.dumps(payload))
            assert cache.get(key) is None

    def test_run_jobs_recomputes_through_a_corrupted_cache(self, tmp_path):
        # End to end: a sweep over a poisoned cache silently recomputes.
        from repro.runner import expand_grid, run_jobs

        cache = ResultCache(tmp_path / "cache")
        jobs = expand_grid(["fig1"], seeds=[0])
        first = run_jobs(jobs, workers=1, cache=cache)
        (entry,) = list((tmp_path / "cache").glob("??/*.json"))
        entry.write_text(entry.read_text()[:10])
        second = run_jobs(jobs, workers=1, cache=cache)
        (record,) = second.manifest.records
        assert not record.cached
        assert second.rows_for("fig1") == first.rows_for("fig1")
        # The recomputation healed the entry; the next sweep hits again.
        third = run_jobs(jobs, workers=1, cache=cache)
        assert third.manifest.records[0].cached

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("fig4-delay", 3, {"cycles": 60})
        path = cache.put(
            key, Rows([{"v": 1}]),
            figure="fig4-delay", seed=3, params={"cycles": 60},
        )
        payload = json.loads(path.read_text())
        assert payload["figure"] == "fig4-delay"
        assert payload["seed"] == 3
        assert payload["params"] == {"cycles": 60}

"""Unit tests for the backend spec grammar and the stdio worker protocol.

The conformance suite (``test_backend_conformance.py``) proves the
backends behave identically end-to-end; this file covers the seams —
spec parsing, backend resolution, and the child-side protocol loop run
in-process against ``StringIO`` pipes.
"""

import json
import sys
from io import StringIO
from pathlib import Path

import pytest

from repro.runner import (
    BACKEND_ENV,
    LocalPoolBackend,
    SerialBackend,
    SubprocessWorkerBackend,
    parse_backend_spec,
    resolve_backend,
)
from repro.runner.backends import subprocess_worker
from repro.runner.backends.subprocess_worker import compute_spec
from repro.runner.supervisor import RetryPolicy, Task
from repro.runner.worker import _as_payload, resolve_callable, worker_main

from . import faulty


class TestParseBackendSpec:
    def test_bare_name(self):
        assert parse_backend_spec("serial") == ("serial", None)

    def test_name_with_workers(self):
        assert parse_backend_spec("subprocess:4") == ("subprocess", 4)

    def test_case_and_whitespace_are_forgiven(self):
        assert parse_backend_spec("  Local-Pool:8 ") == ("local-pool", 8)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="NAME\\[:WORKERS\\]"):
            parse_backend_spec("   ")

    def test_non_numeric_workers_rejected(self):
        with pytest.raises(ValueError, match="bad worker count"):
            parse_backend_spec("serial:many")

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="at least 1 worker"):
            parse_backend_spec("local-pool:0")


class TestResolveBackend:
    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_none_without_env_means_auto(self):
        assert resolve_backend(None, env={}) is None

    def test_auto_spec_means_auto(self):
        assert resolve_backend("auto", env={}) is None

    def test_env_supplies_default(self):
        backend = resolve_backend(None, env={BACKEND_ENV: "subprocess:3"})
        assert isinstance(backend, SubprocessWorkerBackend)
        assert backend.workers == 3

    def test_explicit_spec_beats_env(self):
        backend = resolve_backend("serial", env={BACKEND_ENV: "subprocess"})
        assert isinstance(backend, SerialBackend)

    def test_spec_workers_beat_jobs_workers(self):
        backend = resolve_backend("local-pool:5", workers=2)
        assert isinstance(backend, LocalPoolBackend)
        assert backend.workers == 5

    def test_jobs_workers_fill_in(self):
        backend = resolve_backend("local-pool", workers=3)
        assert backend.workers == 3

    def test_subprocess_defaults_to_two_workers(self):
        backend = resolve_backend("subprocess", env={})
        assert isinstance(backend, SubprocessWorkerBackend)
        assert backend.workers == 2

    def test_unknown_backend_lists_options(self):
        with pytest.raises(ValueError, match="serial, local-pool"):
            resolve_backend("quantum", env={})


class TestComputeSpec:
    def test_module_level_function_round_trips(self):
        spec = compute_spec(faulty.protocol_compute)
        assert spec == "tests.runner.faulty:protocol_compute"
        assert resolve_callable(spec) is faulty.protocol_compute

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="not importable by name"):
            compute_spec(lambda payload: payload)

    def test_local_function_rejected(self):
        def local(payload):
            return payload

        with pytest.raises(ValueError, match="not importable by name"):
            compute_spec(local)


class TestResolveCallable:
    def test_bad_spec_shape(self):
        with pytest.raises(ValueError, match="module:qualname"):
            resolve_callable("no-colon-here")

    def test_non_callable_target(self):
        with pytest.raises(TypeError, match="non-callable"):
            resolve_callable("tests.runner.faulty:ALL_SPECS")


class TestPayloadRoundTrip:
    def test_lists_become_tuples(self):
        assert _as_payload([0, "fig", 1]) == (0, "fig", 1)

    def test_param_pairs_become_tuple_of_tuples(self):
        raw = [3, "fig", [["a", 1], ["b", "x"]]]
        assert _as_payload(raw) == (3, "fig", (("a", 1), ("b", "x")))

    def test_non_list_passes_through(self):
        assert _as_payload({"already": "decoded"}) == {"already": "decoded"}


def drive_worker(*messages):
    """Run ``worker_main`` in-process over StringIO pipes."""
    stdin = StringIO("".join(json.dumps(m) + "\n" for m in messages))
    out = StringIO()
    code = worker_main(stdin=stdin, protocol_out=out)
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    return code, replies


INIT = {
    "type": "init",
    "sys_path": [],
    "preload": [],
    "compute": "tests.runner.faulty:protocol_compute",
}


class TestWorkerProtocol:
    def test_init_job_shutdown_happy_path(self):
        code, replies = drive_worker(
            INIT,
            {"type": "job", "payload": [0, "hello"]},
            {"type": "shutdown"},
        )
        assert code == 0
        assert replies[0] == {"type": "ready"}
        assert replies[1]["type"] == "result"
        assert replies[1]["index"] == 0
        assert replies[1]["result"]["echo"] == "hello"

    def test_figure_exception_becomes_failure_result(self):
        code, replies = drive_worker(
            INIT,
            {"type": "job", "payload": [7, "boom"]},
            {"type": "shutdown"},
        )
        assert code == 0
        result = replies[1]["result"]
        assert replies[1]["index"] == 7
        assert "boom from protocol_compute" in result["error"]
        assert "ValueError" in result["traceback"]

    def test_multiple_jobs_processed_in_order(self):
        code, replies = drive_worker(
            INIT,
            {"type": "job", "payload": [1, "a"]},
            {"type": "job", "payload": [2, "b"]},
            {"type": "shutdown"},
        )
        assert [r["index"] for r in replies[1:]] == [1, 2]

    def test_preload_hooks_run_before_first_job(self):
        before = len(faulty.PRELOAD_CALLS)
        init = dict(INIT, preload=["tests.runner.faulty:mark_preload"])
        code, replies = drive_worker(init, {"type": "shutdown"})
        assert code == 0
        assert replies == [{"type": "ready"}]
        assert len(faulty.PRELOAD_CALLS) == before + 1

    def test_job_before_init_is_a_protocol_error(self):
        with pytest.raises(RuntimeError, match="'job' before 'init'"):
            drive_worker({"type": "job", "payload": [0, "x"]})

    def test_unknown_message_is_a_protocol_error(self):
        with pytest.raises(RuntimeError, match="unknown message"):
            drive_worker(INIT, {"type": "dance"})

    def test_eof_without_shutdown_exits_cleanly(self):
        # A dying parent just closes the pipe; the child must not hang
        # or traceback.
        code, replies = drive_worker(INIT)
        assert code == 0
        assert replies == [{"type": "ready"}]


def fake_worker_backend(tmp_path, monkeypatch, mode, workers=1):
    """A subprocess backend whose children run ``fake_worker.py``.

    The backend's ``python=`` hook takes a shell shim that ignores the
    ``-m repro worker`` arguments and execs the misbehaving stand-in, so
    the parent-side protocol loop under test runs completely unmodified.
    """
    shim = tmp_path / "fake-python"
    script = Path(__file__).parent / "fake_worker.py"
    shim.write_text(f'#!/bin/sh\nexec "{sys.executable}" "{script}"\n')
    shim.chmod(0o755)
    monkeypatch.setenv("FAKE_WORKER_MODE", mode)
    return SubprocessWorkerBackend(workers=workers, python=str(shim))


class TestProtocolRobustness:
    """A child breaking the stdio protocol convicts only that child.

    Each case runs the real parent loop against a real misbehaving
    child process; the contract is: the busy job fails with a
    ``worker protocol violation`` error, ``run`` returns (no hang, no
    exception), and a ``worker_dead`` event names the reason.
    """

    def drive(self, tmp_path, monkeypatch, mode, values=("hello",),
              workers=1):
        backend = fake_worker_backend(tmp_path, monkeypatch, mode, workers)
        tasks = [
            Task(index=i, payload=[i, value], key=f"k{i}", figure="fake")
            for i, value in enumerate(values)
        ]
        finished: dict[int, dict] = {}
        events: list[tuple[str, object, object]] = []
        backend.run(
            tasks,
            faulty.protocol_compute,
            RetryPolicy(retries=0, timeout_s=30.0),
            lambda index, result: finished.setdefault(index, result),
            on_event=lambda kind, task, info=None: events.append(
                (kind, task, info)
            ),
        )
        return finished, events

    def assert_convicted(self, finished, events, index=0, why=""):
        result = finished[index]
        assert "worker protocol violation" in result["error"]
        assert why in result["error"]
        reasons = [
            (info or {}).get("reason")
            for kind, _, info in events
            if kind == "worker_dead"
        ]
        assert any(why in (reason or "") for reason in reasons)

    def test_malformed_json_convicts_the_child(self, tmp_path, monkeypatch):
        finished, events = self.drive(tmp_path, monkeypatch, "malformed")
        self.assert_convicted(finished, events, why="malformed JSON")

    def test_oversized_line_convicts_the_child(self, tmp_path, monkeypatch):
        # Cap one protocol line far below the fake worker's 4 KiB blob so
        # the parent classifies it as oversized rather than reading on.
        monkeypatch.setattr(subprocess_worker, "_MAX_LINE_BYTES", 256)
        finished, events = self.drive(tmp_path, monkeypatch, "oversized")
        self.assert_convicted(finished, events, why="exceeds 256 bytes")

    def test_partial_line_convicts_the_child(self, tmp_path, monkeypatch):
        finished, events = self.drive(tmp_path, monkeypatch, "partial")
        self.assert_convicted(finished, events, why="partial protocol line")

    def test_unknown_message_type_convicts_the_child(
        self, tmp_path, monkeypatch
    ):
        finished, events = self.drive(tmp_path, monkeypatch, "unknown")
        self.assert_convicted(finished, events, why="unknown message type")

    def test_non_object_message_convicts_the_child(
        self, tmp_path, monkeypatch
    ):
        finished, events = self.drive(tmp_path, monkeypatch, "non_object")
        self.assert_convicted(
            finished, events, why="non-object protocol message"
        )

    def test_result_for_idle_child_convicts_without_a_job(
        self, tmp_path, monkeypatch
    ):
        # The rogue result arrives before "ready" ever did; no job was
        # dispatched, so there is nothing to fail — but the child dies
        # and the (still pending) task is retried on a fresh child,
        # which in this mode misbehaves identically until the strike
        # limit aborts the sweep with a diagnostic.
        backend = fake_worker_backend(tmp_path, monkeypatch, "early_result")
        with pytest.raises(RuntimeError, match="breaking protocol"):
            backend.run(
                [Task(index=0, payload=[0, "x"], key="k0", figure="fake")],
                faulty.protocol_compute,
                RetryPolicy(retries=0, timeout_s=30.0),
                lambda index, result: None,
            )

    def test_non_object_result_payload_convicts_the_child(
        self, tmp_path, monkeypatch
    ):
        finished, events = self.drive(tmp_path, monkeypatch, "bad_result")
        self.assert_convicted(
            finished, events, why="non-object result payload"
        )

    def test_sibling_jobs_survive_a_convicted_child(
        self, tmp_path, monkeypatch
    ):
        # Two children: one speaks the protocol correctly, one emits a
        # garbage result.  Only the offender's job is failed.
        finished, events = self.drive(
            tmp_path, monkeypatch, "selective",
            values=("good", "evil"), workers=2,
        )
        assert finished[0] == {"echo": "good", "attempts": 1}
        assert "worker protocol violation" in finished[1]["error"]

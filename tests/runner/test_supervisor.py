"""Fault-tolerant sweep execution: isolation, timeout, retry, resume."""

import json

import pytest

from repro import obs
from repro.runner import (
    MANIFEST_SCHEMA,
    RETRIES_COUNTER,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultCache,
    RetryPolicy,
    RunManifest,
    make_job,
    run_jobs,
)

from .faulty import BOOM, DIE, FLAKY, SLEEPY, STEADY, registered


def statuses(result):
    return {o.job.figure: o.record.status for o in result.outcomes}


class TestCrashIsolation:
    def test_raising_figure_does_not_kill_the_sweep(self):
        with registered(BOOM, STEADY):
            result = run_jobs(
                [make_job("test-boom"), make_job("test-steady")], workers=2
            )
        assert statuses(result) == {
            "test-boom": STATUS_FAILED, "test-steady": STATUS_OK,
        }
        assert result.rows_for("test-steady") == [{"seed": 0, "value": 0}]
        (failure,) = result.failures
        assert "boom: intentional failure" in failure.record.error
        assert "ValueError" in failure.record.traceback
        assert failure.rows == []

    def test_inline_path_isolates_failures_too(self):
        with registered(BOOM, STEADY):
            result = run_jobs(
                [make_job("test-boom"), make_job("test-steady")], workers=1
            )
        assert statuses(result) == {
            "test-boom": STATUS_FAILED, "test-steady": STATUS_OK,
        }

    def test_dying_worker_is_detected_and_bystanders_survive(self):
        with registered(DIE, STEADY):
            result = run_jobs(
                [make_job("test-die"), make_job("test-steady")], workers=2
            )
        assert statuses(result) == {
            "test-die": STATUS_FAILED, "test-steady": STATUS_OK,
        }
        (failure,) = result.failures
        assert "worker process died" in failure.record.error
        # the innocent bystander was never charged a failed attempt
        steady = result.rows_for("test-steady")
        assert steady == [{"seed": 0, "value": 0}]

    def test_failed_manifest_is_v3_with_error_details(self):
        with registered(BOOM):
            result = run_jobs([make_job("test-boom")], workers=1)
        payload = json.loads(result.manifest.to_json())
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["failed"] == 1
        (job,) = payload["jobs"]
        assert job["status"] == STATUS_FAILED
        assert "boom" in job["error"]
        assert job["rows"] == 0

    def test_failed_rows_never_poison_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with registered(BOOM):
            run_jobs([make_job("test-boom")], workers=1, cache=cache)
            again = run_jobs([make_job("test-boom")], workers=1, cache=cache)
        assert len(cache) == 0
        assert again.manifest.records[0].status == STATUS_FAILED


class TestTimeout:
    def test_hung_job_times_out_and_sweep_completes(self):
        with registered(SLEEPY, STEADY):
            result = run_jobs(
                [
                    make_job("test-sleepy", params={"sleep_s": 30.0}),
                    make_job("test-steady"),
                ],
                workers=2,
                timeout_s=1.0,
            )
        assert statuses(result) == {
            "test-sleepy": STATUS_TIMEOUT, "test-steady": STATUS_OK,
        }
        (failure,) = result.failures
        assert "timeout" in failure.record.error

    def test_timeout_forces_pool_even_for_one_job(self):
        # Inline execution cannot kill a hung frame; timeout_s must route
        # a single job through the supervised pool.
        with registered(SLEEPY):
            result = run_jobs(
                [make_job("test-sleepy", params={"sleep_s": 30.0})],
                workers=1,
                timeout_s=0.5,
            )
        assert result.manifest.records[0].status == STATUS_TIMEOUT


class TestRetries:
    def test_flaky_job_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "attempted"
        with registered(FLAKY):
            job = make_job("test-flaky", params={"marker": str(marker)})
            with obs.capture() as cap:
                result = run_jobs([job], workers=2, retries=1)
        (record,) = result.manifest.records
        assert record.status == STATUS_OK
        assert record.attempts == 2
        counters = cap.registry.snapshot()["counters"]
        assert counters[f"{RETRIES_COUNTER}{{figure=test-flaky}}"] == 1

    def test_retry_budget_is_bounded(self, tmp_path):
        with registered(BOOM):
            with obs.capture() as cap:
                result = run_jobs(
                    [make_job("test-boom")], workers=2, retries=2,
                    backoff=0.001,
                )
        (record,) = result.manifest.records
        assert record.status == STATUS_FAILED
        assert record.attempts == 3  # 1 initial + 2 retries
        counters = cap.registry.snapshot()["counters"]
        assert counters[f"{RETRIES_COUNTER}{{figure=test-boom}}"] == 2

    def test_inline_retries_count_too(self, tmp_path):
        marker = tmp_path / "attempted"
        with registered(FLAKY):
            job = make_job("test-flaky", params={"marker": str(marker)})
            with obs.capture() as cap:
                result = run_jobs([job], workers=1, retries=1, backoff=0.001)
        assert result.manifest.records[0].attempts == 2
        counters = cap.registry.snapshot()["counters"]
        assert counters[f"{RETRIES_COUNTER}{{figure=test-flaky}}"] == 1

    def test_retry_reruns_identical_seed_and_params(self, tmp_path):
        # The acceptance bar: backoff must not perturb simulation inputs,
        # so a retried cell's rows equal an unretried run's rows.
        marker = tmp_path / "attempted"
        with registered(FLAKY):
            job = make_job("test-flaky", seed=7, params={"marker": str(marker)})
            retried = run_jobs([job], workers=2, retries=1)
            marker.write_text("already there")
            clean = run_jobs([job], workers=1)
        assert retried.rows_for("test-flaky") == clean.rows_for("test-flaky")
        assert retried.rows_for("test-flaky")[0]["seed"] == 7


class TestBackoffDeterminism:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.1)
        first = [policy.backoff_s("somekey", n) for n in range(1, 6)]
        second = [policy.backoff_s("somekey", n) for n in range(1, 6)]
        assert first == second

    def test_backoff_grows_exponentially_and_is_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5
        )
        delays = [policy.backoff_s("k", n) for n in range(1, 10)]
        # jitter is in [0.5x, 1.5x); the envelope still doubles
        assert delays[1] > delays[0] * 2 * 0.5 / 1.5
        assert max(delays) <= 0.5

    def test_different_keys_get_different_jitter(self):
        policy = RetryPolicy(backoff_base_s=0.1)
        assert policy.backoff_s("a", 1) != policy.backoff_s("b", 1)


class TestCheckpointResume:
    def test_checkpoint_flushed_after_every_job(self, tmp_path):
        checkpoint = tmp_path / "manifest.json"
        seen: list[int] = []

        def watch(record):
            # the checkpoint on disk always covers the completed jobs
            manifest = RunManifest.load(checkpoint)
            seen.append(len(manifest.records))

        with registered(STEADY):
            run_jobs(
                [make_job("test-steady", seed=s) for s in range(3)],
                workers=1,
                progress=watch,
                checkpoint=checkpoint,
            )
        assert seen == [1, 2, 3]
        final = RunManifest.load(checkpoint)
        assert len(final.records) == 3
        assert json.loads(checkpoint.read_text())["schema"] == MANIFEST_SCHEMA

    def test_resume_skips_ok_cells_and_reruns_failed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        checkpoint = tmp_path / "manifest.json"
        marker = tmp_path / "attempted"
        with registered(FLAKY, STEADY):
            jobs = [make_job("test-flaky", params={"marker": str(marker)}),
                    make_job("test-steady")]
            # First sweep: flaky fails terminally (and drops its marker),
            # steady succeeds; the checkpoint records both.
            degraded = run_jobs(
                jobs, workers=1, cache=cache, checkpoint=checkpoint
            )
            assert not degraded.ok
            assert marker.exists()
            # Resume: the marker "fixes" flaky, so only it should rerun.
            resumed = run_jobs(
                jobs, workers=1, cache=cache, resume_from=checkpoint
            )
        by_figure = {r.figure: r for r in resumed.manifest.records}
        # the previously-ok cell came from the cache, not a recomputation
        assert by_figure["test-steady"].status == STATUS_CACHED
        assert by_figure["test-steady"].cached
        assert by_figure["test-flaky"].status == STATUS_OK
        assert resumed.ok

    def test_resume_does_not_trust_cache_for_failed_cells(self, tmp_path):
        # A cache entry written under the same key by some other run must
        # not short-circuit a cell the resume manifest recorded as failed.
        cache = ResultCache(tmp_path / "cache")
        with registered(BOOM, STEADY):
            jobs = [make_job("test-boom"), make_job("test-steady")]
            first = run_jobs(jobs, workers=1, cache=cache)
            # sneak rows in under the failed job's key
            cache.put(
                jobs[0].key(), STEADY.fn(seed=0),
                figure="test-boom", seed=0, params={},
            )
            resumed = run_jobs(
                jobs, workers=1, cache=cache, resume_from=first.manifest
            )
        by_figure = {r.figure: r for r in resumed.manifest.records}
        assert by_figure["test-steady"].status == STATUS_CACHED
        # boom reran (and failed again) instead of serving planted rows
        assert by_figure["test-boom"].status == STATUS_FAILED

    def test_resume_accepts_manifest_object_or_path(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with registered(STEADY):
            jobs = [make_job("test-steady")]
            first = run_jobs(jobs, workers=1, cache=cache)
            via_object = run_jobs(
                jobs, workers=1, cache=cache, resume_from=first.manifest
            )
            path = tmp_path / "m.json"
            path.write_text(first.manifest.to_json())
            via_path = run_jobs(
                jobs, workers=1, cache=cache, resume_from=path
            )
        assert via_object.manifest.records[0].status == STATUS_CACHED
        assert via_path.manifest.records[0].status == STATUS_CACHED


class TestWriteProbeUniqueness:
    def test_probe_names_are_unique_per_call(self, tmp_path):
        from repro.runner.engine import _PROBE_COUNTER, ensure_writable_dir

        before = next(_PROBE_COUNTER)
        ensure_writable_dir(tmp_path, "test output")
        ensure_writable_dir(tmp_path, "test output")
        assert next(_PROBE_COUNTER) == before + 3

    def test_probe_does_not_clobber_unrelated_files(self, tmp_path):
        # Regression: the probe used a fixed name, so two concurrent
        # sweeps (or a user file of that name) could be unlinked by the
        # probe cycle of another process.
        from repro.runner.engine import ensure_writable_dir

        bystander = tmp_path / ".repro-write-probe"
        bystander.write_text("someone else's probe")
        ensure_writable_dir(tmp_path, "test output")
        assert bystander.read_text() == "someone else's probe"
        assert list(tmp_path.iterdir()) == [bystander]


class TestSweepResultErgonomics:
    def test_rows_for_names_seed_and_available_outcomes(self):
        with registered(STEADY):
            result = run_jobs(
                [make_job("test-steady", seed=s) for s in (0, 1)], workers=1
            )
        with pytest.raises(KeyError, match=r"seed 5"):
            result.rows_for("test-steady", seed=5)
        with pytest.raises(KeyError, match=r"test-steady \(seed 0\)"):
            result.rows_for("fig9")

    def test_rows_for_failed_cell_reports_the_error(self):
        with registered(BOOM):
            result = run_jobs([make_job("test-boom")], workers=1)
        with pytest.raises(KeyError, match="boom: intentional failure"):
            result.rows_for("test-boom")

    def test_ok_and_failures_properties(self):
        with registered(BOOM, STEADY):
            result = run_jobs(
                [make_job("test-boom"), make_job("test-steady")], workers=1
            )
        assert not result.ok
        assert [o.job.figure for o in result.failures] == ["test-boom"]
        clean = run_jobs([make_job("fig1")], workers=1)
        assert clean.ok and clean.failures == []

"""Streaming row storage: chunk files, LazyRows, and bounded memory.

Covers the :mod:`repro.runner.rowstream` primitives in isolation, then
the property the whole machinery exists for: a streamed sweep's peak
memory stays flat as the grid grows, instead of scaling with
(cells × rows-per-cell) the way in-memory results do.
"""

import json
import tracemalloc

import pytest

from repro.figures import Rows
from repro.runner import (
    DEFAULT_CHUNK_ROWS,
    LazyRows,
    SerialBackend,
    iter_chunk_rows,
    make_job,
    run_jobs,
    write_row_chunks,
)
from repro.runner.rowstream import chunk_dir, chunk_name

from .faulty import WIDE, registered, wide

KEY = "ab12cd34" * 8  # shaped like a real SHA-256 job key


def sample_rows(n):
    return [{"i": i, "sq": i * i} for i in range(n)]


class TestWriteRowChunks:
    def test_rows_split_into_fixed_size_chunks(self, tmp_path):
        paths, count = write_row_chunks(
            tmp_path, KEY, sample_rows(10), chunk_rows=4
        )
        assert count == 10
        assert [p.name for p in paths] == [
            chunk_name(KEY, 0), chunk_name(KEY, 1), chunk_name(KEY, 2),
        ]
        assert all(p.parent == chunk_dir(tmp_path, KEY) for p in paths)
        sizes = [len(p.read_text().splitlines()) for p in paths]
        assert sizes == [4, 4, 2]

    def test_chunks_are_valid_jsonl(self, tmp_path):
        paths, _ = write_row_chunks(
            tmp_path, KEY, sample_rows(3), chunk_rows=2
        )
        rows = [
            json.loads(line)
            for p in paths
            for line in p.read_text().splitlines()
        ]
        assert rows == sample_rows(3)

    def test_no_temp_files_left_behind(self, tmp_path):
        write_row_chunks(tmp_path, KEY, sample_rows(7), chunk_rows=3)
        leftovers = [
            p for p in tmp_path.rglob("*") if ".tmp." in p.name
        ]
        assert leftovers == []

    def test_consumes_a_generator_once(self, tmp_path):
        pulls = []

        def produce():
            for i in range(5):
                pulls.append(i)
                yield {"i": i}

        paths, count = write_row_chunks(tmp_path, KEY, produce(), chunk_rows=2)
        assert count == 5
        assert pulls == [0, 1, 2, 3, 4]
        assert list(iter_chunk_rows(paths)) == [{"i": i} for i in range(5)]

    def test_empty_rows_write_nothing(self, tmp_path):
        paths, count = write_row_chunks(tmp_path, KEY, [])
        assert paths == []
        assert count == 0

    def test_chunk_rows_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rows"):
            write_row_chunks(tmp_path, KEY, sample_rows(1), chunk_rows=0)


class TestLazyRows:
    @pytest.fixture
    def lazy(self, tmp_path):
        paths, count = write_row_chunks(
            tmp_path, KEY, sample_rows(9), chunk_rows=4
        )
        return LazyRows(paths, count)

    def test_len_and_bool_use_recorded_count(self, lazy):
        assert len(lazy) == 9
        assert bool(lazy)
        assert not LazyRows([], 0)

    def test_iteration_streams_in_order(self, lazy):
        assert list(lazy) == sample_rows(9)
        assert list(lazy) == sample_rows(9)  # re-iterable

    def test_indexing_and_slicing(self, lazy):
        assert lazy[0] == {"i": 0, "sq": 0}
        assert lazy[-1] == {"i": 8, "sq": 64}
        assert lazy[2:4] == sample_rows(9)[2:4]
        with pytest.raises(IndexError):
            lazy[9]

    def test_equality_against_lists_and_rows(self, lazy):
        assert lazy == sample_rows(9)
        assert not (lazy == sample_rows(8))

    def test_rendering_matches_eager_rows(self, lazy):
        eager = Rows(sample_rows(9))
        assert lazy.to_csv() == eager.to_csv()
        assert lazy.to_json(indent=2) == eager.to_json(indent=2)
        assert lazy.to_table() == eager.to_table()
        assert lazy.render("csv") == eager.render("csv")

    def test_empty_lazy_rows_render(self):
        empty = LazyRows([], 0)
        assert empty.to_csv() == ""
        assert empty.to_json() == "[]"

    def test_materialize_returns_eager_rows(self, lazy):
        rows = lazy.materialize()
        assert isinstance(rows, Rows)
        assert rows == sample_rows(9)

    def test_default_chunk_size_is_sane(self):
        assert DEFAULT_CHUNK_ROWS >= 16


class TestBoundedMemory:
    """The regression guard: streamed peak memory must not scale with
    the grid, and must undercut the in-memory equivalent.

    Uses the deterministic bulk-data WIDE figure on the serial backend so
    every allocation happens in this process where tracemalloc sees it.
    """

    ROWS = 400

    def _sweep(self, tmp_path, label, seeds, stream):
        jobs = [
            make_job("test-wide", seed=s, params={"rows": self.ROWS})
            for s in range(seeds)
        ]
        kwargs = {}
        if stream:
            kwargs = dict(
                stream_rows=tmp_path / f"rows-{label}", chunk_rows=64
            )
        tracemalloc.start()
        try:
            result = run_jobs(
                jobs, workers=1, backend=SerialBackend(), **kwargs
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.ok
        return peak

    def test_streamed_peak_stays_flat_as_grid_grows(self, tmp_path):
        # Warm up imports/caches so the first measurement isn't inflated.
        self._sweep(tmp_path, "warmup", seeds=1, stream=True)
        small = self._sweep(tmp_path, "small", seeds=2, stream=True)
        large = self._sweep(tmp_path, "large", seeds=12, stream=True)
        # 6x the cells must cost well under 6x the peak; 3x is a
        # generous ceiling that still catches accidental accumulation.
        assert large < small * 3, (
            f"streamed peak grew with the grid: {small} -> {large} bytes"
        )

    def test_streaming_undercuts_in_memory_peak(self, tmp_path):
        self._sweep(tmp_path, "warmup2", seeds=1, stream=True)
        streamed = self._sweep(tmp_path, "streamed", seeds=12, stream=True)
        in_memory = self._sweep(tmp_path, "eager", seeds=12, stream=False)
        assert streamed < in_memory, (
            f"streaming should be cheaper: streamed={streamed} "
            f"in_memory={in_memory} bytes"
        )

    def test_streamed_rows_identical_to_in_memory(self, tmp_path):
        jobs = [
            make_job("test-wide", seed=s, params={"rows": 50})
            for s in range(3)
        ]
        eager = run_jobs(jobs, workers=1, backend=SerialBackend())
        lazy = run_jobs(
            jobs, workers=1, backend=SerialBackend(),
            stream_rows=tmp_path / "rows", chunk_rows=16,
        )
        for left, right in zip(eager.outcomes, lazy.outcomes):
            assert isinstance(right.rows, LazyRows)
            assert right.rows == list(wide(right.job.seed, rows=50))
            assert left.rows.to_csv() == right.rows.to_csv()

    @pytest.fixture(autouse=True)
    def _wide_registered(self):
        with registered(WIDE):
            yield

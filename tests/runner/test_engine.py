"""The parallel experiment engine: grid expansion, determinism, caching."""

import json

import pytest

from repro.runner import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    JobGrid,
    ResultCache,
    RunManifest,
    ensure_writable_dir,
    expand_grid,
    make_job,
    run_jobs,
    shard_jobs,
)

#: A cheap two-figure workload used throughout (sub-second per job).
CHEAP_FIGURES = ["fig1", "fig4-delay"]
CHEAP_GRID = {"cycles": [30]}


class TestGridExpansion:
    def test_figures_times_seeds(self):
        jobs = expand_grid(["fig1", "fig5"], seeds=[0, 1, 2])
        assert len(jobs) == 6
        assert {(j.figure, j.seed) for j in jobs} == {
            (f, s) for f in ("fig1", "fig5") for s in (0, 1, 2)
        }

    def test_grid_applies_only_to_declaring_figures(self):
        jobs = expand_grid(
            ["fig1", "fig4-delay"], seeds=[0], grid={"cycles": [100, 200]}
        )
        by_figure = {}
        for job in jobs:
            by_figure.setdefault(job.figure, []).append(job)
        assert len(by_figure["fig1"]) == 1  # fig1 has no 'cycles' param
        assert len(by_figure["fig4-delay"]) == 2
        assert {j.params_dict["cycles"] for j in by_figure["fig4-delay"]} == {
            100, 200,
        }

    def test_cartesian_product_of_grid_params(self):
        jobs = expand_grid(
            ["fig4-jitter"], seeds=[0, 1],
            grid={"cycles": [30, 60], "flow_counts": ["1:5", "1:25"]},
        )
        assert len(jobs) == 8  # 2 seeds x 2 cycles x 2 flow tuples
        assert {j.params_dict["flow_counts"] for j in jobs} == {
            (1, 5), (1, 25),
        }

    def test_unknown_grid_param_rejected(self):
        with pytest.raises(ValueError, match="nonsense"):
            expand_grid(["fig1"], grid={"nonsense": [1]})

    def test_unknown_figure_rejected_with_available_names(self):
        with pytest.raises(ValueError, match="fig5"):
            expand_grid(["fig9"])

    def test_make_job_validates_params(self):
        job = make_job("fig4-delay", seed=2, params={"cycles": "30"})
        assert job.params_dict == {"cycles": 30}
        with pytest.raises(ValueError, match="cycles"):
            make_job("fig4-delay", params={"cylces": 30})

    def test_jobs_are_hashable_and_content_addressed(self):
        a = make_job("fig4-delay", params={"cycles": 30})
        b = make_job("fig4-delay", params={"cycles": 30})
        assert a == b and hash(a) == hash(b)
        assert a.key() == b.key()
        assert a.key() != make_job("fig4-delay", params={"cycles": 31}).key()


class TestLazyGrid:
    """expand_grid returns a lazy JobGrid; consumers must never rely on
    it being a list."""

    def test_expand_grid_returns_job_grid(self):
        grid = expand_grid(["fig1"], seeds=[0, 1])
        assert isinstance(grid, JobGrid)
        assert "2 jobs" in repr(grid)

    def test_len_is_arithmetic_not_materialization(self):
        # A million-cell grid sizes instantly because __len__ multiplies
        # plan dimensions instead of generating cells.
        grid = expand_grid(["fig1"], seeds=range(1_000_000))
        assert len(grid) == 1_000_000

    def test_reiteration_yields_identical_jobs(self):
        grid = expand_grid(
            ["fig1", "fig4-delay"], seeds=[0, 1], grid={"cycles": [30, 60]}
        )
        assert list(grid) == list(grid)
        assert grid == list(grid)

    def test_indexing_and_slicing(self):
        grid = expand_grid(["fig1"], seeds=[0, 1, 2])
        jobs = list(grid)
        assert grid[0] == jobs[0]
        assert grid[-1] == jobs[-1]
        assert grid[1:3] == jobs[1:3]
        with pytest.raises(IndexError):
            grid[3]

    def test_run_jobs_accepts_one_shot_iterators(self):
        jobs = list(expand_grid(["fig1"], seeds=[0, 1]))
        result = run_jobs(iter(jobs), workers=1)
        assert result.ok
        assert len(result.outcomes) == 2

    def test_shard_jobs_consumes_a_lazy_grid_in_one_pass(self):
        grid = expand_grid(["fig1"], seeds=range(7))
        parts = shard_jobs(iter(grid), 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sorted(
            (j.figure, j.seed) for part in parts for j in part
        ) == sorted((j.figure, j.seed) for j in grid)

    def test_shard_jobs_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards"):
            shard_jobs([], 0)

    def test_resume_consumes_the_grid_twice(self, tmp_path):
        grid = expand_grid(["fig1", "fig4-delay"], grid=CHEAP_GRID)
        checkpoint = tmp_path / "manifest.json"
        cache = ResultCache(tmp_path / "cache")
        first = run_jobs(
            grid, workers=1, cache=cache, checkpoint=checkpoint
        )
        assert first.ok
        # Second pass re-iterates the same JobGrid instance.
        resumed = run_jobs(
            grid, workers=1, cache=cache, resume_from=checkpoint
        )
        assert resumed.ok
        assert all(r.cached for r in resumed.manifest.records)


class TestRunJobs:
    def test_results_independent_of_worker_count(self):
        jobs = expand_grid(CHEAP_FIGURES, seeds=[0], grid=CHEAP_GRID)
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.job == right.job
            assert left.rows == right.rows
            assert left.rows.to_csv() == right.rows.to_csv()

    def test_outcomes_preserve_job_order(self):
        jobs = expand_grid(CHEAP_FIGURES, seeds=[0, 1], grid=CHEAP_GRID)
        result = run_jobs(jobs, workers=2)
        assert [outcome.job for outcome in result.outcomes] == list(jobs)

    def test_stats_collected_per_job(self):
        jobs = [make_job("fig4-delay", params={"cycles": 30})]
        result = run_jobs(jobs, workers=1)
        stats = result.outcomes[0].record.stats
        assert stats is not None
        assert stats["events_executed"] > 0
        assert stats["simulators"] >= 1
        assert stats["sim_time_ns"] > 0

    def test_cold_then_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = expand_grid(CHEAP_FIGURES, seeds=[0], grid=CHEAP_GRID)

        cold = run_jobs(jobs, workers=1, cache=cache)
        assert cold.manifest.cache_hits == 0
        assert cold.manifest.cache_misses == len(jobs)

        warm = run_jobs(jobs, workers=1, cache=cache)
        assert warm.manifest.cache_hits == len(jobs)
        assert warm.manifest.cache_misses == 0
        # Zero recomputation: cached records carry no simulator stats.
        assert all(r.cached and r.stats is None for r in warm.manifest.records)
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.rows.to_csv() == b.rows.to_csv()

    def test_changed_seed_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs([make_job("fig1", seed=0)], workers=1, cache=cache)
        result = run_jobs([make_job("fig1", seed=1)], workers=1, cache=cache)
        assert result.manifest.cache_misses == 1

    def test_no_cache_recomputes(self, tmp_path):
        jobs = [make_job("fig1")]
        first = run_jobs(jobs, workers=1)
        second = run_jobs(jobs, workers=1)
        assert not first.manifest.records[0].cached
        assert not second.manifest.records[0].cached

    def test_progress_callback_sees_every_job(self):
        seen = []
        jobs = expand_grid(["fig1"], seeds=[0, 1])
        run_jobs(jobs, workers=1, progress=seen.append)
        assert {(r.figure, r.seed) for r in seen} == {("fig1", 0), ("fig1", 1)}

    def test_rows_for_lookup(self):
        result = run_jobs(expand_grid(["fig1"], seeds=[0, 1]), workers=1)
        assert result.rows_for("fig1", seed=1)
        with pytest.raises(KeyError):
            result.rows_for("fig5")


class TestManifest:
    def test_manifest_json_schema(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [make_job("fig4-delay", params={"cycles": 30})]
        result = run_jobs(jobs, workers=1, cache=cache)
        payload = json.loads(result.manifest.to_json())
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["workers"] == 1
        assert payload["cache_dir"] == str(tmp_path / "cache")
        assert payload["cache_hits"] == 0
        assert payload["cache_misses"] == 1
        assert payload["wall_time_s"] > 0
        (job,) = payload["jobs"]
        assert job["figure"] == "fig4-delay"
        assert job["params"] == {"cycles": 30}
        assert len(job["key"]) == 64
        assert job["stats"]["events_executed"] > 0
        # observability fields exist but stay null without --trace/--profile
        assert job["metrics"] is None
        assert job["hotspots"] is None
        assert job["trace_path"] is None

    def test_v2_round_trip(self):
        result = run_jobs([make_job("fig1")], workers=1, profile=True)
        manifest = RunManifest.from_json(result.manifest.to_json())
        assert manifest.workers == result.manifest.workers
        (record,) = manifest.records
        assert record.figure == "fig1"
        assert record.metrics is not None
        assert manifest.to_json() == result.manifest.to_json()

    def test_reads_v1_payload(self):
        v1 = {
            "schema": MANIFEST_SCHEMA_V1,
            "version": "1.1.0",
            "workers": 2,
            "cache_dir": None,
            "cache_hits": 0,
            "cache_misses": 1,
            "wall_time_s": 0.5,
            "jobs": [
                {
                    "figure": "fig1",
                    "seed": 0,
                    "params": {},
                    "key": "ab" * 32,
                    "cached": False,
                    "wall_time_s": 0.5,
                    "rows": 7,
                    "stats": None,
                    "rows_path": None,
                }
            ],
        }
        manifest = RunManifest.from_dict(v1)
        (record,) = manifest.records
        assert record.rows == 7
        # missing v2 fields read back as None
        assert record.metrics is None
        assert record.hotspots is None
        assert record.trace_path is None

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_dict({"schema": "something/else", "jobs": []})

    def test_load_from_file(self, tmp_path):
        result = run_jobs([make_job("fig1")], workers=1)
        target = tmp_path / "manifest.json"
        target.write_text(result.manifest.to_json())
        assert RunManifest.load(target).records[0].figure == "fig1"


class TestObservability:
    def test_trace_dir_writes_chrome_trace_per_job(self, tmp_path):
        trace_dir = tmp_path / "traces"
        result = run_jobs(
            [make_job("fig4-delay", params={"cycles": 30})],
            workers=1,
            trace_dir=trace_dir,
        )
        (record,) = result.manifest.records
        assert record.trace_path is not None
        payload = json.loads((trace_dir / "fig4_delay.seed0.job0.trace.json"
                              ).read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"runner.job", "figure.run", "sim.run"} <= names
        assert (trace_dir / "fig4_delay.seed0.job0.trace.jsonl").exists()
        # tracing alone embeds metrics but no hot spots
        assert record.metrics is not None
        assert record.hotspots is None

    def test_profile_embeds_hotspots_and_metrics(self):
        result = run_jobs(
            [make_job("fig4-delay", params={"cycles": 30})],
            workers=1,
            profile=True,
        )
        (record,) = result.manifest.records
        assert record.trace_path is None
        assert record.hotspots, "profiling must produce hot-spot rows"
        top = record.hotspots[0]
        assert top["calls"] > 0 and top["total_ns"] > 0
        hists = record.metrics["histograms"]
        assert any(h["count"] > 0 for h in hists.values())

    def test_pool_workers_carry_observability(self, tmp_path):
        trace_dir = tmp_path / "traces"
        jobs = expand_grid(CHEAP_FIGURES, seeds=[0, 1], grid=CHEAP_GRID)
        result = run_jobs(jobs, workers=2, trace_dir=trace_dir, profile=True)
        assert all(r.trace_path for r in result.manifest.records)
        assert len(list(trace_dir.glob("*.trace.json"))) == len(jobs)

    def test_cached_jobs_skip_observability(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [make_job("fig1")]
        run_jobs(jobs, workers=1, cache=cache)
        warm = run_jobs(
            jobs, workers=1, cache=cache,
            trace_dir=tmp_path / "traces", profile=True,
        )
        (record,) = warm.manifest.records
        assert record.cached
        assert record.metrics is None and record.trace_path is None

    def test_unwritable_trace_dir_fails_fast(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ValueError, match="not writable"):
            run_jobs([make_job("fig1")], workers=1,
                     trace_dir=blocker / "sub")

    def test_ensure_writable_dir_creates_and_probes(self, tmp_path):
        target = tmp_path / "a" / "b"
        assert ensure_writable_dir(target, "test") == target
        assert target.is_dir()
        assert list(target.iterdir()) == []  # probe file removed


class TestStatusHeartbeat:
    """run_jobs(status_path=...) maintains the live status.json."""

    def test_updates_at_least_once_per_completed_job(self, tmp_path):
        status_path = tmp_path / "status.json"
        observed = []

        def watch(record):
            observed.append(json.loads(status_path.read_text())["done"])

        jobs = expand_grid(["fig1"], seeds=[0, 1])
        run_jobs(jobs, workers=1, status_path=status_path, progress=watch)
        # by the time each progress callback fires, the heartbeat already
        # counts that job as done
        assert observed == [1, 2]
        final = json.loads(status_path.read_text())
        assert final["schema"] == "repro.obs/status/v1"
        assert final["state"] == "done"
        assert (final["done"], final["ok"], final["failed"]) == (2, 2, 0)

    def test_pool_path_counts_and_finalizes(self, tmp_path):
        status_path = tmp_path / "status.json"
        jobs = expand_grid(CHEAP_FIGURES, seeds=[0, 1], grid=CHEAP_GRID)
        run_jobs(jobs, workers=2, status_path=status_path)
        final = json.loads(status_path.read_text())
        assert final["state"] == "done"
        assert final["done"] == final["total"] == len(jobs)
        assert final["current"] == []

    def test_failures_and_retries_reach_the_heartbeat(self, tmp_path):
        from .faulty import FLAKY, registered

        status_path = tmp_path / "status.json"
        with registered(FLAKY):
            job = make_job(
                "test-flaky", params={"marker": str(tmp_path / "marker")}
            )
            run_jobs(
                [job], workers=1, retries=1, backoff=0.0,
                status_path=status_path,
            )
        final = json.loads(status_path.read_text())
        assert final["state"] == "done"
        assert final["retries"] == 1
        assert final["ok"] == 1

    def test_degraded_state_and_last_error(self, tmp_path):
        from .faulty import BOOM, registered

        status_path = tmp_path / "status.json"
        with registered(BOOM):
            run_jobs(
                [make_job("test-boom")], workers=1,
                status_path=status_path,
            )
        final = json.loads(status_path.read_text())
        assert final["state"] == "degraded"
        assert final["failed"] == 1
        assert "boom" in final["last_error"]

    def test_no_status_path_writes_nothing(self, tmp_path):
        run_jobs(expand_grid(["fig1"]), workers=1)
        assert not (tmp_path / "status.json").exists()

    def test_results_identical_with_and_without_heartbeat(self, tmp_path):
        jobs = expand_grid(["fig1"], seeds=[0])
        plain = run_jobs(jobs, workers=1)
        beating = run_jobs(
            jobs, workers=1, status_path=tmp_path / "status.json"
        )
        assert plain.rows_for("fig1") == beating.rows_for("fig1")
        assert (
            plain.manifest.records[0].key == beating.manifest.records[0].key
        )

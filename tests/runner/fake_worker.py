"""A deliberately misbehaving ``repro worker`` stand-in.

The subprocess backend treats child output as untrusted input; these
modes (selected by the ``FAKE_WORKER_MODE`` environment variable) each
break the stdio protocol in one specific way so the parent's conviction
logic can be exercised against a real pipe, not a mock:

- ``malformed``      — non-JSON bytes on the protocol stream
- ``oversized``      — one enormous newline-free line
- ``partial``        — a truncated write, then death mid-line
- ``unknown``        — a well-formed message of an unknown type
- ``non_object``     — a JSON array where a message object belongs
- ``early_result``   — a result before ever being handed a job
- ``bad_result``     — a result whose payload is not an object
- ``selective``      — correct protocol, but garbage for "evil" jobs

Launched through a tiny shell shim passed as the backend's ``python=``
interpreter (the tests create it in ``tmp_path``), so the parent-side
loop runs completely unmodified.
"""

import json
import os
import sys


def send(obj) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def raw(text: str) -> None:
    sys.stdout.write(text)
    sys.stdout.flush()


def main() -> int:
    mode = os.environ.get("FAKE_WORKER_MODE", "unknown")
    sys.stdin.readline()  # the init message; contents ignored

    if mode == "early_result":
        send({"type": "result", "index": 0, "result": {"rogue": True}})
        sys.stdin.read()  # linger until the parent closes the pipe
        return 0

    send({"type": "ready"})
    for line in sys.stdin:
        message = json.loads(line)
        if message.get("type") != "job":
            break
        payload = message["payload"]
        index, value = payload[0], payload[1]
        if mode == "selective" and value != "evil":
            send({"type": "result", "index": index,
                  "result": {"echo": value}})
            continue
        if mode == "malformed":
            raw("this is not json\n")
        elif mode == "oversized":
            raw("x" * 4096 + "\n")
        elif mode == "partial":
            raw('{"type":"result","index":')
            return 0  # die mid-write
        elif mode == "unknown":
            send({"type": "surprise", "index": index})
        elif mode == "non_object":
            raw("[1, 2, 3]\n")
        elif mode in ("bad_result", "selective"):
            send({"type": "result", "index": index, "result": "not-a-dict"})
        sys.stdin.read()  # linger: the parent must convict, not hang
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())

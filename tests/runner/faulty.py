"""Faulty figure stubs + registration helper for supervisor tests.

The figure functions live in a real module (not a test body) and carry
their state through the filesystem, so they behave identically inline
and inside forked pool workers.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro import figures
from repro.figures import FigureSpec, ParamSpec, Rows


def boom(seed: int = 0) -> Rows:
    """Always raises."""
    raise ValueError(f"boom: intentional failure (seed {seed})")


def sleepy(seed: int = 0, sleep_s: float = 30.0) -> Rows:
    """Sleeps past any test timeout."""
    time.sleep(sleep_s)
    return Rows([{"seed": seed, "slept_s": sleep_s}])


def die(seed: int = 0) -> Rows:
    """Kills the worker process without raising."""
    os._exit(23)


def flaky(seed: int = 0, marker: str = "") -> Rows:
    """Fails on the first attempt, succeeds once ``marker`` exists."""
    if not marker:
        raise RuntimeError("flaky: no marker path, always fails")
    path = Path(marker)
    if path.exists():
        return Rows([{"seed": seed, "attempt": "second"}])
    path.write_text("first attempt happened")
    raise RuntimeError("flaky: first attempt fails")


def steady(seed: int = 0) -> Rows:
    """Always succeeds, cheaply."""
    return Rows([{"seed": seed, "value": seed * 2}])


def wide(seed: int = 0, rows: int = 200, width: int = 8) -> Rows:
    """Deterministically produces ``rows`` rows of ``width`` columns.

    The bulk-data figure for streaming/bounded-memory tests: cheap to
    compute, non-trivial to hold for a whole grid at once.
    """
    return Rows(
        [
            {"seed": seed, "i": i,
             **{f"c{c}": (seed * 31 + i * 7 + c) % 1000
                for c in range(width)}}
            for i in range(rows)
        ]
    )


BOOM = FigureSpec(name="test-boom", doc="always raises", fn=boom)
SLEEPY = FigureSpec(
    name="test-sleepy", doc="sleeps sleep_s", fn=sleepy,
    params=(ParamSpec("sleep_s", 30.0, "sleep duration", parse=float),),
)
DIE = FigureSpec(name="test-die", doc="kills its worker", fn=die)
FLAKY = FigureSpec(
    name="test-flaky", doc="fails once then succeeds", fn=flaky,
    params=(ParamSpec("marker", "", "attempt marker path", parse=str),),
)
STEADY = FigureSpec(name="test-steady", doc="always succeeds", fn=steady)
WIDE = FigureSpec(
    name="test-wide", doc="bulk deterministic rows", fn=wide,
    params=(
        ParamSpec("rows", 200, "rows to produce", parse=int),
        ParamSpec("width", 8, "columns per row", parse=int),
    ),
)

#: Every spec this module defines, for bulk (de)registration.
ALL_SPECS = (BOOM, SLEEPY, DIE, FLAKY, STEADY, WIDE)


@contextmanager
def registered(*specs: FigureSpec):
    """Temporarily add ``specs`` to the figure registry.

    Pool workers are forked after registration (the supervisor prefers
    the ``fork`` start method), so they see the same registry.  Fresh
    ``repro worker`` subprocesses do NOT inherit it — pass
    ``preload=["tests.runner.faulty:install"]`` to the subprocess backend
    so each child re-registers via :func:`install`.
    """
    for spec in specs:
        figures._SPECS[spec.name] = spec
    try:
        yield
    finally:
        for spec in specs:
            figures._SPECS.pop(spec.name, None)


#: Appended to by :func:`mark_preload`; lets protocol tests observe that
#: a worker ran its preload hooks before the first job.
PRELOAD_CALLS: list[str] = []


def mark_preload() -> None:
    """Record that a worker invoked its preload hooks."""
    PRELOAD_CALLS.append("called")


def protocol_compute(payload):
    """Module-level compute for in-process worker-protocol tests.

    Mirrors the engine contract: ``payload -> (index, result_dict)``,
    raising when asked so :func:`repro.runner.supervisor.guard` has an
    exception to convert.
    """
    index, value = payload[0], payload[1]
    if value == "boom":
        raise ValueError("boom from protocol_compute")
    return index, {"status": "ok", "echo": value, "payload": repr(payload)}


def install() -> None:
    """Idempotently register every faulty spec (subprocess preload hook).

    Invoked inside ``repro worker`` children via the init message's
    ``preload`` entries, where :func:`registered`'s fork-inheritance
    trick cannot reach.
    """
    for spec in ALL_SPECS:
        figures._SPECS[spec.name] = spec

"""Faulty figure stubs + registration helper for supervisor tests.

The figure functions live in a real module (not a test body) and carry
their state through the filesystem, so they behave identically inline
and inside forked pool workers.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro import figures
from repro.figures import FigureSpec, ParamSpec, Rows


def boom(seed: int = 0) -> Rows:
    """Always raises."""
    raise ValueError(f"boom: intentional failure (seed {seed})")


def sleepy(seed: int = 0, sleep_s: float = 30.0) -> Rows:
    """Sleeps past any test timeout."""
    time.sleep(sleep_s)
    return Rows([{"seed": seed, "slept_s": sleep_s}])


def die(seed: int = 0) -> Rows:
    """Kills the worker process without raising."""
    os._exit(23)


def flaky(seed: int = 0, marker: str = "") -> Rows:
    """Fails on the first attempt, succeeds once ``marker`` exists."""
    if not marker:
        raise RuntimeError("flaky: no marker path, always fails")
    path = Path(marker)
    if path.exists():
        return Rows([{"seed": seed, "attempt": "second"}])
    path.write_text("first attempt happened")
    raise RuntimeError("flaky: first attempt fails")


def steady(seed: int = 0) -> Rows:
    """Always succeeds, cheaply."""
    return Rows([{"seed": seed, "value": seed * 2}])


BOOM = FigureSpec(name="test-boom", doc="always raises", fn=boom)
SLEEPY = FigureSpec(
    name="test-sleepy", doc="sleeps sleep_s", fn=sleepy,
    params=(ParamSpec("sleep_s", 30.0, "sleep duration", parse=float),),
)
DIE = FigureSpec(name="test-die", doc="kills its worker", fn=die)
FLAKY = FigureSpec(
    name="test-flaky", doc="fails once then succeeds", fn=flaky,
    params=(ParamSpec("marker", "", "attempt marker path", parse=str),),
)
STEADY = FigureSpec(name="test-steady", doc="always succeeds", fn=steady)


@contextmanager
def registered(*specs: FigureSpec):
    """Temporarily add ``specs`` to the figure registry.

    Pool workers are forked after registration (the supervisor prefers
    the ``fork`` start method), so they see the same registry.
    """
    for spec in specs:
        figures._SPECS[spec.name] = spec
    try:
        yield
    finally:
        for spec in specs:
            figures._SPECS.pop(spec.name, None)

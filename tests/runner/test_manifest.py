"""RunManifest schema: v3 round-trips, v1/v2 compatibility, rejection."""

import json

import pytest

from repro import __version__
from repro.runner import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_SCHEMA_V2,
    JobRecord,
    RunManifest,
)


def v2_record(**overrides):
    base = dict(
        figure="fig5",
        seed=3,
        params={"duration_ms": 1000, "crash_ms": 500},
        key="ab" * 32,
        cached=False,
        wall_time_s=0.52,
        rows=20,
        stats={"events_executed": 1000, "sim_time_ns": 10**9},
        rows_path="results/fig5.csv",
        metrics={"counters": {"net.host.frames{host=io}": 4}},
        hotspots=[{"name": "cb", "calls": 2, "total_ns": 10}],
        trace_path="traces/fig5.trace.json",
        verdict="pass",
    )
    base.update(overrides)
    return JobRecord(**base)


def failed_record(**overrides):
    base = dict(
        figure="fig5",
        seed=1,
        params={},
        key="ef" * 32,
        cached=False,
        wall_time_s=0.1,
        rows=0,
        status="failed",
        error="RuntimeError: boom",
        traceback="Traceback (most recent call last): ...",
        attempts=3,
    )
    base.update(overrides)
    return JobRecord(**base)


def v1_job_payload():
    """A job dict as a v1-era manifest stored it (no obs, no verdict)."""
    return {
        "figure": "fig1",
        "seed": 0,
        "params": {},
        "key": "cd" * 32,
        "cached": True,
        "wall_time_s": 0.0,
        "rows": 12,
        "stats": None,
        "rows_path": None,
    }


class TestRoundTrip:
    def test_v2_record_survives_dict_round_trip(self):
        record = v2_record()
        clone = JobRecord.from_dict(record.as_dict())
        assert clone == record

    def test_v2_manifest_survives_json_round_trip(self, tmp_path):
        manifest = RunManifest(
            workers=4,
            cache_dir=".repro-cache",
            wall_time_s=12.81,
            records=[v2_record(), v2_record(seed=4, cached=True,
                                            verdict="fail")],
        )
        path = tmp_path / "manifest.json"
        path.write_text(manifest.to_json())
        loaded = RunManifest.load(path)
        assert loaded.records == manifest.records
        assert loaded.workers == manifest.workers
        assert loaded.cache_dir == manifest.cache_dir
        assert loaded.cache_hits == 1
        assert loaded.cache_misses == 1

    def test_round_trip_preserves_verdicts(self):
        records = [v2_record(verdict=v) for v in ("pass", "fail", None)]
        manifest = RunManifest(workers=1, cache_dir=None, records=records)
        loaded = RunManifest.from_json(manifest.to_json())
        assert [r.verdict for r in loaded.records] == ["pass", "fail", None]

    def test_serialized_schema_and_version_are_current(self):
        payload = json.loads(
            RunManifest(workers=1, cache_dir=None).to_json()
        )
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["version"] == __version__


class TestV3Supervision:
    def test_failed_record_round_trips(self):
        record = failed_record()
        clone = JobRecord.from_dict(record.as_dict())
        assert clone == record
        assert clone.status == "failed"
        assert clone.error == "RuntimeError: boom"
        assert clone.attempts == 3
        assert not clone.ok

    def test_timeout_status_round_trips(self):
        record = failed_record(status="timeout", error="exceeded 5s")
        assert JobRecord.from_dict(record.as_dict()).status == "timeout"

    def test_manifest_counts_failures(self):
        manifest = RunManifest(
            workers=2,
            cache_dir=None,
            records=[v2_record(), failed_record(),
                     failed_record(status="timeout")],
        )
        assert manifest.failed == 2
        assert manifest.degraded
        assert [r.status for r in manifest.failures()] == [
            "failed", "timeout",
        ]
        payload = json.loads(manifest.to_json())
        assert payload["failed"] == 2

    def test_clean_manifest_is_not_degraded(self):
        manifest = RunManifest(
            workers=1, cache_dir=None,
            records=[v2_record(), v2_record(cached=True, status="cached")],
        )
        assert manifest.failed == 0
        assert not manifest.degraded
        assert manifest.failures() == []

    def test_v2_payload_derives_status_from_cached(self):
        computed = v2_record().as_dict()
        cached = v2_record(cached=True).as_dict()
        for payload in (computed, cached):
            for field in ("status", "error", "traceback", "attempts"):
                del payload[field]
        manifest = RunManifest.from_dict({
            "schema": MANIFEST_SCHEMA_V2,
            "version": "1.3.0",
            "workers": 2,
            "cache_dir": None,
            "cache_hits": 1,
            "cache_misses": 1,
            "wall_time_s": 1.0,
            "jobs": [computed, cached],
        })
        assert [r.status for r in manifest.records] == ["ok", "cached"]
        assert all(r.ok for r in manifest.records)
        assert all(r.attempts == 1 for r in manifest.records)
        assert not manifest.degraded


class TestV1Compatibility:
    def test_v1_manifest_loads_with_null_v2_fields(self):
        payload = {
            "schema": MANIFEST_SCHEMA_V1,
            "version": "1.0.0",
            "workers": 2,
            "cache_dir": None,
            "cache_hits": 1,
            "cache_misses": 0,
            "wall_time_s": 1.0,
            "jobs": [v1_job_payload()],
        }
        manifest = RunManifest.from_dict(payload)
        (record,) = manifest.records
        assert record.figure == "fig1"
        assert record.metrics is None
        assert record.hotspots is None
        assert record.trace_path is None
        assert record.verdict is None

    def test_v1_record_rewrites_as_v2(self):
        # Upgrading on load then saving must produce a valid v2 document.
        record = JobRecord.from_dict(v1_job_payload())
        manifest = RunManifest(workers=2, cache_dir=None, records=[record])
        rewritten = json.loads(manifest.to_json())
        assert rewritten["schema"] == MANIFEST_SCHEMA
        assert rewritten["jobs"][0]["verdict"] is None
        assert RunManifest.from_dict(rewritten).records == [record]

    def test_minimal_v1_fields_get_defaults(self):
        record = JobRecord.from_dict(
            {"figure": "fig1", "seed": 0, "key": "k", "cached": False}
        )
        assert record.params == {}
        assert record.wall_time_s == 0.0
        assert record.rows == 0


class TestRejection:
    @pytest.mark.parametrize(
        "schema", [None, "", "repro.runner/manifest/v0",
                   "repro.runner/manifest/v4", "something-else"]
    )
    def test_unknown_schemas_rejected_with_readable_list(self, schema):
        payload = {"schema": schema, "jobs": []}
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            RunManifest.from_dict(payload)

    def test_rejection_names_the_readable_schemas(self):
        with pytest.raises(ValueError, match="manifest/v1.*manifest/v2"):
            RunManifest.from_dict({"schema": "bogus"})

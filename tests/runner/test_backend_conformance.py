"""Backend-conformance suite: every executor backend, one contract.

Each test runs the same sweep through :func:`repro.runner.run_jobs` on
every backend (serial, local-pool, subprocess) and asserts identical
*observable* behavior: statuses, retry accounting, checkpoint/resume
semantics, and status-heartbeat events.  This is the suite that lets a
future backend (SSH, work queue) prove itself by passing unchanged.

The subprocess backend's children are fresh processes, so they re-register
the faulty test figures via the ``tests.runner.faulty:install`` preload
hook rather than fork inheritance.
"""

import json

import pytest

from repro import obs
from repro.runner import (
    RETRIES_COUNTER,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    LocalPoolBackend,
    ResultCache,
    SerialBackend,
    SubprocessWorkerBackend,
    make_job,
    run_jobs,
)

from .faulty import BOOM, DIE, FLAKY, SLEEPY, STEADY, registered

#: Backends every conformance test runs on.  ``isolating`` marks the
#: process-isolating ones — only they can survive a worker calling
#: ``os._exit`` or preempt a hung job mid-flight.
BACKENDS = {
    "serial": dict(isolating=False),
    "local-pool": dict(isolating=True),
    "subprocess": dict(isolating=True),
}


def make_backend(name: str):
    if name == "serial":
        return SerialBackend()
    if name == "local-pool":
        return LocalPoolBackend(workers=2)
    return SubprocessWorkerBackend(
        workers=2, preload=["tests.runner.faulty:install"]
    )


def statuses(result):
    return {o.job.figure: o.record.status for o in result.outcomes}


@pytest.fixture(params=sorted(BACKENDS))
def backend_name(request):
    return request.param


class TestConformance:
    def test_ok_and_failed_cells_coexist(self, backend_name):
        with registered(BOOM, STEADY):
            result = run_jobs(
                [make_job("test-boom"), make_job("test-steady")],
                workers=2, backend=make_backend(backend_name),
            )
        assert statuses(result) == {
            "test-boom": STATUS_FAILED, "test-steady": STATUS_OK,
        }
        assert result.rows_for("test-steady") == [{"seed": 0, "value": 0}]
        (failure,) = result.failures
        assert "boom: intentional failure" in failure.record.error
        assert "ValueError" in failure.record.traceback
        assert failure.rows == []

    def test_backend_recorded_on_computed_records(self, backend_name):
        with registered(STEADY):
            result = run_jobs(
                [make_job("test-steady")], workers=2,
                backend=make_backend(backend_name),
            )
        (record,) = result.manifest.records
        assert record.backend == backend_name
        payload = json.loads(result.manifest.to_json())
        assert payload["jobs"][0]["backend"] == backend_name

    def test_timeout_is_recorded_and_charged(self, backend_name):
        with registered(SLEEPY, STEADY):
            result = run_jobs(
                [
                    make_job("test-sleepy", params={"sleep_s": 0.4}),
                    make_job("test-steady"),
                ],
                workers=2, timeout_s=0.15,
                backend=make_backend(backend_name),
            )
        assert statuses(result) == {
            "test-sleepy": STATUS_TIMEOUT, "test-steady": STATUS_OK,
        }
        (failure,) = result.failures
        assert "timeout" in failure.record.error

    def test_flaky_job_succeeds_on_retry(self, backend_name, tmp_path):
        marker = tmp_path / "attempted"
        with registered(FLAKY):
            job = make_job("test-flaky", params={"marker": str(marker)})
            with obs.capture() as cap:
                result = run_jobs(
                    [job], workers=2, retries=1, backoff=0.001,
                    backend=make_backend(backend_name),
                )
        (record,) = result.manifest.records
        assert record.status == STATUS_OK
        assert record.attempts == 2
        counters = cap.registry.snapshot()["counters"]
        assert counters[f"{RETRIES_COUNTER}{{figure=test-flaky}}"] == 1

    def test_retry_budget_is_bounded(self, backend_name):
        with registered(BOOM):
            with obs.capture() as cap:
                result = run_jobs(
                    [make_job("test-boom")], workers=2, retries=2,
                    backoff=0.001, backend=make_backend(backend_name),
                )
        (record,) = result.manifest.records
        assert record.status == STATUS_FAILED
        assert record.attempts == 3  # 1 initial + 2 retries
        counters = cap.registry.snapshot()["counters"]
        assert counters[f"{RETRIES_COUNTER}{{figure=test-boom}}"] == 2

    def test_checkpoint_resume_mid_sweep(self, backend_name, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        checkpoint = tmp_path / "manifest.json"
        marker = tmp_path / "attempted"
        with registered(FLAKY, STEADY):
            jobs = [make_job("test-flaky", params={"marker": str(marker)}),
                    make_job("test-steady")]
            degraded = run_jobs(
                jobs, workers=2, cache=cache, checkpoint=checkpoint,
                backend=make_backend(backend_name),
            )
            assert not degraded.ok
            assert marker.exists()
            # The marker "fixes" flaky; resume recomputes only it.
            resumed = run_jobs(
                jobs, workers=2, cache=cache, resume_from=checkpoint,
                backend=make_backend(backend_name),
            )
        by_figure = {r.figure: r for r in resumed.manifest.records}
        assert by_figure["test-steady"].status == STATUS_CACHED
        assert by_figure["test-steady"].cached
        assert by_figure["test-flaky"].status == STATUS_OK
        assert resumed.ok

    def test_status_heartbeats_fire(self, backend_name, tmp_path):
        from repro.obs.status import load_status

        status_path = tmp_path / "status.json"
        marker = tmp_path / "attempted"
        with registered(FLAKY, STEADY):
            run_jobs(
                [
                    make_job("test-flaky", params={"marker": str(marker)}),
                    make_job("test-steady"),
                ],
                workers=2, retries=1, backoff=0.001,
                status_path=status_path,
                backend=make_backend(backend_name),
            )
        final = load_status(status_path)
        assert final["state"] == "done"
        assert final["total"] == 2
        assert final["done"] == 2
        assert final["retries"] == 1
        assert final["backend"] == backend_name
        assert final["current"] == []

    def test_streamed_rows_match_in_memory(self, backend_name, tmp_path):
        with registered(STEADY):
            jobs = [make_job("test-steady", seed=s) for s in range(3)]
            plain = run_jobs(
                jobs, workers=2, backend=make_backend(backend_name),
            )
            streamed = run_jobs(
                jobs, workers=2, backend=make_backend(backend_name),
                stream_rows=tmp_path / "rows", chunk_rows=1,
            )
        for left, right in zip(plain.outcomes, streamed.outcomes):
            assert right.record.row_chunks, "streamed record lists chunks"
            assert left.rows == right.rows
            assert left.rows.to_csv() == right.rows.to_csv()
            assert left.record.verdict == right.record.verdict


@pytest.mark.parametrize(
    "backend_name",
    [name for name, props in sorted(BACKENDS.items()) if props["isolating"]],
)
class TestProcessIsolation:
    """Contracts only process-isolating backends can honor.

    The serial backend shares its process with the supervisor, so a
    worker calling ``os._exit`` would kill the whole sweep — these cases
    are exactly why ``local-pool``/``subprocess`` exist.
    """

    def test_dying_worker_convicted_bystander_survives(self, backend_name):
        with registered(DIE, STEADY):
            result = run_jobs(
                [make_job("test-die"), make_job("test-steady")],
                workers=2, backend=make_backend(backend_name),
            )
        assert statuses(result) == {
            "test-die": STATUS_FAILED, "test-steady": STATUS_OK,
        }
        (failure,) = result.failures
        assert "worker process died" in failure.record.error
        # The innocent bystander kept its rows and was never charged.
        assert result.rows_for("test-steady") == [{"seed": 0, "value": 0}]
        by_figure = {r.figure: r for r in result.manifest.records}
        assert by_figure["test-steady"].attempts == 1

    def test_dying_worker_retry_budget_applies(self, backend_name):
        with registered(DIE):
            result = run_jobs(
                [make_job("test-die")], workers=2, retries=1, backoff=0.001,
                backend=make_backend(backend_name),
            )
        (record,) = result.manifest.records
        assert record.status == STATUS_FAILED
        assert record.attempts == 2

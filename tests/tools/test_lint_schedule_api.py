"""The scheduling-API linter: in-repo code must use the keyword-only API."""

import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_schedule_api import find_violations, lint_paths  # noqa: E402


def violations_of(source):
    return find_violations(ast.parse(source))


class TestDetection:
    def test_flags_positional_delay_form(self):
        found = violations_of("sim.schedule(5, callback)")
        assert len(found) == 1
        assert "after=delay" in found[0][1]

    def test_flags_schedule_at(self):
        found = violations_of("self.sim.schedule_at(100, fn)")
        assert len(found) == 1
        assert "at=time" in found[0][1]

    def test_flags_callback_keyword(self):
        found = violations_of("sim.schedule(100, callback=fn)")
        assert found  # positional delay + callback kw both qualify

    def test_accepts_keyword_only_forms(self):
        assert violations_of("sim.schedule(fn)") == []
        assert violations_of("sim.schedule(fn, after=5)") == []
        assert violations_of("sim.schedule(fn, at=100, priority=1)") == []

    def test_ignores_unrelated_schedule_functions(self):
        # A bare function named schedule is not the Simulator API.
        assert violations_of("schedule(5, fn)") == []
        # Scheduler.push legitimately takes callback=.
        assert violations_of("queue.push(5, callback=fn)") == []


class TestRepositoryIsClean:
    def test_no_deprecated_calls_in_repo(self):
        from lint_schedule_api import DEFAULT_PATHS

        failures = lint_paths(list(DEFAULT_PATHS), REPO)
        assert failures == [], "\n".join(failures)

    def test_default_paths_cover_examples_and_benchmarks(self):
        from lint_schedule_api import DEFAULT_PATHS

        assert "examples" in DEFAULT_PATHS
        assert "benchmarks" in DEFAULT_PATHS

    def test_cli_exit_status(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_schedule_api.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

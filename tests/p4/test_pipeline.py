"""P4 pipeline semantics: tables, actions, registers, digests."""

import pytest

from repro.net import Packet
from repro.p4 import (
    MatchKind,
    P4Pipeline,
    PacketContext,
    Register,
    Table,
    default_parser,
)


def make_pipeline():
    return P4Pipeline("test", parser=default_parser)


def packet(src="a", dst="b", msg_type="", flow="f"):
    return Packet(
        src=src, dst=dst, payload_bytes=50, flow_id=flow,
        payload={"type": msg_type} if msg_type else {},
    )


class TestExactTable:
    def test_hit_runs_action_with_params(self):
        pipeline = make_pipeline()
        forwarded = []
        pipeline.register_action(
            "fwd", lambda ctx, port: forwarded.append(port) or ctx.forward(port)
        )
        table = pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["b"], "fwd", {"port": 3})
        ctx = pipeline.process(packet(), 0)
        assert forwarded == [3]
        assert ctx.egress_ports == [3]
        assert table.hits == 1

    def test_miss_runs_default_action(self):
        pipeline = make_pipeline()
        table = pipeline.add_table(Table("t", key_fields=["dst"]))
        ctx = pipeline.process(packet(dst="unknown"), 0)
        assert ctx.egress_ports == []
        assert table.misses == 1
        assert ctx.trace == [("t", "NoAction")]

    def test_insert_replaces_same_key(self):
        pipeline = make_pipeline()
        hits = []
        pipeline.register_action("a1", lambda ctx: hits.append(1))
        pipeline.register_action("a2", lambda ctx: hits.append(2))
        table = pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["b"], "a1")
        table.insert(["b"], "a2")
        pipeline.process(packet(), 0)
        assert hits == [2]

    def test_delete_entry(self):
        pipeline = make_pipeline()
        table = pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["b"], "NoAction")
        assert table.delete(["b"])
        assert not table.delete(["b"])
        assert table.entries() == []

    def test_key_arity_checked(self):
        table = Table("t", key_fields=["a", "b"])
        with pytest.raises(ValueError):
            table.insert(["x"], "NoAction")


class TestTernaryTable:
    def test_wildcard_matches(self):
        pipeline = make_pipeline()
        seen = []
        pipeline.register_action("note", lambda ctx, tag: seen.append(tag))
        table = pipeline.add_table(
            Table("t", key_fields=["src", "msg_type"], match_kind=MatchKind.TERNARY)
        )
        table.insert(["a", "*"], "note", {"tag": "any-from-a"})
        pipeline.process(packet(msg_type="hello"), 0)
        assert seen == ["any-from-a"]

    def test_priority_orders_overlapping_entries(self):
        pipeline = make_pipeline()
        seen = []
        pipeline.register_action("note", lambda ctx, tag: seen.append(tag))
        table = pipeline.add_table(
            Table("t", key_fields=["src"], match_kind=MatchKind.TERNARY)
        )
        table.insert(["*"], "note", {"tag": "low"}, priority=1)
        table.insert(["a"], "note", {"tag": "high"}, priority=10)
        pipeline.process(packet(src="a"), 0)
        pipeline.process(packet(src="z"), 0)
        assert seen == ["high", "low"]

    def test_delete_ternary_entry(self):
        table = Table("t", key_fields=["src"], match_kind=MatchKind.TERNARY)
        table.insert(["a*"], "NoAction")
        assert table.delete(["a*"])
        assert table.entries() == []


class TestPipelineFlow:
    def test_stages_run_in_order(self):
        pipeline = make_pipeline()
        trace = []
        pipeline.register_action("first", lambda ctx: trace.append("first"))
        pipeline.register_action("second", lambda ctx: trace.append("second"))
        t1 = pipeline.add_table(Table("t1", key_fields=["src"]))
        t2 = pipeline.add_table(Table("t2", key_fields=["src"]))
        t1.insert(["a"], "first")
        t2.insert(["a"], "second")
        pipeline.process(packet(), 0)
        assert trace == ["first", "second"]

    def test_drop_short_circuits_later_stages(self):
        pipeline = make_pipeline()
        trace = []
        pipeline.register_action("kill", lambda ctx: ctx.drop())
        pipeline.register_action("later", lambda ctx: trace.append("later"))
        t1 = pipeline.add_table(Table("t1", key_fields=["src"]))
        t2 = pipeline.add_table(Table("t2", key_fields=["src"]))
        t1.insert(["a"], "kill")
        t2.insert(["a"], "later")
        ctx = pipeline.process(packet(), 0)
        assert ctx.dropped
        assert trace == []

    def test_guard_skips_stage(self):
        pipeline = make_pipeline()
        trace = []
        pipeline.register_action("note", lambda ctx: trace.append(1))
        table = Table("t", key_fields=["src"])
        table.insert(["a"], "note")
        pipeline.add_table(table, guard=lambda ctx: False)
        pipeline.process(packet(), 0)
        assert trace == []

    def test_digest_collected(self):
        pipeline = make_pipeline()
        pipeline.register_action("tell", lambda ctx: ctx.digest(kind="x", n=1))
        table = pipeline.add_table(Table("t", key_fields=["src"]))
        table.insert(["a"], "tell")
        ctx = pipeline.process(packet(), 0)
        assert ctx.digests == [{"kind": "x", "n": 1}]

    def test_unknown_action_raises(self):
        pipeline = make_pipeline()
        table = pipeline.add_table(Table("t", key_fields=["src"]))
        table.insert(["a"], "ghost")
        with pytest.raises(KeyError):
            pipeline.process(packet(), 0)

    def test_duplicate_registration_rejected(self):
        pipeline = make_pipeline()
        pipeline.add_table(Table("t", key_fields=["src"]))
        with pytest.raises(ValueError):
            pipeline.add_table(Table("t", key_fields=["dst"]))
        pipeline.register_action("a", lambda ctx: None)
        with pytest.raises(ValueError):
            pipeline.register_action("a", lambda ctx: None)

    def test_parser_fields_available_to_keys(self):
        ctx_fields = default_parser(packet(msg_type="connect_request"), 4)
        assert ctx_fields["msg_type"] == "connect_request"
        assert ctx_fields["ingress_port"] == 4


class TestRegister:
    def test_read_write(self):
        register = Register("r", size=4)
        register.write(2, 99)
        assert register.read(2) == 99
        assert register.read(0) == 0
        assert len(register) == 4

    def test_out_of_range(self):
        register = Register("r", size=2)
        with pytest.raises(IndexError):
            register.read(5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Register("r", size=0)

    def test_clone_records_overrides(self):
        ctx = PacketContext(packet=packet(), ingress_port=0)
        ctx.clone(3, dst="other")
        assert ctx.clones == [(3, {"dst": "other"})]

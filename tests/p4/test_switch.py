"""P4 switch device: forwarding, rewriting, cloning, injection."""

import pytest

from repro.net import Host, Link, Packet
from repro.p4 import P4Switch, Table
from repro.simcore import Simulator, MS


def build_switch(host_count=3):
    sim = Simulator()
    switch = P4Switch(sim, "p4sw")
    hosts = []
    for i in range(host_count):
        host = Host(sim, f"h{i}")
        host.record_received = True
        Link(sim, host.add_port(), switch.add_port(), 1e9, 100)
        hosts.append(host)
    return sim, switch, hosts


def install_l2(switch, mapping):
    table = switch.pipeline.add_table(Table("l2", key_fields=["dst"]))
    switch.pipeline.register_action("fwd", lambda ctx, port: ctx.forward(port))
    for dst, port in mapping.items():
        table.insert([dst], "fwd", {"port": port})
    return table


class TestForwarding:
    def test_table_driven_forwarding(self):
        sim, switch, hosts = build_switch()
        install_l2(switch, {"h1": 1, "h2": 2})
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert len(hosts[1].received) == 1
        assert len(hosts[2].received) == 0
        assert switch.processed_frames == 1

    def test_unmatched_frame_dropped_and_counted(self):
        sim, switch, hosts = build_switch()
        install_l2(switch, {})
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert switch.dropped_frames == 1
        assert len(hosts[1].received) == 0

    def test_field_rewrite_applied_by_deparser(self):
        sim, switch, hosts = build_switch()
        switch.pipeline.register_action(
            "rewrite", lambda ctx, port, dst: (ctx.set_field("dst", dst),
                                               ctx.forward(port)),
        )
        table = switch.pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["h1"], "rewrite", {"port": 2, "dst": "h2"})
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert len(hosts[2].received) == 1
        assert hosts[2].received[0].dst == "h2"

    def test_clone_emits_rewritten_copy(self):
        sim, switch, hosts = build_switch()
        switch.pipeline.register_action(
            "mirror",
            lambda ctx, port, clone_port, clone_dst: (
                ctx.forward(port), ctx.clone(clone_port, dst=clone_dst)
            ),
        )
        table = switch.pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["h1"], "mirror", {"port": 1, "clone_port": 2,
                                        "clone_dst": "h2"})
        hosts[0].send("h1", payload_bytes=50, sequence=9)
        sim.run(until=1 * MS)
        assert len(hosts[1].received) == 1
        assert len(hosts[2].received) == 1
        assert hosts[2].received[0].dst == "h2"
        assert hosts[2].received[0].sequence == 9

    def test_clone_with_invalid_field_raises(self):
        sim, switch, hosts = build_switch()
        switch.pipeline.register_action(
            "bad", lambda ctx: ctx.clone(1, payload_bytes=999)
        )
        table = switch.pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["h1"], "bad")
        hosts[0].send("h1", payload_bytes=50)
        with pytest.raises(ValueError):
            sim.run(until=1 * MS)

    def test_multicast_forward(self):
        sim, switch, hosts = build_switch()
        switch.pipeline.register_action(
            "flood", lambda ctx: [ctx.forward(p) for p in (1, 2)]
        )
        table = switch.pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["h1"], "flood")
        # dst stays h1, so only h1 accepts; h2 gets the frame but drops it.
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert len(hosts[1].received) == 1
        assert switch.ports[2].tx_frames == 1


class TestControlPlaneApi:
    def test_digest_listener_invoked(self):
        sim, switch, hosts = build_switch()
        digests = []
        switch.on_digest(lambda data, ctx: digests.append((data, ctx.packet.src)))
        switch.pipeline.register_action("punt", lambda ctx: ctx.digest(kind="p"))
        table = switch.pipeline.add_table(Table("t", key_fields=["dst"]))
        table.insert(["h1"], "punt")
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert digests == [({"kind": "p"}, "h0")]

    def test_inject_sends_packet_out(self):
        sim, switch, hosts = build_switch()
        frame = Packet(src="ctrl", dst="h1", payload_bytes=50)
        switch.inject(frame, egress_port=1)
        sim.run(until=1 * MS)
        assert len(hosts[1].received) == 1

    def test_inject_invalid_port_rejected(self):
        sim, switch, hosts = build_switch()
        with pytest.raises(ValueError):
            switch.inject(Packet(src="c", dst="d", payload_bytes=10), 99)

    def test_table_and_register_accessors(self):
        sim, switch, hosts = build_switch()
        table = install_l2(switch, {"h1": 1})
        assert switch.table("l2") is table
        from repro.p4 import Register

        register = switch.pipeline.add_register(Register("r", 4))
        assert switch.register("r") is register

    def test_taps_observe_traffic(self):
        sim, switch, hosts = build_switch()
        install_l2(switch, {"h1": 1})
        ingress, egress = [], []
        switch.ingress_taps.append(lambda p, i: ingress.append((p.src, i)))
        switch.egress_taps.append(lambda p, i: egress.append((p.dst, i)))
        hosts[0].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert ingress == [("h0", 0)]
        assert egress == [("h1", 1)]

"""Property-based tests for the P4 pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Packet
from repro.p4 import MatchKind, P4Pipeline, Register, Table, default_parser

names = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)


@given(st.lists(st.tuples(names, names), min_size=1, max_size=50))
def test_exact_table_behaves_like_a_dict(entries):
    table = Table("t", key_fields=["dst"])
    expected: dict[str, str] = {}
    for dst, tag in entries:
        table.insert([dst], "act", {"tag": tag})
        expected[dst] = tag
    assert len(table.entries()) == len(expected)
    pipeline = P4Pipeline("p", parser=default_parser)
    seen = {}
    pipeline.register_action("act", lambda ctx, tag: seen.update(hit=tag))
    pipeline.add_table(table)
    for dst, tag in expected.items():
        seen.clear()
        pipeline.process(Packet(src="s", dst=dst, payload_bytes=1), 0)
        assert seen == {"hit": tag}


@given(st.lists(names, min_size=1, max_size=30), st.data())
def test_delete_removes_exactly_the_key(keys, data):
    table = Table("t", key_fields=["dst"])
    unique = sorted(set(keys))
    for key in unique:
        table.insert([key], "NoAction")
    victim = data.draw(st.sampled_from(unique))
    assert table.delete([victim])
    remaining = {entry.key[0] for entry in table.entries()}
    assert remaining == set(unique) - {victim}


@given(
    st.lists(
        st.tuples(names, st.integers(0, 100)),
        min_size=2,
        max_size=20,
        unique_by=lambda t: t[0],
    )
)
@settings(deadline=None)
def test_ternary_priority_always_picks_highest(entries):
    table = Table("t", key_fields=["src"], match_kind=MatchKind.TERNARY)
    for _, priority in entries:
        # All entries match everything; only priority differentiates.
        table.insert([f"*"], "act", {"p": priority}, priority=priority)
    # Same key replaces, so only the last insert survives; rebuild with
    # unique keys instead.
    table.clear()
    for name, priority in entries:
        table.insert([f"{name}*"], "act", {"p": priority}, priority=priority)
    table.insert(["*"], "act", {"p": -1}, priority=-1)
    pipeline = P4Pipeline("p", parser=default_parser)
    chosen = {}
    pipeline.register_action("act", lambda ctx, p: chosen.update(p=p))
    pipeline.add_table(table)
    for name, priority in entries:
        chosen.clear()
        pipeline.process(Packet(src=name, dst="d", payload_bytes=1), 0)
        matching = [
            q for other, q in entries if name.startswith(other)
        ] + [-1]
        assert chosen["p"] == max(matching)


@given(st.integers(1, 64), st.lists(st.tuples(st.integers(0, 63), st.integers(-100, 100)), max_size=50))
def test_register_reads_last_write(size, writes):
    register = Register("r", size=size)
    last: dict[int, int] = {}
    for index, value in writes:
        if index < size:
            register.write(index, value)
            last[index] = value
    for index in range(size):
        assert register.read(index) == last.get(index, 0)

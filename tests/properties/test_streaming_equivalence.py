"""Property: sharded streaming sweeps are equivalent to in-memory ones.

The distributed story in PR 8 rests on one invariant — *how* a sweep is
executed (one backend holding rows in memory, or N shards streaming
chunked JSONL to disk) must never change *what* it produces.  Each trial
here builds a randomized grid (including figures that intentionally
fail), runs it once in-memory on a single backend, then re-runs it
sharded with streamed rows, and asserts the two sweeps agree cell by
cell: statuses, verdicts, row payloads, and rendered CSV bytes.

Trials are driven by seeded stdlib ``random.Random`` generators, in the
same style as the other property suites: a failing trial prints its seed
so the exact case replays.
"""

import random

import pytest

from repro.runner import SerialBackend, make_job, run_jobs, shard_jobs
from tests.runner.faulty import BOOM, STEADY, WIDE, registered

#: Trials per property.  Each failure message carries the trial seed.
TRIALS = 10

#: Figure pool for random grids; BOOM injects real failures.
FIGURE_POOL = ["test-steady", "test-wide", "test-boom"]


def trial_seeds(start):
    return [start + trial for trial in range(TRIALS)]


def random_jobs(rng):
    """A randomized mixed-outcome grid, as replayable pure data."""
    jobs = []
    for _ in range(rng.randrange(3, 9)):
        figure = rng.choice(FIGURE_POOL)
        params = {}
        if figure == "test-wide":
            params = {
                "rows": rng.randrange(5, 40),
                "width": rng.randrange(2, 6),
            }
        jobs.append(make_job(figure, seed=rng.randrange(4), params=params))
    # A grid may sample the same cell twice; keep one of each (duplicate
    # cells share a cache key and are legitimate no-ops, but they make
    # the outcome-by-cell comparison ambiguous).
    unique = {}
    for job in jobs:
        unique[(job.figure, job.seed, job.params)] = job
    return list(unique.values())


def cell(outcome):
    return (outcome.job.figure, outcome.job.seed, outcome.job.params)


def by_cell(result):
    return {cell(o): o for o in result.outcomes}


@pytest.mark.parametrize("seed", trial_seeds(7100))
def test_sharded_streaming_sweep_matches_in_memory(seed, tmp_path):
    rng = random.Random(seed)
    with registered(BOOM, STEADY, WIDE):
        jobs = random_jobs(rng)
        shards = rng.randrange(2, 5)
        baseline = run_jobs(jobs, workers=1, backend=SerialBackend())
        sharded = {}
        for i, shard in enumerate(shard_jobs(jobs, shards)):
            if not shard:
                continue
            part = run_jobs(
                shard, workers=1, backend=SerialBackend(),
                stream_rows=tmp_path / "rows", chunk_rows=7,
            )
            sharded.update(by_cell(part))

    expected = by_cell(baseline)
    assert set(sharded) == set(expected), f"trial seed {seed}"
    for key, left in expected.items():
        right = sharded[key]
        assert left.record.status == right.record.status, (
            f"trial seed {seed}: status diverged for {key}"
        )
        assert left.record.verdict == right.record.verdict, (
            f"trial seed {seed}: verdict diverged for {key}"
        )
        assert left.rows == list(right.rows), (
            f"trial seed {seed}: rows diverged for {key}"
        )
        if left.record.status == "ok":
            assert left.rows.to_csv() == right.rows.to_csv(), (
                f"trial seed {seed}: CSV bytes diverged for {key}"
            )


@pytest.mark.parametrize("seed", trial_seeds(7400))
def test_shard_jobs_partitions_exactly(seed):
    rng = random.Random(seed)
    with registered(BOOM, STEADY, WIDE):
        jobs = random_jobs(rng)
    shards = rng.randrange(1, 7)
    parts = shard_jobs(jobs, shards)
    assert len(parts) == shards, f"trial seed {seed}"
    flat = [job for part in parts for job in part]
    # Every job lands in exactly one shard; none invented, none lost.
    assert sorted(map(id, flat)) == sorted(map(id, jobs)), (
        f"trial seed {seed}"
    )
    assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1, (
        f"trial seed {seed}: shards unbalanced"
    )


@pytest.mark.parametrize("seed", trial_seeds(7700))
def test_sharding_is_deterministic(seed):
    rng = random.Random(seed)
    with registered(BOOM, STEADY, WIDE):
        jobs = random_jobs(rng)
    shards = rng.randrange(1, 5)
    first = shard_jobs(jobs, shards)
    second = shard_jobs(jobs, shards)
    assert first == second, f"trial seed {seed}"

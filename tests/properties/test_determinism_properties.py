"""Property-based determinism tests, driven by stdlib ``random.Random``.

Every test here runs N randomized trials.  The *case generators* are
seeded ``random.Random`` instances — no extra dependency, and a failing
trial prints its generator seed so the exact case replays with
``random.Random(seed)``.  The properties are the determinism contracts
the rest of the repo builds on:

- :class:`repro.simcore.events.EventQueue` pops in a total order —
  ``(time, priority, insertion sequence)`` — for *any* interleaving of
  push/pop/cancel;
- :class:`repro.simcore.rng.RandomStreams` streams are independent: the
  draws of one stream never depend on which other streams exist or when
  they draw;
- a chaos campaign is a pure function of ``(scenario, seed)``: two runs
  are bit-identical, for any scenario, seed and parameter combination.
"""

import random

import pytest

from repro.chaos import SCENARIOS, get_scenario, run_campaign
from repro.simcore.events import CalendarQueue, EventQueue
from repro.simcore.rng import RandomStreams

#: Trials per property.  Each failure message carries the trial seed.
TRIALS = 20

#: Both scheduler backends must satisfy the same ordering contract.
BACKENDS = [EventQueue, CalendarQueue]


def trial_seeds(start):
    """Per-trial generator seeds, derived from a fixed base."""
    return [start + trial for trial in range(TRIALS)]


# -- EventQueue total ordering ----------------------------------------------


def random_ops(rng, size=120):
    """A random push/pop/cancel interleaving, as replayable pure data."""
    ops = []
    live = 0
    for tag in range(size):
        choice = rng.random()
        if choice < 0.6 or live == 0:
            ops.append(("push", rng.randrange(1000), rng.choice(
                (-10, 0, 0, 0, 10)), tag))
            live += 1
        elif choice < 0.8:
            # Cancel a random earlier push (cancelling twice is fine).
            pushes = [op for op in ops if op[0] == "push"]
            ops.append(("cancel", rng.choice(pushes)[3]))
        else:
            ops.append(("pop",))
            live -= 1
    return ops


def apply_ops(ops, backend=EventQueue):
    """Run an op sequence; return the tags in pop order.

    Events are slotted and pooled, so each tag rides in the event's
    callback (``callback()`` returns it) rather than as an ad-hoc
    attribute.
    """
    queue = backend()
    events = {}
    popped = []
    for op in ops:
        if op[0] == "push":
            _, time, priority, tag = op
            events[tag] = queue.push(
                time, callback=lambda t=tag: t, priority=priority
            )
        elif op[0] == "cancel":
            events[op[1]].cancel()
        else:
            try:
                popped.append(queue.pop().callback())
            except IndexError:
                popped.append(None)
    while queue:
        popped.append(queue.pop().callback())
    return popped


class TestEventQueueOrdering:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", trial_seeds(1000))
    def test_identical_op_sequences_pop_identically(self, seed, backend):
        ops = random_ops(random.Random(seed))
        assert apply_ops(ops, backend) == apply_ops(ops, backend), (
            f"trial seed {seed}"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", trial_seeds(2000))
    def test_drain_order_is_the_documented_total_order(self, seed, backend):
        rng = random.Random(seed)
        queue = backend()
        pushed = []
        for tag in range(100):
            time = rng.randrange(50)  # dense times force tie-breaks
            priority = rng.choice((-10, 0, 10))
            event = queue.push(
                time, callback=lambda t=tag: t, priority=priority
            )
            pushed.append(((time, priority, event.sequence), tag))
        expected = [tag for _, tag in sorted(pushed)]
        drained = [queue.pop().callback() for _ in range(len(pushed))]
        assert drained == expected, f"trial seed {seed}"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", trial_seeds(3000))
    def test_cancellation_never_reorders_survivors(self, seed, backend):
        rng = random.Random(seed)
        ops = random_ops(rng)
        baseline = apply_ops(ops, backend)
        # Cancelling an event that was never popped must not change the
        # relative order of the surviving pops.
        cancellable = [op[3] for op in ops if op[0] == "push"]
        victim = rng.choice(cancellable)
        mutated = ops + [("cancel", victim)]
        survivors = [
            tag for tag in apply_ops(mutated, backend) if tag != victim
        ]
        expected = [tag for tag in baseline if tag != victim]
        assert survivors == expected, f"trial seed {seed}"


# -- RandomStreams independence ----------------------------------------------


def random_name(rng):
    parts = rng.sample(
        ["link", "plc", "chaos", "net", "cell", "jitter", "faults"],
        k=rng.randrange(1, 4),
    )
    return "/".join(parts) + f"/{rng.randrange(100)}"


class TestRandomStreamsIndependence:
    @pytest.mark.parametrize("seed", trial_seeds(4000))
    def test_same_seed_and_name_reproduce_draws(self, seed):
        rng = random.Random(seed)
        root = rng.randrange(1 << 32)
        name = random_name(rng)
        first = RandomStreams(seed=root).stream(name).random(8).tolist()
        second = RandomStreams(seed=root).stream(name).random(8).tolist()
        assert first == second, f"trial seed {seed}"

    @pytest.mark.parametrize("seed", trial_seeds(5000))
    def test_draws_survive_arbitrary_sibling_interleaving(self, seed):
        # The load-bearing property: creating and drawing from *any* other
        # streams, in any order, never perturbs a stream's own sequence.
        rng = random.Random(seed)
        root = rng.randrange(1 << 32)
        name = random_name(rng)

        quiet = RandomStreams(seed=root)
        baseline = quiet.stream(name).random(16).tolist()

        noisy = RandomStreams(seed=root)
        observed = []
        for _ in range(16):
            for _ in range(rng.randrange(3)):
                noisy.stream(random_name(rng)).random(rng.randrange(1, 5))
            observed.append(float(noisy.stream(name).random()))
        assert observed == baseline, f"trial seed {seed}"

    @pytest.mark.parametrize("seed", trial_seeds(6000))
    def test_distinct_names_give_distinct_sequences(self, seed):
        rng = random.Random(seed)
        root = rng.randrange(1 << 32)
        streams = RandomStreams(seed=root)
        first, second = random_name(rng), random_name(rng)
        if first == second:
            second += "/other"
        draws_a = streams.stream(first).random(8).tolist()
        draws_b = streams.stream(second).random(8).tolist()
        assert draws_a != draws_b, f"trial seed {seed}"

    @pytest.mark.parametrize("seed", trial_seeds(7000))
    def test_forked_registries_are_reproducible(self, seed):
        rng = random.Random(seed)
        root = rng.randrange(1 << 32)
        name = random_name(rng)
        fork_a = RandomStreams(seed=root).fork("child")
        fork_b = RandomStreams(seed=root).fork("child")
        assert (
            fork_a.stream(name).random(4).tolist()
            == fork_b.stream(name).random(4).tolist()
        ), f"trial seed {seed}"


# -- Chaos campaigns are pure functions of (scenario, seed) ------------------


def random_campaign_case(rng):
    return dict(
        name=rng.choice(sorted(SCENARIOS)),
        seed=rng.randrange(1 << 16),
        cells=rng.randrange(1, 5),
        mtbf_scale=rng.choice([0.5, 1.0, 2.0]),
        mttr_scale=rng.choice([0.5, 1.0, 2.0]),
    )


class TestCampaignBitIdentity:
    @pytest.mark.parametrize("seed", trial_seeds(8000)[:8])
    def test_two_runs_are_bit_identical(self, seed):
        case = random_campaign_case(random.Random(seed))
        scenario = get_scenario(
            case["name"], cells=case["cells"],
            mtbf_scale=case["mtbf_scale"], mttr_scale=case["mttr_scale"],
            horizon_s=300.0,
        )
        first = run_campaign(scenario, seed=case["seed"])
        second = run_campaign(scenario, seed=case["seed"])
        assert first.as_dict() == second.as_dict(), (
            f"trial seed {seed}, case {case}"
        )

"""Property-based (randomized, stdlib-driven) determinism tests."""

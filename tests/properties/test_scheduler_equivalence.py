"""Scheduler-backend equivalence properties.

The calendar queue is the default backend purely as an optimization: it
must be *observationally identical* to the reference binary heap.  These
properties drive both backends with the same randomized workloads and
assert the pop streams match element-for-element on the documented total
order ``(time, priority, sequence)`` — including under cancellation,
interleaved pops, and batch draining.
"""

import random

import pytest

from repro.simcore import MS, US, Simulator
from repro.simcore.events import CalendarQueue, EventQueue, make_scheduler

TRIALS = 20


def trial_seeds(start):
    return [start + trial for trial in range(TRIALS)]


def random_workload(rng, size=200):
    """Replayable push/pop/cancel script exercising dense time collisions."""
    ops = []
    live = 0
    for tag in range(size):
        choice = rng.random()
        if choice < 0.55 or live == 0:
            # Small time range on purpose: many same-timestamp buckets.
            ops.append(
                ("push", rng.randrange(40), rng.choice((-10, -10, 0, 0, 0, 10)), tag)
            )
            live += 1
        elif choice < 0.75:
            pushes = [op for op in ops if op[0] == "push"]
            ops.append(("cancel", rng.choice(pushes)[3]))
        else:
            ops.append(("pop",))
            live = max(0, live - 1)
    return ops


def drive(backend, ops):
    """Apply a workload; return the popped (time, priority, sequence, tag)s."""
    queue = backend()
    events = {}
    popped = []
    for op in ops:
        if op[0] == "push":
            _, time, priority, tag = op
            events[tag] = queue.push(
                time, callback=lambda t=tag: t, priority=priority
            )
        elif op[0] == "cancel":
            events[op[1]].cancel()
        else:
            try:
                event = queue.pop()
            except IndexError:
                popped.append(None)
            else:
                popped.append(
                    (event.time, event.priority, event.sequence, event.callback())
                )
    while queue:
        event = queue.pop()
        popped.append(
            (event.time, event.priority, event.sequence, event.callback())
        )
    return popped


def drive_batched(backend, ops):
    """Same workload, drained through ``pop_batch`` instead of ``pop``."""
    queue = backend()
    events = {}
    for op in ops:
        if op[0] == "push":
            _, time, priority, tag = op
            events[tag] = queue.push(
                time, callback=lambda t=tag: t, priority=priority
            )
        elif op[0] == "cancel":
            events[op[1]].cancel()
        else:
            batch = queue.pop_batch()
            # Put all but the first back so single pops stay comparable.
            if len(batch) > 1:
                queue.requeue(batch[1:])
    popped = []
    while queue:
        for event in queue.pop_batch():
            popped.append(
                (event.time, event.priority, event.sequence, event.callback())
            )
    return popped


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", trial_seeds(9000))
    def test_identical_pop_order_under_random_workloads(self, seed):
        ops = random_workload(random.Random(seed))
        assert drive(EventQueue, ops) == drive(CalendarQueue, ops), (
            f"trial seed {seed}"
        )

    @pytest.mark.parametrize("seed", trial_seeds(9500))
    def test_batch_draining_matches_across_backends(self, seed):
        ops = random_workload(random.Random(seed))
        assert drive_batched(EventQueue, ops) == drive_batched(
            CalendarQueue, ops
        ), f"trial seed {seed}"

    @pytest.mark.parametrize("seed", trial_seeds(9900)[:8])
    def test_full_simulator_runs_identically_on_both_backends(self, seed):
        def run(backend_name):
            rng = random.Random(seed)
            sim = Simulator(scheduler=backend_name)
            fired = []

            def tick(tag, depth):
                fired.append((sim.now, tag))
                if depth > 0:
                    # Same-instant and future reschedules, mixed priorities.
                    sim.schedule(
                        lambda: tick(tag * 10 + 1, depth - 1),
                        after=rng.choice((0, 3 * US, 7 * US)),
                        priority=rng.choice((-10, 0, 10)),
                    )

            for tag in range(12):
                sim.schedule(
                    lambda t=tag: tick(t, 4),
                    at=rng.randrange(0, 2 * MS),
                    priority=rng.choice((-10, 0, 10)),
                )
            sim.run(until=5 * MS)
            return fired, sim.stats.events_executed

        heap_run = run("heap")
        calendar_run = run("calendar")
        assert heap_run == calendar_run, f"trial seed {seed}"


class TestTelemetryEquivalence:
    """Backend equivalence extends to the in-band telemetry plane.

    The telemetry rings record ``(sim.now, value)`` pairs from event
    callbacks, so any backend-dependent reordering — especially inside
    the calendar queue's same-timestamp buckets — would surface as a
    ring-content diff.  These workloads pile events onto identical
    timestamps straddling bucket promotions (single Event -> _Bucket)
    and assert the rings match bit for bit.
    """

    def _drive(self, backend_name, seed):
        from repro.obs.telemetry import RingSampler

        rng = random.Random(seed)
        sim = Simulator(scheduler=backend_name)
        ring = RingSampler("equiv", capacity=64)
        order = []

        def record(tag):
            order.append(tag)
            ring.record(sim.now, tag)

        # Dense collisions: 40 events over only 5 distinct timestamps,
        # mixed priorities, plus same-instant reschedules (an event at
        # time T scheduling another event at time T crosses the bucket's
        # consumed/pending boundary mid-drain).
        instants = [0, 1, 1, 2, 5]
        for tag in range(40):
            at = rng.choice(instants)
            priority = rng.choice((-10, 0, 10))
            if tag % 7 == 0:
                sim.schedule(
                    lambda t=tag: (
                        record(t),
                        sim.schedule(lambda t2=t: record(t2 + 1000), after=0),
                    ),
                    at=at, priority=priority,
                )
            else:
                sim.schedule(lambda t=tag: record(t), at=at, priority=priority)
        sim.run()
        return order, ring.snapshot()

    @pytest.mark.parametrize("seed", trial_seeds(7700)[:8])
    def test_ring_contents_identical_across_backends(self, seed):
        heap_order, heap_ring = self._drive("heap", seed)
        cal_order, cal_ring = self._drive("calendar", seed)
        assert heap_order == cal_order, f"trial seed {seed}"
        assert heap_ring == cal_ring, f"trial seed {seed}"

    def test_identical_timestamp_flood_decimates_identically(self):
        # Everything at t=0: the pathological single-bucket case.
        from repro.obs.telemetry import RingSampler

        def run(backend_name):
            sim = Simulator(scheduler=backend_name)
            ring = RingSampler("flood", capacity=8)
            for tag in range(100):
                sim.schedule(lambda t=tag: ring.record(sim.now, t), at=0)
            sim.run()
            return ring.snapshot()

        assert run("heap") == run("calendar")


class TestSchedulerFactory:
    def test_make_scheduler_knows_both_backends(self):
        assert isinstance(make_scheduler("heap"), EventQueue)
        assert isinstance(make_scheduler("calendar"), CalendarQueue)

    def test_make_scheduler_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="heap"):
            make_scheduler("splay-tree")

    def test_simulator_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert Simulator().scheduler_name == "heap"
        monkeypatch.delenv("REPRO_SIM_SCHEDULER")
        assert Simulator().scheduler_name == "calendar"

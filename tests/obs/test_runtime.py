"""Scoped activation: capture(), nesting, null fallbacks, wiring."""

from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    capture,
    enabled,
    get_registry,
    get_tracer,
)
from repro.simcore import Simulator


class TestDefaults:
    def test_disabled_outside_any_capture(self):
        assert not enabled()
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER

    def test_new_simulator_has_no_profiler(self):
        assert Simulator()._profiler is None


class TestCapture:
    def test_installs_and_restores(self):
        with capture() as cap:
            assert enabled()
            assert get_registry() is cap.registry
            assert get_tracer() is cap.tracer
            assert cap.profiler is None
        assert not enabled()
        assert get_registry() is NULL_REGISTRY

    def test_nesting_innermost_wins(self):
        with capture() as outer:
            with capture() as inner:
                assert get_registry() is inner.registry
            assert get_registry() is outer.registry

    def test_restores_on_exception(self):
        try:
            with capture():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not enabled()

    def test_facets_can_be_disabled(self):
        with capture(metrics=False) as cap:
            assert get_registry() is NULL_REGISTRY
            assert get_tracer() is cap.tracer
        with capture(tracing=False):
            assert get_tracer() is NULL_TRACER

    def test_explicit_instances_accumulate(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with capture(registry=registry, tracer=tracer):
            get_registry().counter("c").inc()
        with capture(registry=registry, tracer=tracer):
            get_registry().counter("c").inc()
        assert registry.counter("c").value == 2

    def test_profile_attaches_to_new_simulators(self):
        with capture(profile=True) as cap:
            sim = Simulator()
            assert sim._profiler is cap.profiler
            sim.schedule(lambda: None, after=1)
            sim.run()
        assert cap.profiler is not None
        assert cap.profiler.total_ns > 0
        # sims created afterwards are back on the fast path
        assert Simulator()._profiler is None


class TestSimulatorIntegration:
    def test_run_emits_span(self):
        with capture() as cap:
            sim = Simulator()
            sim.schedule(lambda: None, after=5)
            sim.run()
        spans = [e for e in cap.tracer.events if e.get("name") == "sim.run"]
        assert len(spans) == 1
        assert spans[0]["args"]["end_ns"] == 5
        assert spans[0]["args"]["events"] == 1

    def test_component_metrics_flow_into_capture(self):
        from repro.net import build_star, install_shortest_path_routes
        from repro.simcore import MS

        with capture() as cap:
            sim = Simulator(seed=0)
            topo = build_star(sim, 3)
            install_shortest_path_routes(topo)
            topo.devices["h0"].send("h1", payload_bytes=50)
            sim.run(until=1 * MS)
        snap = cap.registry.snapshot()
        forwarded = snap["counters"].get(
            "net.switch.frames{outcome=forwarded,switch=sw0}"
        )
        assert forwarded == 1
        assert snap["histograms"]["net.port.tx_ns"]["count"] > 0

"""Bench history store and MAD-banded regression detection."""

import json

import pytest

from repro.obs.history import (
    BENCH_SCHEMA,
    STATUS_IMPROVED,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    BenchHistory,
    BenchReport,
    BenchSample,
    detect_regressions,
    format_findings,
    median,
    robust_std,
)


def make_report(values: dict[str, float], stamp: str) -> BenchReport:
    return BenchReport(
        recorded_at=stamp,
        samples=[BenchSample(name=k, value_s=v) for k, v in values.items()],
    )


def seeded_history(tmp_path, series: list[float], name: str = "bench_a"):
    """A history directory with one report per value of ``series``."""
    history = BenchHistory(tmp_path / "hist")
    for i, value in enumerate(series):
        history.append(make_report({name: value}, stamp=f"t{i:03d}"))
    return history


class TestStatistics:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_robust_std_is_mad_scaled(self):
        values = [1.0, 1.0, 1.0, 2.0]
        center = median(values)
        # deviations: [0, 0, 0, 1] -> MAD 0 -> robust std 0
        assert robust_std(values, center) == 0.0
        assert robust_std([1.0, 2.0, 3.0], 2.0) == pytest.approx(1.4826)


class TestBenchReport:
    def test_round_trip_preserves_samples_and_id(self):
        report = make_report({"a": 1.5, "b": 0.25}, stamp="2026-08-06")
        clone = BenchReport.from_dict(report.as_dict())
        assert clone.id == report.id
        assert clone.samples == report.samples
        assert clone.as_dict() == report.as_dict()

    def test_id_is_content_derived(self):
        a = make_report({"a": 1.5}, stamp="t0")
        b = make_report({"a": 1.5}, stamp="t0")
        c = make_report({"a": 1.6}, stamp="t0")
        assert a.id == b.id
        assert a.id != c.id

    def test_schema_documented_and_enforced(self):
        report = make_report({"a": 1.0}, stamp="t0")
        assert report.as_dict()["schema"] == BENCH_SCHEMA
        with pytest.raises(ValueError, match="unsupported bench schema"):
            BenchReport.from_dict({"schema": "something/else"})

    def test_save_load(self, tmp_path):
        report = make_report({"a": 1.0}, stamp="t0")
        path = report.save(tmp_path / "nested" / "BENCH_t0.json")
        assert BenchReport.load(path).id == report.id


class TestBenchHistory:
    def test_append_is_one_jsonl_line_per_report(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 1.1, 0.9])
        lines = history.path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["schema"] == BENCH_SCHEMA for line in lines)
        assert [r.recorded_at for r in history.reports()] == [
            "t000", "t001", "t002",
        ]

    def test_malformed_lines_are_skipped(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 1.1])
        with history.path.open("a") as handle:
            handle.write("{torn json\n")
            handle.write('{"schema": "wrong/schema"}\n')
        assert len(history.reports()) == 2

    def test_series_filters_by_name_and_excludes_id(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 1.2])
        latest = make_report({"bench_a": 9.9}, stamp="t999")
        history.append(latest)
        assert history.series("bench_a") == [1.0, 1.2, 9.9]
        assert history.series("bench_a", exclude_id=latest.id) == [1.0, 1.2]
        assert history.series("unknown") == []

    def test_empty_history_reads_as_empty(self, tmp_path):
        history = BenchHistory(tmp_path / "never-written")
        assert history.reports() == []


class TestDetectRegressions:
    def test_injected_3x_slowdown_is_flagged(self, tmp_path):
        # Acceptance criterion: realistic noisy history, then a 3x jump.
        series = [1.00, 1.04, 0.97, 1.02, 0.99, 1.01, 1.03, 0.98]
        history = seeded_history(tmp_path, series)
        slow = make_report({"bench_a": 3.0}, stamp="t100")
        findings = detect_regressions(history, slow)
        assert [f.status for f in findings] == [STATUS_REGRESSION]
        assert findings[0].ratio == pytest.approx(3.0, rel=0.1)

    def test_real_history_passes(self, tmp_path):
        series = [1.00, 1.04, 0.97, 1.02, 0.99, 1.01, 1.03, 0.98]
        history = seeded_history(tmp_path, series)
        normal = make_report({"bench_a": 1.02}, stamp="t100")
        findings = detect_regressions(history, normal)
        assert [f.status for f in findings] == [STATUS_OK]

    def test_improvement_is_informational(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02])
        fast = make_report({"bench_a": 0.3}, stamp="t100")
        findings = detect_regressions(history, fast)
        assert [f.status for f in findings] == [STATUS_IMPROVED]

    def test_new_benchmark_has_no_baseline(self, tmp_path):
        history = seeded_history(tmp_path, [1.0])
        report = make_report({"bench_b": 5.0}, stamp="t100")
        (finding,) = detect_regressions(history, report)
        assert finding.status == STATUS_NEW
        assert finding.baseline_s is None
        assert finding.ratio is None

    def test_own_history_entry_is_excluded(self, tmp_path):
        # record appends *then* compare runs: the report must not be
        # compared against itself (which would mask any jump).
        series = [1.0] * 6
        history = seeded_history(tmp_path, series)
        slow = make_report({"bench_a": 3.0}, stamp="t100")
        history.append(slow)
        findings = detect_regressions(history, slow)
        assert [f.status for f in findings] == [STATUS_REGRESSION]

    def test_min_abs_band_keeps_microbenches_quiet(self, tmp_path):
        # sub-millisecond wobble is inside the absolute slack
        history = seeded_history(tmp_path, [0.0010, 0.0011, 0.0009])
        report = make_report({"bench_a": 0.0025}, stamp="t100")
        findings = detect_regressions(history, report, min_abs_s=0.002)
        assert [f.status for f in findings] == [STATUS_OK]

    def test_window_limits_the_baseline(self, tmp_path):
        # old slow epoch, recent fast epoch: a fast value must be judged
        # against the recent window only.
        history = seeded_history(tmp_path, [10.0] * 8 + [1.0] * 8)
        report = make_report({"bench_a": 3.0}, stamp="t100")
        (finding,) = detect_regressions(history, report, window=8)
        assert finding.baseline_s == pytest.approx(1.0)
        assert finding.status == STATUS_REGRESSION


class TestFormatFindings:
    def test_table_shows_status_and_ratio(self, tmp_path):
        history = seeded_history(tmp_path, [1.0] * 5)
        report = make_report({"bench_a": 3.0, "bench_b": 1.0}, stamp="t9")
        text = format_findings(detect_regressions(history, report))
        assert "REGRESSION" in text
        assert "bench_a" in text and "bench_b" in text
        assert "3.00x" in text
        assert "new" in text  # bench_b has no history

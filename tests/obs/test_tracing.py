"""Span tracing and Chrome trace-event export."""

import json

from repro.obs import NULL_TRACER, SIM_TRACK, Tracer

#: Fields the Chrome trace-event format requires on every event.
REQUIRED_FIELDS = ("ph", "ts", "name", "pid", "tid")


def user_events(tracer):
    """Events minus the 'M' metadata records the tracer emits at init."""
    return [e for e in tracer.events if e["ph"] != "M"]


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("phase", figure="fig5"):
            pass
        (event,) = user_events(tracer)
        assert event["ph"] == "X"
        assert event["name"] == "phase"
        assert event["dur"] >= 0
        assert event["args"]["figure"] == "fig5"

    def test_span_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("phase") as span:
            span.set(rows=60)
        (event,) = user_events(tracer)
        assert event["args"]["rows"] == 60

    def test_span_records_error_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("phase"):
                raise KeyError("boom")
        except KeyError:
            pass
        (event,) = user_events(tracer)
        assert event["args"]["error"] == "KeyError"

    def test_spans_nest_and_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in user_events(tracer)]
        assert names == ["inner", "outer"]  # inner closes first

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("tick", message="hello")
        (event,) = user_events(tracer)
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"]["message"] == "hello"


class TestSimTrack:
    def test_sim_span_maps_ns_to_track_us(self):
        tracer = Tracer()
        tracer.sim_span("window", start_ns=1_500_000, end_ns=3_500_000)
        (event,) = user_events(tracer)
        assert event["tid"] == SIM_TRACK
        assert event["ts"] == 1_500.0
        assert event["dur"] == 2_000.0
        assert event["args"]["start_ns"] == 1_500_000

    def test_sim_track_is_named(self):
        tracer = Tracer()
        metas = [e for e in tracer.events if e["ph"] == "M"]
        named = {e["tid"]: e["args"]["name"] for e in metas}
        assert named[SIM_TRACK] == "simulated-time"


class TestExport:
    def test_chrome_schema_fields(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.instant("b")
        tracer.sim_span("c", 0, 1000)
        target = tmp_path / "trace.json"
        count = tracer.write_chrome(target)
        payload = json.loads(target.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == count
        for event in events:
            for field in REQUIRED_FIELDS:
                assert field in event, f"{field} missing from {event}"
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_jsonl_one_event_per_line(self, tmp_path):
        tracer = Tracer()
        tracer.instant("a")
        tracer.instant("b")
        target = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(target)
        lines = target.read_text().splitlines()
        assert len(lines) == count
        assert all(json.loads(line)["ph"] for line in lines)


class TestNullTracer:
    def test_everything_is_a_noop(self):
        with NULL_TRACER.span("phase", k=1) as span:
            span.set(x=2)
        NULL_TRACER.instant("tick")
        NULL_TRACER.sim_span("w", 0, 10)
        NULL_TRACER.add_complete("c", 0, 1)
        assert len(NULL_TRACER) == 0

"""Run reports: aggregation, §2 verdicts, and golden-stable rendering.

The fixture run directories under ``tests/obs/data/`` are checked in —
one v3 manifest (with failures, retries, chaos cells, metrics, and
hot spots) and one v2 manifest (pre-supervision schema) — and the
rendered markdown is golden-snapshotted under ``tests/golden/``.
Refresh with ``pytest --update-golden``.
"""

from pathlib import Path

import pytest

from repro.obs.report import (
    MEETS,
    MISSES,
    NO_DATA,
    build_report,
    requirement_verdicts,
    resolve_manifest_path,
)

DATA = Path(__file__).parent / "data"
GOLDEN = Path(__file__).parent.parent / "golden"


def assert_matches_golden(text: str, name: str, update: bool) -> None:
    path = GOLDEN / name
    if update:
        path.write_text(text)
        pytest.skip(f"rewrote {path}")
    assert path.exists(), f"golden {path} missing; run pytest --update-golden"
    assert text == path.read_text(), (
        f"report drifted from {path}; run pytest --update-golden if the "
        f"change is intentional"
    )


class TestRequirementVerdicts:
    def test_fig4_delay_judged_against_timing_classes(self):
        rows = [{"p99_us": "120"}, {"p99_us": "420"}]
        verdicts = requirement_verdicts("fig4-delay", rows)
        by_class = {v.requirement: v.verdict for v in verdicts}
        # worst p99 = 420us: inside machine-tools (500us), outside
        # motion-control (250us), inside process-automation (100ms)
        assert by_class == {
            "machine-tools": MEETS,
            "motion-control": MISSES,
            "process-automation": MEETS,
        }

    def test_fig4_jitter_judged_in_ns(self):
        verdicts = requirement_verdicts("fig4-jitter", [{"p99_ns": "950"}])
        by_class = {v.requirement: v.verdict for v in verdicts}
        # 950ns jitter meets even motion-control's 1us bound
        assert set(by_class.values()) == {MEETS}

    def test_fig5_availability_from_outage_bins(self):
        rows = [{"to_io": "12"}, {"to_io": "0"}, {"to_io": "12"},
                {"to_io": "12"}]
        verdicts = requirement_verdicts("fig5", rows)
        assert {v.requirement for v in verdicts} == {
            "industrial", "datacenter",
        }
        # one dead 50ms bin out of four -> 0.75 availability, misses both
        assert all(v.verdict == MISSES for v in verdicts)
        assert "0.7500" in verdicts[0].observed

    def test_mapped_figure_without_rows_reports_no_data(self):
        verdicts = requirement_verdicts("fig6", [])
        assert verdicts and all(v.verdict == NO_DATA for v in verdicts)

    def test_unmapped_figure_has_no_verdicts(self):
        assert requirement_verdicts("fig1", [{"term": "latency"}]) == []


class TestBuildReport:
    def test_loads_rows_via_rows_path_fallback(self):
        # rows_path entries are bare file names in the fixtures, resolved
        # relative to the manifest's directory.
        report = build_report(DATA / "run_v3")
        assert len(report.figure_rows("fig4-delay")) == 2
        assert len(report.figure_rows("fig5")) == 4
        assert report.figure_rows("fig6") == []  # failed job, no rows

    def test_accepts_manifest_file_or_run_dir(self):
        from_dir = build_report(DATA / "run_v3")
        from_file = build_report(DATA / "run_v3" / "manifest.json")
        assert from_dir.to_markdown() == from_file.to_markdown()

    def test_missing_manifest_is_a_friendly_error(self, tmp_path):
        with pytest.raises(ValueError, match="no manifest at"):
            resolve_manifest_path(tmp_path)

    def test_merged_hotspots_sum_across_jobs(self):
        report = build_report(DATA / "run_v3")
        merged = {h["name"]: h for h in report.merged_hotspots()}
        # Port.drain appears in two jobs: 846+100 calls, summed total
        assert merged["Port.drain"]["calls"] == 946
        assert merged["Port.drain"]["total_ns"] == 28610000 + 4000000
        assert merged["Port.drain"]["max_ns"] == 865390

    def test_retry_timeline_covers_failures_and_retried_jobs(self):
        report = build_report(DATA / "run_v3")
        labels = [r.figure for r in report.retry_timeline()]
        assert labels == ["fig6", "chaos-link-flaps"]

    def test_chaos_cells_are_sectioned(self):
        report = build_report(DATA / "run_v3")
        assert [r.figure for r in report.chaos_records()] == [
            "chaos-link-flaps",
        ]

    def test_v2_manifest_reads_without_supervision_fields(self):
        report = build_report(DATA / "run_v2")
        assert [r.status for r in report.manifest.records] == [
            "ok", "cached",
        ]
        assert report.retry_timeline() == []


class TestTelemetrySection:
    """The 'Network telemetry' section from embedded job digests."""

    def test_records_without_telemetry_render_no_section(self):
        report = build_report(DATA / "run_v3")
        assert report.telemetry_records() == []
        assert "Network telemetry" not in report.to_markdown()
        assert "Network telemetry" not in report.to_html()

    def test_overview_sums_across_jobs(self):
        report = build_report(DATA / "run_telemetry")
        totals = report.telemetry_overview()
        assert totals == {
            "jobs": 2,
            "postcards": 321,
            "packets_sampled": 334,
            "flight_events": 2,
            "flight_snapshots": 1,
        }

    def test_queue_and_link_rows_keep_job_order(self):
        report = build_report(DATA / "run_telemetry")
        queues = report.telemetry_queue_rows()
        assert [q["queue"] for q in queues] == [
            "spine0[3]", "leaf1[0]", "instaplc-switch[0]",
        ]
        links = report.telemetry_link_rows()
        assert links[0]["port"] == "spine0[3]"
        assert links[0]["utilization"] == 0.775

    def test_markdown_renders_tables_and_percentages(self):
        text = build_report(DATA / "run_telemetry").to_markdown()
        assert "## Network telemetry" in text
        assert "- INT postcards: 321 (334 packets sampled)" in text
        assert "| spine0[3] | 17 | 120 |" in text
        assert "77.50%" in text
        # a link without a utilization estimate renders a dash
        assert "| vplc2[0] | 27320 | 218.56us | - |" in text

    def test_html_renders_section(self):
        html = build_report(DATA / "run_telemetry").to_html()
        assert "<h2>Network telemetry</h2>" in html
        assert "<h3>Top congested queues</h3>" in html
        assert "<h3>Link utilization</h3>" in html
        assert "77.50%" in html

    def test_markdown_is_byte_stable(self, update_golden):
        text = build_report(DATA / "run_telemetry").to_markdown()
        assert_matches_golden(
            text, "report_telemetry.golden.md", update_golden
        )


class TestSweepTimelineSection:
    """The 'Where the time went' section from sweep.events.jsonl."""

    def test_runs_without_trace_render_no_section(self):
        report = build_report(DATA / "run_v3")
        assert report.sweep_events is None
        assert report.sweep_phases() is None
        assert "Where the time went" not in report.to_markdown()
        assert "Where the time went" not in report.to_html()

    def test_events_loaded_from_run_dir(self):
        report = build_report(DATA / "run_sweeptrace")
        assert report.sweep_events is not None
        assert report.sweep_events[0]["ev"] == "sweep_start"

    def test_phase_breakdown_sums_to_wall_time(self):
        report = build_report(DATA / "run_sweeptrace")
        phases = report.sweep_phases()
        assert sum(phases.values()) == pytest.approx(1.2, abs=1e-6)
        assert phases["compute"] == pytest.approx(0.75)
        assert phases["retry"] == pytest.approx(0.2)

    def test_markdown_renders_phase_and_job_tables(self):
        text = build_report(DATA / "run_sweeptrace").to_markdown()
        assert "## Where the time went" in text
        assert "| phase | time | share |" in text
        assert "| retry | 0.20s | 16.7% |" in text
        assert "| total | 1.20s | 100.0% |" in text
        assert "| job | queue | compute | wall | attempts |" in text
        assert "| fig5 seed=1 duration_ms=600 | 0.15s | 0.75s | 0.50s | 2 |" in text

    def test_html_renders_section(self):
        html = build_report(DATA / "run_sweeptrace").to_html()
        assert "<h2>Where the time went</h2>" in html
        assert "retry" in html

    def test_markdown_is_byte_stable(self, update_golden):
        text = build_report(DATA / "run_sweeptrace").to_markdown()
        assert_matches_golden(
            text, "report_sweeptrace.golden.md", update_golden
        )


class TestGoldenRendering:
    def test_markdown_is_byte_stable_v3(self, update_golden):
        text = build_report(DATA / "run_v3").to_markdown()
        assert_matches_golden(text, "report_v3.golden.md", update_golden)

    def test_markdown_is_byte_stable_v2(self, update_golden):
        text = build_report(DATA / "run_v2").to_markdown()
        assert_matches_golden(text, "report_v2.golden.md", update_golden)

    def test_markdown_deterministic_across_builds(self):
        a = build_report(DATA / "run_v3").to_markdown()
        b = build_report(DATA / "run_v3").to_markdown()
        assert a == b

    def test_timestamp_only_with_generated_at(self):
        report = build_report(DATA / "run_v3")
        assert "Generated" not in report.to_markdown()
        stamped = report.to_markdown(generated_at="2026-08-06 12:00 UTC")
        assert "*Generated 2026-08-06 12:00 UTC.*" in stamped

    def test_html_is_self_contained_and_colored(self):
        html = build_report(DATA / "run_v3").to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html and "http" not in html.split("</style>")[0]
        assert '<td class="bad">failed</td>' in html
        assert '<td class="good">ok</td>' in html
        assert "Chaos campaign verdicts" in html

    def test_html_escapes_error_text(self):
        report = build_report(DATA / "run_v3")
        report.manifest.records[2].error = "ValueError: <boom> & bust"
        html = report.to_html()
        assert "&lt;boom&gt; &amp; bust" in html
        assert "<boom>" not in html

"""The in-band telemetry plane: rings, postcards, flight recorder.

Three layers of guarantees:

- unit behavior of :class:`RingSampler` (bounded, deterministic
  decimation), :class:`FlightRecorder`, and the hub's postcard machinery;
- wiring: networks built inside ``obs.capture(telemetry=...)`` attach
  probes, networks built outside attach ``None`` and stay on the fast
  path;
- determinism: simulation results are bit-identical with telemetry on or
  off, and telemetry output is byte-stable across repeated runs.
"""

import json

import pytest

from repro import obs
from repro.net import (
    Host,
    Link,
    Switch,
    Topology,
    TrafficClass,
    postcard_trace_records,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    FlightRecorder,
    RingSampler,
    TelemetryHub,
    _series_key,
    load_postcards_jsonl,
    load_snapshot,
    snapshot_paths,
    summarize_postcards,
)
from repro.simcore import Simulator


class TestRingSampler:
    def test_capacity_must_be_even_and_at_least_two(self):
        with pytest.raises(ValueError):
            RingSampler("x", capacity=1)
        with pytest.raises(ValueError):
            RingSampler("x", capacity=7)

    def test_records_everything_under_capacity(self):
        ring = RingSampler("x", capacity=8)
        for t in range(5):
            ring.record(t, t * 10)
        assert ring.snapshot()["samples"] == [[t, t * 10] for t in range(5)]
        assert ring.stride == 1
        assert ring.decimations == 0

    def test_overflow_decimates_and_doubles_stride(self):
        ring = RingSampler("x", capacity=4)
        for t in range(9):
            ring.record(t, t)
        # After decimation the ring keeps every other retained sample and
        # admits only stride-aligned observations from then on.
        snap = ring.snapshot()
        assert len(snap["samples"]) <= 4
        assert ring.stride > 1
        assert ring.decimations >= 1
        assert ring.observed == 9
        # Retained timestamps stay sorted and are a subsequence of input.
        times = [t for t, _ in snap["samples"]]
        assert times == sorted(times)
        assert set(times) <= set(range(9))

    def test_decimation_is_deterministic(self):
        def run():
            ring = RingSampler("x", capacity=8)
            for t in range(1000):
                ring.record(t, t * 3)
            return ring.snapshot()

        assert run() == run()

    def test_identical_timestamps_are_preserved(self):
        # Pathological CalendarQueue case: many events at one instant.
        ring = RingSampler("x", capacity=4)
        for _ in range(12):
            ring.record(7, 1)
        snap = ring.snapshot()
        assert all(t == 7 for t, _ in snap["samples"])
        assert ring.observed == 12

    def test_series_key_sorts_labels(self):
        assert _series_key("a", {"z": 1, "b": 2}) == "a{b=2,z=1}"
        assert _series_key("a", {}) == "a"


class TestFlightRecorder:
    def test_per_component_rings_trim_oldest(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.note("lnk", i, "link.down", attempt=i)
        events = rec.snapshot("trim-check")["components"]["lnk"]
        assert [e["attempt"] for e in events] == [2, 3, 4]
        assert rec.events == 5

    def test_snapshot_freezes_current_state(self):
        rec = FlightRecorder()
        rec.note("a", 10, "x")
        snap = rec.snapshot("chaos.fault:a", t_ns=10)
        rec.note("a", 20, "y")
        assert snap["trigger"] == "chaos.fault:a"
        assert len(snap["components"]["a"]) == 1

    def test_snapshot_budget_is_bounded(self):
        rec = FlightRecorder(max_snapshots=2)
        assert rec.snapshot("one") is not None
        assert rec.snapshot("two") is not None
        assert rec.snapshot("three") is None
        assert rec.dropped_snapshots == 1


class TestPostcardSampling:
    def _packet(self, sim, **overrides):
        from repro.net.packet import Packet

        fields = dict(
            src="a", dst="b", payload_bytes=64,
            traffic_class=TrafficClass.BEST_EFFORT, flow_id="f",
            payload={}, created_ns=sim.now, sequence=1,
        )
        fields.update(overrides)
        return Packet.acquire(**fields)

    def test_interval_one_samples_everything(self):
        sim = Simulator()
        hub = TelemetryHub(interval=1)
        assert hub.sampled(self._packet(sim))

    def test_decision_is_deterministic_and_seed_dependent(self):
        sim = Simulator()
        hub_a = TelemetryHub(interval=4, seed=0)
        hub_b = TelemetryHub(interval=4, seed=0)
        packets = [self._packet(sim, sequence=i) for i in range(200)]
        decisions_a = [hub_a.sampled(p) for p in packets]
        decisions_b = [hub_b.sampled(p) for p in packets]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_begin_stamp_finish_builds_hops(self):
        sim = Simulator()
        hub = TelemetryHub(interval=1)
        packet = self._packet(sim)
        hub.begin_postcard(packet, 100)
        hub.stamp_egress(packet, "a[0]", 150, queue_depth=2)
        hub.stamp_ingress(packet, "sw", 200)
        hub.stamp_egress(packet, "sw[1]", 260, queue_depth=0)
        hub.finish_postcard(packet, "b", 300)
        (card,) = hub.postcards
        assert card["schema"] == TELEMETRY_SCHEMA
        assert card["latency_ns"] == 200
        assert [h["dev"] for h in card["hops"]] == ["a", "sw"]
        assert card["hops"][1]["hop_ns"] == 60
        assert not hub._inflight

    def test_stale_draft_is_discarded_on_pool_recycling(self):
        sim = Simulator()
        hub = TelemetryHub(interval=1)
        packet = self._packet(sim)
        hub.begin_postcard(packet, 0)
        packet.release()
        recycled = self._packet(sim)  # same object, new packet_id
        assert recycled is packet
        hub.finish_postcard(recycled, "b", 10)
        assert hub.postcards == []

    def test_inflight_is_bounded_with_oldest_first_eviction(self):
        sim = Simulator()
        hub = TelemetryHub(interval=1, max_inflight=2)
        packets = [self._packet(sim, sequence=i) for i in range(3)]
        for p in packets:
            hub.begin_postcard(p, 0)
        assert len(hub._inflight) == 2
        assert hub.inflight_evicted == 1
        hub.finish_postcard(packets[0], "b", 5)  # evicted: no postcard
        assert hub.postcards == []

    def test_transfer_follows_frame_copies(self):
        # P4 deparse/replication forwards copies; the draft must follow.
        sim = Simulator()
        hub = TelemetryHub(interval=1)
        original = self._packet(sim)
        hub.begin_postcard(original, 0)
        clone = original.copy_for_replication()
        hub.transfer(original, clone)
        hub.finish_postcard(original, "b", 5)
        assert hub.postcards == []  # original no longer carries the draft
        hub.finish_postcard(clone, "b", 9)
        (card,) = hub.postcards
        assert card["delivered_ns"] == 9

    def test_postcard_cap_drops_not_grows(self):
        sim = Simulator()
        hub = TelemetryHub(interval=1, max_postcards=1)
        for i in range(3):
            p = self._packet(sim, sequence=i)
            hub.begin_postcard(p, 0)
            hub.finish_postcard(p, "b", 1)
        assert len(hub.postcards) == 1
        assert hub.postcards_dropped == 2


def run_line(telemetry=None, seed=0, scheduler=None):
    """a -- switch -- b with a burst of traffic; returns (arrivals, hub)."""
    ctx = (
        obs.capture(metrics=False, tracing=False, telemetry=telemetry)
        if telemetry is not None
        else None
    )
    hub = None
    arrivals = []
    if ctx is not None:
        obs_handle = ctx.__enter__()
        hub = obs_handle.telemetry
    try:
        sim = (
            Simulator(seed=seed, scheduler=scheduler)
            if scheduler is not None
            else Simulator(seed=seed)
        )
        topo = Topology(sim)
        a = topo.add_host("a")
        b = topo.add_host("b")
        sw = topo.add_switch("sw")
        topo.connect(a, sw, bandwidth_bps=1e9, propagation_delay_ns=100)
        topo.connect(b, sw, bandwidth_bps=1e9, propagation_delay_ns=100)
        from repro.net import install_shortest_path_routes

        install_shortest_path_routes(topo)
        b.on_receive(lambda p: arrivals.append((sim.now, p.sequence)))

        def burst():
            for i in range(50):
                a.send(
                    "b", payload_bytes=200, flow_id="f", sequence=i,
                    traffic_class=TrafficClass.CYCLIC_RT,
                )

        sim.schedule(burst, after=0)
        sim.run()
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return arrivals, hub


class TestWiring:
    def test_components_built_outside_capture_have_no_probes(self):
        sim = Simulator()
        topo = Topology(sim)
        host = topo.add_host("h")
        sw = topo.add_switch("s")
        link = topo.connect(host, sw)
        assert host._tel is None
        assert sw._tel is None
        assert link._tel is None
        assert all(p._tel is None for p in host.ports + sw.ports)

    def test_null_hub_is_disabled_and_probe_free(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.port_probe(None) is None
        assert NULL_TELEMETRY.host_probe(None) is None
        assert NULL_TELEMETRY.shaper_probe() is None

    def test_capture_installs_probes_and_collects(self):
        arrivals, hub = run_line(telemetry=TelemetryHub(interval=1))
        assert len(arrivals) == 50
        assert len(hub.postcards) == 50
        assert hub.samplers  # queue depth / busy rings exist
        card = hub.postcards[0]
        assert [h["dev"] for h in card["hops"]] == ["a", "sw"]
        assert card["delivered_to"] == "b"

    def test_telemetry_does_not_perturb_the_simulation(self):
        plain, _ = run_line(telemetry=None)
        observed, _ = run_line(telemetry=TelemetryHub(interval=1))
        assert plain == observed


class TestDeterminism:
    def canonical(self, hub):
        return json.dumps(
            hub.snapshot(), sort_keys=True, separators=(",", ":")
        )

    def test_snapshot_is_byte_stable_across_runs(self):
        _, hub_a = run_line(telemetry=TelemetryHub(interval=4, seed=1))
        _, hub_b = run_line(telemetry=TelemetryHub(interval=4, seed=1))
        assert self.canonical(hub_a) == self.canonical(hub_b)

    def test_heap_and_calendar_schedulers_agree_bit_for_bit(self):
        # Scheduler equivalence extends to the telemetry plane: ring
        # contents and postcards must match across backends exactly.
        _, heap_hub = run_line(
            telemetry=TelemetryHub(interval=4), scheduler="heap"
        )
        _, cal_hub = run_line(
            telemetry=TelemetryHub(interval=4), scheduler="calendar"
        )
        assert self.canonical(heap_hub) == self.canonical(cal_hub)
        assert heap_hub.postcards == cal_hub.postcards

    def test_summary_shape(self):
        _, hub = run_line(telemetry=TelemetryHub(interval=1))
        summary = hub.summary(sim_time_ns=1_000_000)
        assert summary["postcards"] == 50
        assert summary["top_queues"], "congested queues should surface"
        assert summary["links"]
        link = summary["links"][0]
        assert {"port", "busy_ns", "tx_bytes", "utilization"} <= set(link)


class TestPersistence:
    def test_postcards_jsonl_round_trip(self, tmp_path):
        _, hub = run_line(telemetry=TelemetryHub(interval=1))
        path = tmp_path / "cards.postcards.jsonl"
        count = hub.write_postcards_jsonl(path)
        assert count == 50
        assert load_postcards_jsonl(path) == hub.postcards

    def test_snapshot_round_trip_and_discovery(self, tmp_path):
        _, hub = run_line(telemetry=TelemetryHub(interval=1))
        path = tmp_path / "job.telemetry.json"
        written = hub.write_snapshot(path)
        assert load_snapshot(path) == written
        assert snapshot_paths(tmp_path) == [path]
        assert snapshot_paths(path) == [path]
        with pytest.raises(FileNotFoundError):
            snapshot_paths(tmp_path / "missing")

    def test_postcards_project_onto_trace_records(self):
        _, hub = run_line(telemetry=TelemetryHub(interval=1))
        records = hub.postcards and postcard_trace_records(hub.postcards)
        assert records
        times = [r.time_ns for r in records]
        assert times == sorted(times)
        rx = [r for r in records if r.direction == "rx"]
        assert len(rx) == len(hub.postcards)
        assert all(r.point == "b" for r in rx)

    def test_summarize_postcards_groups_by_flow(self):
        _, hub = run_line(telemetry=TelemetryHub(interval=1))
        summary = summarize_postcards(hub.postcards)
        assert summary["f"]["postcards"] == 50
        assert summary["f"]["max_latency_ns"] > 0
        assert summary["f"]["total_latency_ns"] >= summary["f"]["max_latency_ns"]

"""Labelled metrics: instruments, registry identity, snapshots."""

import pytest

from repro.obs import (
    DEFAULT_NS_EDGES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fixed_width_edges,
)
from repro.obs.metrics import NULL_HISTOGRAM


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram("h", edges=[10, 20, 30])
        for value in (5, 10, 15, 25, 99):
            hist.observe(value)
        # edges are exclusive upper bounds: 10 goes to the second bucket.
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.sum == 154
        assert hist.min == 5
        assert hist.max == 99

    def test_mean_and_quantile(self):
        hist = Histogram("h", edges=[10, 20, 30])
        for value in (5, 5, 5, 25):
            hist.observe(value)
        assert hist.mean == 10.0
        assert hist.quantile(0.5) == 10.0  # bucket upper bound
        assert hist.quantile(1.0) == 25.0  # exact max
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_default_edges_cover_ns_scales(self):
        hist = Histogram("h")
        assert hist.edges == DEFAULT_NS_EDGES
        hist.observe(1)            # below first edge
        hist.observe(10**11)       # beyond last edge -> overflow bucket
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=[])
        with pytest.raises(ValueError):
            Histogram("h", edges=[10, 5, 10])

    def test_edges_sort_regardless_of_insertion_order(self):
        hist = Histogram("h", edges=[30, 10, 20])
        assert hist.edges == (10, 20, 30)
        hist.observe(5)
        hist.observe(15)
        assert hist.counts == [1, 1, 0, 0]
        assert hist.snapshot()["edges"] == [10, 20, 30]

    def test_fixed_width_round_trips_to_binned_series(self):
        hist = Histogram("h", edges=fixed_width_edges(100, 5))
        for value in (0, 99, 100, 450):
            hist.observe(value)
        assert hist.is_uniform()
        series = hist.to_binned()
        assert series.bin_width_ns == 100
        assert list(series.counts) == [2, 1, 0, 0, 1]

    def test_non_uniform_rejects_binned_view(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=[1, 10, 100]).to_binned()


class TestRegistry:
    def test_same_identity_shares_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("frames", switch="sw0", outcome="fwd")
        b = registry.counter("frames", outcome="fwd", switch="sw0")
        assert a is b  # label order does not matter
        assert registry.counter("frames", switch="sw1", outcome="fwd") is not a

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("x")

    def test_snapshot_keys_and_groups(self):
        registry = MetricsRegistry()
        registry.counter("frames", switch="sw0").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat_ns").observe(150)
        snap = registry.snapshot()
        assert snap["counters"] == {"frames{switch=sw0}": 3}
        assert snap["gauges"] == {"depth": 2}
        assert snap["histograms"]["lat_ns"]["count"] == 1

    def test_null_registry_hands_out_working_counters(self):
        counter = NULL_REGISTRY.counter("c", k="v")
        counter.inc()
        assert counter.value == 1
        # but nothing is retained:
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_registry_histogram_is_shared_noop(self):
        hist = NULL_REGISTRY.histogram("h")
        assert hist is NULL_HISTOGRAM
        hist.observe(123)  # must not raise, must not record

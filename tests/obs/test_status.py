"""Live sweep telemetry: the status.json writer and its readers."""

import json

import pytest

from repro.obs.status import (
    STATE_DEGRADED,
    STATE_DONE,
    STATE_RUNNING,
    STATUS_FILENAME,
    STATUS_SCHEMA,
    SweepStatus,
    format_status,
    load_status,
    resolve_status_path,
)
from repro.runner import JobRecord


def make_record(status="ok", wall=0.5, attempts=1, error=None, figure="fig1"):
    return JobRecord(
        figure=figure,
        seed=0,
        params={},
        key="k" * 16,
        cached=status == "cached",
        wall_time_s=wall,
        rows=3,
        status=status,
        attempts=attempts,
        error=error,
    )


class TestSweepStatusWriter:
    def test_initial_heartbeat_written_on_construction(self, tmp_path):
        path = tmp_path / "run" / STATUS_FILENAME
        SweepStatus(path, total=4, workers=2)
        payload = json.loads(path.read_text())
        assert payload["schema"] == STATUS_SCHEMA
        assert payload["state"] == STATE_RUNNING
        assert payload["total"] == 4
        assert payload["done"] == 0
        assert payload["eta_s"] is None

    def test_counts_ok_cached_failed_and_retries(self, tmp_path):
        path = tmp_path / STATUS_FILENAME
        status = SweepStatus(path, total=3)
        status.job_started(0, "fig1 seed=0")
        assert json.loads(path.read_text())["current"] == ["fig1 seed=0"]
        status.job_finished(0, make_record("ok"))
        status.job_finished(1, make_record("cached", wall=0.0))
        status.job_retried(2, "fig5 seed=0")
        status.job_finished(
            2, make_record("failed", attempts=2, error="boom", figure="fig5")
        )
        payload = json.loads(path.read_text())
        assert payload["done"] == 3
        assert payload["ok"] == 1
        assert payload["cached"] == 1
        assert payload["failed"] == 1
        assert payload["retries"] == 1
        assert payload["current"] == []
        assert payload["last_error"] == "fig5 seed=0: boom"

    def test_finalize_states(self, tmp_path):
        status = SweepStatus(tmp_path / "a.json", total=1)
        status.job_finished(0, make_record("ok"))
        status.finalize()
        assert json.loads(status.path.read_text())["state"] == STATE_DONE

        status = SweepStatus(tmp_path / "b.json", total=1)
        status.job_finished(0, make_record("failed", error="x"))
        status.finalize()
        assert json.loads(status.path.read_text())["state"] == STATE_DEGRADED

    def test_eta_from_computed_durations_only(self, tmp_path):
        status = SweepStatus(tmp_path / "s.json", total=4, workers=2)
        assert status.eta_s() is None
        status.job_finished(0, make_record("cached", wall=0.0))
        assert status.eta_s() is None  # cache hits carry no signal
        status.job_finished(1, make_record("ok", wall=2.0))
        # 2 jobs remain, mean 2.0s, 2 workers -> ~2s
        assert status.eta_s() == pytest.approx(2.0)

    def test_heartbeat_failure_never_raises(self, tmp_path):
        run_dir = tmp_path / "run"
        status = SweepStatus(run_dir / STATUS_FILENAME, total=2)
        status.path = run_dir / "vanished" / STATUS_FILENAME
        status.job_finished(0, make_record("ok"))  # must not raise
        status.job_finished(1, make_record("ok"))
        status.finalize()

    def test_no_stale_tmp_files_left_behind(self, tmp_path):
        status = SweepStatus(tmp_path / STATUS_FILENAME, total=1)
        status.job_finished(0, make_record("ok"))
        status.finalize()
        assert [p.name for p in tmp_path.iterdir()] == [STATUS_FILENAME]


class TestReaders:
    def test_resolve_accepts_file_or_run_dir(self, tmp_path):
        SweepStatus(tmp_path / STATUS_FILENAME, total=1)
        assert resolve_status_path(tmp_path) == tmp_path / STATUS_FILENAME
        assert (
            resolve_status_path(tmp_path / STATUS_FILENAME)
            == tmp_path / STATUS_FILENAME
        )

    def test_missing_status_is_a_friendly_error(self, tmp_path):
        with pytest.raises(ValueError, match="repro obs tail"):
            resolve_status_path(tmp_path)
        with pytest.raises(ValueError, match="run directory"):
            resolve_status_path(tmp_path / "nope.json")

    def test_load_validates_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "repro.runner/manifest/v3"}')
        with pytest.raises(ValueError, match="not a sweep status file"):
            load_status(path)

    def test_load_round_trip(self, tmp_path):
        status = SweepStatus(tmp_path / STATUS_FILENAME, total=2)
        status.job_finished(0, make_record("ok"))
        payload = load_status(status.path)
        assert payload["done"] == 1 and payload["total"] == 2


class TestFormatStatus:
    def test_running_line_shows_current_and_eta(self):
        line = format_status(
            {
                "state": STATE_RUNNING,
                "total": 10,
                "done": 4,
                "ok": 3,
                "cached": 1,
                "failed": 0,
                "retries": 0,
                "current": ["fig5 seed=0", "fig6 seed=1", "fig1 seed=2"],
                "eta_s": 42.0,
            }
        )
        assert line.startswith("[4/10] ok=3 cached=1 failed=0")
        assert "running: fig5 seed=0, fig6 seed=1, +1 more" in line
        assert "eta ~42s" in line
        assert "retries" not in line

    def test_done_line_shows_elapsed(self):
        line = format_status(
            {
                "state": STATE_DONE,
                "total": 2,
                "done": 2,
                "ok": 2,
                "cached": 0,
                "failed": 0,
                "retries": 3,
                "elapsed_s": 12.34,
            }
        )
        assert "retries=3" in line
        assert "done in 12.3s" in line

    def test_long_eta_switches_to_minutes(self):
        line = format_status(
            {"state": STATE_RUNNING, "current": [], "eta_s": 300.0}
        )
        assert "eta ~5m" in line

"""The benchmarks/ pytest recording hook and 'bench record --suite'.

Both tests drive a real pytest subprocess over a tiny throwaway suite
that reuses the checked-in ``benchmarks/conftest.py``, so the
``REPRO_BENCH_OUT`` contract is exercised exactly as CI uses it —
without paying for the actual figure benchmarks.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.cli import main
from repro.obs.history import BenchHistory

REPO = Path(__file__).resolve().parent.parent.parent
HOOK_CONFTEST = REPO / "benchmarks" / "conftest.py"


def make_suite(tmp_path: Path) -> Path:
    suite = tmp_path / "suite"
    suite.mkdir()
    shutil.copy(HOOK_CONFTEST, suite / "conftest.py")
    (suite / "test_quick.py").write_text(
        "import pytest\n"
        "\n"
        "def test_fast():\n"
        "    assert 1 + 1 == 2\n"
        "\n"
        "def test_skipped():\n"
        "    pytest.skip('not timed')\n"
    )
    return suite


def test_hook_records_passing_call_phases_only(tmp_path):
    suite = make_suite(tmp_path)
    out = tmp_path / "samples.json"
    env = dict(os.environ)
    env["REPRO_BENCH_OUT"] = str(out)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(suite), "-q",
         "-p", "no:cacheprovider"],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.obs/bench-samples/v1"
    names = [s["name"] for s in payload["samples"]]
    assert len(names) == 1 and names[0].endswith("::test_fast")
    sample = payload["samples"][0]
    assert sample["unit"] == "s" and sample["value_s"] >= 0


def test_hook_dormant_without_env(tmp_path):
    suite = make_suite(tmp_path)
    env = dict(os.environ)
    env.pop("REPRO_BENCH_OUT", None)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(suite), "-q",
         "-p", "no:cacheprovider"],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert not list(tmp_path.glob("*.json"))


def test_bench_record_times_a_suite_end_to_end(tmp_path, capsys):
    suite = make_suite(tmp_path)
    history_dir = tmp_path / "hist"
    out = tmp_path / "BENCH_e2e.json"
    assert main([
        "bench", "record", "--suite", str(suite),
        "--history", str(history_dir), "--out", str(out),
    ]) == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.obs/bench/v1"
    assert [s["name"] for s in payload["samples"]][0].endswith("::test_fast")
    assert payload["meta"]["python"]
    reports = BenchHistory(history_dir).reports()
    assert len(reports) == 1 and reports[0].id == payload["id"]

"""Per-event-callback wall-time attribution."""

import pytest

from repro.obs import Profiler, callback_name, hotspot_table
from repro.simcore import Simulator


class Component:
    def tick(self):
        pass


class TestCallbackName:
    def test_bound_method(self):
        assert callback_name(Component().tick) == "Component.tick"

    def test_closure_lambda(self):
        def outer():
            return lambda: None

        assert callback_name(outer()) == (
            "TestCallbackName.test_closure_lambda.<locals>"
            ".outer.<locals>.<lambda>"
        )


class TestProfiler:
    def test_aggregates_by_name(self):
        profiler = Profiler()
        component = Component()
        for _ in range(3):
            profiler.run_event(component.tick)
        (spot,) = profiler.hotspots()
        assert spot.name == "Component.tick"
        assert spot.calls == 3
        assert spot.total_ns > 0
        assert spot.max_ns <= spot.total_ns
        assert spot.mean_ns == pytest.approx(spot.total_ns / 3)

    def test_charges_time_even_when_callback_raises(self):
        profiler = Profiler()

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profiler.run_event(boom)
        (spot,) = profiler.hotspots()
        assert spot.calls == 1

    def test_attach_routes_simulator_events(self):
        profiler = Profiler()
        sim = Simulator()
        profiler.attach(sim)
        component = Component()
        sim.schedule(component.tick, after=1)
        sim.schedule(component.tick, after=2)
        sim.run()
        (spot,) = profiler.hotspots()
        assert spot.calls == 2

    def test_unattached_simulator_pays_nothing(self):
        sim = Simulator()
        assert sim._profiler is None

    def test_table_and_rows(self):
        profiler = Profiler()
        profiler.run_event(Component().tick)
        rows = profiler.as_rows()
        assert rows[0]["name"] == "Component.tick"
        table = profiler.to_table()
        assert "Component.tick" in table
        assert "share" in table
        # manifest rows render back through the module-level helper
        assert "Component.tick" in hotspot_table(rows)

    def test_empty_profile_renders_placeholder(self):
        assert Profiler().to_table() == "(no profiled events)"

"""CLI surface of the cross-run observability layer.

``repro report``, ``repro bench record/compare``, ``repro obs tail``, and
the v3-aware ``repro obs`` manifest summary — plus the status.json
heartbeat a real ``repro sweep`` leaves behind.
"""

import json
import shutil
from pathlib import Path

from repro.cli import main
from repro.obs.history import BenchHistory, BenchReport, BenchSample
from repro.obs.status import STATUS_FILENAME, SweepStatus

DATA = Path(__file__).parent / "data"


def seeded_history(history_dir: Path, series, name="bench_a"):
    history = BenchHistory(history_dir)
    for i, value in enumerate(series):
        history.append(
            BenchReport(
                recorded_at=f"t{i:03d}",
                samples=[BenchSample(name=name, value_s=value)],
            )
        )
    return history


def samples_file(path: Path, value_s: float, name="bench_a") -> Path:
    path.write_text(
        json.dumps(
            {
                "schema": "repro.obs/bench-samples/v1",
                "samples": [
                    {"name": name, "value_s": value_s, "unit": "s",
                     "rounds": 1}
                ],
            }
        )
    )
    return path


class TestReportCommand:
    def test_report_on_v3_run_dir(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main([
            "report", str(DATA / "run_v3"), "--out-dir", str(out),
        ]) == 0
        assert (out / "report.md").exists()
        assert (out / "report.html").exists()
        stdout = capsys.readouterr().out
        assert "requirement-class checks met" in stdout
        # the written files are stamped, the body matches the golden
        body = (out / "report.md").read_text()
        assert "## Figure status" in body
        assert "*Generated " in body

    def test_report_on_v2_manifest_file(self, tmp_path):
        run_dir = tmp_path / "run"
        shutil.copytree(DATA / "run_v2", run_dir)
        assert main(["report", str(run_dir / "manifest.json")]) == 0
        assert (run_dir / "report.html").exists()

    def test_report_missing_run_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert "no manifest at" in err
        assert "Traceback" not in err


class TestBenchRecord:
    def test_record_from_samples_file(self, tmp_path, capsys):
        history_dir = tmp_path / "hist"
        samples = samples_file(tmp_path / "samples.json", 1.25)
        out = tmp_path / "BENCH_test.json"
        assert main([
            "bench", "record", "--history", str(history_dir),
            "--from", str(samples), "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs/bench/v1"
        assert payload["samples"] == [
            {"name": "bench_a", "value_s": 1.25, "unit": "s", "rounds": 1}
        ]
        assert payload["id"] and payload["recorded_at"]
        # appended to the history store too
        assert len(BenchHistory(history_dir).reports()) == 1

    def test_record_accepts_existing_bench_report_as_input(self, tmp_path):
        source = BenchReport(
            recorded_at="t0",
            samples=[BenchSample(name="bench_a", value_s=0.5)],
        )
        src_path = source.save(tmp_path / "BENCH_old.json")
        assert main([
            "bench", "record", "--history", str(tmp_path / "hist"),
            "--from", str(src_path), "--out", str(tmp_path / "BENCH_new.json"),
            "--no-history",
        ]) == 0
        assert not (tmp_path / "hist" / "history.jsonl").exists()

    def test_record_empty_samples_is_usage_error(self, tmp_path, capsys):
        samples = tmp_path / "samples.json"
        samples.write_text('{"schema": "repro.obs/bench-samples/v1", '
                           '"samples": []}')
        assert main([
            "bench", "record", "--history", str(tmp_path / "hist"),
            "--from", str(samples),
        ]) == 2
        assert "no benchmark samples" in capsys.readouterr().err


class TestBenchCompare:
    def test_injected_slowdown_fails_real_history_passes(
        self, tmp_path, capsys
    ):
        history_dir = tmp_path / "hist"
        seeded_history(
            history_dir, [1.00, 1.04, 0.97, 1.02, 0.99, 1.01, 1.03, 0.98]
        )
        ok_file = tmp_path / "BENCH_ok.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=1.02)],
        ).save(ok_file)
        assert main([
            "bench", "compare", str(ok_file), "--history", str(history_dir),
        ]) == 0
        slow_file = tmp_path / "BENCH_slow.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=3.06)],
        ).save(slow_file)
        assert main([
            "bench", "compare", str(slow_file), "--history", str(history_dir),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        history_dir = tmp_path / "hist"
        seeded_history(history_dir, [1.0] * 6)
        slow_file = tmp_path / "BENCH_slow.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=3.0)],
        ).save(slow_file)
        assert main([
            "bench", "compare", str(slow_file), "--history",
            str(history_dir), "--warn-only",
        ]) == 0
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "--warn-only" in captured.err

    def test_defaults_to_newest_bench_file_in_history(self, tmp_path):
        history_dir = tmp_path / "hist"
        seeded_history(history_dir, [1.0] * 4)
        BenchReport(
            recorded_at="a",
            samples=[BenchSample(name="bench_a", value_s=3.0)],
        ).save(history_dir / "BENCH_2026-01-01_000000.json")
        BenchReport(
            recorded_at="b",
            samples=[BenchSample(name="bench_a", value_s=1.0)],
        ).save(history_dir / "BENCH_2026-02-01_000000.json")
        # newest (lexicographically last) file is the quick one -> ok
        assert main(["bench", "compare", "--history", str(history_dir)]) == 0

    def test_no_bench_files_is_usage_error(self, tmp_path, capsys):
        assert main([
            "bench", "compare", "--history", str(tmp_path / "empty"),
        ]) == 2
        assert "repro bench record" in capsys.readouterr().err


class TestObsTail:
    def test_missing_status_is_friendly(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "repro:" in err
        assert "run directory" in err
        assert "Traceback" not in err

    def test_tail_prints_one_status_line(self, tmp_path, capsys):
        from repro.runner import JobRecord

        status = SweepStatus(tmp_path / STATUS_FILENAME, total=2, workers=1)
        status.job_finished(0, JobRecord(
            figure="fig1", seed=0, params={}, key="k", cached=False,
            wall_time_s=0.4, rows=13,
        ))
        status.finalize()
        assert main(["obs", "tail", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[1/2] ok=1 cached=0 failed=0" in out

    def test_tail_exit_degraded_on_failures(self, tmp_path, capsys):
        from repro.runner import JobRecord

        status = SweepStatus(tmp_path / STATUS_FILENAME, total=1)
        status.job_finished(0, JobRecord(
            figure="fig6", seed=0, params={}, key="k", cached=False,
            wall_time_s=0.4, rows=0, status="failed", error="boom",
        ))
        status.finalize()
        assert main(["obs", "tail", str(tmp_path / STATUS_FILENAME)]) == 3


class TestObsSummaryV3:
    def test_summary_understands_v3_fields(self, capsys):
        manifest = DATA / "run_v3" / "manifest.json"
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert (
            "4 job(s): 2 ok, 1 cached, 1 failed, 3 retry attempt(s); "
            "1 with observability data"
        ) in out
        assert "fig6 seed=0: FAILED after 3 attempt(s): ValueError: boom" in out
        # histograms listed in sorted key order
        body = out[out.index("histograms:"):]
        assert body.index("fieldbus.cycle_ns") < body.index("net.port.tx_ns")

    def test_summary_reads_v2_manifest(self, capsys):
        manifest = DATA / "run_v2" / "manifest.json"
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2 job(s): 1 ok, 1 cached, 0 failed" in out
        assert "retry attempt" not in out


class TestSweepHeartbeat:
    def test_sweep_writes_status_next_to_manifest(self, tmp_path):
        manifest = tmp_path / "run" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(manifest),
        ]) == 0
        status = json.loads((tmp_path / "run" / STATUS_FILENAME).read_text())
        assert status["schema"] == "repro.obs/status/v1"
        assert status["state"] == "done"
        assert status["total"] == 1
        assert status["done"] == 1 and status["ok"] == 1

    def test_no_status_flag_suppresses_heartbeat(self, tmp_path):
        manifest = tmp_path / "run" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(manifest), "--no-status",
        ]) == 0
        assert not (tmp_path / "run" / STATUS_FILENAME).exists()

    def test_explicit_status_path_wins(self, tmp_path):
        target = tmp_path / "elsewhere" / "live.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "run" / "manifest.json"),
            "--status", str(target),
        ]) == 0
        assert json.loads(target.read_text())["state"] == "done"

    def test_results_unperturbed_by_heartbeat(self, tmp_path):
        with_status = tmp_path / "a" / "manifest.json"
        without = tmp_path / "b" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(with_status),
        ]) == 0
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(without), "--no-status",
        ]) == 0
        a = json.loads(with_status.read_text())["jobs"][0]
        b = json.loads(without.read_text())["jobs"][0]
        assert a["key"] == b["key"]  # cache keys unchanged
        assert a["rows"] == b["rows"]

"""CLI surface of the cross-run observability layer.

``repro report``, ``repro bench record/compare``, ``repro obs tail``, and
the v3-aware ``repro obs`` manifest summary — plus the status.json
heartbeat a real ``repro sweep`` leaves behind.
"""

import json
import shutil
from pathlib import Path

from repro.cli import main
from repro.obs.history import BenchHistory, BenchReport, BenchSample
from repro.obs.status import STATUS_FILENAME, SweepStatus

DATA = Path(__file__).parent / "data"


def seeded_history(history_dir: Path, series, name="bench_a"):
    history = BenchHistory(history_dir)
    for i, value in enumerate(series):
        history.append(
            BenchReport(
                recorded_at=f"t{i:03d}",
                samples=[BenchSample(name=name, value_s=value)],
            )
        )
    return history


def samples_file(path: Path, value_s: float, name="bench_a") -> Path:
    path.write_text(
        json.dumps(
            {
                "schema": "repro.obs/bench-samples/v1",
                "samples": [
                    {"name": name, "value_s": value_s, "unit": "s",
                     "rounds": 1}
                ],
            }
        )
    )
    return path


class TestReportCommand:
    def test_report_on_v3_run_dir(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main([
            "report", str(DATA / "run_v3"), "--out-dir", str(out),
        ]) == 0
        assert (out / "report.md").exists()
        assert (out / "report.html").exists()
        stdout = capsys.readouterr().out
        assert "requirement-class checks met" in stdout
        # the written files are stamped, the body matches the golden
        body = (out / "report.md").read_text()
        assert "## Figure status" in body
        assert "*Generated " in body

    def test_report_on_v2_manifest_file(self, tmp_path):
        run_dir = tmp_path / "run"
        shutil.copytree(DATA / "run_v2", run_dir)
        assert main(["report", str(run_dir / "manifest.json")]) == 0
        assert (run_dir / "report.html").exists()

    def test_report_missing_run_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert "no manifest at" in err
        assert "Traceback" not in err


class TestBenchRecord:
    def test_record_from_samples_file(self, tmp_path, capsys):
        history_dir = tmp_path / "hist"
        samples = samples_file(tmp_path / "samples.json", 1.25)
        out = tmp_path / "BENCH_test.json"
        assert main([
            "bench", "record", "--history", str(history_dir),
            "--from", str(samples), "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs/bench/v1"
        assert payload["samples"] == [
            {"name": "bench_a", "value_s": 1.25, "unit": "s", "rounds": 1}
        ]
        assert payload["id"] and payload["recorded_at"]
        # appended to the history store too
        assert len(BenchHistory(history_dir).reports()) == 1

    def test_record_accepts_existing_bench_report_as_input(self, tmp_path):
        source = BenchReport(
            recorded_at="t0",
            samples=[BenchSample(name="bench_a", value_s=0.5)],
        )
        src_path = source.save(tmp_path / "BENCH_old.json")
        assert main([
            "bench", "record", "--history", str(tmp_path / "hist"),
            "--from", str(src_path), "--out", str(tmp_path / "BENCH_new.json"),
            "--no-history",
        ]) == 0
        assert not (tmp_path / "hist" / "history.jsonl").exists()

    def test_record_empty_samples_is_usage_error(self, tmp_path, capsys):
        samples = tmp_path / "samples.json"
        samples.write_text('{"schema": "repro.obs/bench-samples/v1", '
                           '"samples": []}')
        assert main([
            "bench", "record", "--history", str(tmp_path / "hist"),
            "--from", str(samples),
        ]) == 2
        assert "no benchmark samples" in capsys.readouterr().err


class TestBenchCompare:
    def test_injected_slowdown_fails_real_history_passes(
        self, tmp_path, capsys
    ):
        history_dir = tmp_path / "hist"
        seeded_history(
            history_dir, [1.00, 1.04, 0.97, 1.02, 0.99, 1.01, 1.03, 0.98]
        )
        ok_file = tmp_path / "BENCH_ok.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=1.02)],
        ).save(ok_file)
        assert main([
            "bench", "compare", str(ok_file), "--history", str(history_dir),
        ]) == 0
        slow_file = tmp_path / "BENCH_slow.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=3.06)],
        ).save(slow_file)
        assert main([
            "bench", "compare", str(slow_file), "--history", str(history_dir),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        history_dir = tmp_path / "hist"
        seeded_history(history_dir, [1.0] * 6)
        slow_file = tmp_path / "BENCH_slow.json"
        BenchReport(
            recorded_at="now",
            samples=[BenchSample(name="bench_a", value_s=3.0)],
        ).save(slow_file)
        assert main([
            "bench", "compare", str(slow_file), "--history",
            str(history_dir), "--warn-only",
        ]) == 0
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "--warn-only" in captured.err

    def test_defaults_to_newest_bench_file_in_history(self, tmp_path):
        history_dir = tmp_path / "hist"
        seeded_history(history_dir, [1.0] * 4)
        BenchReport(
            recorded_at="a",
            samples=[BenchSample(name="bench_a", value_s=3.0)],
        ).save(history_dir / "BENCH_2026-01-01_000000.json")
        BenchReport(
            recorded_at="b",
            samples=[BenchSample(name="bench_a", value_s=1.0)],
        ).save(history_dir / "BENCH_2026-02-01_000000.json")
        # newest (lexicographically last) file is the quick one -> ok
        assert main(["bench", "compare", "--history", str(history_dir)]) == 0

    def test_no_history_yet_exits_zero(self, tmp_path, capsys):
        # CI seeds the history with its own first 'bench record': a
        # missing/empty history.jsonl is bring-up, not a failure.
        assert main([
            "bench", "compare", "--history", str(tmp_path / "empty"),
        ]) == 0
        out = capsys.readouterr().out
        assert "no history yet" in out
        assert "repro bench record" in out

    def test_empty_history_file_exits_zero(self, tmp_path, capsys):
        history_dir = tmp_path / "hist"
        history_dir.mkdir()
        (history_dir / "history.jsonl").write_text("")
        assert main(["bench", "compare", "--history", str(history_dir)]) == 0
        assert "no history yet" in capsys.readouterr().out

    def test_history_without_bench_files_is_usage_error(
        self, tmp_path, capsys
    ):
        history_dir = tmp_path / "hist"
        seeded_history(history_dir, [1.0] * 3)
        for stray in history_dir.glob("BENCH_*.json"):
            stray.unlink()
        assert main(["bench", "compare", "--history", str(history_dir)]) == 2
        assert "repro bench record" in capsys.readouterr().err


class TestObsTail:
    def test_missing_status_is_friendly(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "repro:" in err
        assert "run directory" in err
        assert "Traceback" not in err

    def test_tail_prints_one_status_line(self, tmp_path, capsys):
        from repro.runner import JobRecord

        status = SweepStatus(tmp_path / STATUS_FILENAME, total=2, workers=1)
        status.job_finished(0, JobRecord(
            figure="fig1", seed=0, params={}, key="k", cached=False,
            wall_time_s=0.4, rows=13,
        ))
        status.finalize()
        assert main(["obs", "tail", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[1/2] ok=1 cached=0 failed=0" in out

    def test_tail_exit_degraded_on_failures(self, tmp_path, capsys):
        from repro.runner import JobRecord

        status = SweepStatus(tmp_path / STATUS_FILENAME, total=1)
        status.job_finished(0, JobRecord(
            figure="fig6", seed=0, params={}, key="k", cached=False,
            wall_time_s=0.4, rows=0, status="failed", error="boom",
        ))
        status.finalize()
        assert main(["obs", "tail", str(tmp_path / STATUS_FILENAME)]) == 3


class TestObsSummaryV3:
    def test_summary_understands_v3_fields(self, capsys):
        manifest = DATA / "run_v3" / "manifest.json"
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert (
            "4 job(s): 2 ok, 1 cached, 1 failed, 3 retry attempt(s); "
            "1 with observability data"
        ) in out
        assert "fig6 seed=0: FAILED after 3 attempt(s): ValueError: boom" in out
        # histograms listed in sorted key order
        body = out[out.index("histograms:"):]
        assert body.index("fieldbus.cycle_ns") < body.index("net.port.tx_ns")

    def test_summary_reads_v2_manifest(self, capsys):
        manifest = DATA / "run_v2" / "manifest.json"
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2 job(s): 1 ok, 1 cached, 0 failed" in out
        assert "retry attempt" not in out


class TestSweepHeartbeat:
    def test_sweep_writes_status_next_to_manifest(self, tmp_path):
        manifest = tmp_path / "run" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(manifest),
        ]) == 0
        status = json.loads((tmp_path / "run" / STATUS_FILENAME).read_text())
        assert status["schema"] == "repro.obs/status/v1"
        assert status["state"] == "done"
        assert status["total"] == 1
        assert status["done"] == 1 and status["ok"] == 1

    def test_no_status_flag_suppresses_heartbeat(self, tmp_path):
        manifest = tmp_path / "run" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(manifest), "--no-status",
        ]) == 0
        assert not (tmp_path / "run" / STATUS_FILENAME).exists()

    def test_explicit_status_path_wins(self, tmp_path):
        target = tmp_path / "elsewhere" / "live.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "run" / "manifest.json"),
            "--status", str(target),
        ]) == 0
        assert json.loads(target.read_text())["state"] == "done"

class TestObsTailFollowReplace:
    def test_follow_survives_atomic_replacement_and_reloads(
        self, tmp_path, capsys
    ):
        import os
        import threading

        from repro.runner import JobRecord

        path = tmp_path / STATUS_FILENAME
        running = SweepStatus(path, total=1, workers=1)

        def replace_with_finished():
            # Simulate a second writer atomically replacing the status
            # file (new inode) while the follower is mid-poll.
            done = SweepStatus(tmp_path / "next.json", total=1, workers=1)
            done.job_finished(0, JobRecord(
                figure="fig1", seed=0, params={}, key="k", cached=False,
                wall_time_s=0.1, rows=3,
            ))
            done.finalize()
            os.replace(tmp_path / "next.json", path)

        timer = threading.Timer(0.25, replace_with_finished)
        timer.start()
        try:
            code = main([
                "obs", "tail", str(tmp_path), "--follow",
                "--interval", "0.05",
            ])
        finally:
            timer.cancel()
        assert code == 0
        out = capsys.readouterr().out
        # Both generations printed: the running one and the replacement.
        assert "[0/1]" in out
        assert "[1/1] ok=1" in out
        assert "done" in out
        assert running.state == "running"  # original writer untouched

    def test_follow_tolerates_briefly_missing_file(self, tmp_path, capsys):
        import threading

        from repro.runner import JobRecord

        path = tmp_path / STATUS_FILENAME
        SweepStatus(path, total=1, workers=1)

        def vanish_then_return():
            path.unlink()
            status = SweepStatus(path, total=1, workers=1)
            status.job_finished(0, JobRecord(
                figure="fig1", seed=0, params={}, key="k", cached=False,
                wall_time_s=0.1, rows=3,
            ))
            status.finalize()

        timer = threading.Timer(0.25, vanish_then_return)
        timer.start()
        try:
            code = main([
                "obs", "tail", str(tmp_path), "--follow",
                "--interval", "0.05",
            ])
        finally:
            timer.cancel()
        assert code == 0
        assert "done" in capsys.readouterr().out


class TestTelemetryCli:
    def run_sweep(self, tmp_path, name):
        run_dir = tmp_path / name
        assert main([
            "sweep", "fig5", "--seeds", "0",
            "--param", "duration_ms=600",
            "--jobs", "1", "--no-cache", "--no-status",
            "--manifest", str(run_dir / "manifest.json"),
            "--telemetry", "--telemetry-interval", "8",
        ]) == 0
        return run_dir

    def test_sweep_telemetry_writes_artifacts_and_manifest_digest(
        self, tmp_path, capsys
    ):
        run_dir = self.run_sweep(tmp_path, "run")
        capsys.readouterr()
        telemetry_dir = run_dir / "telemetry"
        snapshots = sorted(telemetry_dir.glob("*.telemetry.json"))
        postcards = sorted(telemetry_dir.glob("*.postcards.jsonl"))
        assert len(snapshots) == 1 and len(postcards) == 1
        job = json.loads(
            (run_dir / "manifest.json").read_text()
        )["jobs"][0]
        assert job["telemetry"]["postcards"] > 0
        assert job["telemetry"]["top_queues"] is not None
        assert job["telemetry_path"] == str(snapshots[0])

    def test_telemetry_output_is_byte_stable_for_fixed_seed(self, tmp_path):
        run_a = self.run_sweep(tmp_path, "a")
        run_b = self.run_sweep(tmp_path, "b")
        for suffix in ("*.telemetry.json", "*.postcards.jsonl"):
            (file_a,) = (run_a / "telemetry").glob(suffix)
            (file_b,) = (run_b / "telemetry").glob(suffix)
            assert file_a.read_bytes() == file_b.read_bytes(), suffix

    def test_obs_telemetry_and_flight_render(self, tmp_path, capsys):
        run_dir = self.run_sweep(tmp_path, "run")
        capsys.readouterr()
        assert main([
            "obs", "telemetry", str(run_dir / "telemetry"),
        ]) == 0
        out = capsys.readouterr().out
        assert "postcards:" in out
        assert "samplers:" in out
        assert main(["obs", "flight", str(run_dir / "telemetry")]) == 0
        assert "snapshots" in capsys.readouterr().out

    def test_obs_telemetry_missing_path_is_friendly(self, tmp_path, capsys):
        assert main(["obs", "telemetry", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "repro:" in err and "Traceback" not in err

    def test_report_includes_network_telemetry_section(
        self, tmp_path, capsys
    ):
        run_dir = self.run_sweep(tmp_path, "run")
        assert main(["report", str(run_dir)]) == 0
        capsys.readouterr()
        assert "## Network telemetry" in (run_dir / "report.md").read_text()


class TestSweepTimelineCli:
    def run_sweep(self, tmp_path, name="run", *extra):
        run_dir = tmp_path / name
        assert main([
            "sweep", "fig1", "--seeds", "0,1",
            "--jobs", "1", "--no-cache", "--no-status",
            "--manifest", str(run_dir / "manifest.json"),
            "--sweeptrace", *extra,
        ]) == 0
        return run_dir

    def test_sweeptrace_writes_events_next_to_manifest(self, tmp_path):
        from repro.obs.sweeptrace import EVENTS_FILENAME, load_events

        run_dir = self.run_sweep(tmp_path)
        events = load_events(run_dir / EVENTS_FILENAME)
        assert events[0]["ev"] == "sweep_start"
        assert events[-1]["ev"] == "sweep_end"
        jobs = json.loads((run_dir / "manifest.json").read_text())["jobs"]
        assert all(job["span"] for job in jobs)
        assert all(job["queue_s"] is not None for job in jobs)

    def test_explicit_sweeptrace_path_wins(self, tmp_path):
        target = tmp_path / "elsewhere" / "trace.jsonl"
        self.run_sweep(tmp_path, "run", str(target))
        assert target.exists()

    def test_obs_timeline_renders_phases_and_critical_path(
        self, tmp_path, capsys
    ):
        run_dir = self.run_sweep(tmp_path)
        capsys.readouterr()
        assert main(["obs", "timeline", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Sweep timeline — trace" in out
        assert "Where the time went (critical path):" in out
        assert "compute" in out and "total" in out
        assert "Critical path (" in out

    def test_obs_timeline_writes_merged_chrome(self, tmp_path, capsys):
        run_dir = self.run_sweep(tmp_path)
        merged = run_dir / "merged.trace.json"
        assert main([
            "obs", "timeline", str(run_dir), "--chrome", str(merged),
        ]) == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(merged.read_text())
        assert payload["traceEvents"]

    def test_obs_timeline_without_trace_is_friendly(self, tmp_path, capsys):
        tmp_path.joinpath("manifest.json").write_text("{}")
        assert main(["obs", "timeline", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "--sweeptrace" in err
        assert "Traceback" not in err


class TestObsSlowestJobs:
    def test_obs_accepts_run_directory(self, capsys):
        assert main(["obs", str(DATA / "run_v3")]) == 0
        out = capsys.readouterr().out
        assert "4 job(s)" in out

    def test_slowest_jobs_table_ranks_by_wall_time(self, capsys):
        assert main(["obs", str(DATA / "run_v3" / "manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "slowest jobs:" in out
        table = out[out.index("slowest jobs:"):]
        header, *rows = [
            line.strip() for line in table.splitlines()[1:] if line.strip()
        ]
        assert header.split() == ["job", "wall", "attempts", "backend"]
        # non-cached records only, slowest first
        walls = []
        for row in rows[:3]:
            if "s" not in row:
                break
            walls.append(float(row.split()[-3].rstrip("s")))
        assert walls == sorted(walls, reverse=True)


class TestSweepHeartbeatUnperturbed:
    def test_results_unperturbed_by_heartbeat(self, tmp_path):
        with_status = tmp_path / "a" / "manifest.json"
        without = tmp_path / "b" / "manifest.json"
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(with_status),
        ]) == 0
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(without), "--no-status",
        ]) == 0
        a = json.loads(with_status.read_text())["jobs"][0]
        b = json.loads(without.read_text())["jobs"][0]
        assert a["key"] == b["key"]  # cache keys unchanged
        assert a["rows"] == b["rows"]

"""End-to-end sweep tracing: ids, writer, analyzer, and live sweeps.

Three layers of coverage:

- pure functions on synthetic event streams (deterministic ids, the
  critical-path tiling invariant, canonical byte-stability lines);
- live serial sweeps through :func:`repro.runner.run_jobs` with
  ``sweeptrace=`` (event sequence, manifest timing fields, replay
  stability);
- a live ``subprocess:2`` sweep proving worker-lifecycle events land and
  the merged Chrome trace correlates engine and child spans by span id.
"""

import json

import pytest

from repro.obs.sweeptrace import (
    EVENTS_FILENAME,
    PHASES,
    SWEEPTRACE_SCHEMA,
    SweepTraceWriter,
    build_timeline,
    canonical_lines,
    critical_path,
    format_timeline,
    job_span_id,
    load_events,
    merge_chrome,
    phase_breakdown,
    resolve_events_path,
    sweep_trace_id,
    write_merged_chrome,
)
from repro.runner import (
    ResultCache,
    SerialBackend,
    SubprocessWorkerBackend,
    make_job,
    run_jobs,
)

from ..runner.faulty import FLAKY, STEADY, registered


class TestDeterministicIds:
    def test_trace_id_ignores_key_order(self):
        assert sweep_trace_id(["b", "a"]) == sweep_trace_id(["a", "b"])

    def test_trace_id_depends_on_keys(self):
        assert sweep_trace_id(["a", "b"]) != sweep_trace_id(["a", "c"])

    def test_span_ids_distinct_per_key(self):
        trace = sweep_trace_id(["a", "b"])
        assert job_span_id(trace, "a") != job_span_id(trace, "b")

    def test_ids_are_short_stable_hex(self):
        trace = sweep_trace_id(["a"])
        assert len(trace) == 16
        int(trace, 16)  # hex or raise
        assert sweep_trace_id(["a"]) == trace


class TestWriterAndLoader:
    def test_emit_drops_none_fields_and_sorts_keys(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = SweepTraceWriter(path)
        writer.emit("submitted", job=1, span="abc", error=None)
        writer.close()
        (line,) = path.read_text().splitlines()
        event = json.loads(line)
        assert "error" not in event
        assert event["ev"] == "submitted"
        assert list(event) == sorted(event)

    def test_unwritable_path_never_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        writer = SweepTraceWriter(blocker / "sub" / "events.jsonl")
        writer.emit("submitted", job=0)  # silently dropped
        writer.close()

    def test_loader_skips_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"ev":"sweep_start","ts":1.0}\n'
            "\n"
            '{"ev":"submitted","ts":1.1,"job":0}\n'
            '{"ev":"attempt_start","ts":1.2,"jo'  # crash mid-write
        )
        events = load_events(path)
        assert [e["ev"] for e in events] == ["sweep_start", "submitted"]

    def test_resolve_accepts_dir_or_file(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        path.write_text("")
        assert resolve_events_path(tmp_path) == path
        assert resolve_events_path(path) == path

    def test_resolve_missing_mentions_sweeptrace_flag(self, tmp_path):
        with pytest.raises(ValueError, match="--sweeptrace"):
            resolve_events_path(tmp_path)

    def test_canonical_lines_drop_volatile_fields(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text('{"ev":"attempt_end","ts":1.5,"job":0,"wall_s":0.4}\n')
        b.write_text('{"ev":"attempt_end","ts":9.9,"job":0,"wall_s":8.8}\n')
        assert canonical_lines(a) == canonical_lines(b)
        assert canonical_lines(a) == ['{"ev":"attempt_end","job":0}']


def retry_scenario():
    """Two attempts of one job with a retry gap, fixed timestamps."""
    return [
        {"ev": "sweep_start", "ts": 100.0, "schema": SWEEPTRACE_SCHEMA,
         "trace": "t0", "total": 1, "workers": 1},
        {"ev": "submitted", "ts": 100.0, "job": 0, "figure": "fig-x",
         "seed": 3, "span": "s0", "key": "k0"},
        {"ev": "queued", "ts": 100.0, "job": 0, "position": 0},
        {"ev": "attempt_start", "ts": 100.1, "job": 0, "figure": "fig-x",
         "attempt": 1},
        {"ev": "attempt_end", "ts": 100.5, "job": 0, "figure": "fig-x",
         "attempt": 1, "outcome": "failed", "wall_s": 0.4},
        {"ev": "retry_scheduled", "ts": 100.5, "job": 0, "figure": "fig-x",
         "attempt": 1, "delay_s": 0.3},
        {"ev": "attempt_start", "ts": 100.8, "job": 0, "figure": "fig-x",
         "attempt": 2},
        {"ev": "attempt_end", "ts": 101.2, "job": 0, "figure": "fig-x",
         "attempt": 2, "outcome": "ok", "wall_s": 0.4},
        {"ev": "sweep_end", "ts": 101.25, "trace": "t0", "ok": 1,
         "failed": 0, "cached": 0, "wall_s": 1.25},
    ]


class TestTimelineModel:
    def test_attempts_matched_and_labelled(self):
        tl = build_timeline(retry_scenario())
        assert tl.trace == "t0"
        assert tl.wall_s == pytest.approx(1.25)
        assert [a.attempt for a in tl.attempts] == [1, 2]
        assert [a.outcome for a in tl.attempts] == ["failed", "ok"]
        assert tl.job_label(0) == "fig-x seed=3"

    def test_interrupted_sweep_closes_open_attempts(self):
        events = retry_scenario()[:-2]  # no final attempt_end, no sweep_end
        tl = build_timeline(events)
        assert tl.attempts[-1].outcome == "unfinished"
        assert tl.attempts[-1].end == tl.t1

    def test_critical_path_classifies_retry_queue_compute(self):
        tl = build_timeline(retry_scenario())
        segments = critical_path(tl)
        kinds = [s.kind for s in segments]
        assert kinds == ["queue", "compute", "retry", "compute", "idle"]
        phases = phase_breakdown(segments)
        assert phases["compute"] == pytest.approx(0.8)
        assert phases["retry"] == pytest.approx(0.3)
        assert phases["queue"] == pytest.approx(0.1)
        assert phases["idle"] == pytest.approx(0.05)

    def test_segments_tile_the_wall_clock_exactly(self):
        tl = build_timeline(retry_scenario())
        segments = critical_path(tl)
        # The tiling invariant: segments abut with no gaps or overlaps,
        # so the phase breakdown sums to the wall time exactly.
        assert segments[0].start == pytest.approx(tl.t0, abs=1e-9)
        assert segments[-1].end == pytest.approx(tl.t1, abs=1e-9)
        for left, right in zip(segments, segments[1:]):
            assert left.end == pytest.approx(right.start, abs=1e-9)
        total = sum(phase_breakdown(segments).values())
        assert total == pytest.approx(tl.wall_s, abs=1e-6)

    def test_phase_breakdown_lists_every_phase(self):
        phases = phase_breakdown(critical_path(build_timeline(
            retry_scenario()
        )))
        assert tuple(phases) == PHASES

    def test_format_timeline_renders_lanes_and_phases(self):
        tl = build_timeline(retry_scenario())
        text = format_timeline(tl)
        assert "Sweep timeline — trace t0" in text
        assert "Where the time went (critical path):" in text
        assert "retry" in text and "compute" in text
        assert "Critical path (5 segment(s)):" in text
        assert "|" in text  # the lane Gantt

    def test_merge_chrome_emits_lane_tracks(self):
        tl = build_timeline(retry_scenario())
        merged = merge_chrome(tl)
        events = merged["traceEvents"]
        assert merged["otherData"]["trace"] == "t0"
        names = {e["name"] for e in events}
        assert "sweep control plane" not in names - {"process_name"}
        attempts = [e for e in events if e["name"].startswith("fig-x")]
        assert len(attempts) == 2
        assert {a["args"]["outcome"] for a in attempts} == {"failed", "ok"}


class TestSerialSweepTracing:
    def run_sweep(self, tmp_path, name="run"):
        out = tmp_path / name
        out.mkdir()
        with registered(STEADY):
            result = run_jobs(
                [make_job("test-steady", seed=s) for s in range(3)],
                backend=SerialBackend(),
                sweeptrace=out / EVENTS_FILENAME,
            )
        return result, out / EVENTS_FILENAME

    def test_event_sequence_and_schema(self, tmp_path):
        result, events_path = self.run_sweep(tmp_path)
        events = load_events(events_path)
        assert events[0]["ev"] == "sweep_start"
        assert events[0]["schema"] == SWEEPTRACE_SCHEMA
        assert events[-1]["ev"] == "sweep_end"
        kinds = [e["ev"] for e in events]
        assert kinds.count("submitted") == 3
        assert kinds.count("attempt_start") == 3
        assert kinds.count("attempt_end") == 3
        assert all(
            e["outcome"] == "ok" for e in events if e["ev"] == "attempt_end"
        )

    def test_manifest_records_carry_trace_timings(self, tmp_path):
        result, events_path = self.run_sweep(tmp_path)
        for record in result.manifest.records:
            assert record.span is not None
            assert record.queue_s is not None and record.queue_s >= 0
            assert record.compute_s is not None and record.compute_s >= 0
            (timing,) = record.attempt_timings
            assert timing["attempt"] == 1
            assert timing["outcome"] == "ok"
        # Round-trips through manifest JSON (tolerant-read v3 fields).
        from repro.runner.manifest import RunManifest

        reloaded = RunManifest.from_json(result.manifest.to_json())
        assert [r.span for r in reloaded.records] == [
            r.span for r in result.manifest.records
        ]
        assert reloaded.records[0].attempt_timings is not None

    def test_spans_match_events_and_manifest(self, tmp_path):
        result, events_path = self.run_sweep(tmp_path)
        events = load_events(events_path)
        trace = events[0]["trace"]
        by_span = {e["span"]: e for e in events if e["ev"] == "submitted"}
        for record in result.manifest.records:
            assert record.span == job_span_id(trace, record.key)
            assert by_span[record.span]["key"] == record.key

    def test_replays_are_byte_stable_modulo_timing(self, tmp_path):
        _, first = self.run_sweep(tmp_path, "first")
        _, second = self.run_sweep(tmp_path, "second")
        assert canonical_lines(first) == canonical_lines(second)
        assert first.read_text() != ""  # and not vacuously equal

    def test_results_identical_with_tracing_on_or_off(self, tmp_path):
        traced, _ = self.run_sweep(tmp_path)
        with registered(STEADY):
            plain = run_jobs(
                [make_job("test-steady", seed=s) for s in range(3)],
                backend=SerialBackend(),
            )
        for left, right in zip(plain.outcomes, traced.outcomes):
            assert left.rows.to_csv() == right.rows.to_csv()

    def test_cache_hits_traced_with_real_service_time(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        events_path = tmp_path / EVENTS_FILENAME
        with registered(STEADY):
            jobs = [make_job("test-steady", seed=s) for s in range(2)]
            run_jobs(jobs, backend=SerialBackend(), cache=cache)
            result = run_jobs(
                jobs, backend=SerialBackend(), cache=cache,
                sweeptrace=events_path,
            )
        hits = [
            e for e in load_events(events_path) if e["ev"] == "cache_hit"
        ]
        assert len(hits) == 2
        for record in result.manifest.records:
            assert record.cached
            assert record.span is not None
            # Satellite fix: the record carries real cache-service time,
            # not the old 0.0 sentinel that skewed ETAs.
            assert record.wall_time_s > 0.0
        tl = build_timeline(load_events(events_path))
        segments = critical_path(tl)
        assert sum(s.dur for s in segments) == pytest.approx(
            tl.wall_s, abs=1e-6
        )

    def test_retry_sweep_traces_failed_attempts(self, tmp_path):
        marker = tmp_path / "attempted"
        events_path = tmp_path / EVENTS_FILENAME
        with registered(FLAKY):
            result = run_jobs(
                [make_job("test-flaky", params={"marker": str(marker)})],
                backend=SerialBackend(), retries=1, backoff=0.001,
                sweeptrace=events_path,
            )
        events = load_events(events_path)
        kinds = [e["ev"] for e in events]
        assert kinds.count("attempt_start") == 2
        assert kinds.count("retry_scheduled") == 1
        outcomes = [
            e["outcome"] for e in events if e["ev"] == "attempt_end"
        ]
        assert outcomes == ["failed", "ok"]
        (record,) = result.manifest.records
        assert [t["outcome"] for t in record.attempt_timings] == [
            "failed", "ok",
        ]
        assert record.compute_s == pytest.approx(
            sum(t["wall_s"] for t in record.attempt_timings), abs=1e-6
        )
        tl = build_timeline(events)
        phases = phase_breakdown(critical_path(tl))
        assert phases["retry"] > 0.0


class TestSubprocessSweepTracing:
    def test_worker_events_and_merged_chrome(self, tmp_path):
        out = tmp_path / "run"
        out.mkdir()
        events_path = out / EVENTS_FILENAME
        with registered(STEADY):
            result = run_jobs(
                [make_job("test-steady", seed=s) for s in range(3)],
                workers=2,
                backend=SubprocessWorkerBackend(
                    workers=2, preload=["tests.runner.faulty:install"]
                ),
                trace_dir=out / "traces",
                checkpoint=out / "manifest.json",
                sweeptrace=events_path,
            )
        events = load_events(events_path)
        kinds = [e["ev"] for e in events]
        assert "worker_spawn" in kinds and "worker_ready" in kinds
        assert "checkpoint" in kinds
        starts = [e for e in events if e["ev"] == "attempt_start"]
        assert all(e.get("worker") is not None for e in starts)

        tl = build_timeline(events)
        assert tl.backend == "subprocess"
        assert tl.worker_tracks  # per-worker tracks reconstructed
        segments = critical_path(tl)
        total = sum(s.dur for s in segments)
        assert total == pytest.approx(tl.wall_s, abs=1e-6)

        # The merged Chrome trace correlates engine attempt bars with the
        # child-side runner.job spans by span id — the point of carrying
        # span context across the worker protocol.
        merged_path = out / "merged.trace.json"
        count = write_merged_chrome(out, merged_path)
        assert count > 0
        merged = json.loads(merged_path.read_text())
        engine_spans = {
            e["args"]["span"]
            for e in merged["traceEvents"]
            if e.get("args", {}).get("outcome") == "ok"
        }
        child_spans = {
            e["args"]["span"]
            for e in merged["traceEvents"]
            if e.get("name") == "runner.job" and e.get("args", {}).get("span")
        }
        assert child_spans  # child traces were merged in
        assert child_spans <= engine_spans
        manifest_spans = {r.span for r in result.manifest.records}
        assert child_spans <= manifest_spans

    def test_worker_pid_recorded_on_ok_attempts(self, tmp_path):
        events_path = tmp_path / EVENTS_FILENAME
        with registered(STEADY):
            run_jobs(
                [make_job("test-steady")],
                workers=1,
                backend=SubprocessWorkerBackend(
                    workers=1, preload=["tests.runner.faulty:install"]
                ),
                sweeptrace=events_path,
            )
        (end,) = [
            e for e in load_events(events_path) if e["ev"] == "attempt_end"
        ]
        assert end["outcome"] == "ok"
        assert isinstance(end.get("pid"), int)

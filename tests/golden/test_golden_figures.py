"""Golden regression tests: figure summary statistics at a fixed seed.

Each case runs one figure at ``seed=0`` with reduced parameters (seconds,
not minutes) and summarizes the rows into a small JSON document: row
count, column names, and per-column statistics.  The summaries are
compared field-by-field against the snapshots stored next to this file,
so an unintended behavior change in any simulation layer shows up as a
*readable* diff — which fields moved, from what, to what — rather than a
giant rows mismatch.

When a change is intentional, regenerate the snapshots and review the
diff like any other code change::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.chaos import get_chaos_spec
from repro.figures import get_spec

GOLDEN_DIR = Path(__file__).parent

#: Figure → (seed, reduced parameters).  Parameters are chosen so the
#: whole golden suite runs in a few seconds while still exercising every
#: simulation layer the figure touches.
CASES = {
    "fig4-delay": {"cycles": 60},
    "fig4-jitter": {"cycles": 60, "flow_counts": (1, 5)},
    "fig5": {"duration_ms": 1000, "crash_ms": 500},
    "fig6": {"duration_ms": 400},
    "chaos-maintenance": {"horizon_s": 1800.0},
    "chaos-link-flaps": {"horizon_s": 600.0},
}
SEED = 0


def summarize(rows):
    """Compress rows into the statistics the snapshots store."""
    rows = list(rows)
    columns = sorted({key for row in rows for key in row})
    stats = {}
    for column in columns:
        values = [row[column] for row in rows if column in row]
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            stats[column] = {
                "min": round(float(min(values)), 9),
                "max": round(float(max(values)), 9),
                "mean": round(float(sum(values)) / len(values), 9),
            }
        else:
            stats[column] = {"distinct": len({str(v) for v in values})}
    return {"rows": len(rows), "columns": columns, "stats": stats}


def flatten(prefix, value):
    """Yield ``(dotted.path, leaf)`` pairs for dict-of-dict documents."""
    if isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(f"{prefix}.{key}" if prefix else key, child)
    else:
        yield prefix, value


def diff_summaries(golden, measured):
    """Human-readable field-level differences, empty when identical."""
    golden_fields = dict(flatten("", golden))
    measured_fields = dict(flatten("", measured))
    lines = []
    for path in sorted(golden_fields.keys() | measured_fields.keys()):
        want = golden_fields.get(path, "<missing>")
        got = measured_fields.get(path, "<missing>")
        if want != got:
            lines.append(f"  {path}: golden={want!r} measured={got!r}")
    return lines


def golden_path(figure):
    return GOLDEN_DIR / f"{figure.replace('-', '_')}.golden.json"


def compute_summary(figure):
    params = CASES[figure]
    return summarize(get_spec(figure).run(seed=SEED, **params))


@pytest.mark.parametrize("figure", sorted(CASES))
def test_figure_matches_golden_snapshot(figure, update_golden):
    path = golden_path(figure)
    measured = compute_summary(figure)
    if update_golden:
        path.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        f"'pytest tests/golden --update-golden'"
    )
    golden = json.loads(path.read_text())
    differences = diff_summaries(golden, measured)
    assert not differences, (
        f"{figure} diverged from {path.name} "
        f"(if intentional, rerun with --update-golden):\n"
        + "\n".join(differences)
    )


def test_no_orphaned_snapshots():
    # Every stored snapshot must correspond to a live case, so stale
    # files cannot silently rot in the directory.
    expected = {golden_path(figure).name for figure in CASES}
    present = {path.name for path in GOLDEN_DIR.glob("*.golden.json")}
    assert present <= expected, f"orphaned: {sorted(present - expected)}"


class TestComparatorMachinery:
    def test_diff_pinpoints_changed_fields(self):
        golden = {"rows": 3, "stats": {"x": {"mean": 1.0, "max": 2.0}}}
        measured = {"rows": 4, "stats": {"x": {"mean": 1.5, "max": 2.0}}}
        lines = diff_summaries(golden, measured)
        assert any("rows: golden=3 measured=4" in line for line in lines)
        assert any("stats.x.mean" in line for line in lines)
        assert not any("stats.x.max" in line for line in lines)

    def test_diff_reports_missing_fields(self):
        lines = diff_summaries({"a": 1}, {"b": 2})
        assert any("a: golden=1 measured='<missing>'" in line
                   for line in lines)
        assert any("b: golden='<missing>' measured=2" in line
                   for line in lines)

    def test_summarize_separates_numeric_and_labels(self):
        rows = [
            {"value": 1.0, "kind": "a", "ok": True},
            {"value": 3.0, "kind": "b", "ok": True},
        ]
        summary = summarize(rows)
        assert summary["stats"]["value"] == {
            "min": 1.0, "max": 3.0, "mean": 2.0,
        }
        assert summary["stats"]["kind"] == {"distinct": 2}
        # Booleans are labels, not statistics material.
        assert summary["stats"]["ok"] == {"distinct": 1}


def test_chaos_spec_reachable_for_goldens():
    # Guard for the two chaos-backed cases: the prefix-tolerant lookup
    # used by CASES resolves through the figure fallback path.
    assert get_chaos_spec("chaos-maintenance").figure_name in CASES

"""Golden regression snapshots of figure summary statistics."""

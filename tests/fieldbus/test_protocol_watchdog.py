"""Protocol parameters and watchdog supervision."""

import pytest

from repro.fieldbus import ConnectionParams, Watchdog
from repro.simcore import Simulator, MS


class TestConnectionParams:
    def test_watchdog_timeout_is_factor_times_cycle(self):
        params = ConnectionParams(cycle_ns=2 * MS, watchdog_factor=3)
        assert params.watchdog_timeout_ns == 6 * MS

    def test_invalid_cycle_rejected(self):
        with pytest.raises(ValueError):
            ConnectionParams(cycle_ns=0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            ConnectionParams(cycle_ns=MS, watchdog_factor=0)

    def test_defaults_match_profinet_conventions(self):
        params = ConnectionParams(cycle_ns=MS)
        assert params.watchdog_factor == 3
        assert 20 <= params.input_payload_bytes <= 250


class TestWatchdog:
    def test_expires_without_feeding(self):
        sim = Simulator()
        expired = []
        watchdog = Watchdog(sim, timeout_ns=10 * MS, on_expire=lambda: expired.append(sim.now))
        watchdog.start()
        sim.run(until=50 * MS)
        assert expired == [10 * MS]
        assert watchdog.expirations == 1
        assert not watchdog.running

    def test_feeding_defers_expiration(self):
        sim = Simulator()
        expired = []
        watchdog = Watchdog(sim, timeout_ns=10 * MS, on_expire=lambda: expired.append(sim.now))
        watchdog.start()
        for k in range(1, 6):
            sim.schedule(watchdog.feed, at=k * 5 * MS)
        sim.run(until=100 * MS)
        # Last feed at 25 ms; expires 10 ms later.
        assert expired == [35 * MS]

    def test_stop_prevents_expiration(self):
        sim = Simulator()
        expired = []
        watchdog = Watchdog(sim, timeout_ns=10 * MS, on_expire=lambda: expired.append(1))
        watchdog.start()
        sim.schedule(watchdog.stop, after=5 * MS)
        sim.run(until=100 * MS)
        assert expired == []

    def test_expires_only_once_until_restarted(self):
        sim = Simulator()
        expired = []
        watchdog = Watchdog(sim, timeout_ns=MS, on_expire=lambda: expired.append(sim.now))
        watchdog.start()
        sim.run(until=10 * MS)
        assert len(expired) == 1
        watchdog.start()
        sim.run(until=20 * MS)
        assert len(expired) == 2

    def test_feed_records_last_feed_time(self):
        sim = Simulator()
        watchdog = Watchdog(sim, timeout_ns=MS, on_expire=lambda: None)
        watchdog.start()
        sim.schedule(watchdog.feed, after=500_000)
        sim.run(until=600_000)
        assert watchdog.last_feed_ns == 500_000

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(Simulator(), timeout_ns=0, on_expire=lambda: None)

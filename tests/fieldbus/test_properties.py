"""Property-based tests for the fieldbus protocol machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fieldbus import (
    ArState,
    ConnectionParams,
    CyclicConnection,
    IoDeviceApp,
    Watchdog,
)
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator, MS, SEC


@given(
    st.integers(1, 50),       # cycle time in ms
    st.integers(2, 10),       # watchdog factor (1 is a boundary race:
                              # the gap equals the timeout exactly)
    st.integers(0, 2**31),    # seed
)
@settings(deadline=None, max_examples=15)
def test_handshake_always_reaches_running(cycle_ms, factor, seed):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    connection = CyclicConnection(
        sim, topo.devices["h0"], "h1",
        ConnectionParams(cycle_ns=cycle_ms * MS, watchdog_factor=factor),
    )
    connection.open()
    sim.run(until=max(1 * SEC, 20 * cycle_ms * MS))
    assert connection.state is ArState.RUNNING
    assert device.state is ArState.RUNNING
    assert device.stats.watchdog_expirations == 0


@given(
    st.lists(st.integers(1, 40), min_size=2, max_size=40),  # feed gaps (ms)
    st.integers(5, 30),                                     # timeout (ms)
)
@settings(deadline=None, max_examples=40)
def test_watchdog_expires_iff_some_gap_exceeds_timeout(gaps_ms, timeout_ms):
    sim = Simulator()
    expirations = []
    watchdog = Watchdog(
        sim, timeout_ns=timeout_ms * MS,
        on_expire=lambda: expirations.append(sim.now),
    )
    watchdog.start()
    t = 0
    for gap in gaps_ms:
        t += gap * MS
        sim.schedule(watchdog.feed, at=t)
    sim.run(until=t)  # stop exactly at the last feed: only gaps count
    if any(gap == timeout_ms for gap in gaps_ms):
        return  # gap == timeout is a tie broken by event order; skip
    should_expire = any(gap > timeout_ms for gap in gaps_ms)
    assert (len(expirations) > 0) == should_expire


@given(st.integers(2, 30), st.integers(0, 2**31))
@settings(deadline=None, max_examples=10)
def test_cyclic_rate_matches_cycle_time(cycle_ms, seed):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    connection = CyclicConnection(
        sim, topo.devices["h0"], "h1", ConnectionParams(cycle_ns=cycle_ms * MS)
    )
    connection.open()
    horizon_cycles = 50
    sim.run(until=(horizon_cycles + 10) * cycle_ms * MS)
    # Both directions ran at the negotiated cadence (within handshake slack).
    assert device.stats.cyclic_received >= horizon_cycles
    assert connection.stats.cyclic_received >= horizon_cycles


@given(st.integers(2, 6), st.integers(0, 2**31))
@settings(deadline=None, max_examples=10)
def test_crash_always_detected_within_watchdog_window(factor, seed):
    cycle = 10 * MS
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    connection = CyclicConnection(
        sim, topo.devices["h0"], "h1",
        ConnectionParams(cycle_ns=cycle, watchdog_factor=factor),
    )
    connection.open()
    sim.run(until=1 * SEC)
    assert device.state is ArState.RUNNING
    crash_at = sim.now
    connection.fail_silently()
    sim.run(until=crash_at + (factor + 2) * cycle)
    assert device.stats.watchdog_expirations == 1
    assert device.fail_safe

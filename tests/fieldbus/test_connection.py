"""Controller-device application relations end to end."""

import pytest

from repro.fieldbus import (
    ArState,
    ConnectionParams,
    CyclicConnection,
    IoDeviceApp,
)
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator, MS, SEC


def star_setup(hosts=3, seed=0):
    sim = Simulator(seed=seed)
    topo = build_star(sim, hosts)
    install_shortest_path_routes(topo)
    return sim, topo


def connect(sim, topo, controller="h0", device="h1", cycle=10 * MS, **kwargs):
    device_app = IoDeviceApp(sim, topo.devices[device], **kwargs)
    connection = CyclicConnection(
        sim,
        topo.devices[controller],
        device,
        ConnectionParams(cycle_ns=cycle),
    )
    return device_app, connection


class TestHandshake:
    def test_both_sides_reach_running(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo)
        connection.open()
        sim.run(until=1 * SEC)
        assert connection.state is ArState.RUNNING
        assert device.state is ArState.RUNNING
        assert device.controller == "h0"

    def test_connect_timeout_aborts(self):
        sim, topo = star_setup()
        # No device app on h1: nothing answers.
        connection = CyclicConnection(
            sim, topo.devices["h0"], "h1", ConnectionParams(cycle_ns=10 * MS)
        )
        reasons = []
        connection.on_abort.append(reasons.append)
        connection.open()
        sim.run(until=5 * SEC)
        assert connection.state is ArState.ABORTED
        assert reasons == ["connect timeout"]

    def test_second_controller_rejected(self):
        sim, topo = star_setup()
        device, first = connect(sim, topo)
        first.open()
        sim.run(until=200 * MS)
        second = CyclicConnection(
            sim, topo.devices["h2"], "h1", ConnectionParams(cycle_ns=10 * MS)
        )
        rejections = []
        second.on_reject.append(rejections.append)
        second.open()
        sim.run(until=400 * MS)
        assert second.state is ArState.ABORTED
        assert rejections == ["device already controlled"]
        assert device.stats.connects_rejected == 1
        # The original relation is unaffected.
        assert first.state is ArState.RUNNING

    def test_reconnect_after_abort(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo)
        connection.open()
        sim.run(until=200 * MS)
        connection.fail_silently()
        sim.run(until=500 * MS)  # device watchdog fires, AR aborts
        assert device.state is ArState.ABORTED
        fresh = CyclicConnection(
            sim, topo.devices["h2"], "h1", ConnectionParams(cycle_ns=10 * MS)
        )
        fresh.open()
        sim.run(until=1 * SEC)
        assert fresh.state is ArState.RUNNING
        assert device.state is ArState.RUNNING
        assert device.controller == "h2"

    def test_double_open_rejected(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo)
        connection.open()
        with pytest.raises(RuntimeError):
            connection.open()


class TestCyclicExchange:
    def test_cyclic_rates_match_cycle_time(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo, cycle=10 * MS)
        connection.open()
        sim.run(until=1 * SEC)
        # ~100 cycles in a second (minus handshake time).
        assert 95 <= connection.stats.cyclic_received <= 101
        assert 95 <= device.stats.cyclic_received <= 101

    def test_outputs_propagate_to_device(self):
        sim, topo = star_setup()
        applied = []
        device, connection = connect(
            sim, topo, apply_outputs=lambda data: applied.append(dict(data))
        )
        connection.outputs = {"valve": 42}
        connection.open()
        sim.run(until=100 * MS)
        assert device.outputs == {"valve": 42}
        assert applied[-1] == {"valve": 42}

    def test_inputs_propagate_to_controller(self):
        sim, topo = star_setup()
        device, connection = connect(
            sim, topo, sample_inputs=lambda: {"temp": 21.5}
        )
        connection.open()
        sim.run(until=100 * MS)
        assert connection.inputs == {"temp": 21.5}

    def test_on_inputs_callback_invoked_per_cycle(self):
        sim, topo = star_setup()
        seen = []
        device_app = IoDeviceApp(sim, topo.devices["h1"])
        connection = CyclicConnection(
            sim,
            topo.devices["h0"],
            "h1",
            ConnectionParams(cycle_ns=10 * MS),
            on_inputs=seen.append,
        )
        connection.open()
        sim.run(until=200 * MS)
        assert len(seen) >= 15

    def test_release_moves_device_to_failsafe_idle(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo)
        connection.open()
        sim.run(until=200 * MS)
        connection.release()
        sim.run(until=400 * MS)
        assert connection.state is ArState.ABORTED
        assert device.state is ArState.ABORTED
        assert device.fail_safe
        assert device.outputs == {}


class TestFailureDetection:
    def test_device_watchdog_on_controller_crash(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo, cycle=10 * MS)
        connection.open()
        sim.run(until=500 * MS)
        connection.fail_silently()
        sim.run(until=1 * SEC)
        assert device.stats.watchdog_expirations == 1
        assert device.fail_safe
        # Fail-safe clears outputs: the physical consequence of Section 2.2.
        assert device.outputs == {}

    def test_controller_watchdog_on_device_death(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo, cycle=10 * MS)
        connection.open()
        sim.run(until=500 * MS)
        # Cut the device's link: its frames stop reaching the controller.
        topo.link_between("sw0", "h1").set_down()
        sim.run(until=1 * SEC)
        assert connection.state is ArState.ABORTED
        assert connection.stats.watchdog_expirations == 1

    def test_abort_reason_reported(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo, cycle=10 * MS)
        reasons = []
        device.on_abort.append(reasons.append)
        connection.open()
        sim.run(until=200 * MS)
        connection.fail_silently()
        sim.run(until=500 * MS)
        assert reasons == ["watchdog expired"]

    def test_alarm_channel_reaches_controller(self):
        sim, topo = star_setup()
        device, connection = connect(sim, topo)
        connection.open()
        sim.run(until=100 * MS)
        alarms = []
        topo.devices["h0"].on_receive(
            lambda p: alarms.append(p.payload)
            if p.payload.get("type") == "alarm" else None
        )
        device.send_alarm("overtemperature", {"celsius": 95})
        sim.run(until=200 * MS)
        assert alarms and alarms[0]["alarm_type"] == "overtemperature"

"""The tap and the Traffic Reflection harness."""

import numpy as np
import pytest

from repro.ebpf import build_base, build_ts_rb, paper_variants
from repro.net import Host, Link
from repro.reflection import (
    Tap,
    run_flow_scaling,
    run_reflection,
    run_variant_sweep,
)
from repro.simcore import Simulator, MS


class TestTap:
    def build(self):
        sim = Simulator()
        a = Host(sim, "a")
        b = Host(sim, "b")
        tap = Tap(sim, "tap")
        Link(sim, a.add_port(), tap.add_port(), 1e9, 100)
        Link(sim, tap.add_port(), b.add_port(), 1e9, 100)
        return sim, a, b, tap

    def test_transparent_passthrough(self):
        sim, a, b, tap = self.build()
        b.record_received = True
        a.send("b", payload_bytes=50, flow_id="f", sequence=1)
        sim.run(until=1 * MS)
        assert len(b.received) == 1

    def test_records_both_directions(self):
        sim, a, b, tap = self.build()
        b.on_receive(lambda p: b.send("a", payload_bytes=50, flow_id="f",
                                      sequence=p.sequence))
        a.send("b", payload_bytes=50, flow_id="f", sequence=7)
        sim.run(until=1 * MS)
        directions = [r.direction for r in tap.records]
        assert directions == [Tap.SIDE_A, Tap.SIDE_B]
        assert all(r.sequence == 7 for r in tap.records)

    def test_timestamps_quantized_to_8ns(self):
        sim, a, b, tap = self.build()
        a.send("b", payload_bytes=50)
        sim.run(until=1 * MS)
        assert all(r.timestamp_ns % 8 == 0 for r in tap.records)

    def test_clear_drops_records(self):
        sim, a, b, tap = self.build()
        a.send("b", payload_bytes=50)
        sim.run(until=1 * MS)
        tap.clear()
        assert tap.records == []

    def test_passthrough_adds_only_configured_latency(self):
        sim, a, b, tap = self.build()
        arrivals = []
        b.on_receive(lambda p: arrivals.append(sim.now))
        a.send("b", payload_bytes=20, flow_id="f")
        sim.run(until=1 * MS)
        # serialization 672 + prop 100 + tap 8 + prop 100 (no re-serialization).
        assert arrivals == [672 + 100 + 8 + 100]


class TestHarness:
    def test_every_cycle_measured(self):
        result = run_reflection(build_base(), flow_count=1, cycles=50)
        assert result.unmatched_frames <= 1
        assert result.delays_us["flow0"].size == 50

    def test_delays_in_expected_band(self):
        result = run_reflection(build_base(), cycles=100)
        cdf = result.delay_cdf()
        # The Figure 4 x-axis: ~10-20 us.
        assert 8.0 < cdf.median < 14.0

    def test_multiple_flows_all_measured(self):
        result = run_reflection(build_base(), flow_count=5, cycles=30)
        assert len(result.delays_us) == 5
        assert all(v.size == 30 for v in result.delays_us.values())

    def test_jitter_samples_have_expected_count(self):
        result = run_reflection(build_base(), flow_count=2, cycles=30)
        assert result.jitter_samples_ns().size == 2 * 29

    def test_deterministic_given_seed(self):
        first = run_reflection(build_base(), cycles=20, seed=9)
        second = run_reflection(build_base(), cycles=20, seed=9)
        assert np.array_equal(
            first.delays_us["flow0"], second.delays_us["flow0"]
        )

    def test_different_seeds_differ(self):
        first = run_reflection(build_base(), cycles=20, seed=1)
        second = run_reflection(build_base(), cycles=20, seed=2)
        assert not np.array_equal(
            first.delays_us["flow0"], second.delays_us["flow0"]
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_reflection(build_base(), flow_count=0)
        with pytest.raises(ValueError):
            run_reflection(build_base(), cycles=1)


class TestPaperClaims:
    """The two Figure 4 claims as tests."""

    def test_ringbuf_variants_form_slower_cluster(self):
        results = run_variant_sweep(paper_variants(), cycles=150)
        medians = {name: r.delay_cdf().median for name, r in results.items()}
        no_rb = [medians["Base"], medians["TS"], medians["TS-TS"], medians["TS-OW"]]
        with_rb = [medians["TS-RB"], medians["TS-D-RB"]]
        assert min(with_rb) > max(no_rb) + 2.0  # clear cluster split (us)

    def test_small_code_changes_shift_the_cdf(self):
        results = run_variant_sweep(paper_variants(), cycles=150)
        base = results["Base"].delay_cdf().median
        ts_ts = results["TS-TS"].delay_cdf().median
        assert ts_ts > base  # two added helper calls are visible

    def test_more_flows_increase_jitter(self):
        scaling = run_flow_scaling(build_base(), [1, 25], cycles=150)
        one = scaling[1].jitter_cdf()
        many = scaling[25].jitter_cdf()
        assert many.quantile(0.9) > one.quantile(0.9)
        assert many.median >= one.median

"""Tap vs PTP measurement-error comparison (Section 3's method argument)."""

import numpy as np
import pytest

from repro.reflection import compare_tap_vs_ptp
from repro.simcore.clock import PtpSyncModel


class TestTapVsPtp:
    def test_tap_error_bounded_by_quantization(self):
        result = compare_tap_vs_ptp(tap_granularity_ns=8, seed=0)
        # Two reads, each off by at most half a quantum, plus the
        # half-nanosecond from integerizing the true delay.
        assert result.tap_errors_ns.max() <= 8.5 + 1e-6

    def test_ptp_error_dominated_by_asymmetry(self):
        ptp = PtpSyncModel(path_asymmetry_ns=400.0, timestamp_noise_ns=0.0,
                           residual_drift_ppm=0.0)
        result = compare_tap_vs_ptp(ptp=ptp, seed=1)
        # Opposite offsets of asymmetry/2 on both clocks: error ~ 400 ns.
        assert abs(np.median(result.ptp_errors_ns) - 400.0) < 5.0

    def test_tap_beats_ptp_by_an_order_of_magnitude(self):
        result = compare_tap_vs_ptp(seed=2)
        assert result.advantage_factor() > 10

    def test_finer_tap_is_more_accurate(self):
        coarse = compare_tap_vs_ptp(tap_granularity_ns=64, seed=3)
        fine = compare_tap_vs_ptp(tap_granularity_ns=8, seed=3)
        assert fine.tap_p99_ns() < coarse.tap_p99_ns()

    def test_deterministic_given_seed(self):
        first = compare_tap_vs_ptp(seed=5)
        second = compare_tap_vs_ptp(seed=5)
        assert np.array_equal(first.ptp_errors_ns, second.ptp_errors_ns)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            compare_tap_vs_ptp(samples=1)

    def test_jitter_scale_relevance(self):
        # Section 2.1 demands 1 us jitter bounds; the PTP residual error
        # is a meaningful fraction of that, the tap's is negligible.
        result = compare_tap_vs_ptp(seed=6)
        assert result.ptp_p99_ns() > 100.0   # > 10% of the 1 us budget
        assert result.tap_p99_ns() < 10.0    # < 1% of the budget

"""Gate control lists and the time-aware shaper."""

import pytest

from repro.net import Packet, StrictPriorityQueue, TrafficClass
from repro.tsn import (
    ALL_PCPS,
    GateControlEntry,
    GateControlList,
    TimeAwareShaper,
    always_open,
    protected_window_gcl,
)

RT = frozenset({6, 7})
BE = ALL_PCPS - RT


def two_window_gcl(cycle=1_000_000, window=100_000, offset=0):
    return protected_window_gcl(cycle, window, rt_pcps=RT, rt_offset_ns=offset)


class TestGateControlList:
    def test_cycle_time_is_entry_sum(self):
        gcl = two_window_gcl()
        assert gcl.cycle_time_ns == 1_000_000

    def test_state_inside_rt_window(self):
        gcl = two_window_gcl(offset=200_000)
        open_pcps, remaining = gcl.state_at(250_000)
        assert open_pcps == RT
        assert remaining == 50_000

    def test_state_outside_rt_window(self):
        gcl = two_window_gcl(offset=200_000)
        open_pcps, remaining = gcl.state_at(0)
        assert open_pcps == BE
        assert remaining == 200_000

    def test_state_wraps_across_cycles(self):
        gcl = two_window_gcl(offset=200_000)
        base_pcps, _ = gcl.state_at(250_000)
        wrapped_pcps, _ = gcl.state_at(250_000 + 3 * 1_000_000)
        assert base_pcps == wrapped_pcps

    def test_base_time_shifts_schedule(self):
        gcl = two_window_gcl(offset=0)
        gcl.base_time_ns = 500_000
        open_pcps, _ = gcl.state_at(500_000)
        assert open_pcps == RT

    def test_gate_open_until_spans_consecutive_entries(self):
        entries = [
            GateControlEntry(100, frozenset({1, 2})),
            GateControlEntry(100, frozenset({2, 3})),
            GateControlEntry(100, frozenset({4})),
        ]
        gcl = GateControlList(entries=entries)
        assert gcl.gate_open_until(0, 2) == 200
        assert gcl.gate_open_until(0, 1) == 100
        assert gcl.gate_open_until(0, 4) == 0

    def test_always_open_gate_capped_at_cycle(self):
        gcl = always_open()
        assert gcl.gate_open_until(0, 5) == gcl.cycle_time_ns

    def test_next_open_delay(self):
        gcl = two_window_gcl(offset=300_000)
        assert gcl.next_open_delay(0, 6) == 300_000
        assert gcl.next_open_delay(350_000, 6) == 0
        assert gcl.next_open_delay(0, 0) == 0  # BE open immediately

    def test_never_opening_gate_returns_none(self):
        gcl = GateControlList(entries=[GateControlEntry(1000, frozenset({0}))])
        assert gcl.next_open_delay(0, 7) is None

    def test_empty_gcl_rejected(self):
        with pytest.raises(ValueError):
            GateControlList().state_at(0)

    def test_invalid_entry_rejected(self):
        with pytest.raises(ValueError):
            GateControlEntry(0, frozenset({1}))
        with pytest.raises(ValueError):
            GateControlEntry(10, frozenset({9}))

    def test_protected_window_validation(self):
        with pytest.raises(ValueError):
            protected_window_gcl(1000, 1000)
        with pytest.raises(ValueError):
            protected_window_gcl(1000, 600, rt_offset_ns=600)


def rt_packet(payload=46):
    return Packet(
        src="a", dst="b", payload_bytes=payload,
        traffic_class=TrafficClass.CYCLIC_RT,
    )


def be_packet(payload=1200):
    return Packet(
        src="a", dst="b", payload_bytes=payload,
        traffic_class=TrafficClass.BEST_EFFORT,
    )


class TestTimeAwareShaper:
    GBPS = 1e9

    def test_empty_queue_returns_idle(self):
        shaper = TimeAwareShaper(always_open())
        packet, retry = shaper.select(0, StrictPriorityQueue(), self.GBPS)
        assert packet is None and retry is None

    def test_open_gate_releases_frame(self):
        shaper = TimeAwareShaper(two_window_gcl(window=500_000))
        queue = StrictPriorityQueue()
        frame = rt_packet()
        queue.enqueue(frame)
        packet, retry = shaper.select(0, queue, self.GBPS)
        assert packet is frame
        assert retry is None

    def test_closed_gate_defers_to_gate_change(self):
        shaper = TimeAwareShaper(two_window_gcl(offset=400_000))
        queue = StrictPriorityQueue()
        queue.enqueue(rt_packet())
        packet, retry = shaper.select(0, queue, self.GBPS)
        assert packet is None
        assert retry == 400_000
        assert shaper.gate_closed_blocks == 1

    def test_guard_band_blocks_unfitting_frame(self):
        # RT window of 1 us cannot fit a frame needing ~12 us at 1 Gbit/s.
        shaper = TimeAwareShaper(two_window_gcl(window=1_000))
        queue = StrictPriorityQueue()
        queue.enqueue(rt_packet(payload=1400))
        packet, retry = shaper.select(0, queue, self.GBPS)
        assert packet is None
        assert retry == 1_000
        assert shaper.guard_band_blocks == 1

    def test_guard_band_lets_lower_priority_pass(self):
        # RT frame does not fit its window, but a BE frame whose gate is
        # open alongside may transmit — per-queue transmission selection.
        entries = [GateControlEntry(2_000, ALL_PCPS)]
        gcl = GateControlList(entries=entries)
        shaper = TimeAwareShaper(gcl)
        queue = StrictPriorityQueue()
        big_rt = rt_packet(payload=1400)  # ~11.5 us > 2 us window
        small_be = be_packet(payload=46)  # 672 ns fits
        queue.enqueue(big_rt)
        queue.enqueue(small_be)
        packet, _ = shaper.select(0, queue, self.GBPS)
        assert packet is small_be

    def test_be_frame_blocked_before_rt_window(self):
        # A BE frame that would overrun into the RT window must wait —
        # this is what protects determinism.
        gcl = two_window_gcl(cycle=1_000_000, window=100_000, offset=10_000)
        shaper = TimeAwareShaper(gcl)
        queue = StrictPriorityQueue()
        queue.enqueue(be_packet(payload=1400))  # ~11.5 us > 10 us lead-in
        packet, retry = shaper.select(0, queue, self.GBPS)
        assert packet is None
        assert retry == 10_000

    def test_requires_strict_priority_queue(self):
        from repro.net import FifoQueue

        shaper = TimeAwareShaper(always_open())
        with pytest.raises(TypeError):
            shaper.select(0, FifoQueue(), self.GBPS)

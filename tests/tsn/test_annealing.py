"""Simulated-annealing schedule synthesis."""

import pytest

from repro.net import (
    CyclicSender,
    FlowSpec,
    Topology,
    TrafficClass,
    build_line,
    install_shortest_path_routes,
)
from repro.net.routing import shortest_path
from repro.simcore import Simulator, MS, US
from repro.tsn import (
    AnnealingSynthesizer,
    InfeasibleScheduleError,
    ScheduleSynthesizer,
)


def tight_single_link(flows=3, period_ns=25_000):
    """Three ~7 us frames per 25 us period on a 100 Mbit/s link: feasible
    only with sub-grid offset placement."""
    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("a"), topo.add_host("b")
    topo.connect(a, b, bandwidth_bps=1e8)
    install_shortest_path_routes(topo)
    specs = [
        FlowSpec(
            f"f{i}", "a", "b", period_ns=period_ns, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        for i in range(flows)
    ]
    return sim, topo, specs


class TestAnnealing:
    def test_finds_schedule_where_coarse_greedy_fails(self):
        sim, topo, specs = tight_single_link()
        with pytest.raises(InfeasibleScheduleError):
            ScheduleSynthesizer(topo, granularity_ns=10_000).synthesize(specs)
        schedule = AnnealingSynthesizer(topo, seed=1).synthesize(specs)
        assert len(schedule.offsets()) == 3

    def test_schedule_windows_do_not_overlap(self):
        sim, topo, specs = tight_single_link()
        schedule = AnnealingSynthesizer(topo, seed=2).synthesize(specs)
        for windows in schedule.port_windows().values():
            for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
                assert e1 <= s2

    def test_truly_infeasible_set_rejected(self):
        # Four 7 us frames cannot fit a 25 us period (28 > 25).
        sim, topo, specs = tight_single_link(flows=4)
        with pytest.raises(InfeasibleScheduleError):
            AnnealingSynthesizer(
                topo, iterations=3_000, seed=0
            ).synthesize(specs)

    def test_gate_installation_end_to_end_zero_jitter(self):
        sim = Simulator(seed=0)
        topo = build_line(sim, 3)
        install_shortest_path_routes(topo)
        spec = FlowSpec(
            "rt", "h0", "h2", period_ns=1 * MS, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        schedule = AnnealingSynthesizer(topo, seed=3).synthesize([spec])
        schedule.install_gate_control()
        arrivals = []
        topo.devices["h2"].on_flow("rt", lambda p: arrivals.append(sim.now))

        def sender_with_offset():
            yield schedule.offsets()["rt"]
            CyclicSender(sim, topo.devices["h0"], spec).start()

        sim.process(sender_with_offset())
        sim.run(until=30 * MS)
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {1 * MS}

    def test_mixed_periods_respect_hyperperiod(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("a"), topo.add_host("b")
        topo.connect(a, b)
        install_shortest_path_routes(topo)
        specs = [
            FlowSpec("slow", "a", "b", period_ns=2 * MS, payload_bytes=100),
            FlowSpec("fast", "a", "b", period_ns=1 * MS, payload_bytes=100),
        ]
        schedule = AnnealingSynthesizer(topo, seed=4).synthesize(specs)
        assert schedule.hyperperiod_ns == 2 * MS

    def test_non_cyclic_rejected(self):
        sim, topo, _ = tight_single_link()
        with pytest.raises(ValueError):
            AnnealingSynthesizer(topo).synthesize(
                [FlowSpec("bulk", "a", "b", total_bytes=1000)]
            )

    def test_deterministic_given_seed(self):
        sim, topo, specs = tight_single_link()
        first = AnnealingSynthesizer(topo, seed=9).synthesize(specs)
        second = AnnealingSynthesizer(topo, seed=9).synthesize(specs)
        assert first.offsets() == second.offsets()

    def test_invalid_iterations(self):
        sim, topo, _ = tight_single_link()
        with pytest.raises(ValueError):
            AnnealingSynthesizer(topo, iterations=0)

"""802.1CB frame replication and elimination."""

import pytest

from repro.net import FlowSpec, CyclicSender, Host, Link, Topology, TrafficClass
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator, MS
from repro.tsn import SequenceRecovery, StreamMerger, StreamSplitter


class TestSequenceRecovery:
    def test_first_occurrence_accepted(self):
        recovery = SequenceRecovery()
        assert recovery.accept(1)
        assert recovery.accept(2)

    def test_duplicate_discarded(self):
        recovery = SequenceRecovery()
        assert recovery.accept(1)
        assert not recovery.accept(1)
        assert recovery.accepted == 1
        assert recovery.discarded == 1

    def test_history_window_expires_old_entries(self):
        recovery = SequenceRecovery(history_length=2)
        recovery.accept(1)
        recovery.accept(2)
        recovery.accept(3)  # evicts 1
        assert recovery.accept(1)  # outside the window: accepted again

    def test_reset_clears_history(self):
        recovery = SequenceRecovery()
        recovery.accept(1)
        recovery.reset()
        assert recovery.accept(1)

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            SequenceRecovery(history_length=0)

    def test_out_of_order_duplicates_within_window(self):
        recovery = SequenceRecovery(history_length=8)
        assert recovery.accept(3)
        assert recovery.accept(1)
        assert recovery.accept(2)
        assert not recovery.accept(1)
        assert not recovery.accept(3)


def build_redundant_paths():
    """talker -> splitter -> {path A, path B} -> listener."""
    sim = Simulator()
    topo = Topology(sim)
    talker = topo.add_host("talker")
    listener = topo.add_host("listener")
    splitter = StreamSplitter(sim, "splitter")
    topo.add_device(splitter)
    path_a = topo.add_switch("swA")
    path_b = topo.add_switch("swB")
    topo.connect(talker, splitter)       # splitter port 0
    topo.connect(splitter, path_a)       # port 1
    topo.connect(splitter, path_b)       # port 2
    topo.connect(path_a, listener)
    topo.connect(path_b, listener)
    install_shortest_path_routes(topo)
    splitter.configure_split("stream", [1, 2])
    return sim, topo, talker, listener, splitter


class TestEndToEnd:
    def test_duplicates_arrive_without_merger(self):
        sim, topo, talker, listener, splitter = build_redundant_paths()
        listener.record_received = True
        spec = FlowSpec(
            "stream", "talker", "listener", period_ns=1 * MS,
            payload_bytes=50, traffic_class=TrafficClass.CYCLIC_RT,
        )
        CyclicSender(sim, talker, spec).start()
        sim.run(until=5 * MS)
        # Every cycle delivered twice (both paths up).
        sequences = [p.sequence for p in listener.received]
        assert sequences.count(1) == 2
        assert splitter.replicated_frames >= 5

    def test_merger_delivers_exactly_once(self):
        sim, topo, talker, listener, splitter = build_redundant_paths()
        delivered = []
        StreamMerger(listener, "stream", delivered.append)
        spec = FlowSpec(
            "stream", "talker", "listener", period_ns=1 * MS,
            payload_bytes=50, traffic_class=TrafficClass.CYCLIC_RT,
        )
        CyclicSender(sim, talker, spec).start()
        sim.run(until=10 * MS)
        sequences = [p.sequence for p in delivered]
        assert sequences == sorted(set(sequences))

    def test_single_path_failure_loses_nothing(self):
        sim, topo, talker, listener, splitter = build_redundant_paths()
        delivered = []
        StreamMerger(listener, "stream", delivered.append)
        spec = FlowSpec(
            "stream", "talker", "listener", period_ns=1 * MS,
            payload_bytes=50, traffic_class=TrafficClass.CYCLIC_RT,
        )
        CyclicSender(sim, talker, spec).start()
        sim.run(until=5 * MS)
        topo.link_between("splitter", "swA").set_down()
        sim.run(until=20 * MS)
        sequences = [p.sequence for p in delivered]
        # Seamless: every sequence 1..max present exactly once despite the
        # path failure, with zero recovery gap.
        assert sequences == list(range(1, max(sequences) + 1))

    def test_non_split_traffic_forwards_normally(self):
        sim, topo, talker, listener, splitter = build_redundant_paths()
        listener.record_received = True
        talker.send("listener", payload_bytes=30, flow_id="other")
        sim.run(until=1 * MS)
        assert len(listener.received) == 1

    def test_configure_split_validation(self):
        sim = Simulator()
        splitter = StreamSplitter(sim, "s")
        splitter.add_port()
        with pytest.raises(ValueError):
            splitter.configure_split("f", [0])
        with pytest.raises(ValueError):
            splitter.configure_split("f", [0, 5])

"""TSN no-wait schedule synthesis."""

import pytest

from repro.net import (
    CyclicSender,
    FlowSpec,
    TrafficClass,
    Topology,
    build_line,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS, US
from repro.tsn import InfeasibleScheduleError, ScheduleSynthesizer
from repro.tsn.scheduler import _merge_intervals


def line_with_flows(sim, host_count=4):
    topo = build_line(sim, host_count)
    install_shortest_path_routes(topo)
    return topo


def cyclic_spec(flow_id, src, dst, period=1 * MS, payload=50):
    return FlowSpec(
        flow_id=flow_id,
        src=src,
        dst=dst,
        period_ns=period,
        payload_bytes=payload,
        traffic_class=TrafficClass.CYCLIC_RT,
    )


class TestSynthesis:
    def test_single_flow_gets_offset_zero(self):
        sim = Simulator()
        topo = line_with_flows(sim)
        schedule = ScheduleSynthesizer(topo).synthesize(
            [cyclic_spec("f0", "h0", "h3")]
        )
        assert schedule.offsets() == {"f0": 0}
        assert schedule.hyperperiod_ns == 1 * MS

    def test_flows_sharing_first_hop_get_distinct_offsets(self):
        # Same source host: both flows contend for the identical egress
        # port with identical path delay, so equal offsets would collide.
        sim = Simulator()
        topo = line_with_flows(sim)
        specs = [
            cyclic_spec("f0", "h0", "h3"),
            cyclic_spec("f1", "h0", "h2"),
        ]
        schedule = ScheduleSynthesizer(topo, granularity_ns=1_000).synthesize(specs)
        offsets = schedule.offsets()
        assert offsets["f0"] != offsets["f1"]

    def test_hyperperiod_is_lcm(self):
        sim = Simulator()
        topo = line_with_flows(sim)
        specs = [
            cyclic_spec("f0", "h0", "h3", period=2 * MS),
            cyclic_spec("f1", "h1", "h3", period=3 * MS),
        ]
        schedule = ScheduleSynthesizer(topo).synthesize(specs)
        assert schedule.hyperperiod_ns == 6 * MS

    def test_no_port_window_overlaps(self):
        sim = Simulator()
        topo = line_with_flows(sim, host_count=5)
        specs = [
            cyclic_spec(f"f{i}", f"h{i}", "h4", period=1 * MS)
            for i in range(4)
        ]
        schedule = ScheduleSynthesizer(topo, granularity_ns=2_000).synthesize(specs)
        for port_name, windows in schedule.port_windows().items():
            for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
                assert e1 <= s2, f"overlap on {port_name}"

    def test_infeasible_when_period_saturated(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("a"), topo.add_host("b")
        # Slow link: one 50-byte frame takes ~6.7 us; a 10 us period fits
        # one flow but not three.
        topo.connect(a, b, bandwidth_bps=1e8)
        install_shortest_path_routes(topo)
        specs = [
            cyclic_spec(f"f{i}", "a", "b", period=10 * US) for i in range(3)
        ]
        with pytest.raises(InfeasibleScheduleError):
            ScheduleSynthesizer(topo, granularity_ns=1_000).synthesize(specs)

    def test_non_cyclic_flow_rejected(self):
        sim = Simulator()
        topo = line_with_flows(sim)
        with pytest.raises(ValueError):
            ScheduleSynthesizer(topo).synthesize(
                [FlowSpec("f", "h0", "h1", total_bytes=100)]
            )

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            ScheduleSynthesizer(Topology(Simulator()), granularity_ns=0)


class TestGateInstallation:
    def test_install_configures_every_scheduled_port(self):
        sim = Simulator()
        topo = line_with_flows(sim)
        schedule = ScheduleSynthesizer(topo).synthesize(
            [cyclic_spec("f0", "h0", "h3")]
        )
        configured = schedule.install_gate_control()
        # Path h0 -> sw0 -> sw1 -> sw2 -> sw3 -> h3: 5 egress ports.
        assert configured == 5
        for port_name in schedule.port_windows():
            device_name, index = port_name[:-1].split("[")
            port = topo.devices[device_name].ports[int(index)]
            assert port.shaper is not None

    def test_scheduled_flow_has_zero_jitter_end_to_end(self):
        sim = Simulator(seed=0)
        topo = line_with_flows(sim)
        spec = cyclic_spec("f0", "h0", "h3", period=1 * MS)
        schedule = ScheduleSynthesizer(topo).synthesize([spec])
        schedule.install_gate_control()
        arrivals = []
        topo.devices["h3"].on_receive(lambda p: arrivals.append(sim.now))
        CyclicSender(sim, topo.devices["h0"], spec).start()
        sim.run(until=50 * MS)
        assert len(arrivals) >= 40
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {1 * MS}  # perfectly periodic: no-wait means no jitter

    def test_schedule_protects_rt_from_best_effort(self):
        sim = Simulator(seed=0)
        topo = line_with_flows(sim)
        spec = cyclic_spec("f0", "h0", "h3", period=1 * MS)
        schedule = ScheduleSynthesizer(topo).synthesize([spec])
        schedule.install_gate_control()
        arrivals = []
        topo.devices["h3"].on_flow("f0", lambda p: arrivals.append(sim.now))
        CyclicSender(sim, topo.devices["h0"], spec).start()
        # Saturating best-effort traffic crossing the same links.
        from repro.net import FlowSpec as FS, PoissonSender

        noise_spec = FS(
            flow_id="noise", src="h1", dst="h3", payload_bytes=1_400,
            traffic_class=TrafficClass.BEST_EFFORT,
        )
        PoissonSender(
            sim, topo.devices["h1"], noise_spec, rate_pps=50_000,
            rng=sim.streams.stream("noise"),
        ).start()
        sim.run(until=50 * MS)
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {1 * MS}  # RT cadence survives the interference


class TestMergeIntervals:
    def test_merges_overlaps(self):
        assert _merge_intervals([(0, 10), (5, 15), (20, 30)]) == [(0, 15), (20, 30)]

    def test_merges_adjacent(self):
        assert _merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]

    def test_empty(self):
        assert _merge_intervals([]) == []

    def test_unsorted_input(self):
        assert _merge_intervals([(20, 30), (0, 5)]) == [(0, 5), (20, 30)]

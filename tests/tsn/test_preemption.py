"""802.1Qbu frame preemption."""

import pytest

from repro.net import (
    CyclicSender,
    FlowSpec,
    Host,
    Link,
    Packet,
    PoissonSender,
    Topology,
    TrafficClass,
)
from repro.net.routing import install_shortest_path_routes
from repro.metrics import jitter_report
from repro.simcore import Simulator, MS, SEC, US
from repro.tsn import (
    MIN_FRAGMENT_BYTES,
    ScheduleSynthesizer,
    enable_preemption,
)


def direct_pair():
    sim = Simulator(seed=0)
    a = Host(sim, "a")
    b = Host(sim, "b")
    b.record_received = True
    Link(sim, a.add_port(), b.add_port(), 1e9, 0)
    return sim, a, b


def big_be(sequence=0):
    return Packet(
        src="a", dst="b", payload_bytes=1_400,
        traffic_class=TrafficClass.BULK, sequence=sequence,
    )


def small_express(sequence=0):
    return Packet(
        src="a", dst="b", payload_bytes=46,
        traffic_class=TrafficClass.CYCLIC_RT, sequence=sequence,
    )


class TestMechanics:
    def test_express_cuts_through_preemptable_frame(self):
        sim, a, b = direct_pair()
        config = enable_preemption(a.ports[0])
        arrivals = {}
        b.on_receive(lambda p: arrivals.setdefault(p.traffic_class.name, sim.now))
        a.ports[0].send(big_be())
        # Express frame arrives 2 us into the ~11.5 us BE transmission.
        sim.schedule(lambda: a.ports[0].send(small_express()), after=2 * US)
        sim.run(until=1 * MS)
        assert config.preemptions == 1
        # Express completed before the BE frame: 2 us + ~0.7 us tx.
        assert arrivals["CYCLIC_RT"] < 3_500
        assert arrivals["BULK"] > arrivals["CYCLIC_RT"]

    def test_without_preemption_express_waits(self):
        sim, a, b = direct_pair()
        arrivals = {}
        b.on_receive(lambda p: arrivals.setdefault(p.traffic_class.name, sim.now))
        a.ports[0].send(big_be())
        sim.schedule(lambda: a.ports[0].send(small_express()), after=2 * US)
        sim.run(until=1 * MS)
        # Head-of-line blocking: express waits the full BE serialization.
        assert arrivals["CYCLIC_RT"] > 11_000

    def test_both_frames_eventually_delivered(self):
        sim, a, b = direct_pair()
        enable_preemption(a.ports[0])
        a.ports[0].send(big_be(sequence=1))
        sim.schedule(lambda: a.ports[0].send(small_express(sequence=2)), after=2 * US)
        sim.run(until=1 * MS)
        assert sorted(p.sequence for p in b.received) == [1, 2]

    def test_fragmentation_adds_overhead_time(self):
        # Delivery of the preempted frame is later than the unpreempted
        # case by the express transmission plus fragment overhead.
        def be_arrival(preempt):
            sim, a, b = direct_pair()
            if preempt:
                enable_preemption(a.ports[0])
            done = {}
            b.on_receive(
                lambda p: done.setdefault(p.traffic_class.name, sim.now)
            )
            a.ports[0].send(big_be())
            sim.schedule(lambda: a.ports[0].send(small_express()), after=2 * US)
            sim.run(until=1 * MS)
            return done["BULK"]

        assert be_arrival(preempt=True) > be_arrival(preempt=False)

    def test_express_never_preempted_by_express(self):
        sim, a, b = direct_pair()
        config = enable_preemption(a.ports[0])
        a.ports[0].send(small_express(sequence=1))
        sim.schedule(lambda: a.ports[0].send(small_express(sequence=2)), after=100)
        sim.run(until=1 * MS)
        assert config.preemptions == 0
        assert [p.sequence for p in b.received] == [1, 2]

    def test_hold_until_minimum_fragment(self):
        sim, a, b = direct_pair()
        config = enable_preemption(a.ports[0])
        a.ports[0].send(big_be())
        # Express arrives 100 ns in: under the 512 ns (64 B) boundary.
        sim.schedule(lambda: a.ports[0].send(small_express()), after=100)
        sim.run(until=1 * MS)
        assert config.hold_waits == 1
        assert config.preemptions == 1

    def test_nearly_finished_frame_not_preempted(self):
        sim, a, b = direct_pair()
        config = enable_preemption(a.ports[0])
        a.ports[0].send(big_be())
        # Express arrives with < 64 wire bytes left (~11.0 of 11.5 us).
        sim.schedule(lambda: a.ports[0].send(small_express()), after=11_200)
        sim.run(until=1 * MS)
        assert config.preemptions == 0

    def test_repeated_preemption_of_same_frame(self):
        sim, a, b = direct_pair()
        config = enable_preemption(a.ports[0])
        a.ports[0].send(big_be())
        sim.schedule(lambda: a.ports[0].send(small_express(1)), after=2 * US)
        sim.schedule(lambda: a.ports[0].send(small_express(2)), after=6 * US)
        sim.run(until=1 * MS)
        assert config.preemptions == 2
        assert len(b.received) == 3

    def test_incompatible_with_shaper(self):
        sim, a, b = direct_pair()
        from repro.tsn import TimeAwareShaper, always_open

        a.ports[0].shaper = TimeAwareShaper(always_open())
        with pytest.raises(ValueError):
            enable_preemption(a.ports[0])


class TestEndToEndJitter:
    def run_line(self, preempt):
        sim = Simulator(seed=17)
        from repro.net import build_line

        topo = build_line(sim, 4)
        topo.link_between("sw1", "h1").bandwidth_bps = 10e9
        install_shortest_path_routes(topo)
        if preempt:
            for switch in topo.switches():
                for port in switch.ports:
                    enable_preemption(port)
        spec = FlowSpec(
            "rt", "h0", "h3", period_ns=2 * MS, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        arrivals = []
        topo.devices["h3"].on_flow("rt", lambda p: arrivals.append(sim.now))
        CyclicSender(sim, topo.devices["h0"], spec).start()
        PoissonSender(
            sim, topo.devices["h1"],
            FlowSpec("noise", "h1", "h3", payload_bytes=1_400,
                     traffic_class=TrafficClass.BEST_EFFORT),
            rate_pps=50_000, rng=sim.streams.stream("noise"),
        ).start()
        sim.run(until=2 * SEC)
        return jitter_report(arrivals[5:], 2 * MS)

    def test_preemption_cuts_interference_jitter(self):
        plain = self.run_line(preempt=False)
        preempted = self.run_line(preempt=True)
        # Head-of-line blocking shrinks from a full 1.5 kB frame per hop
        # to at most a 64-byte fragment tail per hop.
        assert preempted.max_abs_jitter_ns < plain.max_abs_jitter_ns / 4
        assert preempted.mean_abs_jitter_ns < plain.mean_abs_jitter_ns / 4

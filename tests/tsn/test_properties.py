"""Property-based tests for TSN primitives."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.tsn import (
    ALL_PCPS,
    ArrivalCurve,
    GateControlEntry,
    GateControlList,
    SequenceRecovery,
    ServiceCurve,
    delay_bound_s,
    protected_window_gcl,
)

pcpsets = st.sets(st.integers(0, 7), max_size=8).map(frozenset)


@given(
    st.lists(
        st.tuples(st.integers(1, 10_000), pcpsets),
        min_size=1,
        max_size=10,
    ),
    st.integers(0, 100_000),
)
def test_gcl_state_is_periodic(entries, probe):
    gcl = GateControlList(
        entries=[GateControlEntry(d, pcps) for d, pcps in entries]
    )
    cycle = gcl.cycle_time_ns
    base_state = gcl.state_at(probe)
    for k in (1, 3, 7):
        assert gcl.state_at(probe + k * cycle) == base_state


@given(
    st.lists(
        st.tuples(st.integers(1, 10_000), pcpsets),
        min_size=1,
        max_size=10,
    ),
    st.integers(0, 100_000),
    st.integers(0, 7),
)
def test_gate_open_until_consistent_with_state(entries, probe, pcp):
    gcl = GateControlList(
        entries=[GateControlEntry(d, pcps) for d, pcps in entries]
    )
    open_pcps, _ = gcl.state_at(probe)
    open_for = gcl.gate_open_until(probe, pcp)
    if pcp in open_pcps:
        assert open_for > 0
        assert open_for <= gcl.cycle_time_ns
    else:
        assert open_for == 0


@given(
    st.integers(1_000, 1_000_000),
    st.integers(1, 999),
    st.integers(0, 7),
)
def test_protected_window_partitions_the_cycle(cycle_scale, window_ppm, pcp):
    cycle = cycle_scale
    window = max(1, cycle * window_ppm // 1000)
    assume(window < cycle)
    gcl = protected_window_gcl(cycle, window, rt_pcps=frozenset({6, 7}))
    # At every instant exactly one of (RT open) xor (BE open) holds.
    for probe in range(0, cycle, max(1, cycle // 17)):
        open_pcps, _ = gcl.state_at(probe)
        assert open_pcps in (frozenset({6, 7}), ALL_PCPS - frozenset({6, 7}))


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
def test_sequence_recovery_never_duplicates_within_window(sequences):
    recovery = SequenceRecovery(history_length=2000)
    delivered = []
    for sequence in sequences:
        if recovery.accept(sequence):
            delivered.append(sequence)
    assert len(delivered) == len(set(delivered))
    assert set(delivered) == set(sequences)


@given(
    st.floats(0, 1e6), st.floats(0, 1e8),
    st.floats(1e8, 1e10), st.floats(0, 1e-3),
)
def test_delay_bound_monotonic_in_burst_and_latency(
    burst, rate, service_rate, latency
):
    assume(rate <= service_rate)
    alpha_small = ArrivalCurve(burst, rate)
    alpha_big = ArrivalCurve(burst + 1000, rate)
    beta = ServiceCurve(service_rate, latency)
    beta_slow = ServiceCurve(service_rate, latency + 1e-6)
    assert delay_bound_s(alpha_big, beta) >= delay_bound_s(alpha_small, beta)
    assert delay_bound_s(alpha_small, beta_slow) >= delay_bound_s(
        alpha_small, beta
    )


@given(
    st.floats(1, 1e5), st.floats(0, 1e7),
    st.lists(
        st.tuples(st.floats(1e8, 1e10), st.floats(0, 1e-4)),
        min_size=2, max_size=6,
    ),
)
@settings(deadline=None)
def test_concatenated_bound_never_worse_than_sum(burst, rate, hops):
    from repro.tsn import path_delay_bound_s

    assume(all(rate <= r for r, _ in hops))
    alpha = ArrivalCurve(burst, rate)
    curves = [ServiceCurve(r, t) for r, t in hops]
    concatenated = path_delay_bound_s(alpha, curves)
    per_hop_sum = sum(delay_bound_s(alpha, c) for c in curves)
    assert concatenated <= per_hop_sum + 1e-12

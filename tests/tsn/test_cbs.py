"""802.1Qav Credit-Based Shaper."""

import numpy as np
import pytest

from repro.net import (
    BulkSender,
    CyclicSender,
    FlowSpec,
    Host,
    Link,
    Packet,
    StrictPriorityQueue,
    Topology,
    TrafficClass,
)
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator, MS, SEC
from repro.tsn import CreditBasedShaper

GBPS = 1e9


def shaped_packet(payload=1200):
    return Packet(src="a", dst="b", payload_bytes=payload,
                  traffic_class=TrafficClass.CYCLIC_RT)  # pcp 6


def be_packet(payload=1200):
    return Packet(src="a", dst="b", payload_bytes=payload,
                  traffic_class=TrafficClass.BEST_EFFORT)


class TestCreditMechanics:
    def test_first_frame_released_at_zero_credit(self):
        shaper = CreditBasedShaper({6: 100e6})
        queue = StrictPriorityQueue()
        frame = shaped_packet()
        queue.enqueue(frame)
        packet, retry = shaper.select(0, queue, GBPS)
        assert packet is frame

    def test_credit_goes_negative_after_transmission(self):
        shaper = CreditBasedShaper({6: 100e6})
        queue = StrictPriorityQueue()
        queue.enqueue(shaped_packet())
        queue.enqueue(shaped_packet())
        shaper.select(0, queue, GBPS)
        # Second select settles the drain: credit is now negative and the
        # second frame must wait.
        packet, retry = shaper.select(0, queue, GBPS)
        assert packet is None
        assert retry is not None and retry > 0
        assert shaper.credit_of(6) < 0

    def test_credit_recovers_at_idle_slope(self):
        shaper = CreditBasedShaper({6: 100e6})
        queue = StrictPriorityQueue()
        queue.enqueue(shaped_packet())
        queue.enqueue(shaped_packet())
        shaper.select(0, queue, GBPS)
        _, retry = shaper.select(0, queue, GBPS)
        # After the advertised wait, the frame is transmittable.
        packet, _ = shaper.select(retry, queue, GBPS)
        assert packet is not None

    def test_back_to_back_rate_limited_to_idle_slope(self):
        # 10% reservation on a 1 Gbit/s port: long-run shaped throughput
        # must be ~100 Mbit/s.
        sim = Simulator()
        a = Host(sim, "a")
        b = Host(sim, "b")
        link = Link(sim, a.add_port(), b.add_port(), GBPS, 0)
        a.ports[0].shaper = CreditBasedShaper({6: 100e6})
        received_bytes = []
        b.on_receive(lambda p: received_bytes.append(p.payload_bytes))
        for _ in range(200):
            a.ports[0].send(shaped_packet(1200))
        sim.run(until=10 * MS)
        throughput_bps = sum(received_bytes) * 8 / (10 * MS / 1e9)
        assert 70e6 < throughput_bps < 115e6

    def test_unshaped_classes_fill_the_gaps(self):
        sim = Simulator()
        a = Host(sim, "a")
        b = Host(sim, "b")
        Link(sim, a.add_port(), b.add_port(), GBPS, 0)
        a.ports[0].shaper = CreditBasedShaper({6: 50e6})
        kinds = []
        b.on_receive(lambda p: kinds.append(p.traffic_class.name))
        for _ in range(20):
            a.ports[0].send(shaped_packet(1200))
            a.ports[0].send(be_packet(1200))
        sim.run(until=10 * MS)
        # All 40 frames delivered: BE traffic used the shaped class's
        # credit-wait gaps.
        assert len(kinds) == 40
        # BE mostly finishes while the shaped class is still dribbling.
        assert kinds[-1] == "CYCLIC_RT"

    def test_empty_queue_resets_positive_credit(self):
        shaper = CreditBasedShaper({6: 100e6})
        queue = StrictPriorityQueue()
        queue.enqueue(shaped_packet())
        shaper.select(0, queue, GBPS)          # transmit, credit drains
        shaper.select(1_000_000, queue, GBPS)  # long idle, queue empty
        # Credit recovered to zero, not beyond (no banking while idle).
        queue.enqueue(shaped_packet())
        shaper.select(10_000_000, queue, GBPS)
        assert shaper.credit_of(6) <= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CreditBasedShaper({})
        with pytest.raises(ValueError):
            CreditBasedShaper({9: 1e6})
        with pytest.raises(ValueError):
            CreditBasedShaper({6: 0.0})
        from repro.net import FifoQueue

        with pytest.raises(TypeError):
            CreditBasedShaper({6: 1e6}).select(0, FifoQueue(), GBPS)


class TestBurstSmoothing:
    def test_cbs_protects_downstream_from_bursts(self):
        """CBS's purpose: a bursty reserved stream leaves gaps for others."""

        def run(with_cbs):
            sim = Simulator(seed=2)
            topo = Topology(sim)
            burster = topo.add_host("burst")
            rt_host = topo.add_host("rt")
            sink = topo.add_host("sink")
            switch = topo.add_switch("sw")
            topo.connect(burster, switch, 10e9)
            topo.connect(rt_host, switch)
            topo.connect(switch, sink)
            install_shortest_path_routes(topo)
            if with_cbs:
                # Shape the bursty class (video, pcp 4) to 300 Mbit/s.
                switch.ports[2].shaper = CreditBasedShaper({4: 300e6})
            arrivals = []
            sink.on_flow("rt", lambda p: arrivals.append(sim.now))
            CyclicSender(
                sim, rt_host,
                FlowSpec("rt", "rt", "sink", period_ns=1 * MS,
                         payload_bytes=50,
                         traffic_class=TrafficClass.CYCLIC_RT),
            ).start()
            BulkSender(
                sim, burster,
                FlowSpec("video", "burst", "sink", total_bytes=2_000_000,
                         traffic_class=TrafficClass.LATENCY_SENSITIVE),
            ).start()
            sim.run(until=100 * MS)
            return np.diff(arrivals)

        plain_gaps = run(with_cbs=False)
        cbs_gaps = run(with_cbs=True)
        # Without CBS the burst monopolizes the egress... except the RT
        # class outranks it here, so both deliver; the difference shows in
        # how long the *burst* occupies the line contiguously — measured
        # via worst RT gap caused by per-frame blocking runs.
        assert cbs_gaps.max() <= plain_gaps.max()

"""Network-calculus bounds, validated against the simulator."""

import numpy as np
import pytest

from repro.net import (
    CyclicSender,
    FlowSpec,
    PoissonSender,
    TrafficClass,
    build_line,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS, SEC
from repro.tsn import (
    ArrivalCurve,
    ServiceCurve,
    backlog_bound_bits,
    delay_bound_s,
    path_delay_bound_s,
    strict_priority_residual,
    switch_service_curve,
)

GBPS = 1e9


class TestCurves:
    def test_arrival_curve_evaluation(self):
        alpha = ArrivalCurve(burst_bits=1000, rate_bps=1e6)
        assert alpha.at(0) == 1000
        assert alpha.at(1.0) == 1000 + 1e6

    def test_arrival_aggregation(self):
        total = ArrivalCurve(100, 1e3) + ArrivalCurve(200, 2e3)
        assert total.burst_bits == 300
        assert total.rate_bps == 3e3

    def test_cyclic_flow_curve(self):
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=46)
        alpha = ArrivalCurve.for_cyclic_flow(spec)
        # 46 B payload + 22 B Ethernet/VLAN = 68 B frame + 20 B wire extra.
        assert alpha.burst_bits == 88 * 8
        assert alpha.rate_bps == pytest.approx(88 * 8 / 1e-3)

    def test_service_curve_evaluation(self):
        beta = ServiceCurve(rate_bps=1e9, latency_s=1e-6)
        assert beta.at(0.5e-6) == 0.0
        assert beta.at(2e-6) == pytest.approx(1e9 * 1e-6)

    def test_concatenation_pays_burst_once(self):
        hop = ServiceCurve(rate_bps=1e9, latency_s=2e-6)
        path = hop.concatenate(hop).concatenate(hop)
        assert path.rate_bps == 1e9
        assert path.latency_s == pytest.approx(6e-6)
        alpha = ArrivalCurve(burst_bits=12_000, rate_bps=1e6)
        concatenated = delay_bound_s(alpha, path)
        per_hop_sum = 3 * delay_bound_s(alpha, hop)
        assert concatenated < per_hop_sum  # the PBOO gain

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalCurve(-1, 0)
        with pytest.raises(ValueError):
            ServiceCurve(0, 0)
        with pytest.raises(ValueError):
            ArrivalCurve(0, 0).at(-1)


class TestBounds:
    def test_delay_bound_formula(self):
        alpha = ArrivalCurve(burst_bits=8_000, rate_bps=1e6)
        beta = ServiceCurve(rate_bps=1e8, latency_s=10e-6)
        assert delay_bound_s(alpha, beta) == pytest.approx(
            10e-6 + 8_000 / 1e8
        )

    def test_backlog_bound_formula(self):
        alpha = ArrivalCurve(burst_bits=8_000, rate_bps=1e6)
        beta = ServiceCurve(rate_bps=1e8, latency_s=10e-6)
        assert backlog_bound_bits(alpha, beta) == pytest.approx(
            8_000 + 1e6 * 10e-6
        )

    def test_unstable_system_rejected(self):
        alpha = ArrivalCurve(burst_bits=0, rate_bps=2e9)
        beta = ServiceCurve(rate_bps=1e9, latency_s=0)
        with pytest.raises(ValueError):
            delay_bound_s(alpha, beta)
        with pytest.raises(ValueError):
            backlog_bound_bits(alpha, beta)

    def test_residual_service_under_priority(self):
        higher = ArrivalCurve(burst_bits=12_000, rate_bps=1e8)
        residual = strict_priority_residual(
            port_rate_bps=GBPS,
            base_latency_s=1e-6,
            higher_priority=higher,
            max_lower_frame_bits=12_000,
        )
        assert residual.rate_bps == pytest.approx(0.9e9)
        assert residual.latency_s > 1e-6

    def test_saturated_port_rejected(self):
        with pytest.raises(ValueError):
            strict_priority_residual(
                port_rate_bps=1e9,
                base_latency_s=0,
                higher_priority=ArrivalCurve(0, 2e9),
                max_lower_frame_bits=0,
            )


class TestBoundsVsSimulation:
    """The contract: simulation never exceeds the analytic bound."""

    CYCLE = 2 * MS

    def run_line_with_interference(self):
        sim = Simulator(seed=33)
        topo = build_line(sim, 4)
        topo.link_between("sw1", "h1").bandwidth_bps = 10e9
        install_shortest_path_routes(topo)
        spec = FlowSpec(
            "rt", "h0", "h3", period_ns=self.CYCLE, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        send_times, arrivals = [], []
        topo.devices["h3"].on_flow("rt", lambda p: arrivals.append(sim.now))
        sender = CyclicSender(sim, topo.devices["h0"], spec)
        sender.start()
        PoissonSender(
            sim, topo.devices["h1"],
            FlowSpec("noise", "h1", "h3", payload_bytes=1_400,
                     traffic_class=TrafficClass.BEST_EFFORT),
            rate_pps=40_000, rng=sim.streams.stream("noise"),
        ).start()
        sim.run(until=3 * SEC)
        sends = np.asarray(sender.stats.send_times_ns[: len(arrivals)])
        return np.asarray(arrivals) - sends, spec

    def bound_for_line(self, spec) -> float:
        """End-to-end bound: 4 hops of residual strict-priority service."""
        alpha = ArrivalCurve.for_cyclic_flow(spec)
        max_be_frame_bits = (1_400 + 22 + 20) * 8
        hops = []
        for hop_index in range(4):
            base = switch_service_curve(
                GBPS, processing_delay_ns=1_000 if hop_index else 0,
                propagation_delay_ns=500,
            )
            # Our flow is the top priority: no higher-priority arrivals,
            # but one maximal best-effort frame can block per hop.
            hops.append(
                strict_priority_residual(
                    port_rate_bps=GBPS,
                    base_latency_s=base.latency_s,
                    higher_priority=None,
                    max_lower_frame_bits=max_be_frame_bits,
                )
            )
        return path_delay_bound_s(alpha, hops)

    def test_measured_worst_case_within_bound(self):
        delays_ns, spec = self.run_line_with_interference()
        bound_ns = self.bound_for_line(spec) * 1e9
        assert delays_ns.max() <= bound_ns

    def test_bound_is_useful_not_vacuous(self):
        delays_ns, spec = self.run_line_with_interference()
        bound_ns = self.bound_for_line(spec) * 1e9
        # The bound should be within ~4x of the observed worst case —
        # loose enough to be safe, tight enough to dimension against.
        assert bound_ns < 4 * delays_ns.max()

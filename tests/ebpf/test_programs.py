"""eBPF programs, verifier checks, and cost bounds."""

import numpy as np
import pytest

from repro.ebpf import (
    ExecutionEnvironment,
    MAX_INSTRUCTIONS,
    OpKind,
    VerifierError,
    XdpAction,
    XdpProgram,
    build_base,
    build_ts,
    build_ts_d_rb,
    build_ts_ow,
    build_ts_rb,
    build_ts_ts,
    paper_variants,
    verify,
)


class TestVariants:
    def test_six_variants_in_paper_order(self):
        names = [program.name for program in paper_variants()]
        assert names == ["Base", "TS", "TS-TS", "TS-RB", "TS-OW", "TS-D-RB"]

    def test_timestamp_counts(self):
        assert build_base().count(OpKind.HELPER_KTIME) == 0
        assert build_ts().count(OpKind.HELPER_KTIME) == 1
        assert build_ts_ts().count(OpKind.HELPER_KTIME) == 2
        assert build_ts_d_rb().count(OpKind.HELPER_KTIME) == 2

    def test_ringbuf_usage(self):
        assert not build_base().uses_ringbuf
        assert not build_ts_ow().uses_ringbuf
        assert build_ts_rb().uses_ringbuf
        assert build_ts_d_rb().uses_ringbuf

    def test_all_variants_are_reflectors(self):
        assert all(p.action is XdpAction.XDP_TX for p in paper_variants())

    def test_all_variants_verify(self):
        for program in paper_variants():
            bound = verify(program)
            assert bound.expected_ns > 0
            assert bound.deviation_ns > 0

    def test_static_cost_ordering_matches_structure(self):
        costs = {p.name: verify(p).expected_ns for p in paper_variants()}
        assert costs["Base"] < costs["TS"] < costs["TS-TS"]
        assert costs["TS-RB"] > costs["TS-TS"]
        assert costs["TS-D-RB"] > costs["TS-RB"]

    def test_upper_bound_exceeds_expectation(self):
        bound = verify(build_base())
        assert bound.upper_bound_ns() > bound.expected_ns


class TestVerifier:
    def test_empty_program_rejected(self):
        with pytest.raises(VerifierError):
            verify(XdpProgram(name="empty"))

    def test_missing_return_rejected(self):
        program = XdpProgram(name="no-ret").add(OpKind.ALU)
        with pytest.raises(VerifierError):
            verify(program)

    def test_double_return_rejected(self):
        program = (
            XdpProgram(name="two-ret")
            .add(OpKind.RETURN)
            .add(OpKind.RETURN)
        )
        with pytest.raises(VerifierError):
            verify(program)

    def test_packet_access_without_bounds_check_rejected(self):
        program = (
            XdpProgram(name="unchecked")
            .add(OpKind.PKT_READ)
            .add(OpKind.RETURN)
        )
        with pytest.raises(VerifierError) as exc:
            verify(program)
        assert "bounds check" in str(exc.value)

    def test_oversized_program_rejected(self):
        program = XdpProgram(name="huge")
        for _ in range(MAX_INSTRUCTIONS + 1):
            program.add(OpKind.ALU)
        with pytest.raises(VerifierError):
            verify(program)

    def test_bounds_check_enables_packet_access(self):
        program = (
            XdpProgram(name="checked")
            .add(OpKind.BRANCH)
            .add(OpKind.PKT_READ)
            .add(OpKind.RETURN)
        )
        verify(program)  # should not raise


class TestExecution:
    def test_sampled_cost_near_static_expectation(self):
        program = build_ts_ts()
        bound = verify(program)
        env = ExecutionEnvironment(rng=np.random.default_rng(0))
        samples = env.execute_many_ns(program, 2000)
        assert abs(np.mean(samples) - bound.expected_ns) < 0.25 * bound.expected_ns

    def test_contention_scale_grows_with_flows(self):
        rng = np.random.default_rng(0)
        single = ExecutionEnvironment(rng=rng, active_flows=1)
        many = ExecutionEnvironment(rng=rng, active_flows=25)
        assert many.contention_scale() > single.contention_scale() == 1.0

    def test_flow_count_widens_execution_distribution(self):
        program = build_base()
        single = ExecutionEnvironment(
            rng=np.random.default_rng(1), active_flows=1
        )
        many = ExecutionEnvironment(
            rng=np.random.default_rng(1), active_flows=25
        )
        assert np.std(many.execute_many_ns(program, 1500)) > np.std(
            single.execute_many_ns(program, 1500)
        )

    def test_ringbuf_execution_dominates(self):
        env = ExecutionEnvironment(rng=np.random.default_rng(2))
        base = np.median(env.execute_many_ns(build_base(), 500))
        ringbuf = np.median(env.execute_many_ns(build_ts_rb(), 500))
        assert ringbuf > base + 3_000

    def test_invalid_count_rejected(self):
        env = ExecutionEnvironment(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            env.execute_many_ns(build_base(), 0)

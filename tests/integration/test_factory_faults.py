"""Integration: the converged factory under injected infrastructure faults.

Ties three layers together: the packet-level factory (vPLCs controlling
devices over the fabric), MTBF/MTTR-driven fault injection on its links,
and the watchdog/fail-safe machinery that converts network outages into
cell downtime.  The measured blast radii must reflect the topology: a cell
backhaul failure takes down one cell; a fabric failure between a leaf and
its only spine takes down every cell behind it.
"""

from repro.core import ComponentClass, ConvergedFactory, FactoryConfig, FaultInjector
from repro.fieldbus import ArState
from repro.simcore import Simulator, MS, SEC


def build_factory(cells=3):
    sim = Simulator(seed=12)
    factory = ConvergedFactory(
        sim,
        FactoryConfig(
            cells=cells, devices_per_cell=1, cycle_ns=10 * MS,
            dc_spines=1,  # single spine: fabric faults have wide blast radius
        ),
    )
    factory.start()
    return sim, factory


def flaky(mtbf_s=6.0, mttr_s=2.0):
    return ComponentClass("flaky-link", mtbf_s=mtbf_s, mttr_s=mttr_s)


class TestFaultBlastRadius:
    def test_backhaul_fault_confined_to_its_cell(self):
        sim, factory = build_factory()
        link = factory.topo.link_between("cell0", "leaf0")
        injector = FaultInjector(sim, cells=3)
        injector.register_link(link, flaky(), affected_cells=(0,))
        sim.run(until=1 * SEC)  # reach steady state first
        injector.start()
        sim.run(until=30 * SEC)
        injector.stop()
        sim.run(until=35 * SEC)
        assert injector.failures_injected >= 2
        # Cell 0's device repeatedly failed safe; other cells never did.
        assert factory.cells[0].devices[0].stats.watchdog_expirations >= 1
        assert factory.cells[1].devices[0].stats.watchdog_expirations == 0
        assert factory.cells[2].devices[0].stats.watchdog_expirations == 0

    def test_spine_fault_does_not_touch_intra_leaf_control_loops(self):
        # Dependency analysis in action: vPLC hosts and cell backhauls
        # both terminate at the leaf, so control traffic never crosses
        # the leaf<->spine link.  Killing the spine link repeatedly must
        # therefore not trip a single watchdog — the fault domain of a
        # component is defined by who routes through it, not by where it
        # sits in the hierarchy.
        sim, factory = build_factory()
        fabric_link = factory.topo.link_between("leaf0", "spine0")
        injector = FaultInjector(sim, cells=3)
        injector.register_link(
            fabric_link, flaky(mtbf_s=8.0, mttr_s=2.0),
            affected_cells=(0, 1, 2),
        )
        sim.run(until=1 * SEC)
        injector.start()
        sim.run(until=30 * SEC)
        injector.stop()
        sim.run(until=40 * SEC)
        assert injector.failures_injected >= 1
        expirations = [
            cell.devices[0].stats.watchdog_expirations
            for cell in factory.cells
        ]
        assert expirations == [0, 0, 0]

    def test_leaf_failure_is_the_true_shared_dependency(self):
        # The converse of the spine test: every cell's backhaul and every
        # vPLC hangs off leaf0, so downing all leaf-side cell backhauls
        # simultaneously models a leaf switch failure — and takes every
        # cell down together (the consolidation blast radius).
        sim, factory = build_factory()
        sim.run(until=1 * SEC)
        for cell_index in range(3):
            factory.topo.link_between(f"cell{cell_index}", "leaf0").set_down()
        sim.run(until=4 * SEC)
        assert all(
            cell.devices[0].stats.watchdog_expirations == 1
            for cell in factory.cells
        )

    def test_recovery_restores_control(self):
        sim, factory = build_factory()
        link = factory.topo.link_between("cell1", "leaf0")
        sim.run(until=1 * SEC)
        link.set_down()
        sim.run(until=3 * SEC)
        device = factory.cells[1].devices[0]
        assert device.fail_safe
        link.set_up()
        # The vPLC's connection aborted; restart brings it back.
        factory.cells[1].vplc.crashed = False
        factory.cells[1].vplc.stop()
        factory.cells[1].vplc.start()
        sim.run(until=6 * SEC)
        assert device.state is ArState.RUNNING
        assert not device.fail_safe

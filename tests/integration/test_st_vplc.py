"""Integration: a Structured Text program running in a networked vPLC.

The full vertical: ST source -> compiled program -> vPLC scan cycle ->
cyclic fieldbus exchange -> physical I/O device, with the control decision
(a tank level hysteresis controller with a stirring timer) closing over
the network every cycle.
"""

from repro.fieldbus import IoDeviceApp
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import PlcRuntime
from repro.plc.st import compile_st
from repro.simcore import Simulator, MS, SEC

TANK_CONTROL = """
(* tank level hysteresis with stirring timer *)
VAR_INPUT
    level : REAL;
END_VAR
VAR_OUTPUT
    inlet_valve : BOOL;
    stirrer : BOOL;
END_VAR
VAR
    filling : BOOL := TRUE;
    stir_timer : TON;
END_VAR

IF filling AND level >= 90.0 THEN
    filling := FALSE;
ELSIF NOT filling AND level <= 10.0 THEN
    filling := TRUE;
END_IF;
inlet_valve := filling;

(* stir whenever the tank has been above 50% for 200 ms *)
stir_timer(IN := level > 50.0, PT := T#200ms);
stirrer := stir_timer.Q;
"""


class Tank:
    """Level physics driven by the controller's valve output."""

    def __init__(self):
        self.level = 0.0
        self.valve_open = True

    def sample(self):
        drain = 0.4
        fill = 1.5 if self.valve_open else 0.0
        self.level = max(0.0, min(100.0, self.level + fill - drain))
        return {"level": round(self.level, 3)}

    def apply(self, outputs):
        self.valve_open = bool(outputs.get("inlet_valve", False))


def build_scenario():
    sim = Simulator(seed=9)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    tank = Tank()
    device = IoDeviceApp(
        sim, topo.devices["h1"],
        sample_inputs=tank.sample, apply_outputs=tank.apply,
    )
    program = compile_st(
        TANK_CONTROL,
        input_map={"h1.level": "level"},
        output_map={"h1.inlet_valve": "inlet_valve", "h1.stirrer": "stirrer"},
    )
    plc = PlcRuntime(
        sim, topo.devices["h0"], program, cycle_ns=10 * MS, name="st-vplc"
    )
    plc.assign_device("h1")
    return sim, plc, device, tank


class TestStOverTheNetwork:
    def test_hysteresis_cycles_the_tank(self):
        sim, plc, device, tank = build_scenario()
        plc.start()
        levels = []
        for step in range(1, 31):
            sim.run(until=step * SEC)
            levels.append(tank.level)
        # The controller drives the level up to ~90 then lets it fall to
        # ~10, repeatedly: we must have seen both regimes.
        assert max(levels) > 85.0
        assert min(levels[10:]) < 30.0
        rising = any(b > a for a, b in zip(levels, levels[1:]))
        falling = any(b < a for a, b in zip(levels, levels[1:]))
        assert rising and falling

    def test_stirrer_follows_level_with_delay(self):
        sim, plc, device, tank = build_scenario()
        plc.start()
        sim.run(until=5 * SEC)
        # Mid-fill, above 50%: the TON has long expired and stirring runs.
        if tank.level > 55.0:
            assert device.outputs.get("stirrer") is True
        sim.run(until=40 * SEC)
        assert device.stats.watchdog_expirations == 0

    def test_scan_statistics_accumulate(self):
        sim, plc, device, tank = build_scenario()
        plc.start()
        sim.run(until=2 * SEC)
        assert plc.stats.scans >= 190
        assert plc.all_running

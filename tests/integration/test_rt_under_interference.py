"""Integration: real-time control traffic vs IT interference.

Exercises the full stack — fieldbus over switches with priority queues and
TSN gates — under heavy best-effort load, checking the Section 2.3 story:
cyclic microflows survive only when the network treats them specially.
"""

import numpy as np

from repro.fieldbus import ConnectionParams, CyclicConnection, IoDeviceApp
from repro.metrics import jitter_report
from repro.net import (
    FifoQueue,
    FlowSpec,
    PoissonSender,
    Topology,
    TrafficClass,
)
from repro.net.routing import install_shortest_path_routes
from repro.simcore import Simulator, MS, SEC


def build_shared_path(queue_factory=None):
    """controller -> sw1 -> sw2 -> device, with an IT host on sw1."""
    sim = Simulator(seed=8)
    topo = Topology(sim)
    kwargs = {"queue_factory": queue_factory} if queue_factory else {}
    sw1 = topo.add_switch("sw1", **kwargs)
    sw2 = topo.add_switch("sw2", **kwargs)
    controller = topo.add_host("ctrl")
    device_host = topo.add_host("dev")
    it_host = topo.add_host("it")
    sink = topo.add_host("sink")
    topo.connect(controller, sw1)
    # Fast access link: the IT host can burst faster than the 1 Gbit/s
    # fabric drains, so a backlog actually forms at sw1's egress.
    topo.connect(it_host, sw1, bandwidth_bps=10e9)
    topo.connect(sw1, sw2)
    topo.connect(sw2, device_host)
    topo.connect(sw2, sink)
    install_shortest_path_routes(topo)
    return sim, topo, controller, device_host, it_host


def run_scenario(queue_factory=None, duration=3 * SEC):
    sim, topo, controller, device_host, it_host = build_shared_path(queue_factory)
    device = IoDeviceApp(sim, device_host)
    connection = CyclicConnection(
        sim, controller, "dev", ConnectionParams(cycle_ns=2 * MS)
    )
    connection.open()
    # Cross traffic: large frames sharing the sw1->sw2 link.
    noise = PoissonSender(
        sim,
        it_host,
        FlowSpec(
            "it-noise", "it", "sink", payload_bytes=1_400,
            traffic_class=TrafficClass.BEST_EFFORT,
        ),
        rate_pps=60_000,
        rng=sim.streams.stream("it"),
    )
    noise.start()
    sim.run(until=duration)
    return device, connection


class TestPriorityQueueing:
    def test_strict_priority_keeps_watchdog_alive(self):
        # Default switches use strict priority: RT frames overtake the
        # queued elephants and the relation survives.
        device, connection = run_scenario()
        assert device.stats.watchdog_expirations == 0
        assert connection.stats.watchdog_expirations == 0
        arrivals = device.stats.rx_times_ns
        report = jitter_report(arrivals[10:], 2 * MS)
        # Jitter bounded by at most a frame serialization (~12 us) plus
        # scheduling noise.
        assert report.max_abs_jitter_ns < 100_000

    def test_fifo_queues_suffer_more_jitter(self):
        strict_device, _ = run_scenario()
        fifo_device, _ = run_scenario(queue_factory=FifoQueue)
        strict = jitter_report(strict_device.stats.rx_times_ns[10:], 2 * MS)
        fifo = jitter_report(fifo_device.stats.rx_times_ns[10:], 2 * MS)
        # Both pay head-of-line blocking of one in-flight elephant frame
        # (transmission is non-preemptive), but FIFO queues *behind* the
        # backlog every cycle: the typical jitter is much worse.
        assert fifo.mean_abs_jitter_ns > 2 * strict.mean_abs_jitter_ns
        assert fifo.peak_to_peak_ns >= strict.peak_to_peak_ns

    def test_watchdog_fed_in_both_directions(self):
        device, connection = run_scenario()
        assert device.stats.cyclic_received > 1_000
        assert connection.stats.cyclic_received > 1_000


class TestCyclicMicroflowClassification:
    def test_fieldbus_traffic_is_the_new_flow_type(self):
        from repro.net import FlowKind

        spec = FlowSpec(
            "io", "ctrl", "dev", period_ns=2 * MS, payload_bytes=40,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        assert spec.kind is FlowKind.CYCLIC_MICROFLOW

    def test_cyclic_payloads_fit_traffic_classes(self):
        from repro.core import CYCLIC_RT_CLASS
        from repro.fieldbus.protocol import DEFAULT_CYCLIC_PAYLOAD_BYTES

        assert CYCLIC_RT_CLASS.admits(2 * MS, DEFAULT_CYCLIC_PAYLOAD_BYTES)

"""Integration: TSN-scheduled fieldbus traffic.

Synthesizes a no-wait TSN schedule for the cyclic flows of a running
controller-device relation and checks the determinism claim end to end:
once gated, the cyclic traffic's cadence is exact even under saturating
interference — the property Section 1.1 credits TSN with.
"""

import numpy as np

from repro.fieldbus import ConnectionParams, CyclicConnection, IoDeviceApp
from repro.metrics import jitter_report
from repro.net import (
    FlowSpec,
    PoissonSender,
    TrafficClass,
    build_line,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS, SEC
from repro.tsn import ScheduleSynthesizer

CYCLE = 2 * MS


def build_gated_line(gate=True):
    sim = Simulator(seed=13)
    topo = build_line(sim, 4)
    install_shortest_path_routes(topo)
    # The two cyclic flows of the relation h0 <-> h3, as schedule inputs.
    specs = [
        FlowSpec(
            "ctrl-out", "h0", "h3", period_ns=CYCLE, payload_bytes=220,
            traffic_class=TrafficClass.CYCLIC_RT,
        ),
        FlowSpec(
            "dev-in", "h3", "h0", period_ns=CYCLE, payload_bytes=220,
            traffic_class=TrafficClass.CYCLIC_RT,
        ),
    ]
    if gate:
        schedule = ScheduleSynthesizer(topo).synthesize(specs)
        schedule.install_gate_control(slack_ns=30_000)
    return sim, topo


def run_with_interference(gate=True):
    sim, topo = build_gated_line(gate)
    device = IoDeviceApp(sim, topo.devices["h3"])
    connection = CyclicConnection(
        sim, topo.devices["h0"], "h3",
        ConnectionParams(cycle_ns=CYCLE, watchdog_factor=10),
    )
    connection.open()
    noise = PoissonSender(
        sim,
        topo.devices["h1"],
        FlowSpec(
            "noise", "h1", "h3", payload_bytes=1_400,
            traffic_class=TrafficClass.BEST_EFFORT,
        ),
        rate_pps=40_000,
        rng=sim.streams.stream("noise"),
    )
    noise.start()
    sim.run(until=3 * SEC)
    return device, connection


class TestGatedFieldbus:
    def test_relation_runs_through_gates(self):
        device, connection = run_with_interference()
        assert device.stats.cyclic_received > 1_000
        assert device.stats.watchdog_expirations == 0

    def test_gated_jitter_is_subcycle_deterministic(self):
        device, _ = run_with_interference(gate=True)
        arrivals = device.stats.rx_times_ns[10:]
        report = jitter_report(arrivals, CYCLE)
        # Gates quantize delivery to the protected windows: worst-case
        # deviation is bounded by the gate slack, far under the cycle.
        assert report.max_abs_jitter_ns < CYCLE / 4

    def test_gating_beats_priority_alone(self):
        gated_device, _ = run_with_interference(gate=True)
        plain_device, _ = run_with_interference(gate=False)
        gated = jitter_report(gated_device.stats.rx_times_ns[10:], CYCLE)
        plain = jitter_report(plain_device.stats.rx_times_ns[10:], CYCLE)
        assert gated.max_abs_jitter_ns <= plain.max_abs_jitter_ns

    def test_best_effort_still_flows_between_windows(self):
        device, connection = run_with_interference(gate=True)
        # The noise sink (h3) received plenty of BE traffic: the schedule
        # does not starve other classes.
        h3_rx = connection  # relation is healthy
        assert h3_rx.state.name == "RUNNING"

"""Integration: the three Section 4 availability mechanisms compared.

Experiment E7 (DESIGN.md): the same primary-failure scenario under
(a) InstaPLC, (b) a hardware-style redundant pair, (c) a Kubernetes pod
restart.  The paper's ordering must hold:

    InstaPLC (sub-cycle)  <<  hardware pair (50-300 ms)  <<  k8s (0.1-55 s)
"""

import numpy as np
import pytest

from repro.fieldbus import IoDeviceApp
from repro.instaplc import run_fig5
from repro.metrics import OutageLog
from repro.core import INDUSTRIAL_SIX_NINES, check_availability
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import (
    KubernetesFailoverModel,
    PlcRuntime,
    RedundantPlcPair,
    passthrough_program,
)
from repro.simcore import Simulator, MS, SEC

CYCLE = 10 * MS


def device_outage_ns(rx_times, failure_ns):
    stamps = np.asarray(rx_times, dtype=np.int64)
    after = stamps[stamps > failure_ns - SEC]
    gaps = np.diff(after)
    return int(gaps.max())


def run_hw_pair(seed=0):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 3)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h2"])
    primary = PlcRuntime(
        sim, topo.devices["h0"], passthrough_program({}), cycle_ns=CYCLE,
        name="p",
    )
    secondary = PlcRuntime(
        sim, topo.devices["h1"], passthrough_program({}), cycle_ns=CYCLE,
        name="s",
    )
    primary.assign_device("h2")
    secondary.assign_device("h2")
    pair = RedundantPlcPair(sim, primary, secondary)
    pair.start()
    sim.run(until=1 * SEC)
    pair.inject_primary_failure()
    sim.run(until=10 * SEC)
    return device_outage_ns(device.stats.rx_times_ns, 1 * SEC)


def run_k8s(seed=0):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    plc = PlcRuntime(
        sim, topo.devices["h0"], passthrough_program({}), cycle_ns=CYCLE,
        name="pod",
    )
    plc.assign_device("h1")
    model = KubernetesFailoverModel(sim, plc)
    model.start()
    sim.run(until=1 * SEC)
    model.inject_primary_failure()
    sim.run(until=120 * SEC)
    return device_outage_ns(device.stats.rx_times_ns, 1 * SEC)


@pytest.fixture(scope="module")
def outages():
    instaplc = run_fig5(
        cycle_ns=CYCLE, duration_ns=4 * SEC, crash_ns=2 * SEC, seed=0
    )
    instaplc_gap = instaplc.max_io_gap_after_ns(1 * SEC)
    return {
        "instaplc": instaplc_gap,
        "hw_pair": run_hw_pair(),
        "k8s": run_k8s(),
    }


class TestOrdering:
    def test_instaplc_fastest(self, outages):
        assert outages["instaplc"] < outages["hw_pair"]
        assert outages["instaplc"] < outages["k8s"]

    def test_hw_pair_beats_k8s(self, outages):
        assert outages["hw_pair"] < outages["k8s"]

    def test_instaplc_within_watchdog(self, outages):
        assert outages["instaplc"] < 3 * CYCLE

    def test_hw_pair_in_paper_band(self, outages):
        # Detection + takeover + reconnect: tens to hundreds of ms.
        assert 50 * MS < outages["hw_pair"] < 600 * MS

    def test_k8s_beyond_hw_band(self, outages):
        assert outages["k8s"] > 300 * MS


class TestAvailabilityClasses:
    def test_only_instaplc_meets_six_nines_at_daily_failure_rate(self, outages):
        # Assume one controller failure per day; convert each mechanism's
        # outage into an availability figure.
        day = 24 * 3600.0
        verdicts = {}
        for name, outage_ns in outages.items():
            log = OutageLog(
                observation_s=day, outage_durations_s=(outage_ns / 1e9,)
            )
            verdicts[name] = check_availability(INDUSTRIAL_SIX_NINES, log).passed
        assert verdicts["instaplc"]
        assert not verdicts["k8s"]

"""Shared pytest configuration: the golden-file workflow."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden JSON snapshots under tests/golden/ from "
            "the current implementation instead of comparing against them"
        ),
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden files, not compare."""
    return request.config.getoption("--update-golden")

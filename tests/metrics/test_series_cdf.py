"""SampleSeries and CDF behaviour."""

import numpy as np
import pytest

from repro.metrics import Cdf, SampleSeries, dominance_fraction, dominates, median_shift


class TestSampleSeries:
    def test_summary_of_known_values(self):
        series = SampleSeries("s")
        series.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        summary = series.summary()
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == pytest.approx(3.0)

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            SampleSeries("empty").summary()
        with pytest.raises(ValueError):
            SampleSeries("empty").percentile(50)

    def test_add_invalidates_cache(self):
        series = SampleSeries()
        series.add(1.0)
        assert series.percentile(50) == 1.0
        series.add(100.0)
        assert series.percentile(100) == 100.0

    def test_values_preserve_insertion_order(self):
        series = SampleSeries()
        series.extend([3.0, 1.0, 2.0])
        assert list(series.values()) == [3.0, 1.0, 2.0]

    def test_summary_as_dict_keys(self):
        series = SampleSeries()
        series.extend(range(100))
        data = series.summary().as_dict()
        assert set(data) == {
            "count", "mean", "std", "min", "max", "p50", "p90", "p99", "p99.9",
        }

    def test_high_percentiles_capture_tail(self):
        series = SampleSeries()
        series.extend([1.0] * 999 + [1000.0])
        summary = series.summary()
        assert summary.p50 == 1.0
        assert summary.maximum == 1000.0
        assert summary.p999 > 1.0


class TestCdf:
    def test_evaluate_matches_definition(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4) == 1.0

    def test_quantile_inverse_of_evaluate(self):
        samples = np.arange(1, 101, dtype=float)
        cdf = Cdf.from_samples(samples)
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(0.01) == 1.0
        assert cdf.quantile(1.0) == 100.0

    def test_median_property(self):
        assert Cdf.from_samples([5, 1, 9]).median == 5

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])

    def test_quantile_bounds_checked(self):
        cdf = Cdf.from_samples([1, 2])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_as_points_is_nondecreasing(self):
        cdf = Cdf.from_samples([3, 1, 4, 1, 5])
        points = cdf.as_points()
        xs = [x for x, _ in points]
        ps = [p for _, p in points]
        assert xs == sorted(xs)
        assert ps == sorted(ps)
        assert ps[-1] == 1.0


class TestComparisons:
    def test_median_shift_sign(self):
        fast = Cdf.from_samples([1, 2, 3])
        slow = Cdf.from_samples([11, 12, 13])
        assert median_shift(fast, slow) == 10
        assert median_shift(slow, fast) == -10

    def test_dominates_for_shifted_distribution(self):
        rng = np.random.default_rng(0)
        base = rng.normal(10, 1, 2000)
        shifted = base + 5.0
        assert dominates(Cdf.from_samples(shifted), Cdf.from_samples(base))
        assert not dominates(Cdf.from_samples(base), Cdf.from_samples(shifted))

    def test_dominance_fraction_for_identical_is_full(self):
        samples = [1.0, 2.0, 3.0]
        cdf = Cdf.from_samples(samples)
        assert dominance_fraction(cdf, cdf) == 1.0

    def test_dominance_fraction_interleaved_is_partial(self):
        rng = np.random.default_rng(1)
        a = Cdf.from_samples(rng.normal(10, 1, 500))
        b = Cdf.from_samples(rng.normal(10, 1, 500))
        fraction = dominance_fraction(a, b)
        assert 0.0 < fraction < 1.0

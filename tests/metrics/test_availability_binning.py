"""Availability algebra and time binning."""

import pytest

from repro.metrics import (
    OutageLog,
    SECONDS_PER_YEAR,
    availability_from_downtime,
    availability_from_mtbf_mttr,
    availability_to_nines,
    bin_counts,
    downtime_per_year_s,
    nines_to_availability,
    parallel_availability,
    series_availability,
)


class TestNines:
    def test_six_nines_budget_matches_paper(self):
        # Paper: 99.9999% availability = "downtime of less than 31.5 s/year".
        availability = nines_to_availability(6)
        assert availability == pytest.approx(0.999999)
        assert downtime_per_year_s(availability) == pytest.approx(31.536, rel=1e-3)

    def test_round_trip(self):
        for nines in (2.0, 3.0, 4.5, 6.0):
            assert availability_to_nines(
                nines_to_availability(nines)
            ) == pytest.approx(nines)

    def test_datacenter_minutes_per_month_is_worse_than_six_nines(self):
        # "a few minutes per month" ~ 3 min/month = 36 min/year.
        dc_availability = availability_from_downtime(36 * 60)
        assert dc_availability < nines_to_availability(6)
        assert availability_to_nines(dc_availability) < 5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            nines_to_availability(0)
        with pytest.raises(ValueError):
            availability_to_nines(1.0)
        with pytest.raises(ValueError):
            downtime_per_year_s(0.0)
        with pytest.raises(ValueError):
            availability_from_downtime(-1)


class TestComposition:
    def test_mtbf_mttr(self):
        assert availability_from_mtbf_mttr(99.0, 1.0) == pytest.approx(0.99)
        with pytest.raises(ValueError):
            availability_from_mtbf_mttr(0, 1)

    def test_series_is_product(self):
        assert series_availability([0.99, 0.99]) == pytest.approx(0.9801)

    def test_parallel_redundancy_boosts_availability(self):
        single = 0.99
        pair = parallel_availability([single, single])
        assert pair == pytest.approx(0.9999)
        assert pair > single

    def test_redundant_plc_pair_reaches_six_nines(self):
        # The Section 4 motivation: one controller at 3 nines cannot meet
        # the industrial class, a redundant pair can.
        one = nines_to_availability(3)
        assert parallel_availability([one, one]) >= nines_to_availability(6)


class TestOutageLog:
    def test_availability_and_projection(self):
        log = OutageLog(observation_s=1000.0, outage_durations_s=(1.0, 2.0))
        assert log.total_downtime_s == 3.0
        assert log.availability == pytest.approx(0.997)
        assert log.projected_yearly_downtime_s() == pytest.approx(
            3.0 / 1000.0 * SECONDS_PER_YEAR
        )

    def test_meets_requirement(self):
        log = OutageLog(observation_s=100.0, outage_durations_s=())
        assert log.meets(0.999999)
        bad = OutageLog(observation_s=100.0, outage_durations_s=(1.0,))
        assert not bad.meets(0.999999)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            OutageLog(observation_s=0.0, outage_durations_s=()).availability


class TestBinning:
    def test_counts_land_in_correct_bins(self):
        series = bin_counts([0, 49, 50, 99, 100], bin_width_ns=50, end_ns=150)
        assert list(series.counts) == [2, 2, 1]

    def test_fixed_end_produces_trailing_zero_bins(self):
        series = bin_counts([0, 10], bin_width_ns=50, end_ns=250)
        assert list(series.counts) == [2, 0, 0, 0, 0]
        assert series.first_empty_bin() == 1

    def test_out_of_range_events_ignored(self):
        series = bin_counts([5, 500], bin_width_ns=50, start_ns=0, end_ns=100)
        assert int(series.counts.sum()) == 1

    def test_bin_starts(self):
        series = bin_counts([0], bin_width_ns=10, end_ns=30)
        assert list(series.bin_starts_ns) == [0, 10, 20]

    def test_no_empty_bin_returns_none(self):
        series = bin_counts([1, 11], bin_width_ns=10, end_ns=20)
        assert series.first_empty_bin() is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            bin_counts([0], bin_width_ns=0)
        with pytest.raises(ValueError):
            bin_counts([0], bin_width_ns=10, start_ns=10, end_ns=10)

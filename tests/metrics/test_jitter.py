"""Jitter analysis: reports, consecutive runs, watchdogs."""

import numpy as np
import pytest

from repro.metrics import (
    consecutive_jitter_runs,
    interarrival_times,
    jitter_report,
    longest_consecutive_jitter,
    period_jitter,
    watchdog_expirations,
)

PERIOD = 1_000_000  # 1 ms


def arrivals_with_deviations(deviations):
    """Build arrival times whose *interarrival* deviations are given."""
    times = [0]
    for k, deviation in enumerate(deviations):
        times.append(times[-1] + PERIOD + deviation)
    return times


def test_interarrival_times_basic():
    assert list(interarrival_times([0, 10, 25])) == [10, 15]


def test_interarrival_needs_two_samples():
    with pytest.raises(ValueError):
        interarrival_times([5])


def test_period_jitter_signs():
    arrivals = arrivals_with_deviations([100, -50, 0])
    assert list(period_jitter(arrivals, PERIOD)) == [100, -50, 0]


def test_perfect_arrivals_have_zero_jitter():
    arrivals = [k * PERIOD for k in range(100)]
    report = jitter_report(arrivals, PERIOD)
    assert report.max_abs_jitter_ns == 0.0
    assert report.peak_to_peak_ns == 0.0
    assert report.meets_bound(0.0)


def test_report_worst_case_and_peak_to_peak():
    arrivals = arrivals_with_deviations([500, -300, 100])
    report = jitter_report(arrivals, PERIOD)
    assert report.max_abs_jitter_ns == 500
    assert report.peak_to_peak_ns == 800
    assert report.sample_count == 3
    assert not report.meets_bound(499)
    assert report.meets_bound(500)


def test_consecutive_run_detection():
    deviations = [0, 2000, 2000, 0, 2000, 0]
    arrivals = arrivals_with_deviations(deviations)
    runs = consecutive_jitter_runs(arrivals, PERIOD, threshold_ns=1000)
    assert [(run.start_index, run.length) for run in runs] == [(1, 2), (4, 1)]
    assert longest_consecutive_jitter(arrivals, PERIOD, 1000) == 2


def test_run_extending_to_end_is_counted():
    arrivals = arrivals_with_deviations([0, 0, 5000, 5000])
    runs = consecutive_jitter_runs(arrivals, PERIOD, threshold_ns=1000)
    assert runs[-1].length == 2


def test_no_runs_when_under_threshold():
    arrivals = arrivals_with_deviations([100, -100, 50])
    assert consecutive_jitter_runs(arrivals, PERIOD, 1000) == []
    assert longest_consecutive_jitter(arrivals, PERIOD, 1000) == 0


class TestWatchdog:
    def test_no_expiration_for_regular_traffic(self):
        arrivals = [k * PERIOD for k in range(50)]
        assert watchdog_expirations(arrivals, PERIOD, watchdog_factor=3) == 0

    def test_gap_beyond_factor_counts(self):
        arrivals = [0, PERIOD, PERIOD + 4 * PERIOD, 6 * PERIOD]
        assert watchdog_expirations(arrivals, PERIOD, watchdog_factor=3) == 1

    def test_gap_exactly_at_limit_does_not_expire(self):
        arrivals = [0, 3 * PERIOD]
        assert watchdog_expirations(arrivals, PERIOD, watchdog_factor=3) == 0
        assert watchdog_expirations(arrivals, PERIOD, watchdog_factor=2) == 1

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            watchdog_expirations([0, PERIOD], PERIOD, watchdog_factor=0)

    def test_multiple_gaps_counted_independently(self):
        arrivals = [0, 5 * PERIOD, 6 * PERIOD, 12 * PERIOD]
        assert watchdog_expirations(arrivals, PERIOD, watchdog_factor=3) == 2


def test_report_with_numpy_input():
    arrivals = np.arange(0, 20 * PERIOD, PERIOD, dtype=np.int64)
    report = jitter_report(arrivals, PERIOD)
    assert report.sample_count == 19
    assert report.std_ns == 0.0

"""Property-based tests for the metrics substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    Cdf,
    SampleSeries,
    bin_counts,
    jitter_report,
    parallel_availability,
    series_availability,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_summary_bounds_are_consistent(values):
    series = SampleSeries()
    series.extend(values)
    summary = series.summary()
    epsilon = 1e-6 * max(1.0, abs(summary.maximum), abs(summary.minimum))
    assert summary.minimum <= summary.p50 <= summary.maximum
    assert summary.p50 <= summary.p90 <= summary.p99 <= summary.p999
    assert summary.minimum - epsilon <= summary.mean <= summary.maximum + epsilon
    assert summary.count == len(values)


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_cdf_is_monotone_and_normalized(values):
    cdf = Cdf.from_samples(values)
    assert np.all(np.diff(cdf.ps) >= 0)
    assert cdf.ps[-1] == 1.0
    assert np.all(np.diff(cdf.xs) >= 0)


@given(st.lists(finite_floats, min_size=1, max_size=200), finite_floats)
def test_cdf_evaluate_in_unit_interval(values, probe):
    cdf = Cdf.from_samples(values)
    assert 0.0 <= cdf.evaluate(probe) <= 1.0


@given(
    st.lists(finite_floats, min_size=2, max_size=200),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_quantile_is_attained_sample(values, p):
    cdf = Cdf.from_samples(values)
    assert cdf.quantile(p) in set(np.asarray(values, dtype=float))


@given(
    st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=100),
    st.integers(1_000, 1_000_000),
)
def test_jitter_report_invariants(deviations, period):
    arrivals = [0]
    for deviation in deviations:
        arrivals.append(max(arrivals[-1] + 1, arrivals[-1] + period + deviation))
    report = jitter_report(arrivals, period)
    assert report.max_abs_jitter_ns >= report.mean_abs_jitter_ns >= 0
    assert report.peak_to_peak_ns >= 0
    assert report.sample_count == len(arrivals) - 1


@given(
    st.lists(st.integers(0, 10**6), min_size=1, max_size=300),
    st.integers(1, 10**5),
)
@settings(deadline=None)
def test_binning_conserves_in_range_events(timestamps, width):
    end = max(timestamps) + 1
    series = bin_counts(timestamps, bin_width_ns=width, start_ns=0, end_ns=end)
    assert int(series.counts.sum()) == len(timestamps)
    assert np.all(series.counts >= 0)


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10))
def test_availability_composition_bounds(availabilities):
    serial = series_availability(availabilities)
    redundant = parallel_availability(availabilities)
    epsilon = 1e-9
    assert 0.0 <= serial <= 1.0
    assert 0.0 <= redundant <= 1.0
    assert serial <= min(availabilities) + epsilon
    assert redundant >= max(availabilities) - epsilon

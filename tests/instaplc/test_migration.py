"""Planned, interruption-free vPLC migration through InstaPLC."""

import numpy as np
import pytest

from repro.fieldbus import ArState, ConnectionParams, CyclicConnection, IoDeviceApp
from repro.instaplc import InstaPlcApp
from repro.net import Host, Link
from repro.p4 import P4Switch
from repro.simcore import Simulator, MS, SEC

CYCLE = 2 * MS


def build():
    sim = Simulator(seed=3)
    switch = P4Switch(sim, "sw")
    hosts = {}
    for name in ("vplc1", "vplc2", "io"):
        host = Host(sim, name)
        Link(sim, host.add_port(), switch.add_port(), 1e9, 500)
        hosts[name] = host
    app = InstaPlcApp(sim, switch)
    app.attach_device("io", port=2)
    device = IoDeviceApp(sim, hosts["io"])
    io_arrivals = []
    switch.egress_taps.append(
        lambda p, port: io_arrivals.append(sim.now)
        if port == 2 and p.payload.get("type") == "cyclic_data" else None
    )
    first = CyclicConnection(sim, hosts["vplc1"], "io",
                             ConnectionParams(cycle_ns=CYCLE))
    second = CyclicConnection(sim, hosts["vplc2"], "io",
                              ConnectionParams(cycle_ns=CYCLE))
    first.open()
    sim.schedule(second.open, after=100 * MS)
    sim.run(until=1 * SEC)
    return sim, app, device, first, second, io_arrivals


class TestPlannedMigration:
    def test_migration_hands_over_without_gap(self):
        sim, app, device, first, second, io_arrivals = build()
        event = app.migrate("io")
        sim.run(until=2 * SEC)
        assert event.old_primary == "vplc1"
        assert event.new_primary == "vplc2"
        assert device.state is ArState.RUNNING
        assert device.stats.watchdog_expirations == 0
        # Interruption-free: the to-device cyclic stream never gaps by
        # more than about one cycle across the migration instant.
        gaps = np.diff(np.asarray(io_arrivals, dtype=np.int64))
        assert gaps.max() < int(1.5 * CYCLE)

    def test_new_primary_controls_outputs(self):
        sim, app, device, first, second, io_arrivals = build()
        app.migrate("io")
        second.outputs["speed"] = 9
        sim.run(until=2 * SEC)
        assert device.outputs.get("speed") == 9

    def test_old_primary_drained_not_forwarded(self):
        sim, app, device, first, second, io_arrivals = build()
        app.migrate("io")
        sent_before = first.stats.cyclic_sent
        sim.run(until=int(1.5 * SEC))
        # The old primary still transmits (it was not failed)...
        assert first.stats.cyclic_sent > sent_before
        # ...and can later be released cleanly without disturbing the
        # device, which now belongs to vplc2.
        first.release()
        sim.run(until=2 * SEC)
        assert device.state is ArState.RUNNING

    def test_migration_without_standby_rejected(self):
        sim = Simulator(seed=0)
        switch = P4Switch(sim, "sw")
        host = Host(sim, "vplc1")
        io_host = Host(sim, "io")
        Link(sim, host.add_port(), switch.add_port(), 1e9, 500)
        Link(sim, io_host.add_port(), switch.add_port(), 1e9, 500)
        app = InstaPlcApp(sim, switch)
        app.attach_device("io", port=1)
        IoDeviceApp(sim, io_host)
        conn = CyclicConnection(sim, host, "io",
                                ConnectionParams(cycle_ns=CYCLE))
        conn.open()
        sim.run(until=500 * MS)
        with pytest.raises(RuntimeError):
            app.migrate("io")

    def test_migrated_away_controller_can_return_as_standby(self):
        sim, app, device, first, second, io_arrivals = build()
        app.migrate("io")
        sim.run(until=int(1.2 * SEC))
        first.release()
        sim.run(until=int(1.4 * SEC))
        returning = CyclicConnection(
            sim, first.host, "io", ConnectionParams(cycle_ns=CYCLE)
        )
        returning.open()
        sim.run(until=2 * SEC)
        assert app.bindings["io"].secondary == "vplc1"
        assert returning.state is ArState.RUNNING
        # Round trip: migrate back.
        event = app.migrate("io")
        sim.run(until=3 * SEC)
        assert event.new_primary == "vplc1"
        assert device.stats.watchdog_expirations == 0

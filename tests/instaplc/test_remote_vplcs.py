"""InstaPLC with vPLCs reached across an aggregation network.

In the paper's deployment picture the vPLCs live in a data center, not on
the InstaPLC switch itself.  Here both controllers sit behind a standard
learning switch on a single InstaPLC uplink: designation, mirroring (with
destination rewrite), absorption, and switchover must all work when the
two vPLCs share one ingress port.
"""

from repro.fieldbus import ArState, ConnectionParams, CyclicConnection, IoDeviceApp
from repro.instaplc import InstaPlcApp
from repro.net import Host, Link, Switch
from repro.p4 import P4Switch
from repro.simcore import Simulator, MS, SEC

CYCLE = 5 * MS


def build_remote_scene():
    sim = Simulator(seed=8)
    p4 = P4Switch(sim, "instaplc")
    aggregation = Switch(sim, "agg")
    vplc1 = Host(sim, "vplc1")
    vplc2 = Host(sim, "vplc2")
    io_host = Host(sim, "io")
    # Aggregation: both vPLCs behind one uplink into InstaPLC port 0.
    Link(sim, vplc1.add_port(), aggregation.add_port(), 1e9, 500)
    Link(sim, vplc2.add_port(), aggregation.add_port(), 1e9, 500)
    Link(sim, aggregation.add_port(), p4.add_port(), 1e9, 500)
    Link(sim, io_host.add_port(), p4.add_port(), 1e9, 500)
    app = InstaPlcApp(sim, p4)
    app.attach_device("io", port=1)
    device = IoDeviceApp(sim, io_host)
    params = ConnectionParams(cycle_ns=CYCLE)
    first = CyclicConnection(sim, vplc1, "io", params)
    second = CyclicConnection(sim, vplc2, "io", params)
    first.open()
    sim.schedule(second.open, after=100 * MS)
    return sim, app, device, first, second


class TestRemoteVplcs:
    def test_shared_ingress_port_designation(self):
        sim, app, device, first, second = build_remote_scene()
        sim.run(until=1 * SEC)
        binding = app.bindings["io"]
        assert binding.primary == "vplc1"
        assert binding.secondary == "vplc2"
        # Both were learned on the same uplink port.
        assert binding.primary_port == binding.secondary_port == 0

    def test_mirrored_state_crosses_the_aggregation(self):
        sim, app, device, first, second = build_remote_scene()
        sim.run(until=1 * SEC)
        assert first.state is ArState.RUNNING
        assert second.state is ArState.RUNNING
        # The aggregation switch delivers the rewritten clone to vplc2.
        assert second.inputs == first.inputs
        assert second.stats.cyclic_received > 50

    def test_switchover_across_the_aggregation(self):
        sim, app, device, first, second = build_remote_scene()
        sim.run(until=1 * SEC)
        first.fail_silently()
        sim.run(until=3 * SEC)
        assert app.bindings["io"].primary == "vplc2"
        assert device.stats.watchdog_expirations == 0
        assert device.state is ArState.RUNNING
        second.outputs["k"] = 1
        sim.run(until=4 * SEC)
        assert device.outputs.get("k") == 1

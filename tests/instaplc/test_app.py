"""InstaPLC control-plane behaviour over the P4 data plane."""

import pytest

from repro.fieldbus import ArState, ConnectionParams, CyclicConnection, IoDeviceApp
from repro.instaplc import InstaPlcApp
from repro.net import Host, Link
from repro.p4 import P4Switch
from repro.simcore import Simulator, MS, SEC

CYCLE = 10 * MS


def build_scene(detection_cycles=1.5):
    sim = Simulator(seed=0)
    switch = P4Switch(sim, "sw")
    hosts = {}
    for name in ("vplc1", "vplc2", "io"):
        host = Host(sim, name)
        Link(sim, host.add_port(), switch.add_port(), 1e9, 500)
        hosts[name] = host
    app = InstaPlcApp(sim, switch, detection_cycles=detection_cycles)
    app.attach_device("io", port=2)
    device = IoDeviceApp(sim, hosts["io"])
    return sim, switch, app, hosts, device


def connection(sim, hosts, name, cycle=CYCLE):
    return CyclicConnection(
        sim, hosts[name], "io", ConnectionParams(cycle_ns=cycle)
    )


class TestPrimaryDesignation:
    def test_first_vplc_becomes_primary(self):
        sim, switch, app, hosts, device = build_scene()
        conn = connection(sim, hosts, "vplc1")
        conn.open()
        sim.run(until=1 * SEC)
        binding = app.bindings["io"]
        assert binding.primary == "vplc1"
        assert binding.cycle_ns == CYCLE
        assert conn.state is ArState.RUNNING
        assert device.state is ArState.RUNNING

    def test_cyclic_frames_counted_in_register(self):
        sim, switch, app, hosts, device = build_scene()
        connection(sim, hosts, "vplc1").open()
        sim.run(until=1 * SEC)
        count = app.primary_frames.read(app.bindings["io"].index)
        assert count >= 90

    def test_unprotected_device_ignored(self):
        sim, switch, app, hosts, device = build_scene()
        # Talk to a name InstaPLC does not protect.
        stray = CyclicConnection(
            sim, hosts["vplc1"], "ghost", ConnectionParams(cycle_ns=CYCLE),
            connect_timeout_ns=200 * MS,
        )
        stray.open()
        sim.run(until=500 * MS)
        assert stray.state is ArState.ABORTED  # connect timeout
        assert "ghost" not in app.bindings

    def test_duplicate_attach_rejected(self):
        sim, switch, app, hosts, device = build_scene()
        with pytest.raises(ValueError):
            app.attach_device("io", port=2)


class TestSecondaryAndTwin:
    def start_both(self, secondary_delay=300 * MS):
        sim, switch, app, hosts, device = build_scene()
        first = connection(sim, hosts, "vplc1")
        second = connection(sim, hosts, "vplc2")
        first.open()
        sim.schedule(second.open, after=secondary_delay)
        return sim, switch, app, hosts, device, first, second

    def test_second_vplc_becomes_secondary_via_twin(self):
        sim, switch, app, hosts, device, first, second = self.start_both()
        sim.run(until=1 * SEC)
        binding = app.bindings["io"]
        assert binding.secondary == "vplc2"
        assert binding.twin is not None
        assert binding.twin.handshake_complete
        # The secondary believes it is RUNNING against the real device.
        assert second.state is ArState.RUNNING
        # The real device saw only one controller.
        assert device.stats.connects_accepted == 1
        assert device.stats.connects_rejected == 0

    def test_secondary_receives_mirrored_device_state(self):
        sim, switch, app, hosts, device, first, second = self.start_both()
        sim.run(until=1 * SEC)
        assert second.inputs == first.inputs
        assert second.stats.cyclic_received > 10

    def test_secondary_cyclic_absorbed_in_data_plane(self):
        sim, switch, app, hosts, device, first, second = self.start_both()
        sim.run(until=1 * SEC)
        absorbed = app.secondary_absorbed.read(app.bindings["io"].index)
        assert absorbed > 10
        # Device receives only the primary's cyclic rate, not double.
        assert device.stats.cyclic_received <= first.stats.cyclic_sent + 2

    def test_third_vplc_not_admitted(self):
        sim, switch, app, hosts, device, first, second = self.start_both()
        third_host = Host(sim, "vplc3")
        Link(sim, third_host.add_port(), switch.add_port(), 1e9, 500)
        third = CyclicConnection(
            sim, third_host, "io", ConnectionParams(cycle_ns=CYCLE),
            connect_timeout_ns=300 * MS,
        )
        sim.schedule(third.open, after=600 * MS)
        sim.run(until=2 * SEC)
        assert third.state is ArState.ABORTED
        assert app.bindings["io"].secondary == "vplc2"


class TestSwitchover:
    def run_switchover(self, detection_cycles=1.5):
        sim, switch, app, hosts, device = build_scene(detection_cycles)
        first = connection(sim, hosts, "vplc1")
        second = connection(sim, hosts, "vplc2")
        first.open()
        sim.schedule(second.open, after=200 * MS)
        sim.schedule(first.fail_silently, after=1 * SEC)
        sim.run(until=3 * SEC)
        self.hosts = hosts
        return sim, app, device, first, second

    def test_switchover_triggered_by_stalled_counter(self):
        sim, app, device, first, second = self.run_switchover()
        events = app.bindings["io"].switchovers
        assert len(events) == 1
        assert events[0].old_primary == "vplc1"
        assert events[0].new_primary == "vplc2"
        # Detected within ~2 cycles of the crash.
        assert events[0].detected_ns - 1 * SEC < 2 * CYCLE

    def test_device_never_enters_failsafe(self):
        sim, app, device, first, second = self.run_switchover()
        assert device.stats.watchdog_expirations == 0
        assert not device.fail_safe
        assert device.state is ArState.RUNNING

    def test_secondary_keeps_its_own_watchdog_fed(self):
        sim, app, device, first, second = self.run_switchover()
        assert second.state is ArState.RUNNING
        assert second.stats.watchdog_expirations == 0

    def test_promoted_secondary_controls_device(self):
        sim, app, device, first, second = self.run_switchover()
        second.outputs["post_switchover"] = 77
        sim.run(until=int(3.5 * SEC))
        assert device.outputs.get("post_switchover") == 77

    def test_resurrected_old_primary_becomes_new_secondary(self):
        sim, app, device, first, second = self.run_switchover()
        accepted_before = device.stats.connects_accepted
        # The old primary comes back and reconnects: InstaPLC re-admits it
        # as the standby (served by a fresh digital twin), restoring 1:1
        # redundancy without ever touching the real device.
        revived = CyclicConnection(
            sim, self.hosts["vplc1"], "io", ConnectionParams(cycle_ns=CYCLE)
        )
        revived.open()
        sim.run(until=5 * SEC)
        binding = app.bindings["io"]
        assert binding.primary == "vplc2"
        assert binding.secondary == "vplc1"
        assert revived.state is ArState.RUNNING
        # The real device never saw a second handshake.
        assert device.stats.connects_accepted == accepted_before
        assert device.state is ArState.RUNNING

    def test_double_failover_survives(self):
        # vplc1 dies -> vplc2 takes over; vplc1 revives as standby; then
        # vplc2 dies -> control returns to vplc1.  Two data-plane
        # switchovers, zero device watchdog expirations.
        sim, app, device, first, second = self.run_switchover()
        revived = CyclicConnection(
            sim, self.hosts["vplc1"], "io", ConnectionParams(cycle_ns=CYCLE)
        )
        revived.open()
        sim.run(until=4 * SEC)
        second.fail_silently()
        sim.run(until=6 * SEC)
        binding = app.bindings["io"]
        assert len(binding.switchovers) == 2
        assert binding.primary == "vplc1"
        assert device.stats.watchdog_expirations == 0
        assert device.state is ArState.RUNNING

    def test_monitor_does_not_false_trigger_without_secondary(self):
        sim, switch, app, hosts, device = build_scene()
        first = connection(sim, hosts, "vplc1")
        first.open()
        sim.schedule(first.fail_silently, after=1 * SEC)
        sim.run(until=3 * SEC)
        # No secondary: nothing to switch to; the device fails safe.
        assert app.bindings["io"].switchovers == []
        assert device.stats.watchdog_expirations == 1

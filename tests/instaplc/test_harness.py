"""The Figure 5 harness: switchover scenario shape."""

import numpy as np
import pytest

from repro.instaplc import run_fig5
from repro.simcore.units import MS, SEC


@pytest.fixture(scope="module")
def result():
    # One shared run: the scenario is deterministic given the seed.
    return run_fig5(duration_ns=3 * SEC, crash_ns=round(1.5 * SEC), seed=0)


def steady(counts):
    """Bins at the steady-state plateau (strictly positive ones)."""
    return counts[counts > 0]


class TestFig5Shape:
    def test_vplc1_stops_at_crash(self, result):
        counts = result.binned("vplc1").counts
        crash_bin = result.crash_ns // result.bin_width_ns
        assert all(counts[:crash_bin - 1] > 0)
        assert all(counts[crash_bin + 1:] == 0)

    def test_vplc2_sends_before_and_after(self, result):
        counts = result.binned("vplc2").counts
        # After its startup phase, vPLC2 transmits continuously (absorbed
        # pre-switchover, forwarded after) — Figure 5a's second curve.
        started = np.argmax(counts > 0)
        assert all(counts[started + 1:] > 0)

    def test_io_rate_continuous_through_switchover(self, result):
        counts = result.binned("to_io").counts
        plateau = steady(counts[2:])
        # Figure 5b: the to-I/O rate never collapses; allow a one-bin dip
        # of a couple of cycles during the handover.
        expected = result.bin_width_ns // result.cycle_ns
        assert plateau.min() >= expected - 3
        assert counts[2:].min() > 0

    def test_rates_match_cycle_time(self, result):
        expected = result.bin_width_ns // result.cycle_ns
        vplc1 = result.binned("vplc1").counts
        assert int(np.median(vplc1[vplc1 > 0])) == expected

    def test_exactly_one_switchover(self, result):
        assert len(result.switchovers) == 1
        event = result.switchovers[0]
        assert event.old_primary == "vplc1"
        assert event.new_primary == "vplc2"

    def test_switchover_latency_under_two_cycles(self, result):
        assert result.switchover_latency_ns is not None
        assert result.switchover_latency_ns < 2 * result.cycle_ns

    def test_device_stays_healthy(self, result):
        assert result.device_watchdog_expirations == 0
        assert not result.device_fail_safe

    def test_max_io_gap_within_watchdog(self, result):
        gap = result.max_io_gap_after_ns(500 * MS)
        assert gap < 3 * result.cycle_ns  # the device watchdog never fires

    def test_switchover_beats_hardware_redundancy_baseline(self, result):
        from repro.plc import HW_SWITCHOVER_MIN_NS

        # InstaPLC's in-network switchover is far below the classic
        # redundant-pair's 50 ms best case.
        assert result.switchover_latency_ns < HW_SWITCHOVER_MIN_NS


class TestFig5Variants:
    def test_different_seed_same_story(self):
        result = run_fig5(duration_ns=2 * SEC, crash_ns=1 * SEC, seed=42)
        assert len(result.switchovers) == 1
        assert result.device_watchdog_expirations == 0

    def test_longer_cycle_still_seamless(self):
        result = run_fig5(
            cycle_ns=10 * MS, duration_ns=4 * SEC, crash_ns=2 * SEC, seed=1
        )
        assert len(result.switchovers) == 1
        assert result.device_watchdog_expirations == 0
        assert result.max_io_gap_after_ns(1 * SEC) < 3 * 10 * MS

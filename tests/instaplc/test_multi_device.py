"""InstaPLC protecting several I/O devices on one switch."""

from repro.fieldbus import ArState, ConnectionParams, CyclicConnection, IoDeviceApp
from repro.instaplc import InstaPlcApp
from repro.net import Host, Link
from repro.p4 import P4Switch
from repro.simcore import Simulator, MS, SEC

CYCLE = 5 * MS


def build_two_device_scene():
    sim = Simulator(seed=6)
    switch = P4Switch(sim, "sw")
    hosts = {}
    for name in ("vplc1", "vplc2", "vplc3", "vplc4", "io1", "io2"):
        host = Host(sim, name)
        Link(sim, host.add_port(), switch.add_port(), 1e9, 500)
        hosts[name] = host
    app = InstaPlcApp(sim, switch)
    app.attach_device("io1", port=4)
    app.attach_device("io2", port=5)
    devices = {
        "io1": IoDeviceApp(sim, hosts["io1"]),
        "io2": IoDeviceApp(sim, hosts["io2"]),
    }
    params = ConnectionParams(cycle_ns=CYCLE)
    connections = {
        "vplc1": CyclicConnection(sim, hosts["vplc1"], "io1", params),
        "vplc2": CyclicConnection(sim, hosts["vplc2"], "io1", params),
        "vplc3": CyclicConnection(sim, hosts["vplc3"], "io2", params),
        "vplc4": CyclicConnection(sim, hosts["vplc4"], "io2", params),
    }
    connections["vplc1"].open()
    connections["vplc3"].open()
    sim.schedule(connections["vplc2"].open, after=100 * MS)
    sim.schedule(connections["vplc4"].open, after=100 * MS)
    return sim, app, devices, connections


class TestMultiDevice:
    def test_independent_bindings(self):
        sim, app, devices, connections = build_two_device_scene()
        sim.run(until=1 * SEC)
        assert app.bindings["io1"].primary == "vplc1"
        assert app.bindings["io1"].secondary == "vplc2"
        assert app.bindings["io2"].primary == "vplc3"
        assert app.bindings["io2"].secondary == "vplc4"
        assert all(d.state is ArState.RUNNING for d in devices.values())

    def test_per_device_registers_isolated(self):
        sim, app, devices, connections = build_two_device_scene()
        sim.run(until=1 * SEC)
        io1_count = app.primary_frames.read(app.bindings["io1"].index)
        io2_count = app.primary_frames.read(app.bindings["io2"].index)
        assert io1_count > 100
        assert io2_count > 100

    def test_failure_of_one_primary_does_not_touch_the_other_device(self):
        sim, app, devices, connections = build_two_device_scene()
        sim.run(until=1 * SEC)
        connections["vplc1"].fail_silently()
        sim.run(until=2 * SEC)
        # io1 switched to vplc2; io2 untouched, still on vplc3.
        assert app.bindings["io1"].primary == "vplc2"
        assert len(app.bindings["io1"].switchovers) == 1
        assert app.bindings["io2"].primary == "vplc3"
        assert app.bindings["io2"].switchovers == []
        assert devices["io1"].stats.watchdog_expirations == 0
        assert devices["io2"].stats.watchdog_expirations == 0

    def test_simultaneous_failures_both_recover(self):
        sim, app, devices, connections = build_two_device_scene()
        sim.run(until=1 * SEC)
        connections["vplc1"].fail_silently()
        connections["vplc3"].fail_silently()
        sim.run(until=2 * SEC)
        assert app.bindings["io1"].primary == "vplc2"
        assert app.bindings["io2"].primary == "vplc4"
        for device in devices.values():
            assert device.stats.watchdog_expirations == 0
            assert device.state is ArState.RUNNING

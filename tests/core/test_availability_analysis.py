"""Architectural availability analysis (Section 2.2)."""

import pytest

from repro.core import (
    ComponentClass,
    DependencyChain,
    classic_ot_plant,
    compare_architectures,
    consolidated_vplc_plant,
    redundant_vplc_plant,
)
from repro.core.availability_analysis import (
    DC_SERVER,
    HARDWARE_PLC_COMPONENT,
    VIRTUALIZATION_STACK,
    _group_failures_per_year,
)
from repro.metrics import SECONDS_PER_YEAR


class TestComponentClass:
    def test_availability_from_profile(self):
        component = ComponentClass("x", mtbf_s=99.0, mttr_s=1.0)
        assert component.availability == pytest.approx(0.99)

    def test_failures_per_year(self):
        component = ComponentClass(
            "x", mtbf_s=SECONDS_PER_YEAR, mttr_s=0.0
        )
        assert component.failures_per_year == pytest.approx(1.0)

    def test_hardware_plc_more_reliable_than_dc_stack(self):
        assert (
            HARDWARE_PLC_COMPONENT.availability
            > DC_SERVER.availability
            > VIRTUALIZATION_STACK.availability
        )


class TestDependencyChain:
    def test_series_composition(self):
        a = ComponentClass("a", 99.0, 1.0)
        chain = DependencyChain(private=(a, a))
        assert chain.availability() == pytest.approx(0.99**2)

    def test_redundant_group_composition(self):
        a = ComponentClass("a", 9.0, 1.0)  # A = 0.9
        chain = DependencyChain(private_redundant=((a, a),))
        assert chain.availability() == pytest.approx(0.99)

    def test_mixed_chain(self):
        a = ComponentClass("a", 99.0, 1.0)
        b = ComponentClass("b", 9.0, 1.0)
        chain = DependencyChain(private=(a,), shared_redundant=((b, b),))
        assert chain.availability() == pytest.approx(0.99 * 0.99)


class TestGroupFailureRate:
    def test_redundancy_slashes_group_rate(self):
        single = ComponentClass("s", mtbf_s=999.0, mttr_s=1.0)
        group_rate = _group_failures_per_year((single, single))
        assert group_rate < single.failures_per_year / 100

    def test_single_member_group_is_plain_rate(self):
        component = ComponentClass("s", mtbf_s=999.0, mttr_s=1.0)
        assert _group_failures_per_year((component,)) == pytest.approx(
            component.failures_per_year
        )


class TestArchitectures:
    def test_consolidation_penalty(self):
        # The Section 2.2 claim: naive consolidation is strictly worse
        # than classic OT, both per cell and in blast radius.
        classic = classic_ot_plant(24)
        consolidated = consolidated_vplc_plant(24)
        assert (
            consolidated.cell_availability() < classic.cell_availability()
        )
        assert consolidated.shared_failure_blast_radius() == 24
        assert classic.shared_failure_blast_radius() == 1

    def test_redundancy_recovers_availability(self):
        consolidated = consolidated_vplc_plant(24)
        redundant = redundant_vplc_plant(24)
        classic = classic_ot_plant(24)
        assert redundant.cell_availability() > consolidated.cell_availability()
        # Hardened consolidation even beats classic OT per cell.
        assert redundant.cell_availability() > classic.cell_availability()

    def test_cell_outage_events_scale_with_blast_radius(self):
        consolidated = consolidated_vplc_plant(24)
        classic = classic_ot_plant(24)
        assert (
            consolidated.simultaneous_cell_outages_per_year()
            > 50 * classic.simultaneous_cell_outages_per_year()
        )

    def test_blast_radius_grows_with_plant_size(self):
        small = consolidated_vplc_plant(4)
        large = consolidated_vplc_plant(64)
        assert (
            large.simultaneous_cell_outages_per_year()
            > small.simultaneous_cell_outages_per_year()
        )
        # Per-cell availability is size-independent (shared chain only).
        assert small.cell_availability() == pytest.approx(
            large.cell_availability()
        )

    def test_compare_architectures_report(self):
        report = compare_architectures(24)
        assert set(report) == {
            "classic-ot", "consolidated-vplc", "redundant-vplc",
        }
        for metrics in report.values():
            assert 0 < metrics["cell_availability"] < 1
            assert metrics["cell_downtime_s_per_year"] > 0

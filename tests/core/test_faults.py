"""Fault injection, and its agreement with the analytic availability model."""

import pytest

from repro.core import (
    ComponentClass,
    FaultInjector,
    FaultTarget,
    consolidated_vplc_plant,
)
from repro.core.availability_analysis import DC_SERVER, VIRTUALIZATION_STACK
from repro.net import Topology
from repro.simcore import Simulator, SEC
from repro.simcore.units import HOUR


def flaky_component(mtbf_s=50.0, mttr_s=50.0):
    """A very unreliable component so short runs gather statistics."""
    return ComponentClass("flaky", mtbf_s=mtbf_s, mttr_s=mttr_s)


class TestBookkeeping:
    def test_single_component_downtime_tracked(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim, cells=1)
        state = {"up": True}
        injector.register(
            FaultTarget(
                name="x",
                component_class=flaky_component(),
                fail=lambda: state.update(up=False),
                repair=lambda: state.update(up=True),
                affected_cells=(0,),
            )
        )
        injector.start()
        horizon = 2_000 * SEC
        sim.run(until=horizon)
        availability = injector.measured_availability(horizon)[0]
        # MTBF == MTTR: availability must hover around 0.5.
        assert 0.3 < availability < 0.7
        assert injector.failures_injected > 5

    def test_overlapping_failures_counted_once(self):
        sim = Simulator(seed=2)
        injector = FaultInjector(sim, cells=1)
        log = injector.logs[0]
        log.mark_down(100)
        log.mark_down(200)   # second component fails while down
        log.mark_up(300)
        assert log.down_count == 1
        log.mark_up(500)
        assert log.outages == [(100, 500)]

    def test_open_outage_counts_to_horizon(self):
        sim = Simulator(seed=3)
        injector = FaultInjector(sim, cells=1)
        log = injector.logs[0]
        log.mark_down(100)
        assert log.downtime_ns(1_100) == 1_000
        assert log.availability(1_100) == pytest.approx(1 - 1_000 / 1_100)

    def test_time_compression_preserves_availability(self):
        results = []
        for compression in (1.0, 10.0):
            sim = Simulator(seed=4)
            injector = FaultInjector(sim, cells=1, time_compression=compression)
            state = {}
            injector.register(
                FaultTarget(
                    name="x",
                    component_class=ComponentClass("c", 400.0, 100.0),
                    fail=lambda: None,
                    repair=lambda: None,
                    affected_cells=(0,),
                )
            )
            injector.start()
            horizon = 20_000 * SEC
            sim.run(until=horizon)
            results.append(injector.measured_availability(horizon)[0])
        # Both should approximate A = 400/500 = 0.8.
        for value in results:
            assert abs(value - 0.8) < 0.08

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FaultInjector(sim, cells=0)
        with pytest.raises(ValueError):
            FaultInjector(sim, cells=1, time_compression=0)
        injector = FaultInjector(sim, cells=1)
        with pytest.raises(ValueError):
            injector.register(
                FaultTarget("x", flaky_component(), lambda: None,
                            lambda: None, affected_cells=(5,))
            )


class TestLinkFaults:
    def test_registered_link_actually_fails_and_recovers(self):
        sim = Simulator(seed=5)
        topo = Topology(sim)
        a, b = topo.add_host("a"), topo.add_host("b")
        link = topo.connect(a, b)
        injector = FaultInjector(sim, cells=1, time_compression=1.0)
        injector.register_link(
            link, flaky_component(mtbf_s=10.0, mttr_s=10.0),
            affected_cells=(0,),
        )
        injector.start()
        states = []
        from repro.simcore import every

        every(sim, 1 * SEC, lambda: states.append(link.up))
        sim.run(until=200 * SEC)
        assert True in states and False in states


class TestAnalyticAgreement:
    def test_simulation_confirms_consolidation_analysis(self):
        """The E8 validation: measured availability of a consolidated
        plant matches the analytic chain within statistical tolerance."""
        plant = consolidated_vplc_plant(cells=4)
        sim = Simulator(seed=7)
        # Compress months-scale MTBFs into a tractable run while keeping
        # the availability ratio intact.
        injector = FaultInjector(sim, cells=4, time_compression=50_000.0)
        all_cells = tuple(range(4))
        # Shared components take all cells down together; the per-cell
        # industrial switch is modeled for cell 0 only (others symmetric).
        for component in plant.chain.shared:
            injector.register(
                FaultTarget(
                    name=component.name,
                    component_class=component,
                    fail=lambda: None,
                    repair=lambda: None,
                    affected_cells=all_cells,
                )
            )
        for component in plant.chain.private:
            injector.register(
                FaultTarget(
                    name=component.name,
                    component_class=component,
                    fail=lambda: None,
                    repair=lambda: None,
                    affected_cells=(0,),
                )
            )
        injector.start()
        horizon = 3_000 * SEC
        sim.run(until=horizon)
        measured = injector.measured_availability(horizon)[0]
        predicted = plant.cell_availability()
        # Exponential sampling noise: agree within half a percent.
        assert measured == pytest.approx(predicted, abs=5e-3)
        # Blast radius: every shared outage hit all four cells, so the
        # cell-outage event count is ~4x the failure count of shared
        # components alone.
        assert injector.simultaneous_outage_events() >= (
            3 * injector.failures_injected / 2
        )

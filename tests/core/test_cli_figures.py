"""The figure-regeneration API and CLI."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.figures import (
    FIGURES,
    fig1,
    fig4_delay,
    fig4_jitter,
    fig5,
    rows_to_csv,
    rows_to_table,
)


class TestFigureFunctions:
    def test_fig1_rows_match_paper(self):
        rows = fig1()
        assert len(rows) == 13
        assert all(row["occurrences"] == row["paper"] for row in rows)

    def test_fig4_delay_rows(self):
        rows = fig4_delay(cycles=60)
        assert {row["variant"] for row in rows} == {
            "Base", "TS", "TS-TS", "TS-RB", "TS-OW", "TS-D-RB",
        }
        assert all(row["p50_us"] <= row["p99_us"] for row in rows)

    def test_fig4_jitter_rows(self):
        rows = fig4_jitter(flow_counts=(1, 25), cycles=60)
        assert [row["flows"] for row in rows] == [1, 25]

    def test_fig5_rows_cover_three_seconds(self):
        rows = fig5()
        assert len(rows) == 60
        assert rows[0]["to_io"] > 0
        assert rows[-1]["from_vplc1"] == 0
        assert rows[-1]["to_io"] > 0

    def test_registry_complete(self):
        assert set(FIGURES) == {
            "fig1", "fig4-delay", "fig4-jitter", "fig5", "fig6",
        }


class TestRendering:
    def test_csv_round_trip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""
        assert rows_to_table([]) == "(no data)"

    def test_table_contains_headers_and_values(self):
        table = rows_to_table([{"name": "x", "value": 42}])
        assert "name" in table and "42" in table


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig1" in out

    def test_figure_to_stdout(self, capsys):
        assert main(["fig4-jitter"]) == 0
        out = capsys.readouterr().out
        assert "flows" in out

    def test_figure_to_csv(self, tmp_path, capsys):
        target = tmp_path / "fig1.csv"
        assert main(["fig1", "--csv", str(target)]) == 0
        assert target.exists()
        assert "term_group" in target.read_text().splitlines()[0]

    def test_seed_changes_stochastic_output(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        main(["fig4-jitter", "--csv", str(a), "--seed", "1"])
        main(["fig4-jitter", "--csv", str(b), "--seed", "2"])
        assert a.read_text() != b.read_text()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCliObservability:
    def test_sweep_positional_figures_with_trace_and_profile(
        self, tmp_path, capsys
    ):
        trace_dir = tmp_path / "traces"
        manifest = tmp_path / "manifest.json"
        assert main([
            "sweep", "--profile", "--trace-out", str(trace_dir),
            "fig1", "--no-cache", "--jobs", "1",
            "--manifest", str(manifest),
        ]) == 0
        assert list(trace_dir.glob("*.trace.json"))
        assert manifest.exists()

    def test_obs_renders_summary(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        main([
            "sweep", "--profile", "fig4-delay", "--param", "cycles=30",
            "--no-cache", "--jobs", "1", "--manifest", str(manifest),
        ])
        capsys.readouterr()
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "fig4-delay seed=0" in out
        assert "histograms:" in out
        assert "hot spots:" in out

    def test_obs_notes_plain_manifests(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        main(["sweep", "fig1", "--no-cache", "--jobs", "1",
              "--manifest", str(manifest)])
        capsys.readouterr()
        assert main(["obs", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "no metrics" in out

    def test_obs_missing_manifest_is_friendly(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert "cannot read manifest" in err

    def test_sweep_unwritable_trace_dir_is_friendly(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        assert main([
            "sweep", "fig1", "--no-cache", "--jobs", "1",
            "--trace-out", str(blocker / "sub"),
        ]) == 2
        err = capsys.readouterr().err
        assert "not writable" in err


class TestCliResilience:
    """Degraded sweeps: exit code 3, failure markers, and --resume."""

    @pytest.fixture(autouse=True)
    def demo_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEMO_FAULTS", "1")

    def test_degraded_sweep_exits_3_then_resumes_green(
        self, tmp_path, capsys
    ):
        manifest_path = tmp_path / "manifest.json"
        marker = tmp_path / "fixed"
        argv = [
            "sweep", "faulty-demo", "fig1",
            "--param", f"marker={marker}",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest_path),
        ]
        assert main(list(argv)) == 3
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "--resume" in err
        payload = json.loads(manifest_path.read_text())
        assert payload["schema"] == "repro.runner/manifest/v3"
        assert payload["failed"] == 1

        marker.write_text("")  # "fix" the figure
        assert main(argv + ["--resume", str(manifest_path)]) == 0
        statuses = {
            job["figure"]: job["status"]
            for job in json.loads(manifest_path.read_text())["jobs"]
        }
        assert statuses == {"fig1": "cached", "faulty-demo": "ok"}

    def test_failed_cells_export_a_marker_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main([
            "sweep", "faulty-demo", "fig1", "--no-cache", "--jobs", "1",
            "--out-dir", str(out_dir),
        ]) == 3
        capsys.readouterr()
        (failed_csv,) = out_dir.glob("faulty_demo*.csv")
        reader = csv.DictReader(io.StringIO(failed_csv.read_text()))
        (row,) = list(reader)
        assert row["status"] == "(failed)"
        assert "induced failure" in row["error"]
        # the healthy figure's CSV is real data, not a marker
        (ok_csv,) = out_dir.glob("fig1*.csv")
        assert "(failed)" not in ok_csv.read_text()

    def test_demo_figures_stay_out_of_the_registry(self, capsys):
        assert main(["list"]) == 0
        assert "faulty-demo" not in capsys.readouterr().out

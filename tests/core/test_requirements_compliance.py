"""Section 2 requirements and compliance checks."""

import pytest

from repro.core import (
    CYCLIC_RT_CLASS,
    DATACENTER_TYPICAL,
    INDUSTRIAL_SIX_NINES,
    ISOCHRONOUS_CLASS,
    MACHINE_TOOLS,
    MOTION_CONTROL,
    PROCESS_AUTOMATION,
    check_availability,
    check_latency,
    check_timing,
)
from repro.metrics import OutageLog
from repro.simcore.units import MS, US


class TestPaperNumbers:
    def test_motion_control_constants(self):
        # "latencies as low as 250 us and jitter less than 1 us".
        assert MOTION_CONTROL.max_latency_ns == 250 * US
        assert MOTION_CONTROL.max_jitter_ns == 1 * US

    def test_machine_tools_cycle(self):
        # "cycle times as low as 500 us".
        assert MACHINE_TOOLS.cycle_ns == 500 * US

    def test_process_automation_band(self):
        # "10 ms to 100 ms".
        assert PROCESS_AUTOMATION.cycle_ns == 10 * MS
        assert PROCESS_AUTOMATION.max_latency_ns == 100 * MS

    def test_six_nines_budget(self):
        # "downtime of less than 31.5 s per year".
        assert INDUSTRIAL_SIX_NINES.downtime_budget_s_per_year == pytest.approx(
            31.536, rel=1e-3
        )

    def test_datacenter_class_is_weaker(self):
        assert (
            DATACENTER_TYPICAL.availability < INDUSTRIAL_SIX_NINES.availability
        )

    def test_traffic_classes_from_tr22804(self):
        # "< 2 ms with 20-50 B" and "1-10 ms with 40-250 B".
        assert ISOCHRONOUS_CLASS.admits(1 * MS, 30)
        assert not ISOCHRONOUS_CLASS.admits(5 * MS, 30)
        assert not ISOCHRONOUS_CLASS.admits(1 * MS, 100)
        assert CYCLIC_RT_CLASS.admits(5 * MS, 100)
        assert not CYCLIC_RT_CLASS.admits(20 * MS, 100)


class TestTimingCompliance:
    PERIOD = 10 * MS

    def arrivals(self, deviations):
        times = [0]
        for deviation in deviations:
            times.append(times[-1] + self.PERIOD + deviation)
        return times

    def test_clean_traffic_passes(self):
        result = check_timing(
            PROCESS_AUTOMATION,
            self.arrivals([0] * 50),
            nominal_period_ns=self.PERIOD,
        )
        assert result.passed
        assert result.violations == ()
        assert bool(result)

    def test_excess_jitter_fails_with_reason(self):
        result = check_timing(
            PROCESS_AUTOMATION,
            self.arrivals([0, 2 * MS, 0]),
            nominal_period_ns=self.PERIOD,
        )
        assert not result.passed
        assert any("worst-case jitter" in v for v in result.violations)

    def test_watchdog_gap_fails(self):
        times = [0, self.PERIOD, 6 * self.PERIOD, 7 * self.PERIOD]
        result = check_timing(
            PROCESS_AUTOMATION, times, nominal_period_ns=self.PERIOD
        )
        assert not result.passed
        assert any("watchdog" in v for v in result.violations)

    def test_consecutive_jitter_run_detected(self):
        deviations = [2 * MS] * 4 + [0] * 10
        result = check_timing(
            PROCESS_AUTOMATION,
            self.arrivals(deviations),
            nominal_period_ns=self.PERIOD,
            consecutive_jitter_threshold_ns=1 * MS,
        )
        assert any("consecutive" in v for v in result.violations)
        assert result.details["consecutive_jitter_run"] >= 3

    def test_details_always_populated(self):
        result = check_timing(
            PROCESS_AUTOMATION, self.arrivals([100] * 20),
            nominal_period_ns=self.PERIOD,
        )
        assert set(result.details) == {
            "max_abs_jitter_ns",
            "mean_abs_jitter_ns",
            "consecutive_jitter_run",
            "watchdog_expirations",
        }


class TestLatencyCompliance:
    def test_pass_and_fail(self):
        good = check_latency(MOTION_CONTROL, [200_000] * 100)
        assert good.passed
        bad = check_latency(MOTION_CONTROL, [200_000] * 99 + [400_000])
        assert not bad.passed
        assert bad.details["worst_ns"] == 400_000

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            check_latency(MOTION_CONTROL, [])


class TestAvailabilityCompliance:
    def test_clean_log_passes_six_nines(self):
        log = OutageLog(observation_s=3600.0, outage_durations_s=())
        assert check_availability(INDUSTRIAL_SIX_NINES, log).passed

    def test_one_minute_outage_fails_six_nines(self):
        log = OutageLog(observation_s=24 * 3600.0, outage_durations_s=(60.0,))
        result = check_availability(INDUSTRIAL_SIX_NINES, log)
        assert not result.passed
        assert result.details["projected_yearly_downtime_s"] > 31.5

    def test_same_outage_passes_datacenter_class(self):
        log = OutageLog(observation_s=30 * 24 * 3600.0, outage_durations_s=(60.0,))
        assert check_availability(DATACENTER_TYPICAL, log).passed


class TestValidation:
    def test_invalid_timing_requirement(self):
        from repro.core import TimingRequirement

        with pytest.raises(ValueError):
            TimingRequirement("bad", cycle_ns=0, max_latency_ns=1, max_jitter_ns=1)

"""The FigureSpec registry, Rows helpers, deprecation shims, and new CLI."""

import argparse
import json

import pytest

import repro.figures as figures
from repro.cli import dispatch, main, parse_param_grid, parse_seeds
from repro.figures import (
    Rows,
    UnknownFigureError,
    get_spec,
    parse_int_tuple,
    registry,
    run_figure,
)


class TestRegistry:
    def test_names(self):
        assert set(registry()) == {
            "fig1", "fig4-delay", "fig4-jitter", "fig5", "fig6",
        }

    def test_registry_returns_a_copy(self):
        snapshot = registry()
        snapshot.pop("fig1")
        assert "fig1" in registry()

    def test_spec_defaults_and_docs(self):
        spec = registry()["fig4-jitter"]
        assert spec.doc.startswith("Figure 4 right")
        assert spec.defaults() == {"flow_counts": (1, 5, 25), "cycles": 400}

    def test_get_spec_unknown_lists_available(self):
        with pytest.raises(UnknownFigureError) as info:
            get_spec("fig9")
        assert "fig9" in str(info.value)
        assert "fig4-delay" in str(info.value)

    def test_resolve_rejects_unknown_param(self):
        with pytest.raises(ValueError, match="valid parameters"):
            registry()["fig4-delay"].resolve({"cycle": 10})

    def test_resolve_coerces_strings(self):
        spec = registry()["fig4-jitter"]
        params = spec.resolve({"cycles": "30", "flow_counts": "1:5"})
        assert params == {"cycles": 30, "flow_counts": (1, 5)}

    def test_run_figure_validates_name(self):
        rows = run_figure("fig4-delay", cycles=30)
        assert len(rows) == 6
        with pytest.raises(UnknownFigureError):
            run_figure("fig9")

    def test_parse_int_tuple(self):
        assert parse_int_tuple("1,5,25") == (1, 5, 25)
        assert parse_int_tuple("1:5:25") == (1, 5, 25)
        assert parse_int_tuple([1, 5]) == (1, 5)


class TestRows:
    def test_is_a_list(self):
        rows = Rows([{"a": 1}])
        assert rows == [{"a": 1}]
        assert len(rows) == 1

    def test_to_json_round_trip(self):
        rows = Rows([{"a": 1, "b": "x"}])
        assert json.loads(rows.to_json()) == [{"a": 1, "b": "x"}]

    def test_render_dispatch(self):
        rows = Rows([{"a": 1}])
        assert rows.render("csv") == rows.to_csv()
        assert rows.render("table") == rows.to_table()
        assert rows.render("json") == rows.to_json(indent=2)
        with pytest.raises(ValueError, match="yaml"):
            rows.render("yaml")

    def test_empty(self):
        assert Rows().to_csv() == ""
        assert Rows().to_table() == "(no data)"
        assert Rows().to_json() == "[]"


class TestDeprecationShims:
    def test_figures_alias_warns_and_maps_names(self):
        with pytest.warns(DeprecationWarning, match="registry"):
            legacy = figures.FIGURES
        assert set(legacy) == set(registry())
        assert all(callable(fn) for fn in legacy.values())

    def test_rows_to_csv_warns_and_matches(self):
        rows = [{"a": 1, "b": "x"}]
        with pytest.warns(DeprecationWarning, match="to_csv"):
            text = figures.rows_to_csv(rows)
        assert text == Rows(rows).to_csv()

    def test_rows_to_table_warns_and_matches(self):
        rows = [{"a": 1}]
        with pytest.warns(DeprecationWarning, match="to_table"):
            text = figures.rows_to_table(rows)
        assert text == Rows(rows).to_table()

    def test_unknown_module_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            figures.no_such_name


class TestCliRedesign:
    def test_format_json(self, capsys):
        assert main(["fig4-delay", "--cycles", "30", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["variant"] for row in payload} >= {"Base", "TS"}

    def test_param_flag_reaches_figure(self, capsys):
        assert main(["fig4-jitter", "--cycles", "30",
                     "--flow-counts", "1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["flows"] for row in payload] == [1]

    def test_out_respects_format(self, tmp_path):
        target = tmp_path / "rows.json"
        assert main(["fig4-delay", "--cycles", "30",
                     "--out", str(target), "--format", "json"]) == 0
        assert json.loads(target.read_text())

    def test_dispatch_bypassing_argparse_unknown_figure(self, capsys):
        args = argparse.Namespace(command="fig9")
        assert dispatch(args) == 2
        err = capsys.readouterr().err
        assert "fig9" in err and "fig4-delay" in err

    def test_dispatch_bad_param_value_friendly(self, capsys):
        args = argparse.Namespace(
            command="sweep", figure=["fig1"], seeds="0",
            param=["bogus"], out_dir=None, manifest=None,
            jobs=1, no_cache=True,
        )
        assert dispatch(args) == 2
        assert "bad --param" in capsys.readouterr().err

    def test_sweep_manifest_and_warm_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--figure", "fig4-delay", "--seeds", "0,1",
            "--param", "cycles=30", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path / "rows"),
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_misses"] == 2 and cold["cache_hits"] == 0

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache_hits"] == 2 and warm["cache_misses"] == 0
        assert all(job["cached"] for job in warm["jobs"])
        assert len(list((tmp_path / "rows").glob("*.csv"))) == 2

    def test_parse_seeds(self):
        assert parse_seeds("0,1,2") == [0, 1, 2]
        assert parse_seeds("0..4") == [0, 1, 2, 3, 4]
        assert parse_seeds("7") == [7]

    def test_parse_param_grid(self):
        assert parse_param_grid(["cycles=1,2", "flow_counts=1:5"]) == {
            "cycles": ["1", "2"], "flow_counts": ["1:5"],
        }
        with pytest.raises(ValueError, match="bad --param"):
            parse_param_grid(["cycles"])

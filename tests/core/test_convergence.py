"""The converged IT/OT factory facade."""

import pytest

from repro.core import ConvergedFactory, FactoryConfig, PROCESS_AUTOMATION
from repro.core.requirements import MOTION_CONTROL
from repro.net.routing import verify_routes
from repro.plc import HARDWARE_PLC
from repro.simcore import Simulator, MS, SEC


def build(cells=2, devices=2, **kwargs):
    sim = Simulator(seed=4)
    config = FactoryConfig(cells=cells, devices_per_cell=devices, **kwargs)
    return sim, ConvergedFactory(sim, config)


class TestConstruction:
    def test_shape(self):
        sim, factory = build(cells=3, devices=2)
        assert len(factory.cells) == 3
        assert len(factory.devices()) == 6
        names = set(factory.topo.devices)
        assert {"vplc0", "vplc1", "vplc2"} <= names
        assert {"cell0", "cell1", "cell2"} <= names

    def test_routes_clean(self):
        sim, factory = build(cells=4, devices=1)
        assert verify_routes(factory.topo) == []

    def test_leaves_scale_with_cells(self):
        sim, factory = build(cells=5, devices=1)
        leaves = [n for n in factory.topo.devices if n.startswith("leaf")]
        assert len(leaves) == 2  # 5 cells at 4 vPLCs/leaf

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FactoryConfig(cells=0)


class TestOperation:
    def test_all_cells_reach_running(self):
        sim, factory = build()
        factory.start()
        sim.run(until=1 * SEC)
        assert factory.all_running()

    def test_control_loop_closes_over_the_fabric(self):
        sim, factory = build()
        factory.start()
        sim.run(until=2 * SEC)
        # The default passthrough program echoes each device's counter.
        for device in factory.devices():
            assert device.outputs.get("echo", 0) > 0

    def test_cell_failure_is_contained(self):
        sim, factory = build(cells=3, devices=1)
        factory.start()
        sim.run(until=1 * SEC)
        factory.cells[0].vplc.crash()
        sim.run(until=2 * SEC)
        # Cell 0's device fails safe; the other cells keep running.
        assert factory.cells[0].devices[0].fail_safe
        assert factory.cells[1].vplc.all_running
        assert factory.cells[2].vplc.all_running

    def test_backhaul_failure_only_hits_its_cell(self):
        sim, factory = build(cells=2, devices=1)
        factory.start()
        sim.run(until=1 * SEC)
        link = factory.topo.link_between("cell0", "leaf0")
        link.set_down()
        sim.run(until=2 * SEC)
        assert factory.cells[0].devices[0].fail_safe
        assert not factory.cells[1].devices[0].fail_safe


class TestCompliance:
    def test_vplc_meets_process_automation(self):
        sim, factory = build(cells=2, devices=1, cycle_ns=10 * MS)
        factory.start()
        sim.run(until=3 * SEC)
        results = factory.timing_compliance(PROCESS_AUTOMATION)
        assert results
        assert all(result.passed for result in results.values())

    def test_vplc_fails_motion_control(self):
        # The Section 2.1 headline: virtualization stacks cannot deliver
        # 1 us jitter.
        sim, factory = build(cells=1, devices=1, cycle_ns=2 * MS)
        factory.start()
        sim.run(until=3 * SEC)
        results = factory.timing_compliance(MOTION_CONTROL)
        assert results
        assert not any(result.passed for result in results.values())

    def test_hardware_platform_improves_compliance(self):
        sim = Simulator(seed=4)
        config = FactoryConfig(
            cells=1, devices_per_cell=1, cycle_ns=2 * MS,
            platform=HARDWARE_PLC,
        )
        factory = ConvergedFactory(sim, config)
        factory.start()
        sim.run(until=3 * SEC)
        vplc_jitter = None
        for result in factory.timing_compliance(MOTION_CONTROL).values():
            vplc_jitter = result.details["max_abs_jitter_ns"]
        # Hardware still pays network path noise here, but is far tighter
        # than the vPLC default (see test above): single-digit us.
        assert vplc_jitter is not None
        assert vplc_jitter < 10_000

"""Topology builders and static routing."""

import pytest

from repro.net import (
    Topology,
    build_fat_tree,
    build_leaf_spine,
    build_line,
    build_ring,
    build_star,
    build_tree,
    install_shortest_path_routes,
    path_hop_count,
    shortest_path,
    verify_routes,
)
from repro.simcore import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestBuilders:
    def test_line_shape(self, sim):
        topo = build_line(sim, 4)
        assert len(topo.hosts()) == 4
        assert len(topo.switches()) == 4
        assert len(topo.links) == 4 + 3
        assert topo.is_connected()

    def test_ring_shape(self, sim):
        topo = build_ring(sim, 5, hosts_per_switch=2)
        assert len(topo.switches()) == 5
        assert len(topo.hosts()) == 10
        assert len(topo.links) == 5 + 10
        assert topo.is_connected()

    def test_ring_minimum_size(self, sim):
        with pytest.raises(ValueError):
            build_ring(sim, 2)

    def test_star_shape(self, sim):
        topo = build_star(sim, 6)
        assert len(topo.switches()) == 1
        assert len(topo.hosts()) == 6
        assert all(
            path_hop_count(topo, h.name, "sw0") == 1 for h in topo.hosts()
        )

    def test_tree_shape(self, sim):
        topo = build_tree(sim, depth=2, fanout=2, hosts_per_leaf=2)
        assert len(topo.switches()) == 1 + 2 + 4
        assert len(topo.hosts()) == 8
        assert topo.is_connected()

    def test_leaf_spine_full_bipartite_core(self, sim):
        topo = build_leaf_spine(sim, leaf_count=4, spine_count=2, hosts_per_leaf=3)
        assert len(topo.hosts()) == 12
        # Each leaf connects to each spine.
        fabric_links = [
            link for link in topo.links
            if "spine" in link.port_a.device.name
            or "spine" in link.port_b.device.name
        ]
        assert len(fabric_links) == 8

    def test_fat_tree_k4_dimensions(self, sim):
        topo = build_fat_tree(sim, k=4)
        assert len(topo.hosts()) == 16  # k^3/4
        assert len(topo.switches()) == 4 + 8 + 8  # cores + agg + edge
        assert topo.is_connected()

    def test_fat_tree_odd_k_rejected(self, sim):
        with pytest.raises(ValueError):
            build_fat_tree(sim, k=3)

    def test_duplicate_device_name_rejected(self, sim):
        topo = Topology(sim)
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_host("x")

    def test_link_between(self, sim):
        topo = build_line(sim, 2)
        assert topo.link_between("sw0", "sw1") is not None
        assert topo.link_between("sw0", "h1") is None

    def test_hop_count_same_device_zero(self, sim):
        topo = build_line(sim, 2)
        assert path_hop_count(topo, "h0", "h0") == 0

    def test_hop_count_disconnected_raises(self, sim):
        topo = Topology(sim)
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(ValueError):
            path_hop_count(topo, "a", "b")


class TestRouting:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (build_line, {"host_count": 5}),
            (build_ring, {"switch_count": 6, "hosts_per_switch": 2}),
            (build_star, {"host_count": 4}),
            (build_tree, {"depth": 2, "fanout": 3}),
            (build_leaf_spine, {"leaf_count": 3, "spine_count": 2, "hosts_per_leaf": 2}),
            (build_fat_tree, {"k": 4}),
        ],
    )
    def test_routes_verify_clean_on_all_topologies(self, sim, builder, kwargs):
        topo = builder(sim, **kwargs)
        installed = install_shortest_path_routes(topo)
        assert installed > 0
        assert verify_routes(topo) == []

    def test_shortest_path_endpoints(self, sim):
        topo = build_ring(sim, 6)
        path = shortest_path(topo, "h0_0", "h3_0")
        assert path[0] == "h0_0"
        assert path[-1] == "h3_0"
        # Ring of 6: 3 switch hops is the short way round.
        assert len(path) == 2 + 4

    def test_shortest_path_disconnected_raises(self, sim):
        topo = Topology(sim)
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(ValueError):
            shortest_path(topo, "a", "b")

    def test_ring_routing_takes_short_direction(self, sim):
        topo = build_ring(sim, 8)
        install_shortest_path_routes(topo)
        # h1 is one switch hop from h0's switch going clockwise.
        assert path_hop_count(topo, "h0_0", "h1_0") == 3

    def test_end_to_end_delivery_on_fat_tree(self, sim):
        topo = build_fat_tree(sim, k=4)
        install_shortest_path_routes(topo)
        hosts = topo.hosts()
        src, dst = hosts[0], hosts[-1]
        received = []
        dst.on_receive(received.append)
        src.send(dst.name, payload_bytes=100)
        sim.run()
        assert len(received) == 1
        # Cross-pod path traverses edge-agg-core-agg-edge.
        assert len(received[0].hops) == 5

    def test_ecmp_seed_changes_spine_choice_somewhere(self, sim):
        topo = build_leaf_spine(sim, leaf_count=4, spine_count=4, hosts_per_leaf=4)
        install_shortest_path_routes(topo, ecmp_seed=0)
        tables_a = {
            s.name: dict(s.forwarding_table) for s in topo.switches()
        }
        for switch in topo.switches():
            switch.forwarding_table.clear()
        install_shortest_path_routes(topo, ecmp_seed=1)
        tables_b = {
            s.name: dict(s.forwarding_table) for s in topo.switches()
        }
        assert tables_a != tables_b
        assert verify_routes(topo) == []

    def test_verify_routes_reports_missing_entry(self, sim):
        topo = build_line(sim, 3)
        install_shortest_path_routes(topo)
        topo.switches()[0].forwarding_table.pop("h2")
        problems = verify_routes(topo)
        assert any("no route to h2" in p for p in problems)

    def test_verify_routes_reports_loop(self, sim):
        topo = build_line(sim, 3)
        install_shortest_path_routes(topo)
        # Point sw1's route for h2 back toward sw0: creates a loop.
        sw0_port = next(
            port.index for port in topo.devices["sw1"].ports
            if port.peer is not None and port.peer.device.name == "sw0"
        )
        topo.devices["sw1"].install_route("h2", sw0_port)
        problems = verify_routes(topo)
        assert any("loop" in p for p in problems)

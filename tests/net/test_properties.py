"""Property-based tests for topologies and routing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    Packet,
    StrictPriorityQueue,
    TrafficClass,
    build_leaf_spine,
    build_ring,
    build_tree,
    install_shortest_path_routes,
    shortest_path,
    verify_routes,
)
from repro.net.routing import bfs_distances
from repro.simcore import Simulator


@given(st.integers(3, 12), st.integers(1, 3))
@settings(deadline=None, max_examples=20)
def test_ring_routes_always_loop_free(switches, hosts_per_switch):
    topo = build_ring(Simulator(), switches, hosts_per_switch)
    install_shortest_path_routes(topo)
    assert verify_routes(topo) == []


@given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 4))
@settings(deadline=None, max_examples=20)
def test_leaf_spine_routes_always_loop_free(leaves, spines, hosts):
    topo = build_leaf_spine(Simulator(), leaves, spines, hosts)
    install_shortest_path_routes(topo)
    assert verify_routes(topo) == []


@given(st.integers(1, 3), st.integers(1, 3))
@settings(deadline=None, max_examples=15)
def test_tree_path_lengths_symmetric(depth, fanout):
    topo = build_tree(Simulator(), depth, fanout, hosts_per_leaf=1)
    hosts = topo.hosts()
    if len(hosts) >= 2:
        a, b = hosts[0].name, hosts[-1].name
        forward = shortest_path(topo, a, b)
        backward = shortest_path(topo, b, a)
        assert len(forward) == len(backward)


@given(st.integers(3, 10))
@settings(deadline=None, max_examples=10)
def test_ring_distance_at_most_half(switches):
    topo = build_ring(Simulator(), switches, hosts_per_switch=0)
    distances = bfs_distances(topo.adjacency(), "sw0")
    assert max(distances.values()) <= switches // 2


@given(
    st.lists(
        st.sampled_from(list(TrafficClass)),
        min_size=1,
        max_size=100,
    )
)
def test_strict_priority_dequeue_order_is_nonincreasing_pcp(classes):
    queue = StrictPriorityQueue()
    for tc in classes:
        queue.enqueue(Packet(src="a", dst="b", payload_bytes=30, traffic_class=tc))
    pcps = []
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        pcps.append(packet.traffic_class.pcp)
    assert pcps == sorted(pcps, reverse=True)
    assert len(pcps) == len(classes)


@given(st.integers(0, 1500))
def test_frame_size_bounds(payload):
    packet = Packet(src="a", dst="b", payload_bytes=payload)
    assert packet.frame_bytes >= 64
    assert packet.wire_size_bytes == packet.frame_bytes + 20
    assert packet.serialization_time_ns(1e9) >= 672

"""Flow taxonomy and traffic generators."""

import numpy as np
import pytest

from repro.net import (
    BulkSender,
    CyclicSender,
    FlowKind,
    FlowSpec,
    PoissonSender,
    TrafficClass,
    Topology,
    classify_flow,
    install_shortest_path_routes,
)
from repro.net.flows import ELEPHANT_MIN_BYTES, KB, MB
from repro.simcore import Simulator, MS, SEC


def linked_pair():
    sim = Simulator(seed=1)
    topo = Topology(sim)
    a, b = topo.add_host("a"), topo.add_host("b")
    topo.connect(a, b)
    install_shortest_path_routes(topo)
    return sim, a, b


class TestTaxonomy:
    def test_mice_flow(self):
        spec = FlowSpec("f", "a", "b", total_bytes=5 * KB)
        assert classify_flow(spec) is FlowKind.MICE

    def test_medium_flow(self):
        spec = FlowSpec("f", "a", "b", total_bytes=MB // 2)
        assert spec.kind is FlowKind.MEDIUM

    def test_elephant_flow(self):
        spec = FlowSpec("f", "a", "b", total_bytes=2 * ELEPHANT_MIN_BYTES)
        assert spec.kind is FlowKind.ELEPHANT

    def test_cyclic_microflow_is_its_own_kind(self):
        # The paper's new flow type: never-ending + cyclic + tiny payload.
        spec = FlowSpec("f", "a", "b", period_ns=2 * MS, payload_bytes=30)
        assert spec.kind is FlowKind.CYCLIC_MICROFLOW
        assert spec.is_never_ending

    def test_unbounded_stream_without_cycle_is_elephant(self):
        spec = FlowSpec("f", "a", "b")
        assert spec.kind is FlowKind.ELEPHANT


class TestCyclicSender:
    def test_exact_cadence_without_jitter(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=30)
        sender = CyclicSender(sim, a, spec)
        sender.start()
        sim.run(until=10 * MS)
        # Events at exactly t=until fire, so t=0..10 ms inclusive.
        assert sender.stats.packets_sent == 11
        assert sender.stats.send_times_ns == [k * MS for k in range(11)]

    def test_jitter_does_not_accumulate(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=30)
        rng = np.random.default_rng(0)
        sender = CyclicSender(
            sim, a, spec, release_jitter_fn=lambda: int(rng.integers(0, 50_000))
        )
        sender.start()
        sim.run(until=100 * MS)
        times = np.array(sender.stats.send_times_ns)
        offsets = times - np.arange(times.size) * MS
        # Each activation deviates by at most the per-cycle jitter bound.
        assert offsets.min() >= 0
        assert offsets.max() < 50_000

    def test_stop_models_crash(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=30)
        sender = CyclicSender(sim, a, spec)
        sender.start()
        sim.run(until=5 * MS)
        sender.stop()
        sim.run(until=20 * MS)
        assert sender.stats.packets_sent == 6  # t=0..5 inclusive

    def test_sequence_numbers_increment(self):
        sim, a, b = linked_pair()
        b.record_received = True
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=30)
        CyclicSender(sim, a, spec).start()
        sim.run(until=3 * MS)
        assert [p.sequence for p in b.received] == [1, 2, 3]

    def test_non_cyclic_spec_rejected(self):
        sim, a, b = linked_pair()
        with pytest.raises(ValueError):
            CyclicSender(sim, a, FlowSpec("f", "a", "b", total_bytes=100))

    def test_start_offset(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("f", "a", "b", period_ns=1 * MS, payload_bytes=30)
        sender = CyclicSender(sim, a, spec, start_ns=300_000)
        sender.start()
        sim.run(until=3 * MS)
        assert sender.stats.send_times_ns[0] == 300_000


class TestBulkSender:
    def test_transfers_exact_total(self):
        sim, a, b = linked_pair()
        total = 10_000
        spec = FlowSpec("bulk", "a", "b", total_bytes=total)
        received_bytes = []
        b.on_receive(lambda p: received_bytes.append(p.payload_bytes))
        sender = BulkSender(sim, a, spec)
        sender.start()
        sim.run(until=1 * SEC)
        assert sender.completed
        assert sender.stats.bytes_sent == total
        assert sum(received_bytes) == total

    def test_segments_at_mtu(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("bulk", "a", "b", total_bytes=3_000)
        sender = BulkSender(sim, a, spec, mtu_payload_bytes=1_460)
        sender.start()
        sim.run(until=1 * SEC)
        assert sender.stats.packets_sent == 3  # 1460 + 1460 + 80

    def test_on_complete_callback(self):
        sim, a, b = linked_pair()
        done = []
        spec = FlowSpec("bulk", "a", "b", total_bytes=1_000)
        BulkSender(sim, a, spec, on_complete=lambda: done.append(sim.now)).start()
        sim.run(until=1 * SEC)
        assert len(done) == 1

    def test_unbounded_spec_rejected(self):
        sim, a, b = linked_pair()
        with pytest.raises(ValueError):
            BulkSender(sim, a, FlowSpec("f", "a", "b", period_ns=MS))


class TestPoissonSender:
    def test_rate_approximately_met(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("bg", "a", "b", payload_bytes=200)
        sender = PoissonSender(
            sim, a, spec, rate_pps=10_000, rng=sim.streams.stream("poisson")
        )
        sender.start()
        sim.run(until=1 * SEC)
        sender.stop()
        assert 9_000 < sender.stats.packets_sent < 11_000

    def test_interarrivals_are_variable(self):
        sim, a, b = linked_pair()
        spec = FlowSpec("bg", "a", "b", payload_bytes=200)
        sender = PoissonSender(
            sim, a, spec, rate_pps=1_000, rng=sim.streams.stream("poisson")
        )
        sender.start()
        sim.run(until=1 * SEC)
        gaps = np.diff(sender.stats.send_times_ns)
        assert gaps.std() > 0.5 * gaps.mean()  # exponential-ish, CV ~ 1

    def test_invalid_rate_rejected(self):
        sim, a, b = linked_pair()
        with pytest.raises(ValueError):
            PoissonSender(
                sim, a, FlowSpec("f", "a", "b"), rate_pps=0,
                rng=sim.streams.stream("x"),
            )

"""Ring redundancy management (MRP-style healing)."""

import numpy as np
import pytest

from repro.fieldbus import ConnectionParams, CyclicConnection, IoDeviceApp
from repro.net import (
    CyclicSender,
    FlowSpec,
    RingRedundancyManager,
    TrafficClass,
    build_ring,
    verify_routes,
)
from repro.simcore import Simulator, MS, SEC


def ring_with_manager(switches=6, seed=0):
    sim = Simulator(seed=seed)
    topo = build_ring(sim, switches, hosts_per_switch=1)
    standby = topo.link_between("sw0", f"sw{switches - 1}")
    manager = RingRedundancyManager(sim, topo, standby_link=standby)
    manager.commission()
    manager.start()
    return sim, topo, manager


class TestCommissioning:
    def test_routes_valid_and_loop_free(self):
        sim, topo, manager = ring_with_manager()
        assert verify_routes(topo) == []

    def test_standby_link_unused_in_steady_state(self):
        sim, topo, manager = ring_with_manager()
        # Traffic from h0 to h5 would cross the standby if it were active
        # (one hop); commissioned routing must go the long way round.
        h0, h5 = topo.devices["h0_0"], topo.devices["h5_0"]
        h5.record_received = True
        h0.send("h5_0", payload_bytes=50)
        sim.run(until=2 * MS)
        assert len(h5.received) == 1
        assert len(h5.received[0].hops) == 6  # all the other switches

    def test_foreign_standby_rejected(self):
        sim = Simulator()
        topo = build_ring(sim, 4)
        other = build_ring(Simulator(), 4)
        with pytest.raises(ValueError):
            RingRedundancyManager(sim, topo, standby_link=other.links[0])


class TestHealing:
    def test_ring_heals_after_link_failure(self):
        sim, topo, manager = ring_with_manager()
        h0, h3 = topo.devices["h0_0"], topo.devices["h3_0"]
        received = []
        h3.on_receive(lambda p: received.append(sim.now))
        spec = FlowSpec(
            "probe", "h0_0", "h3_0", period_ns=5 * MS, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        CyclicSender(sim, h0, spec).start()
        sim.run(until=500 * MS)
        before = len(received)
        topo.link_between("sw1", "sw2").set_down()
        sim.run(until=2 * SEC)
        after = len(received)
        # Traffic resumed: the standby link now carries the detour.
        assert after > before + 200
        assert len(manager.events) == 1
        assert manager.events[0].kind == "failure"
        assert verify_routes(topo) == []

    def test_recovery_gap_within_mrp_budget(self):
        sim, topo, manager = ring_with_manager()
        h0, h3 = topo.devices["h0_0"], topo.devices["h3_0"]
        arrivals = []
        h3.on_receive(lambda p: arrivals.append(sim.now))
        spec = FlowSpec(
            "probe", "h0_0", "h3_0", period_ns=2 * MS, payload_bytes=50,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        CyclicSender(sim, h0, spec).start()
        sim.run(until=500 * MS)
        topo.link_between("sw1", "sw2").set_down()
        sim.run(until=2 * SEC)
        gaps = np.diff(np.asarray(arrivals))
        # MRP's default profile guarantees 200 ms; our detection (20 ms
        # supervision + 2 ms LinkChange + 5 ms reconfiguration) is well
        # inside it.
        assert gaps.max() < 200 * MS
        assert gaps.max() > 2 * MS  # there *was* an outage

    def test_repair_reverts_to_standby_blocked(self):
        sim, topo, manager = ring_with_manager()
        broken = topo.link_between("sw1", "sw2")
        broken.set_down()
        sim.run(until=200 * MS)
        broken.set_up()
        sim.run(until=500 * MS)
        kinds = [event.kind for event in manager.events]
        assert kinds == ["failure", "repair"]
        # After revert, the commissioned path shape is back.
        h0, h5 = topo.devices["h0_0"], topo.devices["h5_0"]
        h5.record_received = True
        h0.send("h5_0", payload_bytes=50)
        sim.run(until=600 * MS)
        assert len(h5.received[0].hops) == 6

    def test_fieldbus_relation_survives_ring_failure(self):
        sim, topo, manager = ring_with_manager(seed=5)
        device = IoDeviceApp(sim, topo.devices["h3_0"])
        connection = CyclicConnection(
            sim, topo.devices["h0_0"], "h3_0",
            # Watchdog factor sized for the MRP budget: 10 ms cycles x 20.
            ConnectionParams(cycle_ns=10 * MS, watchdog_factor=20),
        )
        connection.open()
        sim.run(until=500 * MS)
        topo.link_between("sw2", "sw3").set_down()
        sim.run(until=2 * SEC)
        assert device.stats.watchdog_expirations == 0
        assert connection.stats.watchdog_expirations == 0

    def test_second_failure_partitions_until_repair(self):
        sim, topo, manager = ring_with_manager()
        topo.link_between("sw1", "sw2").set_down()
        sim.run(until=200 * MS)
        topo.link_between("sw3", "sw4").set_down()
        sim.run(until=400 * MS)
        # Two failures partition a single ring: some pairs are unreachable,
        # which verify_routes reports as missing entries.
        assert verify_routes(topo) != []
        topo.link_between("sw1", "sw2").set_up()
        sim.run(until=800 * MS)
        assert verify_routes(topo) == []

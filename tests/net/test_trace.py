"""Packet tracing: capture, queries, persistence."""

import pytest

from repro.net import (
    CyclicSender,
    FlowSpec,
    PacketTracer,
    TraceRecord,
    TrafficClass,
    build_star,
    install_shortest_path_routes,
)
from repro.simcore import Simulator, MS


def traced_star():
    sim = Simulator(seed=0)
    topo = build_star(sim, 3)
    install_shortest_path_routes(topo)
    tracer = PacketTracer(sim)
    tracer.attach_topology(topo)
    return sim, topo, tracer


class TestCapture:
    def test_switch_and_host_records(self):
        sim, topo, tracer = traced_star()
        topo.devices["h0"].send("h1", payload_bytes=50, flow_id="f",
                                sequence=1)
        sim.run(until=1 * MS)
        points = [r.point for r in tracer.records]
        assert points == ["sw0", "h1"]
        assert all(r.flow_id == "f" for r in tracer.records)

    def test_cyclic_flow_fully_traced(self):
        sim, topo, tracer = traced_star()
        spec = FlowSpec("cyc", "h0", "h2", period_ns=1 * MS, payload_bytes=40,
                        traffic_class=TrafficClass.CYCLIC_RT)
        sender = CyclicSender(sim, topo.devices["h0"], spec)
        sender.start()
        sim.run(until=10 * MS)
        sender.stop()
        sim.run(until=11 * MS)  # drain in-flight frames
        flow_records = tracer.for_flow("cyc")
        assert len(flow_records) == 2 * 11  # switch + host per cycle
        assert {r.traffic_class for r in flow_records} == {"CYCLIC_RT"}

    def test_capture_cap_respected(self):
        sim, topo, tracer = traced_star()
        tracer.max_records = 3
        for seq in range(5):
            topo.devices["h0"].send("h1", payload_bytes=50, sequence=seq)
        sim.run(until=1 * MS)
        assert len(tracer.records) == 3
        assert tracer.dropped_records > 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            PacketTracer(Simulator(), max_records=0)


class TestQueries:
    def test_at_point_filters(self):
        sim, topo, tracer = traced_star()
        topo.devices["h0"].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        assert len(tracer.at_point("sw0")) == 1
        assert tracer.at_point("h2") == []

    def test_flow_latency_extraction(self):
        sim, topo, tracer = traced_star()
        spec = FlowSpec("cyc", "h0", "h1", period_ns=1 * MS, payload_bytes=40)
        sender = CyclicSender(sim, topo.devices["h0"], spec)
        sender.start()
        sim.run(until=5 * MS)
        sender.stop()
        sim.run(until=6 * MS)  # drain in-flight frames
        latencies = tracer.flow_latencies_ns("cyc", "sw0", "h1")
        assert len(latencies) == 6
        # switch -> host: processing (1 us) + serialization + propagation.
        assert all(1_000 < value < 5_000 for value in latencies)
        assert len(set(latencies)) == 1  # deterministic path

    def test_summary_counts(self):
        sim, topo, tracer = traced_star()
        topo.devices["h0"].send("h1", payload_bytes=50, flow_id="a")
        topo.devices["h0"].send("h1", payload_bytes=70, flow_id="b")
        sim.run(until=1 * MS)
        summary = tracer.summary()
        assert summary["a"] == {"records": 2, "bytes": 100}
        assert summary["b"] == {"records": 2, "bytes": 140}
        assert "(dropped)" not in summary

    def test_summary_surfaces_dropped_records(self):
        sim, topo, tracer = traced_star()
        tracer.max_records = 2
        for seq in range(4):
            topo.devices["h0"].send("h1", payload_bytes=50, flow_id="a",
                                    sequence=seq)
        sim.run(until=1 * MS)
        summary = tracer.summary()
        assert summary["(dropped)"]["records"] == tracer.dropped_records
        assert tracer.dropped_records > 0

    def test_latency_index_matches_full_scan(self):
        sim, topo, tracer = traced_star()
        spec = FlowSpec("cyc", "h0", "h1", period_ns=1 * MS, payload_bytes=40)
        sender = CyclicSender(sim, topo.devices["h0"], spec)
        sender.start()
        sim.run(until=5 * MS)
        sender.stop()
        sim.run(until=6 * MS)
        # recompute latencies the slow way and compare
        first = {}
        for r in tracer.records:
            if r.flow_id == "cyc" and r.point == "sw0":
                first.setdefault(r.sequence, r.time_ns)
        slow = []
        seen = set()
        for r in tracer.records:
            if (r.flow_id == "cyc" and r.point == "h1"
                    and r.sequence in first and r.sequence not in seen):
                seen.add(r.sequence)
                slow.append(r.time_ns - first[r.sequence])
        assert tracer.flow_latencies_ns("cyc", "sw0", "h1") == slow


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        sim, topo, tracer = traced_star()
        topo.devices["h0"].send("h1", payload_bytes=50, flow_id="f",
                                sequence=3)
        sim.run(until=1 * MS)
        target = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(target)
        assert count == len(tracer.records)
        loaded = PacketTracer.load_jsonl(target)
        assert loaded == tracer.records

    def test_record_json_round_trip(self):
        record = TraceRecord(
            time_ns=5, point="sw", direction="rx", src="a", dst="b",
            flow_id="f", sequence=9, payload_bytes=42,
            traffic_class="BULK", packet_id=7,
        )
        assert TraceRecord.from_json(record.to_json()) == record

    def test_clear(self):
        sim, topo, tracer = traced_star()
        topo.devices["h0"].send("h1", payload_bytes=50)
        sim.run(until=1 * MS)
        tracer.clear()
        assert tracer.records == []

    def test_clear_resets_latency_index_and_drop_count(self):
        sim, topo, tracer = traced_star()
        tracer.max_records = 1
        topo.devices["h0"].send("h1", payload_bytes=50, flow_id="f",
                                sequence=0)
        sim.run(until=1 * MS)
        assert tracer.dropped_records > 0
        tracer.clear()
        assert tracer.dropped_records == 0
        assert tracer.flow_latencies_ns("f", "sw0", "h1") == []
        # capture still works after clear and rebuilds the index
        tracer.max_records = 100
        topo.devices["h0"].send("h1", payload_bytes=50, flow_id="f",
                                sequence=1)
        sim.run(until=2 * MS)
        assert len(tracer.flow_latencies_ns("f", "sw0", "h1")) == 1

"""BCube and server-centric forwarding."""

import pytest

from repro.net import (
    ServerNode,
    Topology,
    build_bcube,
    install_shortest_path_routes,
    path_hop_count,
    shortest_path,
    verify_routes,
)
from repro.simcore import Simulator, MS


class TestServerNode:
    def build_chain(self):
        """a -- relay -- b with the relay being a ServerNode."""
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("a")
        b = topo.add_host("b")
        relay = topo.add_server("relay", forwarding_delay_ns=2_000)
        topo.connect(a, relay)
        topo.connect(relay, b)
        install_shortest_path_routes(topo)
        return sim, topo, a, b, relay

    def test_relay_forwards_foreign_frames(self):
        sim, topo, a, b, relay = self.build_chain()
        b.record_received = True
        a.send("b", payload_bytes=100)
        sim.run(until=1 * MS)
        assert len(b.received) == 1
        assert b.received[0].hops == ["relay"]
        assert relay.forwarded_frames == 1

    def test_relay_still_receives_its_own_frames(self):
        sim, topo, a, b, relay = self.build_chain()
        relay.record_received = True
        a.send("relay", payload_bytes=100)
        sim.run(until=1 * MS)
        assert len(relay.received) == 1
        assert relay.forwarded_frames == 0

    def test_forwarding_delay_applied(self):
        sim, topo, a, b, relay = self.build_chain()
        arrivals = []
        b.on_receive(lambda p: arrivals.append(sim.now))
        a.send("b", payload_bytes=20)
        sim.run(until=1 * MS)
        # two serializations + two propagations + 2 us relay.
        assert arrivals == [672 + 500 + 2_000 + 672 + 500]

    def test_unrouted_frame_dropped(self):
        sim = Simulator()
        topo = Topology(sim)
        a = topo.add_host("a")
        relay = topo.add_server("relay")
        b = topo.add_host("b")
        topo.connect(a, relay)
        topo.connect(relay, b)
        # No routes installed: the relay has no entry and must drop.
        a.send("b", payload_bytes=20)
        sim.run(until=1 * MS)
        assert relay.forwarded_frames == 0

    def test_multihomed_origination_uses_route(self):
        sim = Simulator()
        topo = Topology(sim)
        server = topo.add_server("s")
        left = topo.add_host("left")
        right = topo.add_host("right")
        topo.connect(server, left)
        topo.connect(server, right)
        install_shortest_path_routes(topo)
        right.record_received = True
        server.send("right", payload_bytes=20)
        sim.run(until=1 * MS)
        assert len(right.received) == 1

    def test_install_route_validation(self):
        sim = Simulator()
        server = ServerNode(sim, "s")
        with pytest.raises(ValueError):
            server.install_route("x", 3)


class TestBCube:
    @pytest.mark.parametrize("n,k", [(2, 1), (4, 1), (2, 2), (3, 0)])
    def test_dimensions(self, n, k):
        topo = build_bcube(Simulator(), n, k)
        assert len(topo.hosts()) == n ** (k + 1)
        assert len(topo.switches()) == (k + 1) * n**k
        # Every server is (k+1)-homed.
        assert all(len(h.ports) == k + 1 for h in topo.hosts())
        assert topo.is_connected()

    @pytest.mark.parametrize("n,k", [(2, 1), (4, 1), (2, 2)])
    def test_routes_clean(self, n, k):
        topo = build_bcube(Simulator(), n, k)
        install_shortest_path_routes(topo)
        assert verify_routes(topo) == []

    def test_cross_level_path_transits_a_server(self):
        topo = build_bcube(Simulator(), 2, 1)
        install_shortest_path_routes(topo)
        # h0 (digits 00) to h3 (digits 11): differs in both digits, so the
        # path must relay through one intermediate server.
        path = shortest_path(topo, "h0", "h3")
        transit_servers = [
            name for name in path[1:-1] if name.startswith("h")
        ]
        assert len(transit_servers) == 1

    def test_same_level_neighbors_one_switch_away(self):
        topo = build_bcube(Simulator(), 2, 1)
        assert path_hop_count(topo, "h0", "h1") == 2  # via sw0_0

    def test_end_to_end_delivery(self):
        sim = Simulator()
        topo = build_bcube(sim, 2, 2)
        install_shortest_path_routes(topo)
        src = topo.devices["h0"]
        dst = topo.devices["h7"]  # differs in all three digits
        dst.record_received = True
        src.send("h7", payload_bytes=64)
        sim.run(until=1 * MS)
        assert len(dst.received) == 1
        relays = [h for h in dst.received[0].hops if h.startswith("h")]
        assert len(relays) == 2  # k relays for a k+1-digit mismatch

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_bcube(Simulator(), 1, 1)
        with pytest.raises(ValueError):
            build_bcube(Simulator(), 2, -1)

"""Packet framing and queue disciplines."""

import pytest

from repro.net import (
    FifoQueue,
    MAX_PAYLOAD_BYTES,
    MIN_FRAME_BYTES,
    Packet,
    StrictPriorityQueue,
    TrafficClass,
)


class TestPacket:
    def test_small_payload_padded_to_minimum_frame(self):
        packet = Packet(src="a", dst="b", payload_bytes=20)
        assert packet.frame_bytes == MIN_FRAME_BYTES

    def test_large_payload_not_padded(self):
        packet = Packet(src="a", dst="b", payload_bytes=1000)
        assert packet.frame_bytes == 1000 + 18 + 4

    def test_wire_size_adds_preamble_and_ipg(self):
        packet = Packet(src="a", dst="b", payload_bytes=20)
        assert packet.wire_size_bytes == MIN_FRAME_BYTES + 20

    def test_serialization_time_gigabit(self):
        # 64B frame + 20B overhead = 84B = 672 ns at 1 Gbit/s.
        packet = Packet(src="a", dst="b", payload_bytes=20)
        assert packet.serialization_time_ns(1e9) == 672

    def test_serialization_faster_on_faster_link(self):
        packet = Packet(src="a", dst="b", payload_bytes=500)
        assert packet.serialization_time_ns(10e9) < packet.serialization_time_ns(1e9)

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload_bytes=MAX_PAYLOAD_BYTES + 1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload_bytes=-1)

    def test_invalid_bandwidth_rejected(self):
        packet = Packet(src="a", dst="b", payload_bytes=20)
        with pytest.raises(ValueError):
            packet.serialization_time_ns(0)

    def test_packet_ids_unique(self):
        first = Packet(src="a", dst="b", payload_bytes=1)
        second = Packet(src="a", dst="b", payload_bytes=1)
        assert first.packet_id != second.packet_id

    def test_replication_copy_is_independent(self):
        original = Packet(
            src="a", dst="b", payload_bytes=10, payload={"k": 1}, sequence=7
        )
        original.hops.append("sw1")
        clone = original.copy_for_replication()
        assert clone.packet_id != original.packet_id
        assert clone.payload == original.payload
        assert clone.sequence == 7
        clone.payload["k"] = 2
        clone.hops.append("sw2")
        assert original.payload["k"] == 1
        assert original.hops == ["sw1"]

    def test_traffic_class_pcp_mapping(self):
        assert TrafficClass.NETWORK_CONTROL.pcp == 7
        assert TrafficClass.CYCLIC_RT.pcp == 6
        assert TrafficClass.BULK.pcp == 0


def make(tc=TrafficClass.BEST_EFFORT, tag=0):
    return Packet(src="a", dst="b", payload_bytes=46, traffic_class=tc, sequence=tag)


class TestFifoQueue:
    def test_fifo_ordering(self):
        queue = FifoQueue()
        first, second = make(tag=1), make(tag=2)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second
        assert queue.dequeue() is None

    def test_drop_tail_on_overflow(self):
        queue = FifoQueue(capacity=2)
        assert queue.enqueue(make())
        assert queue.enqueue(make())
        assert not queue.enqueue(make())
        assert queue.drops == 1
        assert len(queue) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)


class TestStrictPriorityQueue:
    def test_higher_pcp_always_first(self):
        queue = StrictPriorityQueue()
        low = make(TrafficClass.BULK)
        high = make(TrafficClass.CYCLIC_RT)
        queue.enqueue(low)
        queue.enqueue(high)
        assert queue.dequeue() is high
        assert queue.dequeue() is low

    def test_fifo_within_class(self):
        queue = StrictPriorityQueue()
        first, second = make(tag=1), make(tag=2)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first

    def test_dequeue_from_respects_allowed_set(self):
        queue = StrictPriorityQueue()
        rt = make(TrafficClass.CYCLIC_RT)
        be = make(TrafficClass.BEST_EFFORT)
        queue.enqueue(rt)
        queue.enqueue(be)
        assert queue.dequeue_from([TrafficClass.BEST_EFFORT.pcp]) is be
        assert queue.dequeue_from([TrafficClass.BEST_EFFORT.pcp]) is None
        assert queue.dequeue_from([TrafficClass.CYCLIC_RT.pcp]) is rt

    def test_peek_does_not_remove(self):
        queue = StrictPriorityQueue()
        packet = make(TrafficClass.ALARM)
        queue.enqueue(packet)
        assert queue.peek_from([TrafficClass.ALARM.pcp]) is packet
        assert len(queue) == 1

    def test_per_class_capacity(self):
        queue = StrictPriorityQueue(capacity_per_class=1)
        assert queue.enqueue(make(TrafficClass.BULK))
        assert not queue.enqueue(make(TrafficClass.BULK))
        assert queue.enqueue(make(TrafficClass.ALARM))
        assert queue.drops == 1

    def test_occupancy_by_pcp(self):
        queue = StrictPriorityQueue()
        queue.enqueue(make(TrafficClass.CYCLIC_RT))
        queue.enqueue(make(TrafficClass.CYCLIC_RT))
        queue.enqueue(make(TrafficClass.BULK))
        assert queue.occupancy_by_pcp() == {6: 2, 0: 1}

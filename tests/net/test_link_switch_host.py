"""Links, ports, switches, and hosts over the event kernel."""

import pytest

from repro.net import Host, Link, Packet, Switch, Topology, TrafficClass
from repro.simcore import Simulator


def two_hosts(bandwidth=1e9, delay=500):
    sim = Simulator()
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    link = topo.connect(a, b, bandwidth_bps=bandwidth, propagation_delay_ns=delay)
    return sim, a, b, link


class TestLinkTiming:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim, a, b, _ = two_hosts(bandwidth=1e9, delay=500)
        arrivals = []
        b.on_receive(lambda p: arrivals.append(sim.now))
        a.send("b", payload_bytes=20)
        sim.run()
        # 84 wire bytes at 1 Gbit/s = 672 ns, plus 500 ns propagation.
        assert arrivals == [672 + 500]

    def test_back_to_back_frames_serialize_sequentially(self):
        sim, a, b, _ = two_hosts(bandwidth=1e9, delay=0)
        arrivals = []
        b.on_receive(lambda p: arrivals.append(sim.now))
        a.send("b", payload_bytes=20)
        a.send("b", payload_bytes=20)
        sim.run()
        assert arrivals == [672, 1344]

    def test_full_duplex_no_interference(self):
        sim, a, b, _ = two_hosts(delay=0)
        times = {}
        a.on_receive(lambda p: times.setdefault("a", sim.now))
        b.on_receive(lambda p: times.setdefault("b", sim.now))
        a.send("b", payload_bytes=20)
        b.send("a", payload_bytes=20)
        sim.run()
        assert times["a"] == times["b"] == 672

    def test_down_link_loses_frames(self):
        sim, a, b, link = two_hosts()
        received = []
        b.on_receive(received.append)
        link.set_down()
        a.send("b", payload_bytes=20)
        sim.run()
        assert received == []
        assert link.lost_frames == 0  # stalled in queue, not lost mid-flight

    def test_link_recovery_resumes_stalled_queue(self):
        sim, a, b, link = two_hosts()
        received = []
        b.on_receive(received.append)
        link.set_down()
        a.send("b", payload_bytes=20)
        sim.run(until=10_000)
        link.set_up()
        sim.run(until=20_000)
        assert len(received) == 1

    def test_loss_model_drops_selected_frames(self):
        sim = Simulator()
        topo = Topology(sim)
        a, b = topo.add_host("a"), topo.add_host("b")
        topo.connect(a, b, loss_model=lambda p: p.sequence % 2 == 0)
        received = []
        b.on_receive(received.append)
        for seq in range(6):
            a.send("b", payload_bytes=20, sequence=seq)
        sim.run()
        assert [p.sequence for p in received] == [1, 3, 5]

    def test_port_counters(self):
        sim, a, b, _ = two_hosts()
        a.send("b", payload_bytes=20)
        sim.run()
        assert a.ports[0].tx_frames == 1
        assert b.ports[0].rx_frames == 1
        assert a.ports[0].tx_bytes == 84


class TestHost:
    def test_host_ignores_foreign_frames(self):
        sim, a, b, _ = two_hosts()
        received = []
        b.on_receive(received.append)
        packet = Packet(src="a", dst="not-b", payload_bytes=20)
        a.ports[0].send(packet)
        sim.run()
        assert received == []
        assert b.rx_count == 0

    def test_flow_handler_scoped_to_flow(self):
        sim, a, b, _ = two_hosts()
        flow_hits, all_hits = [], []
        b.on_flow("f1", flow_hits.append)
        b.on_receive(all_hits.append)
        a.send("b", payload_bytes=20, flow_id="f1")
        a.send("b", payload_bytes=20, flow_id="f2")
        sim.run()
        assert len(flow_hits) == 1
        assert len(all_hits) == 2

    def test_send_without_port_raises(self):
        sim = Simulator()
        host = Host(sim, "lonely")
        with pytest.raises(RuntimeError):
            host.send("x", payload_bytes=10)

    def test_record_received_flag(self):
        sim, a, b, _ = two_hosts()
        b.record_received = True
        a.send("b", payload_bytes=20)
        sim.run()
        assert len(b.received) == 1


class TestSwitch:
    def build(self):
        sim = Simulator()
        topo = Topology(sim)
        switch = topo.add_switch("sw", processing_delay_ns=1_000)
        hosts = [topo.add_host(f"h{i}") for i in range(3)]
        for host in hosts:
            topo.connect(switch, host)
        return sim, switch, hosts

    def test_unknown_destination_floods(self):
        sim, switch, (h0, h1, h2) = self.build()
        hits = []
        h1.on_receive(lambda p: hits.append("h1"))
        h2.on_receive(lambda p: hits.append("h2"))
        h0.send("h2", payload_bytes=20)
        sim.run()
        # Flooded to both; only h2 accepts (h1 drops foreign dst silently).
        assert hits == ["h2"]
        assert switch.flooded_frames == 1

    def test_learning_avoids_second_flood(self):
        sim, switch, (h0, h1, h2) = self.build()
        h0.send("h2", payload_bytes=20)
        sim.run()
        h2.send("h0", payload_bytes=20)  # returns via learned entry
        sim.run()
        assert switch.flooded_frames == 1
        assert switch.forwarded_frames == 1

    def test_static_route_wins_over_learning(self):
        sim, switch, (h0, h1, h2) = self.build()
        switch.install_route("h2", switch.ports[2].index)
        h0.send("h2", payload_bytes=20)
        sim.run()
        assert switch.flooded_frames == 0
        assert switch.forwarded_frames == 1

    def test_frame_to_ingress_port_filtered(self):
        sim, switch, (h0, h1, h2) = self.build()
        switch.install_route("h0", 0)
        # A frame from h0 addressed to h0 would egress its ingress port.
        h0.send("h0", payload_bytes=20)
        sim.run()
        assert switch.filtered_frames == 1

    def test_invalid_route_port_rejected(self):
        sim, switch, _ = self.build()
        with pytest.raises(ValueError):
            switch.install_route("x", 99)

    def test_processing_delay_applied(self):
        sim, switch, (h0, h1, h2) = self.build()
        switch.install_route("h1", 1)
        arrivals = []
        h1.on_receive(lambda p: arrivals.append(sim.now))
        h0.send("h1", payload_bytes=20)
        sim.run()
        # two serializations (672 each), two propagations (500), 1000 switch.
        assert arrivals == [672 + 500 + 1_000 + 672 + 500]

    def test_hops_recorded(self):
        sim, switch, (h0, h1, h2) = self.build()
        switch.install_route("h1", 1)
        h1.record_received = True
        h0.send("h1", payload_bytes=20)
        sim.run()
        assert h1.received[0].hops == ["sw"]

    def test_taps_observe_ingress(self):
        sim, switch, (h0, h1, h2) = self.build()
        seen = []
        switch.taps.append(lambda p, port: seen.append((p.src, port.index)))
        h0.send("h1", payload_bytes=20)
        sim.run()
        assert seen == [("h0", 0)]

    def test_clear_learned(self):
        sim, switch, (h0, h1, h2) = self.build()
        h0.send("h2", payload_bytes=20)
        sim.run()
        switch.clear_learned()
        h1.send("h0", payload_bytes=20)
        sim.run()
        assert switch.flooded_frames == 2

"""The XDP host path: residence-time composition and the reflector device."""

import numpy as np

from repro.ebpf import build_base, build_ts_rb
from repro.hoststack import DriverModel, XdpHostModel, XdpReflectorHost
from repro.net import Host, Link
from repro.simcore import Simulator, MS


def make_model(program=None, flows=1, seed=0):
    return XdpHostModel(
        program=program or build_base(),
        rng=np.random.default_rng(seed),
        active_flows=flows,
    )


class TestXdpHostModel:
    def test_residence_time_positive_and_bounded(self):
        model = make_model()
        samples = [model.residence_ns(64) for _ in range(500)]
        assert min(samples) > 5_000   # fixed PCIe + driver floor
        assert max(samples) < 200_000  # far below a millisecond normally

    def test_ringbuf_program_slower_than_base(self):
        base = np.mean([make_model(build_base(), seed=1).residence_ns(64)
                        for _ in range(300)])
        ringbuf = np.mean([make_model(build_ts_rb(), seed=1).residence_ns(64)
                           for _ in range(300)])
        assert ringbuf > base + 2_000  # the ring-buffer toll

    def test_more_flows_more_variance(self):
        single = make_model(flows=1, seed=2)
        many = make_model(flows=25, seed=2)
        std_single = np.std([single.residence_ns(64) for _ in range(800)])
        std_many = np.std([many.residence_ns(64) for _ in range(800)])
        assert std_many > std_single

    def test_set_active_flows_updates_environment(self):
        model = make_model()
        model.set_active_flows(25)
        assert model.environment.active_flows == 25

    def test_driver_floor_respected(self):
        driver = DriverModel(rx_fixed_ns=1_000, tx_fixed_ns=2_000, noise_std_ns=0)
        rng = np.random.default_rng(0)
        assert driver.rx_ns(rng) == 1_000
        assert driver.tx_ns(rng) == 2_000


class TestXdpReflectorHost:
    def build(self, flows=1):
        sim = Simulator(seed=0)
        sender = Host(sim, "sender")
        reflector = XdpReflectorHost(sim, "reflector", make_model(flows=flows))
        Link(sim, sender.add_port(), reflector.add_port(), 1e9, 100)
        return sim, sender, reflector

    def test_reflects_with_swapped_addresses(self):
        sim, sender, reflector = self.build()
        sender.record_received = True
        sender.on_receive(lambda p: None)
        sender.send("reflector", payload_bytes=50, flow_id="f", sequence=1)
        sim.run(until=1 * MS)
        assert reflector.reflected == 1
        assert len(sender.received) == 1
        reflected = sender.received[0]
        assert reflected.src == "reflector"
        assert reflected.dst == "sender"
        assert reflected.sequence == 1

    def test_single_core_serializes_overlapping_arrivals(self):
        sim, sender, reflector = self.build()
        for seq in range(5):
            sender.send("reflector", payload_bytes=50, sequence=seq)
        sim.run(until=5 * MS)
        assert reflector.reflected == 5
        # Back-to-back arrivals queue behind the busy core.
        assert max(reflector.queueing_delays_ns) > 0

    def test_spaced_arrivals_do_not_queue(self):
        sim, sender, reflector = self.build()
        for k in range(3):
            sim.schedule(lambda: sender.send("reflector", payload_bytes=50), after=k * MS)
        sim.run(until=10 * MS)
        assert all(q == 0 for q in reflector.queueing_delays_ns)

"""PCIe and kernel-noise models."""

import numpy as np
import pytest

from repro.hoststack import (
    CacheContentionModel,
    PREEMPT_RT_ISOLATED,
    PREEMPT_RT_SHARED,
    PcieModel,
    STOCK_KERNEL,
)


class TestPcie:
    def test_fixed_costs_dominate_small_packets(self):
        # The paper's (and Neugebauer et al.'s) point: for a 64 B frame the
        # size-independent PCIe costs are >90% of the transfer latency.
        model = PcieModel()
        assert model.fixed_fraction(64) > 0.9

    def test_fixed_fraction_falls_for_large_transfers(self):
        model = PcieModel()
        assert model.fixed_fraction(64) > model.fixed_fraction(1500)

    def test_dma_scales_linearly(self):
        model = PcieModel()
        assert model.dma_ns(2000) == pytest.approx(2 * model.dma_ns(1000))

    def test_latency_includes_fixed_floor(self):
        model = PcieModel(noise_std_ns=0.0, iotlb_miss_probability=0.0)
        rng = np.random.default_rng(0)
        assert model.rx_latency_ns(64, rng) >= model.rx_fixed_ns
        assert model.tx_latency_ns(64, rng) >= model.tx_fixed_ns

    def test_iotlb_misses_add_rare_penalty(self):
        model = PcieModel(
            noise_std_ns=0.0, iotlb_miss_probability=0.5,
            iotlb_miss_penalty_ns=10_000.0,
        )
        rng = np.random.default_rng(1)
        samples = [model.rx_latency_ns(64, rng) for _ in range(400)]
        fast = min(samples)
        assert max(samples) >= fast + 10_000
        penalized = sum(1 for s in samples if s > fast + 5_000)
        assert 120 < penalized < 280  # about half

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PcieModel().dma_ns(-1)


class TestKernelNoise:
    def test_noise_is_nonnegative(self):
        rng = np.random.default_rng(0)
        for model in (PREEMPT_RT_ISOLATED, PREEMPT_RT_SHARED, STOCK_KERNEL):
            assert all(model.sample_ns(rng) >= 0 for _ in range(500))

    def test_kernel_ordering_rt_isolated_quietest(self):
        def p999(model, seed):
            rng = np.random.default_rng(seed)
            return np.percentile(
                [model.sample_ns(rng) for _ in range(20000)], 99.9
            )

        isolated = p999(PREEMPT_RT_ISOLATED, 1)
        shared = p999(PREEMPT_RT_SHARED, 1)
        stock = p999(STOCK_KERNEL, 1)
        assert isolated < shared < stock

    def test_stock_kernel_not_hard_realtime(self):
        # Section 2.1: stock kernels show long unpredictable stalls.
        rng = np.random.default_rng(2)
        worst = max(STOCK_KERNEL.sample_ns(rng) for _ in range(50000))
        assert worst > 20_000  # tens of microseconds


class TestCacheContention:
    def test_single_flow_pays_nothing(self):
        model = CacheContentionModel()
        rng = np.random.default_rng(0)
        assert model.extra_mean_ns(1) == 0.0
        assert model.sample_ns(1, rng) == 0.0

    def test_penalty_grows_with_flows(self):
        model = CacheContentionModel()
        assert model.extra_mean_ns(25) > model.extra_mean_ns(2) > 0

    def test_penalty_saturates(self):
        model = CacheContentionModel(saturation_flows=10)
        assert model.extra_mean_ns(11) == model.extra_mean_ns(1000)

    def test_variance_grows_with_flows(self):
        model = CacheContentionModel()
        rng = np.random.default_rng(3)
        few = np.std([model.sample_ns(2, rng) for _ in range(3000)])
        many = np.std([model.sample_ns(25, rng) for _ in range(3000)])
        assert many > few

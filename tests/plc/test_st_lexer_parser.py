"""Structured Text: lexer and parser."""

import pytest

from repro.plc.st import (
    StSyntaxError,
    TokenKind,
    parse,
    parse_time_literal,
    tokenize,
)
from repro.plc.st import ast


class TestLexer:
    def kinds(self, source):
        return [t.kind for t in tokenize(source)[:-1]]

    def test_assignment_tokens(self):
        tokens = tokenize("x := 1;")
        assert [t.kind for t in tokens] == [
            TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.NUMBER,
            TokenKind.SEMI, TokenKind.EOF,
        ]

    def test_keywords_case_insensitive(self):
        for variant in ("IF", "if", "If"):
            token = tokenize(variant)[0]
            assert token.is_keyword("if")

    def test_identifiers_preserve_case(self):
        token = tokenize("MotorSpeed")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "MotorSpeed"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 2.5e-2")[:-1]]
        assert values == ["1", "2.5", "1e3", "2.5e-2"]

    def test_time_literals(self):
        token = tokenize("T#1s500ms")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == "t#1s500ms"
        assert tokenize("TIME#2h")[0].value == "time#2h"

    def test_comments_skipped(self):
        tokens = tokenize("x (* a comment *) := // trailing\n 1;")
        assert len(tokens) == 5  # x := 1 ; EOF

    def test_multiline_comment_tracks_line_numbers(self):
        tokens = tokenize("(* line1\nline2 *) x")
        assert tokens[0].line == 2

    def test_unterminated_comment_raises(self):
        with pytest.raises(StSyntaxError):
            tokenize("(* never closed")

    def test_unknown_character_raises(self):
        with pytest.raises(StSyntaxError) as excinfo:
            tokenize("x @ y")
        assert "line 1" in str(excinfo.value)

    def test_operators(self):
        ops = [t.value for t in tokenize("< <= > >= = <> + - * /")[:-1]]
        assert ops == ["<", "<=", ">", ">=", "=", "<>", "+", "-", "*", "/"]

    def test_dotdot_vs_dot(self):
        kinds = self.kinds("1..5 a.b")
        assert TokenKind.DOTDOT in kinds
        assert TokenKind.DOT in kinds


class TestTimeLiterals:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("t#500ms", 0.5),
            ("t#1s", 1.0),
            ("t#1s500ms", 1.5),
            ("t#2.5s", 2.5),
            ("time#1m30s", 90.0),
            ("t#1h", 3600.0),
            ("t#10us", 1e-5),
        ],
    )
    def test_values(self, text, seconds):
        assert parse_time_literal(text) == pytest.approx(seconds)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_time_literal("t#abc")
        with pytest.raises(ValueError):
            parse_time_literal("t#")


class TestParser:
    def test_var_blocks(self):
        program = parse(
            """
            VAR_INPUT a : BOOL; END_VAR
            VAR_OUTPUT b : REAL := 1.5; END_VAR
            VAR t1 : TON; n : INT := 3; END_VAR
            """
        )
        assert [d.name for d in program.declarations] == ["a", "b", "t1", "n"]
        assert program.declarations[1].initializer == ast.NumberLit(1.5)
        assert program.declarations[2].is_fb_instance
        assert len(program.inputs()) == 1
        assert len(program.outputs()) == 1

    def test_precedence(self):
        program = parse("VAR x : INT; END_VAR x := 1 + 2 * 3;")
        assign = program.body[0]
        assert isinstance(assign.expr, ast.BinaryOp)
        assert assign.expr.op == "+"
        assert assign.expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        program = parse("VAR x : BOOL; END_VAR x := TRUE OR FALSE AND FALSE;")
        expr = program.body[0].expr
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_comparison_in_condition(self):
        program = parse(
            "VAR x : INT; y : BOOL; END_VAR "
            "IF x >= 10 THEN y := TRUE; END_IF;"
        )
        if_stmt = program.body[0]
        assert isinstance(if_stmt, ast.IfStmt)
        assert if_stmt.branches[0][0].op == ">="

    def test_if_elsif_else(self):
        program = parse(
            """
            VAR x : INT; y : INT; END_VAR
            IF x = 1 THEN y := 1;
            ELSIF x = 2 THEN y := 2;
            ELSE y := 3;
            END_IF;
            """
        )
        if_stmt = program.body[0]
        assert len(if_stmt.branches) == 2
        assert len(if_stmt.else_body) == 1

    def test_case_with_ranges(self):
        program = parse(
            """
            VAR s : INT; m : INT; END_VAR
            CASE s OF
                1, 2: m := 10;
                3..5: m := 20;
            ELSE m := 0;
            END_CASE;
            """
        )
        case = program.body[0]
        assert case.entries[0].values == (1.0, 2.0)
        assert case.entries[1].ranges == ((3.0, 5.0),)
        assert len(case.else_body) == 1

    def test_loops(self):
        program = parse(
            """
            VAR i : INT; s : INT; END_VAR
            FOR i := 1 TO 10 BY 2 DO s := s + i; END_FOR;
            WHILE s > 0 DO s := s - 1; END_WHILE;
            REPEAT s := s + 1; UNTIL s >= 5 END_REPEAT;
            """
        )
        assert isinstance(program.body[0], ast.ForStmt)
        assert isinstance(program.body[1], ast.WhileStmt)
        assert isinstance(program.body[2], ast.RepeatStmt)

    def test_fb_call_and_field_access(self):
        program = parse(
            """
            VAR t1 : TON; done : BOOL; END_VAR
            t1(IN := TRUE, PT := T#100ms);
            done := t1.Q;
            """
        )
        call = program.body[0]
        assert isinstance(call, ast.FbCall)
        assert call.args[0][0] == "in"
        access = program.body[1].expr
        assert access == ast.FieldRef(instance="t1", fieldname="q")

    def test_exit_and_return(self):
        program = parse(
            "VAR i : INT; END_VAR "
            "WHILE TRUE DO EXIT; END_WHILE; RETURN;"
        )
        assert isinstance(program.body[0].body[0], ast.ExitStmt)
        assert isinstance(program.body[1], ast.ReturnStmt)

    @pytest.mark.parametrize(
        "source",
        [
            "x := ;",
            "IF x THEN y := 1;",          # missing END_IF
            "VAR x BOOL; END_VAR",        # missing colon
            "x + 1;",                      # expression as statement
            "FOR i := 1 TO DO END_FOR;",  # missing bound
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(StSyntaxError):
            parse(source)

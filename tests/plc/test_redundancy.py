"""Hardware-pair and Kubernetes failover baselines (Section 4 numbers)."""

import numpy as np
import pytest

from repro.fieldbus import ArState, IoDeviceApp
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import (
    HW_SWITCHOVER_MAX_NS,
    HW_SWITCHOVER_MIN_NS,
    K8S_SWITCHOVER_MAX_NS,
    K8S_SWITCHOVER_MIN_NS,
    KubernetesFailoverModel,
    PlcRuntime,
    RedundantPlcPair,
    passthrough_program,
)
from repro.simcore import Simulator, MS, SEC


def build_pair(seed=0, takeover_delay_ns=None):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 3)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h2"])
    primary = PlcRuntime(
        sim, topo.devices["h0"], passthrough_program({"h2.echo": "h2.counter"}),
        cycle_ns=10 * MS, name="primary",
    )
    secondary = PlcRuntime(
        sim, topo.devices["h1"], passthrough_program({"h2.echo": "h2.counter"}),
        cycle_ns=10 * MS, name="secondary",
    )
    primary.assign_device("h2")
    secondary.assign_device("h2")
    pair = RedundantPlcPair(
        sim, primary, secondary, takeover_delay_ns=takeover_delay_ns
    )
    return sim, pair, device


class TestRedundantPair:
    def test_failover_restores_control(self):
        sim, pair, device = build_pair()
        pair.start()
        sim.run(until=1 * SEC)
        pair.inject_primary_failure()
        sim.run(until=4 * SEC)
        assert pair.secondary.all_running
        assert device.state is ArState.RUNNING
        assert device.controller == "h1"

    def test_switchover_delay_in_paper_range(self):
        sim, pair, device = build_pair(seed=1)
        pair.start()
        sim.run(until=1 * SEC)
        pair.inject_primary_failure()
        sim.run(until=5 * SEC)
        record = pair.record
        assert record is not None and record.switchover_ns is not None
        detection = pair.heartbeats_missed_for_failure * pair.heartbeat_period_ns
        assert (
            HW_SWITCHOVER_MIN_NS
            <= record.switchover_ns
            <= HW_SWITCHOVER_MAX_NS + detection
        )

    def test_outage_visible_at_device(self):
        sim, pair, device = build_pair(takeover_delay_ns=100 * MS)
        pair.start()
        sim.run(until=1 * SEC)
        pair.inject_primary_failure()
        sim.run(until=4 * SEC)
        gaps = np.diff(np.asarray(device.stats.rx_times_ns))
        # The device sees a gap of roughly detection + takeover + reconnect.
        assert gaps.max() >= 100 * MS
        assert device.stats.watchdog_expirations == 1

    def test_state_transferred_over_sync_link(self):
        sim, pair, device = build_pair()
        pair.start()
        sim.run(until=1 * SEC)
        pair.primary.connections["h2"].outputs["manual"] = 123
        pair.inject_primary_failure()
        sim.run(until=4 * SEC)
        assert pair.secondary.connections["h2"].outputs.get("manual") == 123

    def test_mismatched_device_sets_rejected(self):
        sim = Simulator()
        topo = build_star(sim, 3)
        install_shortest_path_routes(topo)
        a = PlcRuntime(
            sim, topo.devices["h0"], passthrough_program({}), cycle_ns=10 * MS
        )
        b = PlcRuntime(
            sim, topo.devices["h1"], passthrough_program({}), cycle_ns=10 * MS
        )
        a.assign_device("h2")
        with pytest.raises(ValueError):
            RedundantPlcPair(sim, a, b)

    def test_no_failover_without_failure(self):
        sim, pair, device = build_pair()
        pair.start()
        sim.run(until=3 * SEC)
        assert pair.record is None
        assert not pair.secondary.running


class TestKubernetesFailover:
    def build(self, seed=0, restart_delay_ns=None):
        sim = Simulator(seed=seed)
        topo = build_star(sim, 2)
        install_shortest_path_routes(topo)
        device = IoDeviceApp(sim, topo.devices["h1"])
        plc = PlcRuntime(
            sim, topo.devices["h0"],
            passthrough_program({"h1.echo": "h1.counter"}),
            cycle_ns=10 * MS, name="pod",
        )
        plc.assign_device("h1")
        model = KubernetesFailoverModel(
            sim, plc, restart_delay_ns=restart_delay_ns
        )
        return sim, model, device

    def test_pod_restart_restores_control(self):
        sim, model, device = self.build(restart_delay_ns=500 * MS)
        model.start()
        sim.run(until=1 * SEC)
        model.inject_primary_failure()
        sim.run(until=10 * SEC)
        assert device.state is ArState.RUNNING
        assert model.plc.all_running

    def test_restart_delay_distribution_in_paper_range(self):
        sim, model, device = self.build(seed=7)
        delays = [model.sample_restart_delay_ns() for _ in range(300)]
        assert min(delays) >= K8S_SWITCHOVER_MIN_NS
        assert max(delays) <= K8S_SWITCHOVER_MAX_NS
        # Heavy tail: some restarts take many seconds.
        assert max(delays) > 5 * SEC

    def test_k8s_switchover_slower_than_hardware_pair(self):
        sim, model, device = self.build(seed=2)
        model.start()
        sim.run(until=1 * SEC)
        model.inject_primary_failure()
        sim.run(until=90 * SEC)
        assert model.record is not None
        assert model.record.switchover_ns is not None
        # Probe detection alone (3 x 1 s) exceeds the hardware-pair worst case.
        assert model.record.switchover_ns > HW_SWITCHOVER_MAX_NS

"""Function-block programs."""

import pytest

from repro.plc import (
    And,
    Ctu,
    FunctionBlockProgram,
    Lambda,
    Limit,
    Not,
    Or,
    Pid,
    Scale,
    Ton,
    passthrough_program,
)


class TestBlocks:
    def test_and_or_not(self):
        assert And("a").evaluate({"x": True, "y": True}, 0.1) == {"out": True}
        assert And("a").evaluate({"x": True, "y": False}, 0.1) == {"out": False}
        assert Or("o").evaluate({"x": False, "y": 1}, 0.1) == {"out": True}
        assert Not("n").evaluate({"in": True}, 0.1) == {"out": False}

    def test_scale_and_limit(self):
        assert Scale("s", gain=2.0, offset=1.0).evaluate({"in": 3.0}, 0.1) == {
            "out": 7.0
        }
        limit = Limit("l", low=0.0, high=10.0)
        assert limit.evaluate({"in": 25.0}, 0.1)["out"] == 10.0
        assert limit.evaluate({"in": -5.0}, 0.1)["out"] == 0.0
        with pytest.raises(ValueError):
            Limit("bad", low=5, high=1)

    def test_ton_delays_output(self):
        timer = Ton("t", pt_s=0.5)
        assert not timer.evaluate({"in": True}, 0.2)["q"]
        assert not timer.evaluate({"in": True}, 0.2)["q"]
        assert timer.evaluate({"in": True}, 0.2)["q"]

    def test_ton_resets_when_input_drops(self):
        timer = Ton("t", pt_s=0.3)
        timer.evaluate({"in": True}, 0.2)
        timer.evaluate({"in": False}, 0.2)
        assert not timer.evaluate({"in": True}, 0.2)["q"]

    def test_ctu_counts_rising_edges_only(self):
        counter = Ctu("c", pv=2)
        assert counter.evaluate({"cu": True}, 0.1)["cv"] == 1
        assert counter.evaluate({"cu": True}, 0.1)["cv"] == 1  # held high
        counter.evaluate({"cu": False}, 0.1)
        result = counter.evaluate({"cu": True}, 0.1)
        assert result["cv"] == 2
        assert result["q"]

    def test_ctu_reset(self):
        counter = Ctu("c", pv=5)
        counter.evaluate({"cu": True}, 0.1)
        assert counter.evaluate({"cu": False, "reset": True}, 0.1)["cv"] == 0

    def test_pid_proportional_action(self):
        pid = Pid("p", kp=2.0)
        assert pid.evaluate({"sp": 10.0, "pv": 7.0}, 0.1)["out"] == pytest.approx(6.0)

    def test_pid_integral_accumulates(self):
        pid = Pid("p", kp=0.0, ki=1.0)
        first = pid.evaluate({"sp": 1.0, "pv": 0.0}, 1.0)["out"]
        second = pid.evaluate({"sp": 1.0, "pv": 0.0}, 1.0)["out"]
        assert second > first

    def test_pid_output_clamped(self):
        pid = Pid("p", kp=100.0, out_low=-1.0, out_high=1.0)
        assert pid.evaluate({"sp": 10.0, "pv": 0.0}, 0.1)["out"] == 1.0

    def test_pid_reset(self):
        pid = Pid("p", kp=0.0, ki=1.0)
        pid.evaluate({"sp": 1.0, "pv": 0.0}, 1.0)
        pid.reset()
        assert pid.evaluate({"sp": 1.0, "pv": 0.0}, 1.0)["out"] == pytest.approx(1.0)


class TestProgram:
    def test_wiring_propagates_values(self):
        program = FunctionBlockProgram()
        program.add_block(Scale("scale", gain=2.0))
        program.add_block(Limit("limit", low=0.0, high=5.0))
        program.connect("scale", "out", "limit", "in")
        program.input_map["raw"] = ("scale", "in")
        program.output_map["clamped"] = ("limit", "out")
        assert program.execute({"raw": 10.0}, 0.1) == {"clamped": 5.0}

    def test_execution_order_is_topological(self):
        order = []

        def tracer(name):
            def fn(inputs):
                order.append(name)
                return {"out": 1}
            return fn

        program = FunctionBlockProgram()
        program.add_block(Lambda("late", tracer("late")))
        program.add_block(Lambda("early", tracer("early")))
        program.connect("early", "out", "late", "in")
        program.execute({}, 0.1)
        assert order == ["early", "late"]

    def test_cycle_uses_previous_scan_values(self):
        # a -> b -> a: the loop must execute with one-scan-old values.
        program = FunctionBlockProgram()
        program.add_block(Lambda("a", lambda i: {"out": i.get("in", 0) + 1}))
        program.add_block(Lambda("b", lambda i: {"out": i.get("in", 0)}))
        program.connect("a", "out", "b", "in")
        program.connect("b", "out", "a", "in")
        program.output_map["value"] = ("b", "out")
        first = program.execute({}, 0.1)["value"]
        second = program.execute({}, 0.1)["value"]
        assert second > first  # state advances scan by scan

    def test_duplicate_block_rejected(self):
        program = FunctionBlockProgram()
        program.add_block(And("x"))
        with pytest.raises(ValueError):
            program.add_block(Or("x"))

    def test_connect_unknown_block_rejected(self):
        program = FunctionBlockProgram()
        program.add_block(And("x"))
        with pytest.raises(KeyError):
            program.connect("x", "out", "ghost", "in")

    def test_reset_clears_state(self):
        program = FunctionBlockProgram()
        program.add_block(Ctu("c", pv=10))
        program.input_map["pulse"] = ("c", "cu")
        program.output_map["count"] = ("c", "cv")
        program.execute({"pulse": True}, 0.1)
        program.reset()
        assert program.execute({"pulse": False}, 0.1)["count"] == 0

    def test_passthrough_program(self):
        program = passthrough_program({"dev.echo": "dev.counter"})
        assert program.execute({"dev.counter": 7}, 0.1) == {"dev.echo": 7}

    def test_missing_inputs_produce_no_outputs(self):
        program = passthrough_program({"out": "in"})
        assert program.execute({}, 0.1) == {}

"""Structured Text: interpreter semantics."""

import pytest

from repro.plc.st import StRuntimeError, compile_st


def run_once(source, inputs=None, dt=0.01):
    return compile_st(source).execute(inputs or {}, dt)


class TestBasics:
    def test_io_round_trip(self):
        out = run_once(
            "VAR_INPUT a : REAL; END_VAR VAR_OUTPUT b : REAL; END_VAR "
            "b := a * 2.0;",
            {"a": 21.0},
        )
        assert out == {"b": 42.0}

    def test_var_retains_across_scans(self):
        program = compile_st(
            "VAR_OUTPUT n : INT; END_VAR VAR count : INT; END_VAR "
            "count := count + 1; n := count;"
        )
        assert program.execute({}, 0.01)["n"] == 1
        assert program.execute({}, 0.01)["n"] == 2

    def test_initializers(self):
        program = compile_st(
            "VAR_OUTPUT x : REAL; END_VAR VAR sp : REAL := 450.0; END_VAR "
            "x := sp;"
        )
        assert program.execute({}, 0.01)["x"] == 450.0

    def test_reset_restores_initial_state(self):
        program = compile_st(
            "VAR_OUTPUT n : INT; END_VAR VAR c : INT; END_VAR "
            "c := c + 1; n := c;"
        )
        program.execute({}, 0.01)
        program.reset()
        assert program.execute({}, 0.01)["n"] == 1

    def test_case_insensitive_variables(self):
        out = run_once(
            "VAR_INPUT Level : REAL; END_VAR VAR_OUTPUT Pump : BOOL; END_VAR "
            "pump := LEVEL > 10.0;",
            {"Level": 20.0},
        )
        assert out["Pump"] is True

    def test_input_output_maps(self):
        program = compile_st(
            "VAR_INPUT raw : REAL; END_VAR VAR_OUTPUT act : REAL; END_VAR "
            "act := raw + 1.0;",
            input_map={"dev.sensor": "raw"},
            output_map={"dev.actuator": "act"},
        )
        assert program.execute({"dev.sensor": 4.0}, 0.01) == {"dev.actuator": 5.0}


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 / 4", 2.5),
            ("10 MOD 3", 1),
            ("-3 + 5", 2),
            ("2 < 3", True),
            ("2 >= 3", False),
            ("1 = 1", True),
            ("1 <> 1", False),
            ("TRUE AND FALSE", False),
            ("TRUE OR FALSE", True),
            ("TRUE XOR TRUE", False),
            ("NOT FALSE", True),
            ("NOT (1 > 2) AND 3 < 4", True),
        ],
    )
    def test_evaluation(self, expr, expected):
        out = run_once(
            f"VAR_OUTPUT r : REAL; END_VAR r := {expr};"
        )
        assert out["r"] == expected

    def test_division_by_zero(self):
        with pytest.raises(StRuntimeError):
            run_once("VAR_OUTPUT r : REAL; END_VAR r := 1 / 0;")

    def test_integer_division_stays_integral_when_exact(self):
        assert run_once("VAR_OUTPUT r : INT; END_VAR r := 10 / 2;")["r"] == 5


class TestControlFlow:
    def test_if_branching(self):
        source = (
            "VAR_INPUT x : INT; END_VAR VAR_OUTPUT y : INT; END_VAR "
            "IF x = 1 THEN y := 10; ELSIF x = 2 THEN y := 20; "
            "ELSE y := 30; END_IF;"
        )
        program = compile_st(source)
        assert program.execute({"x": 1}, 0.01)["y"] == 10
        assert program.execute({"x": 2}, 0.01)["y"] == 20
        assert program.execute({"x": 9}, 0.01)["y"] == 30

    def test_case_values_and_ranges(self):
        source = (
            "VAR_INPUT s : INT; END_VAR VAR_OUTPUT m : INT; END_VAR "
            "CASE s OF 1, 2: m := 12; 5..7: m := 57; ELSE m := 0; END_CASE;"
        )
        program = compile_st(source)
        assert program.execute({"s": 2}, 0.01)["m"] == 12
        assert program.execute({"s": 6}, 0.01)["m"] == 57
        assert program.execute({"s": 4}, 0.01)["m"] == 0

    def test_for_loop_sum(self):
        out = run_once(
            "VAR_OUTPUT s : INT; END_VAR VAR i : INT; END_VAR "
            "FOR i := 1 TO 10 DO s := s + i; END_FOR;"
        )
        assert out["s"] == 55

    def test_for_loop_with_step(self):
        out = run_once(
            "VAR_OUTPUT s : INT; END_VAR VAR i : INT; END_VAR "
            "FOR i := 10 TO 1 BY -3 DO s := s + i; END_FOR;"
        )
        assert out["s"] == 10 + 7 + 4 + 1

    def test_while_and_exit(self):
        out = run_once(
            "VAR_OUTPUT n : INT; END_VAR "
            "WHILE TRUE DO n := n + 1; IF n >= 5 THEN EXIT; END_IF; "
            "END_WHILE;"
        )
        assert out["n"] == 5

    def test_repeat_runs_at_least_once(self):
        out = run_once(
            "VAR_OUTPUT n : INT; END_VAR "
            "REPEAT n := n + 1; UNTIL TRUE END_REPEAT;"
        )
        assert out["n"] == 1

    def test_return_skips_rest_of_scan(self):
        out = run_once(
            "VAR_OUTPUT a : INT; b : INT; END_VAR a := 1; RETURN; b := 1;"
        )
        assert out == {"a": 1, "b": 0}

    def test_runaway_loop_trips_scan_watchdog(self):
        program = compile_st(
            "VAR_OUTPUT n : INT; END_VAR WHILE TRUE DO n := n + 1; END_WHILE;"
        )
        program.max_loop_iterations = 1_000
        with pytest.raises(StRuntimeError):
            program.execute({}, 0.01)

    def test_zero_for_step_rejected(self):
        with pytest.raises(StRuntimeError):
            run_once(
                "VAR i : INT; END_VAR FOR i := 1 TO 5 BY 0 DO END_FOR;"
            )


class TestFunctionBlocks:
    def test_ton_delays(self):
        program = compile_st(
            "VAR_INPUT run : BOOL; END_VAR VAR_OUTPUT q : BOOL; END_VAR "
            "VAR t : TON; END_VAR "
            "t(IN := run, PT := T#100ms); q := t.Q;"
        )
        results = [
            program.execute({"run": True}, 0.04)["q"] for _ in range(4)
        ]
        assert results == [False, False, True, True]

    def test_tof_holds_after_release(self):
        program = compile_st(
            "VAR_INPUT run : BOOL; END_VAR VAR_OUTPUT q : BOOL; END_VAR "
            "VAR t : TOF; END_VAR "
            "t(IN := run, PT := T#100ms); q := t.Q;"
        )
        assert program.execute({"run": True}, 0.04)["q"] is True
        held = [program.execute({"run": False}, 0.04)["q"] for _ in range(4)]
        assert held == [True, True, False, False]

    def test_ctu_counts_edges(self):
        program = compile_st(
            "VAR_INPUT pulse : BOOL; END_VAR VAR_OUTPUT cv : INT; q : BOOL; "
            "END_VAR VAR c : CTU; END_VAR "
            "c(CU := pulse, PV := 2); cv := c.CV; q := c.Q;"
        )
        sequence = [True, True, False, True]
        results = [program.execute({"pulse": p}, 0.01) for p in sequence]
        assert [r["cv"] for r in results] == [1, 1, 1, 2]
        assert results[-1]["q"] is True

    def test_ctd_counts_down_after_load(self):
        program = compile_st(
            "VAR_INPUT pulse : BOOL; load : BOOL; END_VAR "
            "VAR_OUTPUT cv : INT; END_VAR VAR c : CTD; END_VAR "
            "c(CD := pulse, LD := load, PV := 3); cv := c.CV;"
        )
        program.execute({"pulse": False, "load": True}, 0.01)
        program.execute({"pulse": True, "load": False}, 0.01)
        program.execute({"pulse": False, "load": False}, 0.01)
        out = program.execute({"pulse": True, "load": False}, 0.01)
        assert out["cv"] == 1

    def test_r_trig_single_scan_pulse(self):
        program = compile_st(
            "VAR_INPUT clk : BOOL; END_VAR VAR_OUTPUT q : BOOL; END_VAR "
            "VAR e : R_TRIG; END_VAR e(CLK := clk); q := e.Q;"
        )
        outs = [
            program.execute({"clk": c}, 0.01)["q"]
            for c in (False, True, True, False, True)
        ]
        assert outs == [False, True, False, False, True]

    def test_f_trig_detects_falling_edge(self):
        program = compile_st(
            "VAR_INPUT clk : BOOL; END_VAR VAR_OUTPUT q : BOOL; END_VAR "
            "VAR e : F_TRIG; END_VAR e(CLK := clk); q := e.Q;"
        )
        outs = [
            program.execute({"clk": c}, 0.01)["q"]
            for c in (True, False, False, True, False)
        ]
        assert outs == [False, True, False, False, True]


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(StRuntimeError):
            run_once("VAR_OUTPUT x : INT; END_VAR x := ghost;")

    def test_assignment_to_undeclared(self):
        with pytest.raises(StRuntimeError):
            run_once("ghost := 1;")

    def test_call_of_non_fb(self):
        with pytest.raises(StRuntimeError):
            run_once("VAR x : INT; END_VAR x(IN := 1);")

    def test_unknown_fb_output(self):
        with pytest.raises(StRuntimeError):
            run_once(
                "VAR t : TON; END_VAR VAR_OUTPUT x : BOOL; END_VAR "
                "x := t.banana;"
            )

    def test_non_constant_initializer(self):
        with pytest.raises(StRuntimeError):
            compile_st(
                "VAR a : INT; b : INT := a; END_VAR"
            )

"""Property-based tests for the Structured Text compiler."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.plc.st import compile_st, parse, tokenize
from repro.plc.st.parser import parse_time_literal

identifiers = st.text(alphabet="abcdefgh", min_size=1, max_size=6).filter(
    lambda s: s not in {"and", "or", "not", "mod", "if", "do", "of",
                        "to", "by", "for", "case", "then", "else",
                        "while", "exit", "true", "false", "var", "int",
                        "bool", "real", "time", "ton", "tof", "ctu",
                        "ctd", "dint", "lreal"}
)


@given(st.integers(-1_000_000, 1_000_000), st.integers(-1_000_000, 1_000_000))
def test_arithmetic_matches_python(a, b):
    program = compile_st(
        "VAR_OUTPUT s : DINT; d : DINT; p : DINT; END_VAR "
        f"s := {a} + {b}; d := {a} - {b}; p := ({a}) * ({b});"
        .replace("+ -", "+ (0 - 1) * ").replace("- -", "- (0 - 1) * ")
    )
    out = program.execute({}, 0.01)
    assert out["s"] == a + b
    assert out["d"] == a - b
    assert out["p"] == a * b


@given(st.booleans(), st.booleans(), st.booleans())
def test_boolean_algebra_matches_python(a, b, c):
    program = compile_st(
        "VAR_INPUT a : BOOL; b : BOOL; c : BOOL; END_VAR "
        "VAR_OUTPUT r1 : BOOL; r2 : BOOL; r3 : BOOL; END_VAR "
        "r1 := a AND b OR c; r2 := NOT (a XOR b); r3 := (a OR b) AND NOT c;"
    )
    out = program.execute({"a": a, "b": b, "c": c}, 0.01)
    assert out["r1"] == ((a and b) or c)
    assert out["r2"] == (not (a != b))
    assert out["r3"] == ((a or b) and not c)


@given(
    st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100)
)
def test_comparisons_match_python(a, b, c):
    program = compile_st(
        "VAR_INPUT a : INT; b : INT; c : INT; END_VAR "
        "VAR_OUTPUT r : BOOL; END_VAR "
        "r := a < b AND b <= c OR a = c;"
    )
    out = program.execute({"a": a, "b": b, "c": c}, 0.01)
    assert out["r"] == ((a < b and b <= c) or a == c)


@given(st.integers(1, 60), st.integers(0, 999))
def test_time_literal_round_trip(seconds, millis):
    text = f"t#{seconds}s{millis}ms"
    # Float accumulation order differs from the closed form: compare with
    # a ULP-scale tolerance.
    assert abs(parse_time_literal(text) - (seconds + millis / 1000)) < 1e-9


@given(identifiers, st.integers(-1000, 1000))
def test_declared_variable_round_trip(name, value):
    program = compile_st(
        f"VAR_INPUT {name} : DINT; END_VAR "
        f"VAR_OUTPUT out_v : DINT; END_VAR out_v := {name};"
    )
    assert program.execute({name: value}, 0.01)["out_v"] == value


@given(st.integers(0, 50), st.integers(1, 5))
@settings(deadline=None)
def test_for_loop_sum_closed_form(n, step):
    program = compile_st(
        "VAR_OUTPUT s : DINT; END_VAR VAR i : DINT; END_VAR "
        f"FOR i := 0 TO {n} BY {step} DO s := s + i; END_FOR;"
    )
    expected = sum(range(0, n + 1, step))
    assert program.execute({}, 0.01)["s"] == expected


@given(st.lists(st.booleans(), min_size=1, max_size=40))
@settings(deadline=None)
def test_ctu_counts_exactly_rising_edges(pulses):
    program = compile_st(
        "VAR_INPUT p : BOOL; END_VAR VAR_OUTPUT cv : INT; END_VAR "
        "VAR c : CTU; END_VAR c(CU := p, PV := 10000); cv := c.CV;"
    )
    final = 0
    for pulse in pulses:
        final = program.execute({"p": pulse}, 0.01)["cv"]
    expected = sum(
        1 for prev, cur in zip([False] + pulses, pulses)
        if cur and not prev
    )
    assert final == expected


@given(st.text(alphabet="abc:=;()<>+-*/ \n\t", max_size=60))
@settings(deadline=None)
def test_parser_never_crashes_unexpectedly(source):
    """Arbitrary input either parses or raises StSyntaxError — never
    anything else."""
    from repro.plc.st import StSyntaxError

    try:
        parse(source)
    except StSyntaxError:
        pass


@given(st.integers(0, 200))
def test_tokenizer_position_tracking(n):
    source = ("x := 1;\n" * n) + "y"
    tokens = tokenize(source)
    assert tokens[-2].line == n + 1

"""PLC runtimes and platform timing models."""

import numpy as np
import pytest

from repro.fieldbus import ArState, IoDeviceApp
from repro.metrics import jitter_report
from repro.net import build_star
from repro.net.routing import install_shortest_path_routes
from repro.plc import (
    HARDWARE_PLC,
    PLATFORMS,
    PlcRuntime,
    VPLC_PREEMPT_RT,
    VPLC_STOCK_KERNEL,
    passthrough_program,
)
from repro.simcore import Simulator, MS, SEC, US


class TestPlatformModels:
    def test_registry_contains_the_three_platforms(self):
        assert set(PLATFORMS) == {
            "hardware-plc", "vplc-preempt-rt", "vplc-stock-kernel",
        }

    def test_jitter_ordering_hardware_best(self):
        rng = np.random.default_rng(0)
        means = {}
        for model in (HARDWARE_PLC, VPLC_PREEMPT_RT, VPLC_STOCK_KERNEL):
            sampler = model.jitter_sampler(np.random.default_rng(1))
            means[model.name] = np.mean([sampler() for _ in range(3000)])
        assert (
            means["hardware-plc"]
            < means["vplc-preempt-rt"]
            < means["vplc-stock-kernel"]
        )

    def test_hardware_meets_one_microsecond_worst_case(self):
        sampler = HARDWARE_PLC.jitter_sampler(np.random.default_rng(2))
        worst = max(sampler() for _ in range(10000))
        assert worst < 1 * US

    def test_stock_kernel_has_millisecond_spikes(self):
        sampler = VPLC_STOCK_KERNEL.jitter_sampler(np.random.default_rng(3))
        worst = max(sampler() for _ in range(20000))
        assert worst > 200 * US

    def test_samples_never_negative(self):
        for model in PLATFORMS.values():
            sampler = model.jitter_sampler(np.random.default_rng(4))
            assert all(sampler() >= 0 for _ in range(1000))

    def test_scan_time_includes_program_and_overhead(self):
        sampler = HARDWARE_PLC.scan_time_sampler(
            np.random.default_rng(5), program_exec_ns=50_000
        )
        sample = sampler()
        assert sample >= 50_000 + HARDWARE_PLC.scan_overhead_ns


def star_with_plc(platform=HARDWARE_PLC, cycle=10 * MS, seed=0):
    sim = Simulator(seed=seed)
    topo = build_star(sim, 2)
    install_shortest_path_routes(topo)
    device = IoDeviceApp(sim, topo.devices["h1"])
    plc = PlcRuntime(
        sim,
        topo.devices["h0"],
        passthrough_program({"h1.echo": "h1.counter"}),
        cycle_ns=cycle,
        platform=platform,
        name="plc",
    )
    plc.assign_device("h1")
    return sim, plc, device


class TestPlcRuntime:
    def test_start_brings_connection_running(self):
        sim, plc, device = star_with_plc()
        plc.start()
        sim.run(until=1 * SEC)
        assert plc.all_running
        assert device.state is ArState.RUNNING

    def test_scan_loop_executes_program(self):
        sim, plc, device = star_with_plc()
        plc.start()
        sim.run(until=1 * SEC)
        # The passthrough echoes the device counter back to the device.
        assert device.outputs.get("echo", 0) > 0
        assert plc.stats.scans >= 90

    def test_scan_overruns_counted(self):
        sim, plc, device = star_with_plc(
            platform=VPLC_STOCK_KERNEL, cycle=100 * US, seed=3
        )
        plc.start()
        sim.run(until=2 * SEC)
        # A 100 us cycle on a noisy stock kernel must overrun sometimes.
        assert plc.stats.overruns > 0

    def test_crash_stops_everything_silently(self):
        sim, plc, device = star_with_plc()
        plc.start()
        sim.run(until=500 * MS)
        scans_at_crash = plc.stats.scans
        plc.crash()
        sim.run(until=1 * SEC)
        assert plc.crashed
        assert plc.stats.scans == scans_at_crash
        assert device.stats.watchdog_expirations == 1

    def test_crash_callbacks_fire(self):
        sim, plc, device = star_with_plc()
        fired = []
        plc.on_crash.append(lambda: fired.append(sim.now))
        plc.start()
        sim.run(until=100 * MS)
        plc.crash()
        assert len(fired) == 1

    def test_stop_releases_devices(self):
        sim, plc, device = star_with_plc()
        plc.start()
        sim.run(until=500 * MS)
        plc.stop()
        sim.run(until=1 * SEC)
        assert device.state is ArState.ABORTED
        # Released, not watchdog-expired: orderly shutdown.
        assert device.stats.watchdog_expirations == 0

    def test_duplicate_device_assignment_rejected(self):
        sim, plc, device = star_with_plc()
        with pytest.raises(ValueError):
            plc.assign_device("h1")

    def test_invalid_cycle_rejected(self):
        sim = Simulator()
        topo = build_star(sim, 1)
        with pytest.raises(ValueError):
            PlcRuntime(
                sim, topo.devices["h0"], passthrough_program({}), cycle_ns=0
            )

    def test_hardware_plc_cyclic_jitter_far_below_vplc(self):
        results = {}
        for platform in (HARDWARE_PLC, VPLC_PREEMPT_RT):
            sim, plc, device = star_with_plc(platform=platform, seed=11)
            plc.start()
            sim.run(until=3 * SEC)
            arrivals = device.stats.rx_times_ns
            report = jitter_report(arrivals[5:], 10 * MS)
            results[platform.name] = report.max_abs_jitter_ns
        assert results["hardware-plc"] * 5 < results["vplc-preempt-rt"]

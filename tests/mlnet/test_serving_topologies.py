"""Inference serving and the three Figure 6 deployments."""

import numpy as np
import pytest

from repro.mlnet import (
    InferenceServer,
    MlClient,
    OBJECT_IDENTIFICATION,
    build_leaf_spine_deployment,
    build_ml_aware_deployment,
    build_ring_deployment,
    run_deployment,
)
from repro.net import Host, Link
from repro.net.routing import verify_routes
from repro.simcore import Simulator, MS, SEC


def direct_pair():
    sim = Simulator(seed=0)
    client_host = Host(sim, "client")
    server_host = Host(sim, "server")
    Link(sim, client_host.add_port(), server_host.add_port(), 1e9, 500)
    server = InferenceServer(sim, server_host, units=1, service_time_ns=500_000)
    client = MlClient(
        sim, client_host, "server", frame_bytes=30_000, fps=10,
    )
    return sim, client, server


class TestServing:
    def test_frame_round_trip_measured(self):
        sim, client, server = direct_pair()
        client.start()
        sim.run(until=1 * SEC)
        assert client.stats.frames_sent >= 10
        assert client.stats.results_received >= 9
        assert server.stats.frames_completed >= 9

    def test_latency_includes_transfer_and_inference(self):
        sim, client, server = direct_pair()
        client.start()
        sim.run(until=1 * SEC)
        latencies = client.latencies_ms()
        # 30 KB at 1 Gbit/s ~ 0.25 ms + inference 0.5 ms (cv 0.2, so the
        # floor sits near 0.25 + 0.3).
        assert latencies.min() > 0.5
        assert latencies.max() < 5.0

    def test_segmentation_into_mtu_packets(self):
        sim, client, server = direct_pair()
        client.start()
        sim.run(until=150 * MS)
        # 30000 / 1460 = 21 segments per frame.
        assert client.host.tx_count % 21 == 0

    def test_queueing_when_server_overloaded(self):
        sim = Simulator(seed=0)
        client_hosts = [Host(sim, f"c{i}") for i in range(4)]
        server_host = Host(sim, "server")
        switch_sim_links = []
        from repro.net import Switch, Topology
        from repro.net.routing import install_shortest_path_routes

        topo = Topology(sim)
        switch = topo.add_switch("sw")
        for host in client_hosts:
            topo.devices[host.name] = host
            topo.connect(switch, host)
        topo.devices[server_host.name] = server_host
        topo.connect(switch, server_host)
        install_shortest_path_routes(topo)
        # Service slower than aggregate arrivals: queue must build.
        server = InferenceServer(
            sim, server_host, units=1, service_time_ns=30_000_000
        )
        clients = [
            MlClient(sim, host, "server", frame_bytes=10_000, fps=20)
            for host in client_hosts
        ]
        for client in clients:
            client.start()
        sim.run(until=1 * SEC)
        assert server.stats.queue_peak > 1

    def test_invalid_parameters(self):
        sim = Simulator()
        host = Host(sim, "h")
        with pytest.raises(ValueError):
            MlClient(sim, host, "s", frame_bytes=0, fps=10)
        with pytest.raises(ValueError):
            InferenceServer(sim, host, units=0)


class TestDeployments:
    @pytest.mark.parametrize(
        "builder",
        [build_ring_deployment, build_leaf_spine_deployment,
         build_ml_aware_deployment],
    )
    def test_deployment_routes_clean(self, builder):
        sim = Simulator()
        deployment = builder(sim, 32, OBJECT_IDENTIFICATION)
        assert verify_routes(deployment.topo) == []
        assert len(deployment.client_hosts) == 32
        assert all(
            deployment.server_for(c.name) for c in deployment.client_hosts
        )

    def test_ring_scales_switch_count_with_clients(self):
        sim = Simulator()
        small = build_ring_deployment(sim, 32, OBJECT_IDENTIFICATION)
        big = build_ring_deployment(
            Simulator(), 256, OBJECT_IDENTIFICATION
        )
        assert len(big.topo.switches()) > len(small.topo.switches())

    def test_ml_aware_uses_compressed_frames(self):
        sim = Simulator()
        aware = build_ml_aware_deployment(sim, 32, OBJECT_IDENTIFICATION)
        naive = build_ring_deployment(Simulator(), 32, OBJECT_IDENTIFICATION)
        assert aware.frame_bytes < naive.frame_bytes

    def test_ml_aware_servers_local_to_cells(self):
        sim = Simulator()
        deployment = build_ml_aware_deployment(
            sim, 64, OBJECT_IDENTIFICATION, cell_size=32
        )
        # Every client's assigned server sits in the same cell prefix.
        from repro.net.topology import path_hop_count

        for client in deployment.client_hosts[:8]:
            hops = path_hop_count(
                deployment.topo, client.name, deployment.server_for(client.name)
            )
            assert hops == 2  # client -> cell switch -> server

    def test_run_deployment_returns_latency_stats(self):
        sim = Simulator(seed=0)
        deployment = build_ml_aware_deployment(sim, 16, OBJECT_IDENTIFICATION)
        mean_ms, p99_ms, count = run_deployment(
            deployment, OBJECT_IDENTIFICATION, sim, duration_ns=300 * MS
        )
        assert 0 < mean_ms <= p99_ms
        assert count > 0

"""ML application profiles, degradation, and the design optimizer."""

import math

import pytest

from repro.mlnet import (
    DEFECT_DETECTION,
    MlAwareOptimizer,
    NetworkDegradation,
    OBJECT_IDENTIFICATION,
    PAPER_APPS,
    mmc_wait_s,
)


class TestDegradation:
    def test_reference_quality_is_ratio_one(self):
        degradation = NetworkDegradation()
        assert degradation.compression_ratio == 1.0
        assert degradation.frame_bytes(1000) == 1000

    def test_compression_shrinks_frames(self):
        degradation = NetworkDegradation(compression_ratio=4.0)
        assert degradation.frame_bytes(1000) == 250

    def test_from_frame_bytes_inverse(self):
        degradation = NetworkDegradation.from_frame_bytes(250, 1000)
        assert degradation.compression_ratio == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkDegradation(compression_ratio=0.5)
        with pytest.raises(ValueError):
            NetworkDegradation(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkDegradation(jitter_ms=-1)
        with pytest.raises(ValueError):
            NetworkDegradation.from_frame_bytes(2000, 1000)


class TestProfiles:
    def test_accuracy_at_reference_is_base(self):
        for profile in PAPER_APPS:
            assert profile.accuracy(NetworkDegradation()) == pytest.approx(
                profile.base_accuracy
            )

    def test_accuracy_monotone_in_compression(self):
        for profile in PAPER_APPS:
            accuracies = [
                profile.accuracy(NetworkDegradation(compression_ratio=r))
                for r in (1.0, 2.0, 4.0, 8.0)
            ]
            assert accuracies == sorted(accuracies, reverse=True)

    def test_loss_hurts_accuracy(self):
        for profile in PAPER_APPS:
            clean = profile.accuracy(NetworkDegradation())
            lossy = profile.accuracy(NetworkDegradation(loss_rate=0.05))
            assert lossy < clean

    def test_accuracy_clamped_to_unit_interval(self):
        brutal = NetworkDegradation(compression_ratio=100.0, loss_rate=0.9)
        for profile in PAPER_APPS:
            assert 0.0 <= profile.accuracy(brutal) <= 1.0

    def test_min_frame_bytes_meets_target(self):
        for profile in PAPER_APPS:
            frame = profile.min_frame_bytes()
            degradation = NetworkDegradation.from_frame_bytes(
                frame, profile.reference_frame_bytes
            )
            assert profile.accuracy(degradation) >= profile.target_accuracy - 1e-6

    def test_min_frame_saves_traffic(self):
        for profile in PAPER_APPS:
            assert profile.min_frame_bytes() < profile.reference_frame_bytes

    def test_defect_detection_less_compressible(self):
        # Its steeper response surface forces relatively larger frames.
        obj_ratio = (
            OBJECT_IDENTIFICATION.min_frame_bytes()
            / OBJECT_IDENTIFICATION.reference_frame_bytes
        )
        defect_ratio = (
            DEFECT_DETECTION.min_frame_bytes()
            / DEFECT_DETECTION.reference_frame_bytes
        )
        assert defect_ratio > obj_ratio

    def test_unreachable_target_keeps_reference_quality(self):
        profile = OBJECT_IDENTIFICATION
        assert profile.max_compression_for(profile.base_accuracy + 0.01) == 1.0

    def test_demand_scales_with_frame_and_fps(self):
        profile = OBJECT_IDENTIFICATION
        assert profile.demand_bps(10_000) == 10_000 * 8 * profile.fps


class TestMmc:
    def test_zero_wait_at_low_load(self):
        assert mmc_wait_s(1.0, 1000.0, 1) < 0.01

    def test_unstable_returns_inf(self):
        assert math.isinf(mmc_wait_s(10.0, 5.0, 1))
        assert math.isinf(mmc_wait_s(10.0, 5.0, 2))

    def test_more_servers_less_waiting(self):
        one = mmc_wait_s(8.0, 10.0, 1)
        two = mmc_wait_s(8.0, 10.0, 2)
        assert two < one

    def test_invalid_servers_rejected(self):
        with pytest.raises(ValueError):
            mmc_wait_s(1.0, 1.0, 0)


class TestOptimizer:
    def test_design_is_stable_and_cost_positive(self):
        optimizer = MlAwareOptimizer(OBJECT_IDENTIFICATION)
        design = optimizer.design(128)
        assert design.servers_per_cell >= 1
        assert design.cost_units > 0
        assert math.isfinite(design.estimated_latency_ms)

    def test_compute_utilization_under_target(self):
        optimizer = MlAwareOptimizer(DEFECT_DETECTION, utilization_target=0.5)
        for cell_clients in (8, 16, 32, 64):
            servers = optimizer.servers_for_cell(cell_clients)
            arrival = cell_clients * DEFECT_DETECTION.fps
            service = 1e9 / DEFECT_DETECTION.inference_time_ns
            assert arrival / (servers * service) <= 0.5 + 1e-9

    def test_design_preserves_accuracy_target(self):
        for profile in PAPER_APPS:
            design = MlAwareOptimizer(profile).design(64)
            assert design.predicted_accuracy >= profile.target_accuracy - 1e-6

    def test_sweep_explores_cell_sizes(self):
        designs = MlAwareOptimizer(OBJECT_IDENTIFICATION).design_sweep(128)
        assert len(designs) == 4
        assert len({d.cell_size for d in designs}) == 4

    def test_bigger_cells_cost_less_total(self):
        # Fewer cells amortize the per-cell switch; this is the cost side
        # of the cost/latency trade the ablation bench sweeps.
        designs = MlAwareOptimizer(OBJECT_IDENTIFICATION).design_sweep(
            256, cell_sizes=[16, 64]
        )
        by_size = {d.cell_size: d for d in designs}
        assert by_size[64].cost_units < by_size[16].cost_units

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            MlAwareOptimizer(OBJECT_IDENTIFICATION, utilization_target=1.5)

"""The AGV-navigation application profile (Section 5 extension)."""

import pytest

from repro.mlnet import (
    AGV_NAVIGATION,
    ALL_APPS,
    DEFECT_DETECTION,
    MlAwareOptimizer,
    NetworkDegradation,
    PAPER_APPS,
    run_point,
)


class TestAgvProfile:
    def test_registered_in_all_apps_not_paper_apps(self):
        assert AGV_NAVIGATION in ALL_APPS
        assert AGV_NAVIGATION not in PAPER_APPS

    def test_compression_tolerant(self):
        # Navigation survives aggressive compression better than optical
        # inspection: at 4x, the AGV model loses less accuracy.
        degradation = NetworkDegradation(compression_ratio=4.0)
        agv_drop = AGV_NAVIGATION.base_accuracy - AGV_NAVIGATION.accuracy(
            degradation
        )
        defect_drop = DEFECT_DETECTION.base_accuracy - DEFECT_DETECTION.accuracy(
            degradation
        )
        assert agv_drop < defect_drop

    def test_loss_sensitive(self):
        # A lost frame means a stale navigation decision: the loss
        # coefficient is the highest of all profiles.
        assert AGV_NAVIGATION.loss_coeff == max(p.loss_coeff for p in ALL_APPS)

    def test_optimizer_compresses_hard(self):
        frame = AGV_NAVIGATION.min_frame_bytes()
        assert frame < AGV_NAVIGATION.reference_frame_bytes / 2

    def test_design_is_feasible(self):
        design = MlAwareOptimizer(AGV_NAVIGATION).design(64)
        assert design.predicted_accuracy >= AGV_NAVIGATION.target_accuracy - 1e-6
        assert design.servers_per_cell >= 1

    def test_topology_ordering_holds_for_agv_too(self):
        ring = run_point(AGV_NAVIGATION, "ring", 128,
                         duration_ns=300_000_000)
        aware = run_point(AGV_NAVIGATION, "ml-aware", 128,
                          duration_ns=300_000_000)
        assert aware.mean_latency_ms < ring.mean_latency_ms

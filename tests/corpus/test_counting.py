"""Term permutations, counting, and the synthetic corpus round trip."""

import pytest

from repro.corpus import (
    CorpusDocument,
    PAPER_COUNTS,
    PAPER_GROUPS,
    TermCounter,
    analyze_corpus,
    expand_permutations,
    generate_corpus,
    group_by_name,
    normalize,
)


class TestPermutations:
    def test_spacing_variants(self):
        variants = expand_permutations("data center")
        assert {"data center", "data-center", "datacenter"} <= variants

    def test_plural_variants(self):
        assert "vplcs" in expand_permutations("vPLC")

    def test_case_insensitive_base(self):
        assert "tsn" in expand_permutations("TSN")

    def test_slash_variants(self):
        variants = expand_permutations("it/ot")
        assert "it ot" in variants or "itot" in variants


class TestCounter:
    def count(self, text, group_name):
        return TermCounter().count_text(text)[group_name]

    def test_simple_occurrence(self):
        assert self.count("We study the Internet at scale.", "Internet") == 1

    def test_permutations_counted_together(self):
        text = "A data center and a datacenter and a data-center."
        assert self.count(text, "Datacenter") == 3

    def test_word_boundaries_respected(self):
        # 'plc' inside another word must not match.
        assert self.count("simplchecker is a tool", "PLC") == 0
        assert self.count("a PLC controls the line", "PLC") == 1

    def test_specific_group_shadows_general(self):
        # 'industrial internet of things' is IIoT, not an Internet hit.
        text = "The industrial internet of things grows."
        counts = TermCounter().count_text(text)
        assert counts["IIoT"] == 1
        assert counts["Internet"] == 0

    def test_plural_matches(self):
        assert self.count("Many vPLCs run in racks.", "vPLC") == 1

    def test_case_insensitive(self):
        assert self.count("PROFINET and profinet and Profinet",
                          "PROFINET/EtherCAT/TSN") == 3

    def test_count_corpus_sums_documents(self):
        documents = [
            CorpusDocument("V", 2022, "a", "the internet"),
            CorpusDocument("V", 2022, "b", "the Internet again: internet"),
        ]
        totals = TermCounter().count_corpus(documents)
        assert totals["Internet"] == 3

    def test_normalize_collapses_whitespace(self):
        assert normalize("Data\n  Center") == "data center"


class TestGroups:
    def test_thirteen_groups_match_figure(self):
        assert len(PAPER_GROUPS) == 13
        assert set(PAPER_COUNTS) == {g.name for g in PAPER_GROUPS}

    def test_industrial_flags(self):
        assert group_by_name("vPLC").is_industrial
        assert not group_by_name("Internet").is_industrial

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            group_by_name("Blockchain")


class TestSyntheticRoundTrip:
    def test_counts_reproduce_figure_one_exactly(self):
        documents = generate_corpus(seed=3)
        report = analyze_corpus(documents)
        assert report.counts == PAPER_COUNTS

    def test_different_seed_same_totals(self):
        report = analyze_corpus(generate_corpus(seed=99))
        assert report.counts == PAPER_COUNTS

    def test_corpus_has_expected_paper_count(self):
        documents = generate_corpus(seed=0)
        assert len(documents) == 55 + 60 + 30 + 32

    def test_custom_counts_respected(self):
        counts = {name: 0 for name in PAPER_COUNTS}
        counts["vPLC"] = 5
        documents = generate_corpus(counts=counts, seed=1)
        report = analyze_corpus(documents)
        assert report.counts["vPLC"] == 5
        assert report.counts["Internet"] == 0


class TestGapReport:
    def test_gap_ratio_two_orders_of_magnitude(self):
        report = analyze_corpus(generate_corpus(seed=0))
        # Figure 1's message: general networking terms dominate by ~100x.
        assert report.gap_ratio > 50

    def test_ranked_by_count(self):
        report = analyze_corpus(generate_corpus(seed=0))
        ranked = report.ranked()
        assert ranked[0][0] == "TCP/UDP/IPv4/IPv6"
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_bar_rows_render_all_groups(self):
        report = analyze_corpus(generate_corpus(seed=0))
        rows = report.bar_rows()
        assert len(rows) == 13
        assert any("vPLC" in row for row in rows)

    def test_infinite_gap_with_zero_industrial(self):
        from repro.corpus.report import GapReport

        report = GapReport(counts={}, industrial_total=0, general_total=10)
        assert report.gap_ratio == float("inf")


class TestLoadDirectory:
    def test_loads_text_files(self, tmp_path):
        from repro.corpus import load_directory

        (tmp_path / "paper1.txt").write_text("We study the Internet.")
        (tmp_path / "paper2.txt").write_text("PLC and vPLC systems.")
        (tmp_path / "notes.md").write_text("ignored")
        documents = load_directory(tmp_path, venue="TEST", year=2026)
        assert [d.title for d in documents] == ["paper1", "paper2"]
        assert documents[0].venue == "TEST"
        report = analyze_corpus(documents)
        assert report.counts["Internet"] == 1
        assert report.counts["PLC"] == 1
        assert report.counts["vPLC"] == 1

    def test_missing_directory_rejected(self, tmp_path):
        from repro.corpus import load_directory

        with pytest.raises(NotADirectoryError):
            load_directory(tmp_path / "nope")

"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Simulator
from repro.simcore.events import EventQueue


@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(-5, 5)),
        min_size=1,
        max_size=200,
    )
)
def test_queue_pops_in_nondecreasing_time_order(items):
    queue = EventQueue()
    for time, priority in items:
        queue.push(time, lambda: None, priority=priority)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(items)


@given(
    st.lists(st.integers(0, 10_000), min_size=1, max_size=100),
    st.data(),
)
def test_cancellation_removes_exactly_chosen_events(times, data):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(0, len(events) - 1), max_size=len(events))
    )
    for index in to_cancel:
        events[index].cancel()
    survivors = sorted(
        t for i, t in enumerate(times) if i not in to_cancel
    )
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == survivors


@given(st.lists(st.integers(0, 1_000), min_size=1, max_size=50))
@settings(deadline=None)
def test_simulator_executes_all_events_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(lambda d=delay: fired.append((sim.now, d)), after=delay)
    sim.run()
    assert len(fired) == len(delays)
    observed_times = [t for t, _ in fired]
    assert observed_times == sorted(observed_times)
    # Every event fired at exactly its scheduled time.
    assert all(t == d for t, d in fired)


@given(
    st.lists(st.integers(1, 500), min_size=1, max_size=20),
    st.integers(0, 10_000),
)
@settings(deadline=None)
def test_process_delays_accumulate_exactly(delays, extra):
    sim = Simulator()
    end_time = []

    def worker():
        for delay in delays:
            yield delay
        end_time.append(sim.now)

    sim.process(worker())
    sim.run(until=sum(delays) + extra)
    assert end_time == [sum(delays)]


@given(st.integers(0, 2**31), st.text(min_size=1, max_size=30))
def test_named_streams_reproducible(seed, name):
    from repro.simcore.rng import RandomStreams

    a = RandomStreams(seed=seed).stream(name).integers(1 << 40)
    b = RandomStreams(seed=seed).stream(name).integers(1 << 40)
    assert a == b

"""Event-loop statistics and the collect() aggregation context."""

from repro.simcore import MS, Simulator, collect_stats, every
from repro.simcore.stats import SimStats


class TestSimulatorStats:
    def test_counters_start_at_zero(self):
        sim = Simulator()
        assert sim.stats.events_scheduled == 0
        assert sim.stats.events_executed == 0
        assert sim.stats.processes_started == 0
        assert sim.stats.simulators == 1

    def test_schedule_and_run_counts(self):
        sim = Simulator()
        hits = []
        for delay in (1, 2, 3):
            sim.schedule(lambda: hits.append(sim.now), after=delay)
        sim.run()
        assert sim.stats.events_scheduled == 3
        assert sim.stats.events_executed == 3
        assert sim.stats.sim_time_ns == 3
        assert hits == [1, 2, 3]

    def test_cancelled_events_not_executed(self):
        sim = Simulator()
        event = sim.schedule(lambda: None, after=5)
        event.cancel()
        sim.schedule(lambda: None, after=1)
        sim.run()
        assert sim.stats.events_scheduled == 2
        assert sim.stats.events_executed == 1

    def test_process_counter_and_periodic_events(self):
        sim = Simulator()
        ticks = []
        every(sim, MS, lambda: ticks.append(sim.now))
        sim.run(until=5 * MS)
        assert sim.stats.processes_started == 1
        assert len(ticks) == 6  # t = 0..5 ms inclusive
        assert sim.stats.events_executed == len(ticks)
        # The t=6ms wakeup is scheduled but lies beyond the horizon.
        assert sim.stats.events_scheduled == len(ticks) + 1

    def test_step_counts_events(self):
        sim = Simulator()
        sim.schedule(lambda: None, after=7)
        assert sim.step() is True
        assert sim.stats.events_executed == 1
        assert sim.stats.sim_time_ns == 7
        assert sim.step() is False


class TestCollect:
    def test_aggregates_across_simulators(self):
        with collect_stats() as stats:
            for _ in range(3):
                sim = Simulator()
                sim.schedule(lambda: None, after=1)
                sim.run()
        assert stats.simulators == 3
        assert stats.events_executed == 3
        assert stats.sim_time_ns == 1

    def test_excludes_outside_simulators(self):
        outside = Simulator()
        outside.schedule(lambda: None, after=1)
        with collect_stats() as stats:
            inside = Simulator()
            inside.schedule(lambda: None, after=1)
            inside.run()
        outside.run()
        assert stats.simulators == 1
        assert stats.events_executed == 1

    def test_nested_collection(self):
        with collect_stats() as outer:
            first = Simulator()
            first.schedule(lambda: None, after=1)
            first.run()
            with collect_stats() as inner:
                second = Simulator()
                second.schedule(lambda: None, after=1)
                second.schedule(lambda: None, after=2)
                second.run()
        assert inner.simulators == 1
        assert inner.events_executed == 2
        assert outer.simulators == 2
        assert outer.events_executed == 3

    def test_merge_and_as_dict(self):
        a = SimStats(simulators=1, events_executed=2, sim_time_ns=10)
        b = SimStats(simulators=1, events_executed=3, sim_time_ns=7)
        a.merge(b)
        assert a.simulators == 2
        assert a.events_executed == 5
        assert a.sim_time_ns == 10
        assert a.as_dict()["events_executed"] == 5

"""The redesigned keyword-only scheduling API and its deprecation shims.

``sim.schedule(fn, *, after=..., at=..., priority=...)`` is the one
scheduling entry point; the pre-redesign positional forms
(``schedule(delay, fn)`` and ``schedule_at(time, fn)``) must keep
working — warning — until out-of-tree callers migrate.
"""

import pytest

from repro.simcore import (
    MS,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SimulationError,
    Simulator,
    US,
)


class TestKeywordApi:
    def test_after_schedules_relative_to_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(lambda: fired.append(sim.now), after=5 * US)
        sim.run()
        assert fired == [5 * US]

    def test_at_schedules_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule(lambda: fired.append(sim.now), at=2 * MS)
        sim.run()
        assert fired == [2 * MS]

    def test_no_time_argument_fires_at_current_instant(self):
        sim = Simulator()
        fired = []
        sim.schedule(lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]

    def test_after_and_at_are_mutually_exclusive(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="either 'after' or 'at'"):
            sim.schedule(lambda: None, after=1, at=2)

    def test_negative_after_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(lambda: None, after=-1)

    def test_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(lambda: None, after=10 * US)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(lambda: None, at=5 * US)

    def test_priority_breaks_same_instant_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(lambda: order.append("low"), after=1 * US, priority=PRIORITY_LOW)
        sim.schedule(lambda: order.append("normal"), after=1 * US)
        sim.schedule(lambda: order.append("high"), after=1 * US, priority=PRIORITY_HIGH)
        sim.run()
        assert order == ["high", "normal", "low"]

    def test_returned_event_supports_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(lambda: fired.append("no"), after=1 * US)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_new_form_does_not_warn(self, recwarn):
        sim = Simulator()
        sim.schedule(lambda: None, after=1 * US)
        sim.schedule(lambda: None, at=2 * US)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestDeprecatedShims:
    def test_legacy_schedule_warns_and_delegates(self):
        sim = Simulator()
        fired = []
        with pytest.warns(DeprecationWarning, match="after=delay"):
            sim.schedule(3 * US, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3 * US]

    def test_legacy_schedule_with_positional_priority(self):
        sim = Simulator()
        order = []
        with pytest.warns(DeprecationWarning):
            sim.schedule(1 * US, lambda: order.append("low"), PRIORITY_LOW)
            sim.schedule(1 * US, lambda: order.append("high"), PRIORITY_HIGH)
        sim.run()
        assert order == ["high", "low"]

    def test_legacy_schedule_negative_delay_still_raises(self):
        sim = Simulator()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SimulationError):
                sim.schedule(-1, lambda: None)

    def test_legacy_schedule_at_warns_and_delegates(self):
        sim = Simulator()
        fired = []
        with pytest.warns(DeprecationWarning, match="at=time"):
            sim.schedule_at(4 * US, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4 * US]

    def test_legacy_schedule_at_past_still_raises(self):
        sim = Simulator()
        sim.schedule(lambda: None, after=10 * US)
        sim.run()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SimulationError):
                sim.schedule_at(5 * US, lambda: None)

    def test_legacy_events_count_in_stats(self):
        sim = Simulator()
        with pytest.warns(DeprecationWarning):
            sim.schedule(1 * US, lambda: None)
        sim.run()
        assert sim.stats.events_scheduled == 1
        assert sim.stats.events_executed == 1

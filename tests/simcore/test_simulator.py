"""Simulator execution, processes, and signals."""

import pytest

from repro.simcore import SimulationError, Simulator, every
from repro.simcore.units import MS, US


def test_time_starts_at_zero():
    assert Simulator().now == 0


def test_schedule_and_run_advances_time():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(sim.now), after=100)
    sim.run()
    assert fired == [100]
    assert sim.now == 100


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append("early"), after=100)
    sim.schedule(lambda: fired.append("late"), after=500)
    sim.run(until=200)
    assert fired == ["early"]
    assert sim.now == 200
    sim.run(until=600)
    assert fired == ["early", "late"]


def test_run_until_advances_time_even_when_queue_drains():
    sim = Simulator()
    sim.run(until=1_000)
    assert sim.now == 1_000


def test_run_until_past_rejected():
    sim = Simulator()
    sim.run(until=100)
    with pytest.raises(SimulationError):
        sim.run(until=50)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(lambda: None, after=-5)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.run(until=100)
    with pytest.raises(SimulationError):
        sim.schedule(lambda: None, at=50)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(lambda: fired.append(("inner", sim.now)), after=10)

    sim.schedule(outer, after=5)
    sim.run()
    assert fired == [("outer", 5), ("inner", 15)]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(1), after=1)
    sim.schedule(lambda: fired.append(2), after=2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_pending_events_counts_live_events():
    sim = Simulator()
    sim.schedule(lambda: None, after=1)
    event = sim.schedule(lambda: None, after=2)
    assert sim.pending_events == 2
    event.cancel()
    assert sim.pending_events == 1


class TestProcesses:
    def test_process_yields_delays(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield 100
            trace.append(sim.now)
            yield 50
            trace.append(sim.now)

        sim.process(worker())
        sim.run()
        assert trace == [0, 100, 150]

    def test_process_result_captured(self):
        sim = Simulator()

        def worker():
            yield 10
            return "done"

        process = sim.process(worker())
        sim.run()
        assert not process.alive
        assert process.result == "done"

    def test_process_stop_halts_execution(self):
        sim = Simulator()
        trace = []

        def worker():
            while True:
                trace.append(sim.now)
                yield 10

        process = sim.process(worker())
        sim.run(until=35)
        process.stop()
        sim.run(until=100)
        assert trace == [0, 10, 20, 30]
        assert not process.alive

    def test_process_yield_none_resumes_same_instant(self):
        sim = Simulator()
        times = []

        def worker():
            times.append(sim.now)
            yield None
            times.append(sim.now)

        sim.process(worker())
        sim.run()
        assert times == [0, 0]

    def test_negative_yield_raises(self):
        sim = Simulator()

        def worker():
            yield -1

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_signal_wakes_waiters_with_value(self):
        sim = Simulator()
        ready = sim.signal("ready")
        received = []

        def waiter():
            value = yield ready
            received.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(lambda: ready.fire("go"), after=100)
        sim.run()
        assert received == [(100, "go")]

    def test_signal_wakes_multiple_waiters(self):
        sim = Simulator()
        ready = sim.signal()
        woken = []

        def waiter(tag):
            yield ready
            woken.append(tag)

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(ready.fire, after=10)
        sim.run()
        assert sorted(woken) == ["a", "b"]

    def test_finished_signal_fires_on_completion(self):
        sim = Simulator()
        results = []

        def short():
            yield 10
            return 42

        process = sim.process(short())

        def observer():
            value = yield process.finished
            results.append(value)

        sim.process(observer())
        sim.run()
        assert results == [42]


class TestEvery:
    def test_every_runs_periodically(self):
        sim = Simulator()
        times = []
        every(sim, 100, lambda: times.append(sim.now))
        sim.run(until=450)
        assert times == [0, 100, 200, 300, 400]

    def test_every_with_start_offset(self):
        sim = Simulator()
        times = []
        every(sim, 100, lambda: times.append(sim.now), start=30)
        sim.run(until=250)
        assert times == [30, 130, 230]

    def test_every_with_jitter_does_not_drift(self):
        sim = Simulator()
        times = []
        every(sim, 1 * MS, lambda: times.append(sim.now), jitter_fn=lambda: 50 * US)
        sim.run(until=5 * MS)
        # Activation k happens at k*period + jitter, with no accumulation.
        assert times == [50 * US + k * MS for k in range(5)]


def test_trace_hooks_receive_messages():
    sim = Simulator()
    seen = []
    sim.add_trace_hook(lambda t, msg: seen.append((t, msg)))
    sim.schedule(lambda: sim.trace("hello"), after=5)
    sim.run()
    assert seen == [(5, "hello")]


def test_trace_hooks_called_in_registration_order():
    sim = Simulator()
    order = []
    sim.add_trace_hook(lambda t, msg: order.append("first"))
    sim.add_trace_hook(lambda t, msg: order.append("second"))
    sim.add_trace_hook(lambda t, msg: order.append("third"))
    sim.trace("x")
    assert order == ["first", "second", "third"]


def test_unhooked_trace_goes_to_default_sink():
    sim = Simulator()
    seen = []
    sim.default_sink = lambda t, msg: seen.append((t, msg))
    sim.schedule(lambda: sim.trace("lonely"), after=3)
    sim.run()
    assert seen == [(3, "lonely")]


def test_hooks_replace_default_sink():
    sim = Simulator()
    sunk, hooked = [], []
    sim.default_sink = lambda t, msg: sunk.append(msg)
    sim.add_trace_hook(lambda t, msg: hooked.append(msg))
    sim.trace("x")
    assert hooked == ["x"] and sunk == []


def test_unhooked_trace_routes_into_observability():
    from repro.obs import capture

    with capture() as cap:
        sim = Simulator()
        sim.trace("visible")
    instants = [
        e for e in cap.tracer.events if e.get("name") == "sim.trace"
    ]
    assert len(instants) == 1
    assert instants[0]["args"]["message"] == "visible"
    # with observability off, the default sink is a harmless no-op
    Simulator().trace("dropped")

"""Event-queue ordering and cancellation semantics."""

import pytest

from repro.simcore.events import (
    EventQueue,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)


def test_pop_returns_earliest_event():
    queue = EventQueue()
    queue.push(30, lambda: "c")
    queue.push(10, lambda: "a")
    queue.push(20, lambda: "b")
    assert queue.pop().time == 10
    assert queue.pop().time == 20
    assert queue.pop().time == 30


def test_same_time_fires_in_scheduling_order():
    queue = EventQueue()
    first = queue.push(5, lambda: 1)
    second = queue.push(5, lambda: 2)
    assert queue.pop() is first
    assert queue.pop() is second


def test_priority_orders_within_same_time():
    queue = EventQueue()
    normal = queue.push(5, lambda: 1, priority=PRIORITY_NORMAL)
    high = queue.push(5, lambda: 2, priority=PRIORITY_HIGH)
    low = queue.push(5, lambda: 3, priority=PRIORITY_LOW)
    assert queue.pop() is high
    assert queue.pop() is normal
    assert queue.pop() is low


def test_priority_never_overrides_time():
    queue = EventQueue()
    late_high = queue.push(10, lambda: 1, priority=PRIORITY_HIGH)
    early_low = queue.push(5, lambda: 2, priority=PRIORITY_LOW)
    assert queue.pop() is early_low
    assert queue.pop() is late_high


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    doomed = queue.push(1, lambda: 1)
    survivor = queue.push(2, lambda: 2)
    doomed.cancel()
    assert queue.pop() is survivor


def test_len_excludes_cancelled():
    queue = EventQueue()
    keep = queue.push(1, lambda: 1)
    drop = queue.push(2, lambda: 2)
    assert len(queue) == 2
    drop.cancel()
    assert len(queue) == 1
    assert bool(queue)
    keep.cancel()
    assert not queue


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_pop_all_cancelled_raises():
    queue = EventQueue()
    queue.push(1, lambda: 1).cancel()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1, lambda: 1)
    queue.push(5, lambda: 2)
    first.cancel()
    assert queue.peek_time() == 5


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1, lambda: 1)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1, lambda: 1)
    queue.push(2, lambda: 2)
    queue.clear()
    assert not queue

"""Random streams, clocks, and unit helpers."""

import numpy as np
import pytest

from repro.simcore.clock import Clock, PtpSyncModel, tap_clock
from repro.simcore.rng import RandomStreams
from repro.simcore.units import (
    MS,
    SEC,
    US,
    format_duration,
    ms_to_ns,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    us_to_ns,
)


class TestRandomStreams:
    def test_same_seed_same_stream_reproduces(self):
        a = RandomStreams(seed=7).stream("x").integers(1 << 40)
        b = RandomStreams(seed=7).stream("x").integers(1 << 40)
        assert a == b

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("a").integers(1 << 40)
        b = streams.stream("b").integers(1 << 40)
        assert a != b  # astronomically unlikely to collide

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").integers(1 << 40)
        b = RandomStreams(seed=2).stream("x").integers(1 << 40)
        assert a != b

    def test_stream_is_cached_and_stateful(self):
        streams = RandomStreams(seed=0)
        first = streams.stream("s")
        second = streams.stream("s")
        assert first is second
        values = [first.random(), second.random()]
        assert values[0] != values[1]  # draws continue, not restart

    def test_adding_stream_does_not_disturb_existing(self):
        reference = RandomStreams(seed=3)
        ref_values = reference.stream("main").random(5)

        perturbed = RandomStreams(seed=3)
        perturbed.stream("other").random(100)
        got = perturbed.stream("main").random(5)
        assert np.allclose(ref_values, got)

    def test_fork_changes_streams(self):
        parent = RandomStreams(seed=3)
        child = parent.fork("child")
        assert (
            parent.stream("x").integers(1 << 40)
            != child.stream("x").integers(1 << 40)
        )
        assert child.seed == RandomStreams(seed=3).fork("child").seed


class TestClock:
    def test_perfect_clock_reads_true_time(self):
        clock = Clock()
        assert clock.read(123_456) == 123_456

    def test_offset_shifts_reading(self):
        clock = Clock(offset_ns=50)
        assert clock.read(1000) == 1050

    def test_drift_accumulates(self):
        clock = Clock(drift_ppm=100.0)  # 100 us per second
        assert clock.read(SEC) == SEC + 100_000

    def test_granularity_quantizes(self):
        clock = tap_clock(granularity_ns=8)
        for true_time in (0, 3, 4, 11, 12, 100):
            reading = clock.read(true_time)
            assert reading % 8 == 0
            assert abs(reading - true_time) <= 4

    def test_error_at_ignores_noise(self):
        clock = Clock(offset_ns=10, drift_ppm=1.0)
        assert clock.error_at(0) == 10
        assert clock.error_at(1_000_000) == pytest.approx(11.0)

    def test_noise_uses_given_rng(self):
        rng = np.random.default_rng(0)
        clock = Clock(noise_std_ns=100.0, rng=rng)
        readings = {clock.read(1000) for _ in range(10)}
        assert len(readings) > 1


class TestPtpSync:
    def test_residual_error_grows_with_time_since_sync(self):
        model = PtpSyncModel()
        rng = np.random.default_rng(1)
        early = np.mean(
            [model.residual_error_ns(0, rng) for _ in range(200)]
        )
        late = np.mean(
            [model.residual_error_ns(10 * SEC, rng) for _ in range(200)]
        )
        assert late > early

    def test_synchronized_clock_carries_asymmetry_offset(self):
        model = PtpSyncModel(path_asymmetry_ns=300.0, timestamp_noise_ns=0.0)
        clock = model.synchronized_clock("slave", np.random.default_rng(0))
        assert clock.offset_ns == pytest.approx(150.0)

    def test_tap_beats_ptp_for_one_way_measurement(self):
        # The Section 3 argument: tap quantization (8 ns) is far below the
        # PTP residual (asymmetry/2 ~ 100 ns).
        model = PtpSyncModel(path_asymmetry_ns=200.0)
        rng = np.random.default_rng(2)
        ptp_error = abs(model.residual_error_ns(SEC, rng))
        tap_error = 4  # half the 8 ns quantum
        assert ptp_error > tap_error


class TestUnits:
    def test_round_trips(self):
        assert us_to_ns(ns_to_us(1234)) == 1234
        assert ms_to_ns(ns_to_ms(5 * MS)) == 5 * MS
        assert s_to_ns(ns_to_s(3 * SEC)) == 3 * SEC

    def test_constants_are_consistent(self):
        assert MS == 1000 * US
        assert SEC == 1000 * MS

    @pytest.mark.parametrize(
        "value,expected",
        [
            (500, "500ns"),
            (1_500, "1.500us"),
            (2_000_000, "2.000ms"),
            (3_000_000_000, "3.000s"),
        ],
    )
    def test_format_duration(self, value, expected):
        assert format_duration(value) == expected

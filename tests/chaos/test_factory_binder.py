"""Integration: campaigns driving a live converged factory.

``factory_binder`` closes the loop between the declarative scenario layer
and the packet-level factory: link-flap components down real backhaul
links, PLC-crash components crash real vPLC runtimes, and maintenance
windows stop/restart them — while the campaign's downtime bookkeeping
stays identical to the unbound case.
"""

import pytest

from repro import obs
from repro.chaos import (
    ComponentSpec,
    FaultScenario,
    MaintenanceSpec,
    factory_binder,
    run_campaign,
)
from repro.core import ConvergedFactory, FactoryConfig
from repro.simcore import MS, Simulator


def build_factory(sim, cells=2):
    return ConvergedFactory(
        sim,
        FactoryConfig(cells=cells, devices_per_cell=1, cycle_ns=10 * MS),
    )


def fast_scenario(name, kind, cells=2, **extra):
    components = tuple(
        ComponentSpec(
            name=f"{kind}{cell}",
            kind=kind,
            mtbf_s=4.0,
            mttr_s=0.5,
            affected_cells=(cell,),
        )
        for cell in range(cells)
    )
    return FaultScenario(
        name=name, doc="", cells=cells, components=components,
        horizon_s=30.0, **extra,
    )


class TestFactoryBinder:
    def test_link_flaps_toggle_the_real_backhaul(self):
        sim = Simulator(seed=3)
        factory = build_factory(sim)
        scenario = fast_scenario("bound-links", "link-flap")
        result = run_campaign(
            scenario, seed=3, binder=factory_binder(factory)
        )
        assert result.faults_injected >= 2
        for cell in range(2):
            link = factory.topo.link_between(f"cell{cell}", "leaf0")
            assert link.downs >= 1

    def test_plc_crashes_hit_the_real_runtimes(self):
        with obs.capture() as cap:
            sim = Simulator(seed=4)
            factory = build_factory(sim)
            factory.start()
            scenario = fast_scenario("bound-plcs", "plc-crash")
            result = run_campaign(
                scenario, seed=4, binder=factory_binder(factory)
            )
        counters = cap.registry.snapshot()["counters"]
        crashes = sum(
            value
            for key, value in counters.items()
            if key.startswith("plc.crashes")
        )
        assert crashes >= 2
        assert counters.get("chaos.fault.injected") == (
            result.faults_injected
        )

    def test_maintenance_windows_stop_and_restart_vplcs(self):
        sim = Simulator(seed=5)
        factory = build_factory(sim)
        factory.start()
        scenario = FaultScenario(
            name="bound-maintenance", doc="", cells=2,
            maintenance=(
                MaintenanceSpec(
                    name="window", period_s=10.0, duration_s=1.0,
                    first_start_s=5.0, affected_cells=(0, 1),
                ),
            ),
            horizon_s=30.0, tolerance=1e-6,
        )
        result = run_campaign(scenario, binder=factory_binder(factory))
        assert result.faults_injected == 3  # windows at t=5, 15, 25
        assert all(plc.running for plc in
                   (cell.vplc for cell in factory.cells))

    def test_blast_radius_must_fit_the_factory(self):
        sim = Simulator(seed=6)
        factory = build_factory(sim, cells=2)
        scenario = fast_scenario("too-wide", "link-flap", cells=4)
        with pytest.raises(ValueError, match="only 2 cells"):
            run_campaign(scenario, binder=factory_binder(factory))

    def test_bound_and_unbound_measurements_agree(self):
        # The binder changes what faults *touch*, never what is measured:
        # identical seeds yield identical outage intervals either way.
        sim = Simulator(seed=8)
        factory = build_factory(sim)
        scenario = fast_scenario("agree", "link-flap")
        bound = run_campaign(
            scenario, seed=8, binder=factory_binder(factory)
        )
        unbound = run_campaign(scenario, seed=8)
        assert bound.intervals == unbound.intervals
        assert bound.fingerprint() == unbound.fingerprint()

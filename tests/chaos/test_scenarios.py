"""Scenario declarations: validation, analytic predictions, factories."""

import pytest

from repro.chaos import (
    KINDS,
    SCENARIOS,
    ComponentSpec,
    FaultScenario,
    MaintenanceSpec,
    get_scenario,
)
from repro.chaos.scenario import scaled
from repro.core.requirements import DATACENTER_TYPICAL


def one_component(**overrides):
    base = dict(
        name="c0", kind="link-flap", mtbf_s=10.0, mttr_s=0.1,
        affected_cells=(0,),
    )
    base.update(overrides)
    return ComponentSpec(**base)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            one_component(kind="gremlin")

    @pytest.mark.parametrize("field", ["mtbf_s", "mttr_s"])
    def test_nonpositive_times_rejected(self, field):
        with pytest.raises(ValueError, match="positive"):
            one_component(**{field: 0.0})

    def test_component_must_affect_cells(self):
        with pytest.raises(ValueError, match="affects no cells"):
            one_component(affected_cells=())

    def test_maintenance_window_shorter_than_period(self):
        with pytest.raises(ValueError, match="shorter than its period"):
            MaintenanceSpec(
                name="m", period_s=10.0, duration_s=10.0, affected_cells=(0,)
            )

    def test_scenario_rejects_out_of_range_cells(self):
        with pytest.raises(ValueError, match="unknown cell"):
            FaultScenario(
                name="bad", doc="", cells=2,
                components=(one_component(affected_cells=(5,)),),
            )

    def test_scenario_needs_positive_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultScenario(name="bad", doc="", cells=1, horizon_s=0.0)

    def test_get_scenario_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="link-flaps"):
            get_scenario("asteroid-strike")


class TestPredictions:
    def test_component_availability_is_mtbf_over_cycle(self):
        spec = one_component(mtbf_s=40.0, mttr_s=0.03)
        assert spec.availability == pytest.approx(40.0 / 40.03)

    def test_maintenance_availability_is_duty_cycle(self):
        window = MaintenanceSpec(
            name="m", period_s=600.0, duration_s=0.3, affected_cells=(0,)
        )
        assert window.availability == pytest.approx(1.0 - 0.3 / 600.0)

    def test_independent_components_compose_in_series(self):
        scenario = get_scenario("correlated", cells=2)
        per_cell = 40.0 / 40.03          # this cell's backhaul
        fabric = 30.0 / 30.05            # shared
        virt = 20.0 / 20.04              # shared
        predicted = scenario.predicted_availability()
        assert predicted[0] == pytest.approx(per_cell * fabric * virt)
        assert predicted[1] == pytest.approx(predicted[0])

    def test_unaffected_cells_stay_perfect(self):
        scenario = FaultScenario(
            name="partial", doc="", cells=3,
            components=(one_component(affected_cells=(1,)),),
        )
        predicted = scenario.predicted_availability()
        assert predicted[0] == 1.0
        assert predicted[1] < 1.0
        assert predicted[2] == 1.0

    def test_mean_availability_averages_cells(self):
        scenario = get_scenario("link-flaps")
        predicted = scenario.predicted_availability()
        assert scenario.predicted_mean_availability() == pytest.approx(
            sum(predicted.values()) / scenario.cells
        )


class TestShippedScenarios:
    def test_all_factories_build_with_defaults(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            assert scenario.name == name
            assert scenario.cells == 4
            assert scenario.requirement is DATACENTER_TYPICAL
            assert scenario.components or scenario.maintenance

    def test_scale_knobs_preserve_availability(self):
        # Scaling MTBF and MTTR together preserves every duty cycle.
        base = get_scenario("link-flaps")
        scaled_up = get_scenario("link-flaps", mtbf_scale=3.0, mttr_scale=3.0)
        assert scaled_up.predicted_availability() == pytest.approx(
            base.predicted_availability()
        )

    def test_mttr_scale_degrades_availability(self):
        base = get_scenario("virt-incident")
        slower = get_scenario("virt-incident", mttr_scale=4.0)
        assert (
            slower.predicted_mean_availability()
            < base.predicted_mean_availability()
        )

    def test_kinds_cover_the_taxonomy(self):
        used = {
            component.kind
            for name in SCENARIOS
            for component in get_scenario(name).components
        }
        assert used == set(KINDS)

    def test_scaled_changes_only_the_horizon(self):
        base = get_scenario("plc-crashes")
        shorter = scaled(base, horizon_s=60.0)
        assert shorter.horizon_s == 60.0
        assert shorter.components == base.components
        assert shorter.tolerance == base.tolerance

"""Chaos campaign engine tests."""

"""The campaign engine: measurement, verdicts, replay, serialization.

The analytic-agreement test below is the acceptance contract for every
shipped scenario: measured per-cell availability at the default horizon
must agree with the scenario's steady-state prediction within its
documented tolerance.
"""

import dataclasses

import pytest

from repro.chaos import (
    SCENARIOS,
    CampaignResult,
    get_scenario,
    intervals_fingerprint,
    replay_campaign,
    run_campaign,
)


@pytest.fixture(scope="module")
def campaigns():
    """One campaign per shipped scenario at seed 0, shared module-wide."""
    return {
        name: run_campaign(get_scenario(name), seed=0) for name in SCENARIOS
    }


class TestMeasurement:
    def test_result_header_mirrors_the_scenario(self, campaigns):
        scenario = get_scenario("link-flaps")
        result = campaigns["link-flaps"]
        assert result.scenario == "link-flaps"
        assert result.seed == 0
        assert result.cells == scenario.cells
        assert result.horizon_ns == scenario.horizon_ns
        assert result.requirement == scenario.requirement.name
        assert len(result.reports) == scenario.cells

    def test_intervals_are_sorted_disjoint_and_clipped(self, campaigns):
        result = campaigns["correlated"]
        for pairs in result.intervals.values():
            previous_end = 0
            for start, end in pairs:
                assert 0 <= start < end <= result.horizon_ns
                assert start >= previous_end
                previous_end = end

    def test_downtime_matches_intervals(self, campaigns):
        result = campaigns["link-flaps"]
        for report in result.reports:
            total = sum(
                end - start for start, end in result.intervals[report.cell]
            )
            assert report.downtime_ns == total
            assert report.availability == pytest.approx(
                1.0 - total / result.horizon_ns
            )

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_measured_agrees_with_analytic_prediction(self, campaigns, name):
        # The shipped-scenario acceptance criterion: every cell within the
        # documented tolerance of the steady-state prediction.
        result = campaigns[name]
        tolerance = get_scenario(name).tolerance
        for report in result.reports:
            assert report.within_tolerance, (
                f"{name} cell {report.cell}: measured "
                f"{report.availability:.6f} vs predicted "
                f"{report.predicted:.6f} exceeds tolerance {tolerance}"
            )

    def test_verdicts_split_the_taxonomy(self, campaigns):
        # Per-cell scenarios meet three nines; host-wide incidents do not —
        # the consolidation blast-radius argument in verdict form.
        verdicts = {name: campaigns[name].verdict for name in campaigns}
        assert verdicts == {
            "link-flaps": "pass",
            "plc-crashes": "pass",
            "virt-incident": "fail",
            "correlated": "fail",
            "maintenance": "pass",
        }

    def test_rows_carry_one_verdict_row_per_cell(self, campaigns):
        rows = campaigns["plc-crashes"].rows()
        assert len(rows) == 4
        for row in rows:
            assert row["scenario"] == "plc-crashes"
            assert isinstance(row["ok"], bool)
            assert isinstance(row["within_tolerance"], bool)
            assert len(row["fingerprint"]) == 12


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        scenario = get_scenario("correlated", horizon_s=600.0)
        first = run_campaign(scenario, seed=42)
        second = run_campaign(scenario, seed=42)
        assert first.intervals == second.intervals
        assert first.fingerprint() == second.fingerprint()

    def test_different_seeds_diverge(self):
        scenario = get_scenario("link-flaps", horizon_s=600.0)
        assert (
            run_campaign(scenario, seed=0).fingerprint()
            != run_campaign(scenario, seed=1).fingerprint()
        )

    def test_per_component_streams_isolate_cells(self):
        # Named per-component streams: cell 0's backhaul schedule must not
        # depend on how many sibling components exist in the scenario.
        small = run_campaign(get_scenario("link-flaps", cells=1), seed=5)
        large = run_campaign(get_scenario("link-flaps", cells=4), seed=5)
        assert small.intervals[0] == large.intervals[0]

    def test_maintenance_is_seed_independent(self):
        scenario = get_scenario("maintenance")
        assert (
            run_campaign(scenario, seed=0).fingerprint()
            == run_campaign(scenario, seed=99).fingerprint()
        )

    def test_maintenance_availability_is_exact(self, campaigns):
        result = campaigns["maintenance"]
        for report in result.reports:
            assert report.availability == pytest.approx(
                report.predicted, abs=1e-9
            )


class TestReplay:
    def test_replay_matches_reference(self):
        scenario = get_scenario("link-flaps", horizon_s=600.0)
        reference = run_campaign(scenario, seed=7)
        result, report = replay_campaign(scenario, reference)
        assert report.identical
        assert report.mismatched_cells == []
        assert result.fingerprint() == reference.fingerprint()
        assert "replay OK" in report.describe()

    def test_replay_detects_tampered_intervals(self):
        scenario = get_scenario("link-flaps", horizon_s=600.0)
        reference = run_campaign(scenario, seed=7)
        start, end = reference.intervals[2][0]
        reference.intervals[2][0] = (start, end + 1)
        _, report = replay_campaign(scenario, reference)
        assert not report.identical
        assert report.mismatched_cells == [2]
        assert "replay MISMATCH" in report.describe()
        assert "[2]" in report.describe()


class TestSerialization:
    def test_json_round_trip_preserves_the_replay_identity(self, tmp_path):
        result = run_campaign(get_scenario("correlated", horizon_s=600.0))
        path = result.save(tmp_path / "campaign.json")
        loaded = CampaignResult.load(path)
        assert loaded.intervals == result.intervals
        assert loaded.fingerprint() == result.fingerprint()
        assert loaded.verdict == result.verdict
        assert [dataclasses.asdict(r) for r in loaded.reports] == [
            dataclasses.asdict(r) for r in result.reports
        ]

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported campaign schema"):
            CampaignResult.from_dict({"schema": "repro.chaos/campaign/v9"})

    def test_fingerprint_is_canonical(self):
        intervals = {1: [(5, 9)], 0: [(1, 2), (3, 4)]}
        reordered = {0: [(1, 2), (3, 4)], 1: [(5, 9)]}
        assert intervals_fingerprint(intervals) == intervals_fingerprint(
            reordered
        )
        assert intervals_fingerprint(intervals) != intervals_fingerprint(
            {0: [(1, 2), (3, 5)], 1: [(5, 9)]}
        )


class TestFlightRecorderIntegration:
    """Chaos faults feed the telemetry flight recorder when one is active."""

    def test_faults_note_and_snapshot_the_flight_recorder(self):
        from repro import obs

        with obs.capture(
            metrics=False, tracing=False, telemetry=obs.TelemetryHub()
        ) as handle:
            result = run_campaign(get_scenario("link-flaps"), seed=0)
        hub = handle.telemetry
        assert result.reports  # campaign itself unaffected
        assert hub.flight.events > 0
        kinds = {
            event["kind"]
            for snap in hub.flight.snapshots
            for events in snap["components"].values()
            for event in events
        }
        assert "chaos.fault" in kinds
        triggers = [snap["trigger"] for snap in hub.flight.snapshots]
        assert any(t.startswith("chaos.fault:") for t in triggers)

    def test_campaign_measurement_identical_with_telemetry(self):
        from repro import obs

        plain = run_campaign(get_scenario("link-flaps"), seed=0)
        with obs.capture(metrics=False, tracing=False, telemetry=True):
            observed = run_campaign(get_scenario("link-flaps"), seed=0)
        assert intervals_fingerprint(plain.intervals) == (
            intervals_fingerprint(observed.intervals)
        )

"""ChaosSpec: campaigns projected into the figure registry and runner."""

import pytest

from repro.chaos import (
    CHAOS_PREFIX,
    SCENARIOS,
    campaign_verdict,
    chaos_registry,
    get_chaos_spec,
)
from repro.figures import UnknownFigureError, get_spec, registry
from repro.runner import ResultCache, expand_grid, run_jobs


class TestRegistry:
    def test_one_spec_per_shipped_scenario(self):
        assert set(chaos_registry()) == set(SCENARIOS)

    def test_lookup_tolerates_the_figure_prefix(self):
        assert (
            get_chaos_spec("link-flaps")
            is get_chaos_spec(f"{CHAOS_PREFIX}link-flaps")
        )

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="link-flaps"):
            get_chaos_spec("nope")

    def test_figure_registry_stays_figure_only(self):
        # 'repro all' and the default sweep must not run campaigns.
        assert not any(name.startswith(CHAOS_PREFIX) for name in registry())

    def test_get_spec_falls_back_to_chaos_figures(self):
        spec = get_spec("chaos-link-flaps")
        assert spec.name == "chaos-link-flaps"
        assert spec.verdict is campaign_verdict
        assert {p.name for p in spec.params} == {
            "cells", "mtbf_scale", "mttr_scale", "horizon_s",
        }

    def test_get_spec_unknown_name_lists_both_kinds(self):
        with pytest.raises(UnknownFigureError) as excinfo:
            get_spec("fig99")
        message = str(excinfo.value)
        assert "fig5" in message
        assert "chaos-link-flaps" in message


class TestVerdict:
    def test_pass_requires_every_row_ok(self):
        rows = [{"ok": True}, {"ok": True}]
        assert campaign_verdict(rows) == "pass"
        rows[1]["ok"] = False
        assert campaign_verdict(rows) == "fail"

    def test_empty_rows_cannot_demonstrate_compliance(self):
        # A failed or truncated sweep cell yields no rows; vacuous truth
        # must not turn that into a "pass".
        assert campaign_verdict([]) == "fail"

    def test_figure_spec_rows_match_direct_campaign(self):
        spec = get_chaos_spec("maintenance")
        via_figure = get_spec("chaos-maintenance").run(seed=3)
        direct = spec.run(seed=3).rows()
        assert list(via_figure) == list(direct)


class TestRunnerIntegration:
    def test_sweep_records_verdicts_in_the_manifest(self):
        jobs = expand_grid(
            ["chaos-maintenance"], seeds=[0], grid={"horizon_s": [1200.0]}
        )
        result = run_jobs(jobs, workers=1)
        (record,) = result.manifest.records
        assert record.figure == "chaos-maintenance"
        assert record.verdict == "pass"
        assert record.rows == 4

    def test_grid_sweeps_chaos_params(self):
        jobs = expand_grid(
            ["chaos-virt-incident"],
            seeds=[0],
            grid={"mttr_scale": [1.0, 2.0], "horizon_s": [600.0]},
        )
        assert len(jobs) == 2
        result = run_jobs(jobs, workers=1)
        assert all(r.verdict == "fail" for r in result.manifest.records)

    def test_cache_hits_are_rejudged_not_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = expand_grid(
            ["chaos-maintenance"], seeds=[1], grid={"horizon_s": [1200.0]}
        )
        cold = run_jobs(jobs, workers=1, cache=cache)
        warm = run_jobs(jobs, workers=1, cache=cache)
        (cold_record,) = cold.manifest.records
        (warm_record,) = warm.manifest.records
        assert not cold_record.cached
        assert warm_record.cached
        assert warm_record.verdict == cold_record.verdict == "pass"

    def test_mixed_figure_and_chaos_sweep(self):
        jobs = expand_grid(
            ["fig1", "chaos-maintenance"],
            seeds=[0],
            grid={"horizon_s": [1200.0]},
        )
        result = run_jobs(jobs, workers=1)
        by_figure = {r.figure: r for r in result.manifest.records}
        assert by_figure["fig1"].verdict is None
        assert by_figure["chaos-maintenance"].verdict == "pass"

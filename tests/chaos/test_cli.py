"""The ``repro chaos`` CLI: list, run, replay, report."""

import json

import pytest

from repro.chaos import CampaignResult, get_scenario, run_campaign
from repro.cli import main
from repro.runner import RunManifest


def run_cli(*argv):
    return main(list(argv))


class TestList:
    def test_lists_every_scenario_with_predictions(self, capsys):
        assert run_cli("chaos", "list") == 0
        out = capsys.readouterr().out
        for name in (
            "link-flaps", "plc-crashes", "virt-incident",
            "correlated", "maintenance",
        ):
            assert name in out
        assert "predicted mean availability" in out


class TestRun:
    def test_writes_manifest_and_campaign_files(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        campaign_dir = tmp_path / "campaigns"
        code = run_cli(
            "chaos", "run", "maintenance",
            "--seeds", "0,1",
            "--param", "horizon_s=1200",
            "--jobs", "1",
            "--manifest", str(manifest_path),
            "--campaign-dir", str(campaign_dir),
        )
        assert code == 0
        manifest = RunManifest.load(manifest_path)
        assert len(manifest.records) == 2
        assert all(r.verdict == "pass" for r in manifest.records)
        campaign_files = sorted(campaign_dir.glob("*.json"))
        assert len(campaign_files) == 2
        loaded = CampaignResult.load(campaign_files[0])
        assert loaded.scenario == "maintenance"
        out = capsys.readouterr().out
        assert "2 pass, 0 fail" in out

    def test_strict_fails_on_failing_campaigns(self, tmp_path):
        code = run_cli(
            "chaos", "run", "virt-incident",
            "--param", "horizon_s=600", "--jobs", "1", "--strict",
        )
        assert code == 1

    def test_without_strict_failures_are_results(self, capsys):
        code = run_cli(
            "chaos", "run", "virt-incident",
            "--param", "horizon_s=600", "--jobs", "1",
        )
        assert code == 0
        assert "0 pass, 1 fail" in capsys.readouterr().out

    def test_unknown_scenario_is_a_friendly_error(self, capsys):
        assert run_cli("chaos", "run", "meteor") == 2
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestReplay:
    def test_replay_from_flags_is_self_consistent(self, capsys):
        code = run_cli(
            "chaos", "replay", "--scenario", "link-flaps", "--seed", "7",
            "--param", "horizon_s=600",
        )
        assert code == 0
        assert "replay OK" in capsys.readouterr().out

    def test_replay_from_campaign_file(self, tmp_path, capsys):
        scenario = get_scenario("plc-crashes", horizon_s=600.0)
        reference = run_campaign(
            scenario, seed=3, params={"horizon_s": 600.0}
        )
        path = reference.save(tmp_path / "reference.json")
        assert run_cli("chaos", "replay", "--campaign", str(path)) == 0
        assert "replay OK" in capsys.readouterr().out

    def test_replay_flags_divergence(self, tmp_path, capsys):
        scenario = get_scenario("plc-crashes", horizon_s=600.0)
        reference = run_campaign(
            scenario, seed=3, params={"horizon_s": 600.0}
        )
        payload = reference.as_dict()
        payload["intervals"]["1"][0][1] += 1  # tamper with one outage
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(payload))
        assert run_cli("chaos", "replay", "--campaign", str(path)) == 1
        assert "replay MISMATCH" in capsys.readouterr().out

    def test_replay_without_scenario_or_campaign_errors(self, capsys):
        assert run_cli("chaos", "replay") == 2
        assert "needs --scenario" in capsys.readouterr().err


class TestReport:
    def test_reports_a_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        run_cli(
            "chaos", "run", "maintenance", "virt-incident",
            "--param", "horizon_s=600", "--jobs", "1",
            "--manifest", str(manifest_path),
        )
        capsys.readouterr()
        assert run_cli("chaos", "report", str(manifest_path)) == 0
        out = capsys.readouterr().out
        assert "2 with verdicts" in out
        assert "1 pass, 1 fail" in out

    def test_reports_a_campaign_file(self, tmp_path, capsys):
        result = run_campaign(get_scenario("maintenance", horizon_s=1200.0))
        path = result.save(tmp_path / "campaign.json")
        assert run_cli("chaos", "report", str(path)) == 0
        out = capsys.readouterr().out
        assert "verdict=PASS" in out
        assert "cell 0" in out
        assert result.fingerprint() in out

    def test_missing_file_is_a_friendly_error(self, tmp_path, capsys):
        assert run_cli("chaos", "report", str(tmp_path / "nope.json")) == 2
        assert "cannot read" in capsys.readouterr().err

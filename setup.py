"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables legacy
``pip install -e .`` in offline environments.
"""

from setuptools import setup

setup()

"""Term groups for the Figure 1 terminology analysis.

Figure 1 counts occurrences *with permutations* of industrial-networking
and general-networking terms across recent SIGCOMM and HotNets proceedings.
A :class:`TermGroup` holds the base spellings; :func:`expand_permutations`
derives the case/hyphen/plural variants the paper's "(with permutations)"
qualifier implies.

``PAPER_COUNTS`` records the published per-group counts, which the
synthetic corpus generator is calibrated against and the benchmark
validates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TermGroup:
    """A named group of equivalent terms (one Figure 1 bar)."""

    name: str
    terms: tuple[str, ...]
    is_industrial: bool


def expand_permutations(term: str) -> set[str]:
    """Spelling variants of one term (all lowercase; matching is
    case-insensitive downstream).

    Generated variants: hyphen/space/joined separators and trailing plural.
    """
    base = term.lower().strip()
    variants = {base}
    if " " in base or "-" in base or "/" in base:
        for separator in (" ", "-", ""):
            variants.add(
                base.replace("/", separator)
                .replace("-", separator)
                .replace(" ", separator)
            )
    expanded = set(variants)
    for variant in variants:
        if variant and not variant.endswith("s"):
            expanded.add(variant + "s")
    return {v for v in expanded if v}


#: The thirteen groups of Figure 1, bottom (most frequent) to top.
PAPER_GROUPS: tuple[TermGroup, ...] = (
    TermGroup("TCP/UDP/IPv4/IPv6", ("tcp", "udp", "ipv4", "ipv6"), False),
    TermGroup("Internet", ("internet",), False),
    TermGroup("Datacenter", ("datacenter", "data center", "data-center"), False),
    TermGroup("MQTT/OPC UA/VXLAN", ("mqtt", "opc ua", "vxlan"), True),
    TermGroup(
        "PROFINET/EtherCAT/TSN",
        ("profinet", "ethercat", "time sensitive networking", "tsn"),
        True,
    ),
    TermGroup("Industrial Network", ("industrial network",), True),
    TermGroup("IT/OT", ("it/ot", "it-ot convergence", "ot network"), True),
    TermGroup("Cyber Physical System", ("cyber physical system", "cyber-physical system"), True),
    TermGroup("Industrial Informatic", ("industrial informatic",), True),
    TermGroup("PLC", ("programmable logic controller", "plc"), True),
    TermGroup("IIoT", ("iiot", "industrial internet of things"), True),
    TermGroup("Industry 4.0/5.0", ("industry 4.0", "industry 5.0"), True),
    TermGroup("vPLC", ("vplc", "virtual plc", "virtualized plc"), True),
)

#: Published Figure 1 occurrence counts (with permutations).
PAPER_COUNTS: dict[str, int] = {
    "TCP/UDP/IPv4/IPv6": 3005,
    "Internet": 2289,
    "Datacenter": 1943,
    "MQTT/OPC UA/VXLAN": 21,
    "PROFINET/EtherCAT/TSN": 17,
    "Industrial Network": 14,
    "IT/OT": 7,
    "Cyber Physical System": 6,
    "Industrial Informatic": 4,
    "PLC": 2,
    "IIoT": 1,
    "Industry 4.0/5.0": 1,
    "vPLC": 0,
}


def group_by_name(name: str) -> TermGroup:
    """Look up one of the paper's groups."""
    for group in PAPER_GROUPS:
        if group.name == name:
            return group
    raise KeyError(f"no term group named {name!r}")

"""The research-gap report (Figure 1's message).

Quantifies the imbalance Figure 1 visualizes: general networking terms
outnumber industrial-networking terms by orders of magnitude in SIGCOMM and
HotNets proceedings.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counter import CorpusDocument, TermCounter
from .terms import PAPER_GROUPS, TermGroup


@dataclass(frozen=True)
class GapReport:
    """Summary of the terminology gap."""

    counts: dict[str, int]
    industrial_total: int
    general_total: int

    @property
    def gap_ratio(self) -> float:
        """General-term occurrences per industrial-term occurrence."""
        if self.industrial_total == 0:
            return float("inf")
        return self.general_total / self.industrial_total

    def ranked(self) -> list[tuple[str, int]]:
        """Groups sorted by occurrence count, descending."""
        return sorted(self.counts.items(), key=lambda item: -item[1])

    def bar_rows(self) -> list[str]:
        """Figure 1-style text rendering, least frequent at the top."""
        rows = []
        for name, count in sorted(self.counts.items(), key=lambda i: i[1]):
            rows.append(f"{name:>24s} | {count}")
        return rows


def analyze_corpus(
    documents: list[CorpusDocument],
    groups: tuple[TermGroup, ...] = PAPER_GROUPS,
) -> GapReport:
    """Count all groups over the corpus and compute the gap."""
    counter = TermCounter(groups)
    counts = counter.count_corpus(documents)
    industrial = sum(
        counts[group.name] for group in groups if group.is_industrial
    )
    general = sum(
        counts[group.name] for group in groups if not group.is_industrial
    )
    return GapReport(
        counts=counts, industrial_total=industrial, general_total=general
    )

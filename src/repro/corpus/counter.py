"""Counting term-group occurrences in a text corpus.

The engine normalizes text (lowercase, unified separators), expands each
group's permutations, and counts non-overlapping, word-bounded matches.
Longer permutations are matched first so "industrial internet of things"
is not double-counted as an "internet" hit — occurrences consumed by one
group are masked before other groups are counted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .terms import PAPER_GROUPS, TermGroup, expand_permutations


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace so permutations match uniformly."""
    lowered = text.lower()
    return re.sub(r"\s+", " ", lowered)


@dataclass(frozen=True)
class CorpusDocument:
    """One paper's text."""

    venue: str
    year: int
    title: str
    text: str


def load_directory(
    path, venue: str = "local", year: int = 0, suffix: str = ".txt"
) -> list[CorpusDocument]:
    """Load a real proceedings directory (one text file per paper).

    This is the entry point for running the Figure 1 analysis on actual
    proceedings text when it is available; the synthetic corpus exists
    only because the ACM DL is not accessible offline.
    """
    from pathlib import Path

    directory = Path(path)
    if not directory.is_dir():
        raise NotADirectoryError(f"{path!r} is not a directory")
    documents = []
    for file_path in sorted(directory.glob(f"*{suffix}")):
        documents.append(
            CorpusDocument(
                venue=venue,
                year=year,
                title=file_path.stem,
                text=file_path.read_text(encoding="utf-8", errors="replace"),
            )
        )
    return documents


class TermCounter:
    """Counts each group's occurrences across documents.

    All groups' variants are compiled into one longest-first alternation,
    so a nested phrase is always attributed to the most specific variant:
    "virtual plc" counts for the vPLC group, never as a bare "plc" hit;
    "industrial internet of things" counts for IIoT, not "internet".
    """

    def __init__(self, groups: tuple[TermGroup, ...] = PAPER_GROUPS) -> None:
        self.groups = groups
        variant_to_group: dict[str, str] = {}
        for group in groups:
            for term in group.terms:
                for variant in expand_permutations(term):
                    # First group to claim a variant keeps it.
                    variant_to_group.setdefault(variant, group.name)
        self._variant_to_group = variant_to_group
        ordered = sorted(variant_to_group, key=len, reverse=True)
        alternatives = "|".join(re.escape(v) for v in ordered)
        self._pattern = re.compile(
            rf"(?<![\w./-])(?:{alternatives})(?![\w-])"
        )

    def count_text(self, text: str) -> dict[str, int]:
        """Occurrences per group in one text."""
        working = normalize(text)
        counts = {group.name: 0 for group in self.groups}
        for match in self._pattern.finditer(working):
            group_name = self._variant_to_group[match.group(0)]
            counts[group_name] += 1
        return counts

    def count_corpus(self, documents: list[CorpusDocument]) -> dict[str, int]:
        """Occurrences per group summed over all documents."""
        totals = {group.name: 0 for group in self.groups}
        for document in documents:
            for name, count in self.count_text(document.text).items():
                totals[name] += count
        return totals

"""Figure 1: the terminology-gap analysis over proceedings text."""

from .counter import CorpusDocument, TermCounter, load_directory, normalize
from .report import GapReport, analyze_corpus
from .synthetic import DEFAULT_VENUES, generate_corpus
from .terms import (
    PAPER_COUNTS,
    PAPER_GROUPS,
    TermGroup,
    expand_permutations,
    group_by_name,
)

__all__ = [
    "CorpusDocument",
    "DEFAULT_VENUES",
    "GapReport",
    "PAPER_COUNTS",
    "PAPER_GROUPS",
    "TermCounter",
    "TermGroup",
    "analyze_corpus",
    "expand_permutations",
    "generate_corpus",
    "load_directory",
    "group_by_name",
    "normalize",
]

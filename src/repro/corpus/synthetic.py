"""Synthetic SIGCOMM/HotNets proceedings.

The ACM Digital Library is not available offline, so the Figure 1 corpus is
synthesized: filler prose (term-free networking boilerplate) with term
occurrences injected at rates calibrated to the published counts.  The
*counting method* is the reproducible artifact; the generator guarantees a
ground truth to validate it against, and the injected totals match the
paper's Figure 1 numbers.

Injection picks random permutations and random casing of each group's
terms, so the counter's permutation handling is genuinely exercised.
"""

from __future__ import annotations

import numpy as np

from .counter import CorpusDocument
from .terms import PAPER_COUNTS, PAPER_GROUPS, TermGroup, expand_permutations

#: Venues and paper counts mimicking the analyzed proceedings.
DEFAULT_VENUES = (
    ("SIGCOMM", 2022, 55),
    ("SIGCOMM", 2023, 60),
    ("HotNets", 2022, 30),
    ("HotNets", 2023, 32),
)

_FILLER_SENTENCES = (
    "We evaluate the prototype on a commodity testbed with recent hardware.",
    "Our measurements reveal substantial headroom over the state of the art.",
    "The control loop converges quickly under realistic workload churn.",
    "We discuss deployment considerations and operational lessons learned.",
    "The design decomposes cleanly into a fast path and a policy layer.",
    "Results hold across a wide range of configurations and load levels.",
    "Related approaches trade generality for performance in this regime.",
    "We leave an exploration of wider parameter spaces to future work.",
    "The abstraction hides failure handling behind a simple interface.",
    "Careful batching amortizes per-operation overheads at high rates.",
)


def _casings(variant: str, rng: np.random.Generator) -> str:
    choice = rng.integers(0, 3)
    if choice == 0:
        return variant
    if choice == 1:
        return variant.upper()
    return variant.title()


def generate_corpus(
    counts: dict[str, int] | None = None,
    venues: tuple[tuple[str, int, int], ...] = DEFAULT_VENUES,
    groups: tuple[TermGroup, ...] = PAPER_GROUPS,
    seed: int = 0,
    filler_sentences_per_paper: int = 40,
) -> list[CorpusDocument]:
    """Generate documents whose injected term totals equal ``counts``.

    Every group's occurrences are spread randomly over all papers; each
    injection uses a random permutation and random casing of one of the
    group's terms, embedded in a carrier sentence.
    """
    target = dict(PAPER_COUNTS if counts is None else counts)
    rng = np.random.default_rng(seed)
    papers: list[list[str]] = []
    metadata: list[tuple[str, int, str]] = []
    for venue, year, paper_count in venues:
        for index in range(paper_count):
            sentences = [
                _FILLER_SENTENCES[rng.integers(0, len(_FILLER_SENTENCES))]
                for _ in range(filler_sentences_per_paper)
            ]
            papers.append(sentences)
            metadata.append((venue, year, f"{venue} {year} paper {index}"))
    by_name = {group.name: group for group in groups}
    for name, total in target.items():
        group = by_name[name]
        variants = sorted(
            {v for term in group.terms for v in expand_permutations(term)}
        )
        for _ in range(total):
            paper_index = int(rng.integers(0, len(papers)))
            variant = variants[int(rng.integers(0, len(variants)))]
            rendered = _casings(variant, rng)
            sentence = f"Prior work considered {rendered} in depth."
            insert_at = int(rng.integers(0, len(papers[paper_index]) + 1))
            papers[paper_index].insert(insert_at, sentence)
    return [
        CorpusDocument(venue=venue, year=year, title=title, text=" ".join(body))
        for (venue, year, title), body in zip(metadata, papers)
    ]

"""PROFINET-style cyclic real-time fieldbus.

Connection establishment, cyclic data exchange, provider status, watchdog
supervision, fail-safe behaviour, and an alarm channel — the protocol
substrate under both the PLC models and InstaPLC.
"""

from .controller import ControllerStats, CyclicConnection
from .device import DeviceStats, IoDeviceApp
from .protocol import (
    ALARM,
    ALARM_CLASS,
    APPLICATION_READY,
    ArState,
    CONNECT_REJECT,
    CONNECT_REQUEST,
    CONNECT_RESPONSE,
    CYCLIC_CLASS,
    CYCLIC_DATA,
    ConnectionParams,
    DEFAULT_CYCLIC_PAYLOAD_BYTES,
    DEFAULT_MGMT_PAYLOAD_BYTES,
    DEFAULT_WATCHDOG_FACTOR,
    MGMT_CLASS,
    PARAM_END,
    ProviderStatus,
    RELEASE,
)
from .watchdog import Watchdog

__all__ = [
    "ALARM",
    "ALARM_CLASS",
    "APPLICATION_READY",
    "ArState",
    "CONNECT_REJECT",
    "CONNECT_REQUEST",
    "CONNECT_RESPONSE",
    "CYCLIC_CLASS",
    "CYCLIC_DATA",
    "ConnectionParams",
    "ControllerStats",
    "CyclicConnection",
    "DEFAULT_CYCLIC_PAYLOAD_BYTES",
    "DEFAULT_MGMT_PAYLOAD_BYTES",
    "DEFAULT_WATCHDOG_FACTOR",
    "DeviceStats",
    "IoDeviceApp",
    "MGMT_CLASS",
    "PARAM_END",
    "ProviderStatus",
    "RELEASE",
    "Watchdog",
]

"""Watchdog supervision for cyclic connections."""

from __future__ import annotations

from typing import Callable

from ..simcore import Event, Simulator


class Watchdog:
    """Expires when :meth:`feed` is not called within ``timeout_ns``.

    Mirrors the PROFINET data-hold timer: every received cyclic frame feeds
    it; expiration is the protocol's failure-detection event.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout_ns: int,
        on_expire: Callable[[], None],
    ) -> None:
        if timeout_ns <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.sim = sim
        self.timeout_ns = timeout_ns
        self.on_expire = on_expire
        self._pending: Event | None = None
        self.running = False
        self.expirations = 0
        self.last_feed_ns: int | None = None

    def start(self) -> None:
        """Arm the watchdog (first deadline is ``now + timeout``)."""
        self.running = True
        self._rearm()

    def stop(self) -> None:
        """Disarm without expiring."""
        self.running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def feed(self) -> None:
        """Reset the deadline; call on every received cyclic frame."""
        self.last_feed_ns = self.sim.now
        if self.running:
            self._rearm()

    def _rearm(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        self._pending = self.sim.schedule(self._expire, after=self.timeout_ns)

    def _expire(self) -> None:
        if not self.running:
            return
        self.running = False
        self._pending = None
        self.expirations += 1
        self.on_expire()

"""Wire-level vocabulary of the cyclic real-time protocol.

The protocol is modeled on PROFINET IO: an *application relation* is
established through an explicit handshake, after which both ends exchange
cyclic data frames carrying IO data, a provider status, and a cycle counter.
Watchdog supervision aborts the relation when cyclic frames stop arriving —
the exact mechanism the paper cites ("watchdog counter expiration in
PROFINET") for why consecutive jitter events matter.

Message types are carried in the structured payload of a
:class:`repro.net.Packet` under the key ``"type"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..net.packet import TrafficClass

# Message type tags.
CONNECT_REQUEST = "connect_request"
CONNECT_RESPONSE = "connect_response"
PARAM_END = "param_end"
APPLICATION_READY = "application_ready"
CYCLIC_DATA = "cyclic_data"
RELEASE = "release"
ALARM = "alarm"
CONNECT_REJECT = "connect_reject"

#: Traffic class used for connection management frames.
MGMT_CLASS = TrafficClass.LATENCY_SENSITIVE
#: Traffic class used for cyclic IO data frames.
CYCLIC_CLASS = TrafficClass.CYCLIC_RT
#: Traffic class used for alarms.
ALARM_CLASS = TrafficClass.ALARM

#: Typical cyclic frame payload (Section 2.3: 20-50 B for short cycles).
DEFAULT_CYCLIC_PAYLOAD_BYTES = 40
#: Connection management frames are larger (records, parameters).
DEFAULT_MGMT_PAYLOAD_BYTES = 220

#: PROFINET default: the watchdog expires after three missed cycles.
DEFAULT_WATCHDOG_FACTOR = 3


class ArState(Enum):
    """Application-relation state, mirrored on both endpoints."""

    IDLE = auto()
    CONNECTING = auto()
    PARAMETERIZING = auto()
    RUNNING = auto()
    ABORTED = auto()


class ProviderStatus(Enum):
    """Provider state flag carried in every cyclic frame."""

    RUN = auto()
    STOP = auto()


@dataclass(frozen=True)
class ConnectionParams:
    """Negotiated parameters of an application relation."""

    cycle_ns: int
    watchdog_factor: int = DEFAULT_WATCHDOG_FACTOR
    input_payload_bytes: int = DEFAULT_CYCLIC_PAYLOAD_BYTES
    output_payload_bytes: int = DEFAULT_CYCLIC_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ValueError("cycle time must be positive")
        if self.watchdog_factor < 1:
            raise ValueError("watchdog factor must be at least 1")

    @property
    def watchdog_timeout_ns(self) -> int:
        """Time without cyclic frames after which the relation aborts."""
        return self.watchdog_factor * self.cycle_ns

"""The controller endpoint of the cyclic protocol.

:class:`CyclicConnection` is the IO-controller side of one application
relation: it runs the connect / parameterize handshake, then publishes the
controller's output data every cycle and supervises the device's input
frames with a watchdog.  PLC runtimes (:mod:`repro.plc`) hold one
``CyclicConnection`` per assigned I/O device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..net.host import Host
from ..net.packet import Packet
from ..simcore import Process, Simulator
from . import protocol
from .protocol import ArState, ConnectionParams, ProviderStatus
from .watchdog import Watchdog


@dataclass
class ControllerStats:
    """Counters and timestamp logs kept by the controller endpoint."""

    cyclic_sent: int = 0
    cyclic_received: int = 0
    watchdog_expirations: int = 0
    connect_attempts: int = 0
    connects_rejected: int = 0
    rx_times_ns: list[int] = field(default_factory=list)
    tx_times_ns: list[int] = field(default_factory=list)
    connect_started_ns: int | None = None
    running_since_ns: int | None = None


class CyclicConnection:
    """Controller-side application relation to one I/O device."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        device_name: str,
        params: ConnectionParams,
        on_inputs: Callable[[dict[str, Any]], None] | None = None,
        release_jitter_fn: Callable[[], int] | None = None,
        connect_timeout_ns: int | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.device_name = device_name
        self.params = params
        self.on_inputs = on_inputs
        self.release_jitter_fn = release_jitter_fn
        self.connect_timeout_ns = connect_timeout_ns or 100 * params.cycle_ns
        self.state = ArState.IDLE
        self.stats = ControllerStats()
        self.inputs: dict[str, Any] = {}
        self.outputs: dict[str, Any] = {}
        self._cycle_counter = 0
        self._send_process: Process | None = None
        self._watchdog: Watchdog | None = None
        self._connect_timer: Watchdog | None = None
        self.on_running: list[Callable[[], None]] = []
        self.on_abort: list[Callable[[str], None]] = []
        self.on_reject: list[Callable[[str], None]] = []
        self._flow_id = f"ar:{host.name}->{device_name}"
        host.on_receive(self._on_packet)

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        """Start the handshake toward the device."""
        if self.state not in (ArState.IDLE, ArState.ABORTED):
            raise RuntimeError(f"connection already {self.state.name}")
        self.state = ArState.CONNECTING
        self.stats.connect_attempts += 1
        self.stats.connect_started_ns = self.sim.now
        self._connect_timer = Watchdog(
            self.sim,
            timeout_ns=self.connect_timeout_ns,
            on_expire=lambda: self._abort("connect timeout"),
        )
        self._connect_timer.start()
        self.host.send(
            dst=self.device_name,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=self._flow_id,
            payload={
                "type": protocol.CONNECT_REQUEST,
                "cycle_ns": self.params.cycle_ns,
                "watchdog_factor": self.params.watchdog_factor,
            },
        )

    def release(self) -> None:
        """Orderly teardown of the relation."""
        if self.state in (ArState.IDLE, ArState.ABORTED):
            return
        self.host.send(
            dst=self.device_name,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=self._flow_id,
            payload={"type": protocol.RELEASE},
        )
        self._abort("released")

    def fail_silently(self) -> None:
        """Crash-stop the controller endpoint: no release, no more frames.

        Models the vPLC failure InstaPLC must detect from the data plane.
        """
        self._teardown()
        self.state = ArState.ABORTED

    # -- packet handling -----------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        kind = packet.payload.get("type")
        if kind == protocol.CONNECT_RESPONSE:
            self._handle_connect_response(packet)
        elif kind == protocol.CONNECT_REJECT:
            self._handle_reject(packet)
        elif kind == protocol.APPLICATION_READY:
            self._handle_application_ready(packet)
        elif kind == protocol.CYCLIC_DATA:
            self._handle_cyclic(packet)

    def _handle_connect_response(self, packet: Packet) -> None:
        if self.state is not ArState.CONNECTING:
            return
        if packet.payload.get("device") != self.device_name:
            return
        self.state = ArState.PARAMETERIZING
        self.host.send(
            dst=self.device_name,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=self._flow_id,
            payload={"type": protocol.PARAM_END},
        )

    def _handle_reject(self, packet: Packet) -> None:
        if self.state is not ArState.CONNECTING:
            return
        self.stats.connects_rejected += 1
        reason = packet.payload.get("reason", "rejected")
        self._abort(f"connect rejected: {reason}")
        for callback in self.on_reject:
            callback(reason)

    def _handle_application_ready(self, packet: Packet) -> None:
        if self.state is not ArState.PARAMETERIZING:
            return
        if self._connect_timer is not None:
            self._connect_timer.stop()
            self._connect_timer = None
        self.state = ArState.RUNNING
        self.stats.running_since_ns = self.sim.now
        self._watchdog = Watchdog(
            self.sim,
            timeout_ns=self.params.watchdog_timeout_ns,
            on_expire=lambda: self._abort("watchdog expired"),
        )
        self._watchdog.start()
        self._send_process = self.sim.process(
            self._cyclic_loop(), name=f"{self._flow_id}/cyclic"
        )
        for callback in self.on_running:
            callback()

    def _handle_cyclic(self, packet: Packet) -> None:
        if self.state is not ArState.RUNNING:
            return
        if packet.payload.get("device") != self.device_name:
            return
        self.stats.cyclic_received += 1
        self.stats.rx_times_ns.append(self.sim.now)
        if self._watchdog is not None:
            self._watchdog.feed()
        self.inputs = dict(packet.payload.get("data", {}))
        if self.on_inputs is not None:
            self.on_inputs(self.inputs)

    # -- cyclic sending ------------------------------------------------------

    def _cyclic_loop(self):
        cycle = self.params.cycle_ns
        next_release = self.sim.now
        while self.state is ArState.RUNNING:
            jitter = self.release_jitter_fn() if self.release_jitter_fn else 0
            if jitter > 0:
                yield jitter
            if self.state is not ArState.RUNNING:
                return
            self._publish_outputs()
            next_release += cycle
            yield max(0, next_release - self.sim.now)

    def _publish_outputs(self) -> None:
        self._cycle_counter += 1
        self.stats.cyclic_sent += 1
        self.stats.tx_times_ns.append(self.sim.now)
        self.host.send(
            dst=self.device_name,
            payload_bytes=self.params.output_payload_bytes,
            traffic_class=protocol.CYCLIC_CLASS,
            flow_id=self._flow_id,
            sequence=self._cycle_counter,
            payload={
                "type": protocol.CYCLIC_DATA,
                "role": "controller",
                "status": ProviderStatus.RUN.name,
                "cycle": self._cycle_counter,
                "data": dict(self.outputs),
            },
        )

    # -- teardown ------------------------------------------------------------

    def _teardown(self) -> None:
        if self._send_process is not None:
            self._send_process.stop()
            self._send_process = None
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._connect_timer is not None:
            self._connect_timer.stop()
            self._connect_timer = None

    def _abort(self, reason: str) -> None:
        if self.state is ArState.ABORTED:
            return
        if reason.startswith("watchdog"):
            self.stats.watchdog_expirations += 1
        self._teardown()
        self.state = ArState.ABORTED
        for callback in self.on_abort:
            callback(reason)
        self.sim.trace(f"{self._flow_id}: aborted ({reason})")

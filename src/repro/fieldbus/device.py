"""The I/O device endpoint of the cyclic protocol.

An :class:`IoDeviceApp` attaches to a :class:`repro.net.Host` and implements
the device side of the application relation: it answers connection
establishment, then cyclically publishes its input data (sensor readings)
and applies received output data (actuator commands).  On watchdog
expiration it enters a fail-safe state — outputs are cleared and cyclic
transmission stops — which is the physical-consequence behaviour the paper's
availability argument builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..net.host import Host
from ..net.packet import Packet
from ..simcore import Process, Simulator
from . import protocol
from .protocol import ArState, ConnectionParams, ProviderStatus
from .watchdog import Watchdog


@dataclass
class DeviceStats:
    """Counters and timestamp logs kept by the device."""

    cyclic_sent: int = 0
    cyclic_received: int = 0
    watchdog_expirations: int = 0
    connects_accepted: int = 0
    connects_rejected: int = 0
    safe_state_entries: int = 0
    rx_times_ns: list[int] = field(default_factory=list)
    tx_times_ns: list[int] = field(default_factory=list)


class IoDeviceApp:
    """Device-side protocol engine bound to one host.

    Parameters
    ----------
    sample_inputs:
        Called once per cycle to produce the input data published to the
        controller (defaults to a counter).
    apply_outputs:
        Called with the controller's output data whenever a cyclic frame
        arrives while RUNNING.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        sample_inputs: Callable[[], dict[str, Any]] | None = None,
        apply_outputs: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.sample_inputs = sample_inputs or self._default_sampler
        self.apply_outputs = apply_outputs
        self.state = ArState.IDLE
        self.controller: str | None = None
        self.params: ConnectionParams | None = None
        self.stats = DeviceStats()
        self.outputs: dict[str, Any] = {}
        self.fail_safe = False
        self._cycle_counter = 0
        self._sample_counter = 0
        self._send_process: Process | None = None
        self._watchdog: Watchdog | None = None
        #: called when the relation aborts (watchdog or release)
        self.on_abort: list[Callable[[str], None]] = []
        host.on_receive(self._on_packet)

    def _default_sampler(self) -> dict[str, Any]:
        self._sample_counter += 1
        return {"counter": self._sample_counter}

    @property
    def name(self) -> str:
        """Device name (the host's network name)."""
        return self.host.name

    # -- packet handling -----------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        kind = packet.payload.get("type")
        if kind == protocol.CONNECT_REQUEST:
            self._handle_connect(packet)
        elif kind == protocol.PARAM_END:
            self._handle_param_end(packet)
        elif kind == protocol.CYCLIC_DATA:
            self._handle_cyclic(packet)
        elif kind == protocol.RELEASE:
            self._handle_release(packet)

    def _handle_connect(self, packet: Packet) -> None:
        if self.state not in (ArState.IDLE, ArState.ABORTED):
            # A second controller talking to a busy device is rejected —
            # exactly the situation InstaPLC's digital twin exists to avoid.
            self.stats.connects_rejected += 1
            self.host.send(
                dst=packet.src,
                payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
                traffic_class=protocol.MGMT_CLASS,
                flow_id=packet.flow_id,
                payload={
                    "type": protocol.CONNECT_REJECT,
                    "reason": "device already controlled",
                    "device": self.name,
                },
            )
            return
        params = ConnectionParams(
            cycle_ns=packet.payload["cycle_ns"],
            watchdog_factor=packet.payload.get(
                "watchdog_factor", protocol.DEFAULT_WATCHDOG_FACTOR
            ),
        )
        self.params = params
        self.controller = packet.src
        self.state = ArState.PARAMETERIZING
        self.stats.connects_accepted += 1
        self.host.send(
            dst=packet.src,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=packet.flow_id,
            payload={
                "type": protocol.CONNECT_RESPONSE,
                "device": self.name,
                "cycle_ns": params.cycle_ns,
                "watchdog_factor": params.watchdog_factor,
            },
        )

    def _handle_param_end(self, packet: Packet) -> None:
        if self.state is not ArState.PARAMETERIZING or packet.src != self.controller:
            return
        self.state = ArState.RUNNING
        self.fail_safe = False
        self.host.send(
            dst=packet.src,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=packet.flow_id,
            payload={
                "type": protocol.APPLICATION_READY,
                "device": self.name,
            },
        )
        self._start_cyclic()

    def _handle_cyclic(self, packet: Packet) -> None:
        if self.state is not ArState.RUNNING:
            return
        self.stats.cyclic_received += 1
        self.stats.rx_times_ns.append(self.sim.now)
        if self._watchdog is not None:
            self._watchdog.feed()
        status = packet.payload.get("status")
        if status == ProviderStatus.RUN.name:
            self.outputs = dict(packet.payload.get("data", {}))
            if self.apply_outputs is not None:
                self.apply_outputs(self.outputs)

    def _handle_release(self, packet: Packet) -> None:
        if packet.src == self.controller:
            self._abort("released by controller")

    # -- cyclic operation ----------------------------------------------------

    def _start_cyclic(self) -> None:
        assert self.params is not None
        self._watchdog = Watchdog(
            self.sim,
            timeout_ns=self.params.watchdog_timeout_ns,
            on_expire=self._on_watchdog,
        )
        self._watchdog.start()
        self._send_process = self.sim.process(
            self._cyclic_loop(), name=f"{self.name}/cyclic"
        )

    def _cyclic_loop(self):
        assert self.params is not None
        cycle = self.params.cycle_ns
        while self.state is ArState.RUNNING:
            self._publish_inputs()
            yield cycle

    def _publish_inputs(self) -> None:
        assert self.params is not None and self.controller is not None
        self._cycle_counter += 1
        self.stats.cyclic_sent += 1
        self.stats.tx_times_ns.append(self.sim.now)
        self.host.send(
            dst=self.controller,
            payload_bytes=self.params.input_payload_bytes,
            traffic_class=protocol.CYCLIC_CLASS,
            flow_id=f"io:{self.name}",
            sequence=self._cycle_counter,
            payload={
                "type": protocol.CYCLIC_DATA,
                "role": "device",
                "device": self.name,
                "status": ProviderStatus.RUN.name,
                "cycle": self._cycle_counter,
                "data": self.sample_inputs(),
            },
        )

    def _on_watchdog(self) -> None:
        self.stats.watchdog_expirations += 1
        self._abort("watchdog expired")

    def _abort(self, reason: str) -> None:
        if self.state is ArState.ABORTED:
            return
        self.state = ArState.ABORTED
        self.fail_safe = True
        self.stats.safe_state_entries += 1
        self.outputs = {}
        if self._send_process is not None:
            self._send_process.stop()
            self._send_process = None
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        controller, self.controller = self.controller, None
        self.params = None
        for callback in self.on_abort:
            callback(reason)
        self.sim.trace(f"{self.name}: AR aborted ({reason}), was {controller}")

    def send_alarm(self, alarm_type: str, detail: dict[str, Any] | None = None) -> None:
        """Send a diagnosis alarm to the current controller (if any)."""
        if self.controller is None:
            return
        self.host.send(
            dst=self.controller,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.ALARM_CLASS,
            flow_id=f"alarm:{self.name}",
            payload={
                "type": protocol.ALARM,
                "alarm_type": alarm_type,
                "device": self.name,
                "detail": detail or {},
            },
        )

"""Interpreter executing a parsed ST program once per PLC scan.

:class:`StProgram` satisfies the same contract as
:class:`repro.plc.program.FunctionBlockProgram` — ``execute(image, dt_s)``
— so a :class:`repro.plc.runtime.PlcRuntime` can run Structured Text
directly.  ``VAR`` variables retain their values across scans (standard
PLC semantics); ``VAR_INPUT`` variables are refreshed from the process
image each scan; ``VAR_OUTPUT`` variables are written back to it.

Loops are bounded (``max_loop_iterations``) because a PLC scan must
terminate: exceeding the bound raises :class:`StRuntimeError`, modeling
the watchdog a real runtime would trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from . import ast
from .parser import parse


class StRuntimeError(RuntimeError):
    """Raised for runtime faults: unknown names, unbounded loops."""


class _ExitLoop(Exception):
    pass


class _ReturnScan(Exception):
    pass


# -- standard function blocks ---------------------------------------------------


class _FbInstance:
    """Base: stateful standard FB evaluated via named parameters."""

    outputs: dict[str, Any]

    def __init__(self) -> None:
        self.outputs = {"q": False}

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        raise NotImplementedError


class _Ton(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._elapsed = 0.0
        self.outputs = {"q": False, "et": 0.0}

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        preset = float(args.get("pt", 0.0))
        if bool(args.get("in", False)):
            self._elapsed = min(preset, self._elapsed + dt_s)
        else:
            self._elapsed = 0.0
        self.outputs = {"q": self._elapsed >= preset, "et": self._elapsed}


class _Tof(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._off_for = 0.0
        self.outputs = {"q": False, "et": 0.0}

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        preset = float(args.get("pt", 0.0))
        if bool(args.get("in", False)):
            self._off_for = 0.0
            self.outputs = {"q": True, "et": 0.0}
        else:
            self._off_for += dt_s
            self.outputs = {
                "q": self._off_for < preset,
                "et": min(preset, self._off_for),
            }


class _Ctu(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._count = 0
        self._last = False
        self.outputs = {"q": False, "cv": 0}

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        preset = int(args.get("pv", 0))
        clock = bool(args.get("cu", False))
        if bool(args.get("r", False)) or bool(args.get("reset", False)):
            self._count = 0
        elif clock and not self._last:
            self._count += 1
        self._last = clock
        self.outputs = {"q": self._count >= preset, "cv": self._count}


class _Ctd(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._count = 0
        self._last = False
        self.outputs = {"q": False, "cv": 0}

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        preset = int(args.get("pv", 0))
        clock = bool(args.get("cd", False))
        if bool(args.get("ld", False)):
            self._count = preset
        elif clock and not self._last and self._count > 0:
            self._count -= 1
        self._last = clock
        self.outputs = {"q": self._count <= 0, "cv": self._count}


class _RTrig(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._last = False

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        clock = bool(args.get("clk", False))
        self.outputs = {"q": clock and not self._last}
        self._last = clock


class _FTrig(_FbInstance):
    def __init__(self) -> None:
        super().__init__()
        self._last = False

    def call(self, args: dict[str, Any], dt_s: float) -> None:
        clock = bool(args.get("clk", False))
        self.outputs = {"q": self._last and not clock}
        self._last = clock


_FB_TYPES = {
    "ton": _Ton, "tof": _Tof, "ctu": _Ctu, "ctd": _Ctd,
    "r_trig": _RTrig, "f_trig": _FTrig,
}

_TYPE_DEFAULTS: dict[str, Any] = {
    "bool": False, "int": 0, "dint": 0, "real": 0.0, "lreal": 0.0,
    "time": 0.0,
}


@dataclass
class StProgram:
    """A compiled ST program, executable once per scan.

    ``input_map``/``output_map`` translate between process-image keys and
    program variable names (``{"dev.counter": "parts"}``); identity when
    omitted for variables whose names match image keys.
    """

    program: ast.Program
    input_map: dict[str, str] = field(default_factory=dict)
    output_map: dict[str, str] = field(default_factory=dict)
    max_loop_iterations: int = 100_000

    def __post_init__(self) -> None:
        self._variables: dict[str, Any] = {}
        self._fbs: dict[str, _FbInstance] = {}
        self._case_insensitive: dict[str, str] = {}
        for decl in self.program.declarations:
            key = decl.name.lower()
            self._case_insensitive[key] = decl.name
            if decl.is_fb_instance:
                self._fbs[key] = _FB_TYPES[decl.type_name]()
            else:
                if decl.type_name not in _TYPE_DEFAULTS:
                    raise StRuntimeError(
                        f"unknown type {decl.type_name!r} for {decl.name}"
                    )
                value = _TYPE_DEFAULTS[decl.type_name]
                if decl.initializer is not None:
                    value = self._eval_const(decl.initializer)
                self._variables[key] = value

    # -- public API -------------------------------------------------------------

    def execute(self, image_inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        """Run one scan; returns the VAR_OUTPUT image updates."""
        self._dt_s = dt_s
        for decl in self.program.inputs():
            image_key = self._image_key_for(decl.name, self.input_map)
            if image_key in image_inputs:
                self._variables[decl.name.lower()] = image_inputs[image_key]
        try:
            self._exec_block(self.program.body)
        except _ReturnScan:
            pass
        outputs: dict[str, Any] = {}
        for decl in self.program.outputs():
            image_key = self._image_key_for(decl.name, self.output_map)
            outputs[image_key] = self._variables[decl.name.lower()]
        return outputs

    def reset(self) -> None:
        """Reinitialize all variables and function-block state."""
        self.__post_init__()

    def variable(self, name: str) -> Any:
        """Read a program variable (tests/diagnostics)."""
        return self._variables[name.lower()]

    @staticmethod
    def _image_key_for(var_name: str, mapping: dict[str, str]) -> str:
        for image_key, mapped in mapping.items():
            if mapped.lower() == var_name.lower():
                return image_key
        return var_name

    # -- execution -------------------------------------------------------------------

    def _exec_block(self, statements: tuple[ast.Stmt, ...]) -> None:
        for statement in statements:
            self._exec_stmt(statement)

    def _exec_stmt(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Assign):
            self._assign(statement.target, self._eval(statement.expr))
        elif isinstance(statement, ast.FbCall):
            self._call_fb(statement)
        elif isinstance(statement, ast.IfStmt):
            for condition, body in statement.branches:
                if self._truthy(self._eval(condition)):
                    self._exec_block(body)
                    return
            self._exec_block(statement.else_body)
        elif isinstance(statement, ast.CaseStmt):
            self._exec_case(statement)
        elif isinstance(statement, ast.WhileStmt):
            self._exec_while(statement)
        elif isinstance(statement, ast.RepeatStmt):
            self._exec_repeat(statement)
        elif isinstance(statement, ast.ForStmt):
            self._exec_for(statement)
        elif isinstance(statement, ast.ExitStmt):
            raise _ExitLoop()
        elif isinstance(statement, ast.ReturnStmt):
            raise _ReturnScan()
        else:  # pragma: no cover - parser produces only the above
            raise StRuntimeError(f"unknown statement {statement!r}")

    def _exec_case(self, statement: ast.CaseStmt) -> None:
        selector = float(self._eval(statement.selector))
        for entry in statement.entries:
            if selector in entry.values or any(
                low <= selector <= high for low, high in entry.ranges
            ):
                self._exec_block(entry.body)
                return
        self._exec_block(statement.else_body)

    def _exec_while(self, statement: ast.WhileStmt) -> None:
        iterations = 0
        try:
            while self._truthy(self._eval(statement.condition)):
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise StRuntimeError("WHILE exceeded the scan loop bound")
                self._exec_block(statement.body)
        except _ExitLoop:
            pass

    def _exec_repeat(self, statement: ast.RepeatStmt) -> None:
        iterations = 0
        try:
            while True:
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise StRuntimeError("REPEAT exceeded the scan loop bound")
                self._exec_block(statement.body)
                if self._truthy(self._eval(statement.until)):
                    return
        except _ExitLoop:
            pass

    def _exec_for(self, statement: ast.ForStmt) -> None:
        start = self._eval(statement.start)
        stop = self._eval(statement.stop)
        step = self._eval(statement.step)
        if step == 0:
            raise StRuntimeError("FOR step must be non-zero")
        value = start
        iterations = 0
        try:
            while (step > 0 and value <= stop) or (step < 0 and value >= stop):
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise StRuntimeError("FOR exceeded the scan loop bound")
                self._assign(statement.variable, value)
                self._exec_block(statement.body)
                value = self._variables[statement.variable.lower()] + step
        except _ExitLoop:
            pass

    def _call_fb(self, statement: ast.FbCall) -> None:
        instance = self._fbs.get(statement.instance.lower())
        if instance is None:
            raise StRuntimeError(
                f"{statement.instance!r} is not a declared function block"
            )
        args = {name: self._eval(expr) for name, expr in statement.args}
        instance.call(args, self._dt_s)

    # -- values ----------------------------------------------------------------------

    def _assign(self, name: str, value: Any) -> None:
        key = name.lower()
        if key not in self._variables:
            raise StRuntimeError(f"assignment to undeclared variable {name!r}")
        self._variables[key] = value

    def _eval_const(self, expr: ast.Expr) -> Any:
        # Initializers may not reference variables or FB outputs.
        if isinstance(expr, (ast.VarRef, ast.FieldRef)):
            raise StRuntimeError("initializers must be constant")
        return self._eval(expr)

    def _eval(self, expr: ast.Expr) -> Any:
        if isinstance(expr, ast.NumberLit):
            return int(expr.value) if expr.is_integer else expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            key = expr.name.lower()
            if key in self._variables:
                return self._variables[key]
            raise StRuntimeError(f"unknown variable {expr.name!r}")
        if isinstance(expr, ast.FieldRef):
            instance = self._fbs.get(expr.instance.lower())
            if instance is None:
                raise StRuntimeError(
                    f"{expr.instance!r} is not a function-block instance"
                )
            if expr.fieldname not in instance.outputs:
                raise StRuntimeError(
                    f"{expr.instance}.{expr.fieldname} is not an output"
                )
            return instance.outputs[expr.fieldname]
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand)
            if expr.op == "not":
                return not self._truthy(value)
            return -value
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr)
        raise StRuntimeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _eval_binary(self, expr: ast.BinaryOp) -> Any:
        op = expr.op
        if op in ("and", "or"):
            left = self._truthy(self._eval(expr.left))
            if op == "and":
                return left and self._truthy(self._eval(expr.right))
            return left or self._truthy(self._eval(expr.right))
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op == "xor":
            return self._truthy(left) != self._truthy(right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise StRuntimeError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int):
                return int(result) if result == int(result) else result
            return result
        if op == "mod":
            if right == 0:
                raise StRuntimeError("MOD by zero")
            return left % right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise StRuntimeError(f"unknown operator {op!r}")  # pragma: no cover

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)


def compile_st(
    source: str,
    input_map: dict[str, str] | None = None,
    output_map: dict[str, str] | None = None,
) -> StProgram:
    """Parse and prepare an ST program for scan-cycle execution."""
    return StProgram(
        program=parse(source),
        input_map=input_map or {},
        output_map=output_map or {},
    )

"""Recursive-descent parser for the Structured Text subset.

Grammar (informal)::

    program    := { var_block } { statement }
    var_block  := ('VAR'|'VAR_INPUT'|'VAR_OUTPUT') { decl } 'END_VAR'
    decl       := IDENT ':' type [ ':=' expr ] ';'
    statement  := assign | fb_call | if | case | while | repeat | for
                | 'EXIT' ';' | 'RETURN' ';'
    assign     := IDENT ':=' expr ';'
    fb_call    := IDENT '(' [ IDENT ':=' expr { ',' IDENT ':=' expr } ] ')' ';'
    if         := 'IF' expr 'THEN' body {'ELSIF' expr 'THEN' body}
                  ['ELSE' body] 'END_IF' ';'
    case       := 'CASE' expr 'OF' { case_entry } ['ELSE' body] 'END_CASE' ';'
    case_entry := values ':' body        (values: n | n..m, comma separated)
    while      := 'WHILE' expr 'DO' body 'END_WHILE' ';'
    repeat     := 'REPEAT' body 'UNTIL' expr 'END_REPEAT' ';'
    for        := 'FOR' IDENT ':=' expr 'TO' expr ['BY' expr] 'DO' body
                  'END_FOR' ';'

Expression precedence (loosest to tightest): OR/XOR, AND, comparison,
additive, multiplicative, unary (NOT, -), primary.
"""

from __future__ import annotations

import re

from . import ast
from .lexer import StSyntaxError, Token, TokenKind, tokenize

_TIME_PART = re.compile(r"(\d+(?:\.\d+)?)(ms|us|ns|s|m|h|d)")
_TIME_UNITS_S = {
    "d": 86_400.0, "h": 3_600.0, "m": 60.0, "s": 1.0,
    "ms": 1e-3, "us": 1e-6, "ns": 1e-9,
}


def parse_time_literal(text: str) -> float:
    """``t#1s500ms`` -> seconds.  Raises ValueError on malformed input."""
    body = text.split("#", 1)[1].replace("_", "")
    if not body:
        raise ValueError(f"empty TIME literal {text!r}")
    total = 0.0
    consumed = 0
    for match in _TIME_PART.finditer(body):
        if match.start() != consumed:
            raise ValueError(f"malformed TIME literal {text!r}")
        total += float(match.group(1)) * _TIME_UNITS_S[match.group(2)]
        consumed = match.end()
    if consumed != len(body):
        raise ValueError(f"malformed TIME literal {text!r}")
    return total


class Parser:
    """Token-stream cursor with the grammar methods."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def _error(self, message: str) -> StSyntaxError:
        token = self.current
        return StSyntaxError(
            f"{message} (got {token.value!r})", token.line, token.column
        )

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self.current
        if token.kind is not kind or (value is not None and token.value != value):
            want = value or kind.name
            raise self._error(f"expected {want}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word.upper()}")

    # -- program ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        declarations: list[ast.VarDecl] = []
        while self.current.kind is TokenKind.KEYWORD and self.current.value in (
            "var", "var_input", "var_output",
        ):
            declarations.extend(self._parse_var_block())
        body = self._parse_statements(terminators=())
        self._expect(TokenKind.EOF)
        return ast.Program(declarations=tuple(declarations), body=tuple(body))

    def _parse_var_block(self) -> list[ast.VarDecl]:
        direction = self._advance().value
        declarations = []
        while not self._accept_keyword("end_var"):
            name = self._expect(TokenKind.IDENT).value
            self._expect(TokenKind.COLON)
            type_token = self._advance()
            if type_token.kind not in (TokenKind.KEYWORD, TokenKind.IDENT):
                raise self._error("expected a type name")
            initializer = None
            if self.current.kind is TokenKind.ASSIGN:
                self._advance()
                initializer = self._parse_expression()
            self._expect(TokenKind.SEMI)
            declarations.append(
                ast.VarDecl(
                    name=name,
                    type_name=type_token.value.lower(),
                    direction=direction,
                    initializer=initializer,
                )
            )
        return declarations

    # -- statements -----------------------------------------------------------------

    def _parse_statements(self, terminators: tuple[str, ...]) -> list[ast.Stmt]:
        statements: list[ast.Stmt] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                if terminators:
                    raise self._error(
                        f"expected one of {', '.join(terminators).upper()}"
                    )
                return statements
            if token.kind is TokenKind.KEYWORD and token.value in terminators:
                return statements
            statements.append(self._parse_statement())

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.KEYWORD:
            if token.value == "if":
                return self._parse_if()
            if token.value == "case":
                return self._parse_case()
            if token.value == "while":
                return self._parse_while()
            if token.value == "repeat":
                return self._parse_repeat()
            if token.value == "for":
                return self._parse_for()
            if token.value == "exit":
                self._advance()
                self._expect(TokenKind.SEMI)
                return ast.ExitStmt()
            if token.value == "return":
                self._advance()
                self._expect(TokenKind.SEMI)
                return ast.ReturnStmt()
            raise self._error("unexpected keyword")
        if token.kind is TokenKind.IDENT:
            name = self._advance().value
            if self.current.kind is TokenKind.ASSIGN:
                self._advance()
                expr = self._parse_expression()
                self._expect(TokenKind.SEMI)
                return ast.Assign(target=name, expr=expr)
            if self.current.kind is TokenKind.LPAREN:
                return self._parse_fb_call(name)
            raise self._error("expected ':=' or '(' after identifier")
        raise self._error("expected a statement")

    def _parse_fb_call(self, instance: str) -> ast.FbCall:
        self._expect(TokenKind.LPAREN)
        args: list[tuple[str, ast.Expr]] = []
        if self.current.kind is not TokenKind.RPAREN:
            while True:
                param = self._expect(TokenKind.IDENT).value
                self._expect(TokenKind.ASSIGN)
                args.append((param.lower(), self._parse_expression()))
                if self.current.kind is TokenKind.COMMA:
                    self._advance()
                    continue
                break
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.FbCall(instance=instance, args=tuple(args))

    def _parse_if(self) -> ast.IfStmt:
        self._expect_keyword("if")
        branches = []
        condition = self._parse_expression()
        self._expect_keyword("then")
        body = self._parse_statements(("elsif", "else", "end_if"))
        branches.append((condition, tuple(body)))
        else_body: tuple[ast.Stmt, ...] = ()
        while self._accept_keyword("elsif"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            body = self._parse_statements(("elsif", "else", "end_if"))
            branches.append((condition, tuple(body)))
        if self._accept_keyword("else"):
            else_body = tuple(self._parse_statements(("end_if",)))
        self._expect_keyword("end_if")
        self._expect(TokenKind.SEMI)
        return ast.IfStmt(branches=tuple(branches), else_body=else_body)

    def _parse_case(self) -> ast.CaseStmt:
        self._expect_keyword("case")
        selector = self._parse_expression()
        self._expect_keyword("of")
        entries = []
        else_body: tuple[ast.Stmt, ...] = ()
        while not self.current.is_keyword("end_case"):
            if self._accept_keyword("else"):
                else_body = tuple(self._parse_statements(("end_case",)))
                break
            values: list[float] = []
            ranges: list[tuple[float, float]] = []
            while True:
                low = self._parse_case_value()
                if self.current.kind is TokenKind.DOTDOT:
                    self._advance()
                    high = self._parse_case_value()
                    ranges.append((low, high))
                else:
                    values.append(low)
                if self.current.kind is TokenKind.COMMA:
                    self._advance()
                    continue
                break
            self._expect(TokenKind.COLON)
            # An entry body ends at ELSE/END_CASE or where the next entry's
            # value list begins (a NUMBER or unary minus at statement
            # position).
            body: list[ast.Stmt] = []
            while not (
                self.current.kind is TokenKind.NUMBER
                or (self.current.kind is TokenKind.OP
                    and self.current.value == "-")
                or self.current.is_keyword("else")
                or self.current.is_keyword("end_case")
            ):
                if self.current.kind is TokenKind.EOF:
                    raise self._error("expected END_CASE")
                body.append(self._parse_statement())
            entries.append(
                ast.CaseEntry(
                    values=tuple(values), ranges=tuple(ranges),
                    body=tuple(body),
                )
            )
        self._expect_keyword("end_case")
        self._expect(TokenKind.SEMI)
        return ast.CaseStmt(
            selector=selector, entries=tuple(entries), else_body=else_body
        )

    def _parse_case_value(self) -> float:
        negative = False
        if self.current.kind is TokenKind.OP and self.current.value == "-":
            self._advance()
            negative = True
        token = self._expect(TokenKind.NUMBER)
        value = float(token.value)
        return -value if negative else value

    def _parse_while(self) -> ast.WhileStmt:
        self._expect_keyword("while")
        condition = self._parse_expression()
        self._expect_keyword("do")
        body = self._parse_statements(("end_while",))
        self._expect_keyword("end_while")
        self._expect(TokenKind.SEMI)
        return ast.WhileStmt(condition=condition, body=tuple(body))

    def _parse_repeat(self) -> ast.RepeatStmt:
        self._expect_keyword("repeat")
        body = self._parse_statements(("until",))
        self._expect_keyword("until")
        until = self._parse_expression()
        self._expect_keyword("end_repeat")
        self._expect(TokenKind.SEMI)
        return ast.RepeatStmt(body=tuple(body), until=until)

    def _parse_for(self) -> ast.ForStmt:
        self._expect_keyword("for")
        variable = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.ASSIGN)
        start = self._parse_expression()
        self._expect_keyword("to")
        stop = self._parse_expression()
        step: ast.Expr = ast.NumberLit(1.0, is_integer=True)
        if self._accept_keyword("by"):
            step = self._parse_expression()
        self._expect_keyword("do")
        body = self._parse_statements(("end_for",))
        self._expect_keyword("end_for")
        self._expect(TokenKind.SEMI)
        return ast.ForStmt(
            variable=variable, start=start, stop=stop, step=step,
            body=tuple(body),
        )

    # -- expressions -------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.current.kind is TokenKind.KEYWORD and self.current.value in (
            "or", "xor",
        ):
            op = self._advance().value
            left = ast.BinaryOp(op=op, left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.current.is_keyword("and"):
            self._advance()
            left = ast.BinaryOp(op="and", left=left, right=self._parse_comparison())
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self.current.kind is TokenKind.OP and self.current.value in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            op = self._advance().value
            left = ast.BinaryOp(op=op, left=left, right=self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.kind is TokenKind.OP and self.current.value in ("+", "-"):
            op = self._advance().value
            left = ast.BinaryOp(
                op=op, left=left, right=self._parse_multiplicative()
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while (
            self.current.kind is TokenKind.OP and self.current.value in ("*", "/")
        ) or self.current.is_keyword("mod"):
            op = self._advance().value
            left = ast.BinaryOp(op=op, left=left, right=self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_keyword("not"):
            self._advance()
            return ast.UnaryOp(op="not", operand=self._parse_unary())
        if self.current.kind is TokenKind.OP and self.current.value == "-":
            self._advance()
            return ast.UnaryOp(op="-", operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            if token.value.startswith(("t#", "time#")):
                return ast.NumberLit(parse_time_literal(token.value))
            is_integer = "." not in token.value and "e" not in token.value.lower()
            return ast.NumberLit(float(token.value), is_integer=is_integer)
        if token.kind is TokenKind.KEYWORD and token.value in ("true", "false"):
            self._advance()
            return ast.BoolLit(token.value == "true")
        if token.kind is TokenKind.IDENT:
            name = self._advance().value
            if self.current.kind is TokenKind.DOT:
                self._advance()
                fieldname = self._expect(TokenKind.IDENT).value
                return ast.FieldRef(instance=name, fieldname=fieldname.lower())
            return ast.VarRef(name=name)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return inner
        raise self._error("expected an expression")


def parse(source: str) -> ast.Program:
    """Parse ST source into a :class:`repro.plc.st.ast.Program`."""
    return Parser(tokenize(source)).parse_program()

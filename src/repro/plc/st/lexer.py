"""Lexer for the IEC 61131-3 Structured Text (ST) subset.

Structured Text is the dominant textual PLC language; supporting it makes
the vPLC model programmable the way real controllers are.  The subset
covers what factory control programs use: variable declarations with
initializers, assignments, arithmetic/comparison/boolean expressions,
``IF/ELSIF/ELSE``, ``CASE``, ``WHILE``, ``FOR``, and calls to timer /
counter / edge function blocks.

Tokens are case-insensitive for keywords, as the standard requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Token categories."""

    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    ASSIGN = auto()      # :=
    ARROW = auto()       # =>
    OP = auto()          # + - * / = <> < <= > >= MOD
    LPAREN = auto()
    RPAREN = auto()
    SEMI = auto()
    COLON = auto()
    COMMA = auto()
    DOT = auto()
    DOTDOT = auto()      # .. (CASE/FOR ranges)
    EOF = auto()


KEYWORDS = {
    "var", "var_input", "var_output", "end_var",
    "if", "then", "elsif", "else", "end_if",
    "case", "of", "end_case",
    "while", "do", "end_while",
    "for", "to", "by", "end_for",
    "repeat", "until", "end_repeat",
    "and", "or", "xor", "not", "mod",
    "true", "false",
    "bool", "int", "dint", "real", "lreal", "time",
    "ton", "tof", "ctu", "ctd", "r_trig", "f_trig",
    "exit", "return",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword check."""
        return self.kind is TokenKind.KEYWORD and self.value == word


class StSyntaxError(ValueError):
    """Raised on lexical or syntactic errors, with position info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> list[Token]:
    """Convert ST source text into a token list (ending with EOF)."""
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)

    def error(message: str) -> StSyntaxError:
        return StSyntaxError(message, line, column)

    while index < length:
        char = source[index]
        # -- whitespace ----------------------------------------------------
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        # -- comments --------------------------------------------------------
        if source.startswith("(*", index):
            end = source.find("*)", index + 2)
            if end < 0:
                raise error("unterminated (* comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        # -- numbers -----------------------------------------------------------
        if char.isdigit() or (
            char == "." and index + 1 < length and source[index + 1].isdigit()
            and not source.startswith("..", index)
        ):
            start = index
            seen_dot = False
            while index < length and (
                source[index].isdigit()
                or (source[index] == "." and not seen_dot
                    and not source.startswith("..", index))
                or source[index] in "eE"
                or (source[index] in "+-" and source[index - 1] in "eE")
            ):
                if source[index] == ".":
                    seen_dot = True
                index += 1
            text = source[start:index]
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
            column += len(text)
            continue
        # -- identifiers / keywords -----------------------------------------------
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            # TIME literals: T#500ms, TIME#1s200ms, T#2.5s
            if (
                index < length
                and source[index] == "#"
                and source[start:index].lower() in ("t", "time")
            ):
                index += 1
                while index < length and (
                    source[index].isalnum() or source[index] in "._"
                ):
                    index += 1
                text = source[start:index]
                tokens.append(Token(TokenKind.NUMBER, text.lower(), line, column))
                column += len(text)
                continue
            text = source[start:index]
            lowered = text.lower()
            kind = TokenKind.KEYWORD if lowered in KEYWORDS else TokenKind.IDENT
            value = lowered if kind is TokenKind.KEYWORD else text
            tokens.append(Token(kind, value, line, column))
            column += len(text)
            continue
        # -- multi-character operators ------------------------------------------------
        for text, kind in (
            (":=", TokenKind.ASSIGN),
            ("=>", TokenKind.ARROW),
            ("<>", TokenKind.OP),
            ("<=", TokenKind.OP),
            (">=", TokenKind.OP),
            ("..", TokenKind.DOTDOT),
        ):
            if source.startswith(text, index):
                tokens.append(Token(kind, text, line, column))
                index += len(text)
                column += len(text)
                break
        else:
            single = {
                "+": TokenKind.OP, "-": TokenKind.OP, "*": TokenKind.OP,
                "/": TokenKind.OP, "=": TokenKind.OP, "<": TokenKind.OP,
                ">": TokenKind.OP, "(": TokenKind.LPAREN,
                ")": TokenKind.RPAREN, ";": TokenKind.SEMI,
                ":": TokenKind.COLON, ",": TokenKind.COMMA,
                ".": TokenKind.DOT,
            }
            kind = single.get(char)
            if kind is None:
                raise error(f"unexpected character {char!r}")
            tokens.append(Token(kind, char, line, column))
            index += 1
            column += 1
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens

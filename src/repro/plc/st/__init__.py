"""IEC 61131-3 Structured Text for vPLCs.

A lexer, parser, and scan-cycle interpreter for the ST subset industrial
control programs actually use: typed variable blocks, IF/CASE/WHILE/
REPEAT/FOR, expressions, TIME literals, and the standard timer/counter/
edge function blocks (TON, TOF, CTU, CTD, R_TRIG, F_TRIG).

>>> from repro.plc.st import compile_st
>>> program = compile_st('''
...     VAR_INPUT level : REAL; END_VAR
...     VAR_OUTPUT pump : BOOL; END_VAR
...     pump := level > 80.0;
... ''')
>>> program.execute({"level": 91.0}, dt_s=0.002)
{'pump': True}
"""

from .ast import Program
from .interpreter import StProgram, StRuntimeError, compile_st
from .lexer import StSyntaxError, Token, TokenKind, tokenize
from .parser import parse, parse_time_literal

__all__ = [
    "Program",
    "StProgram",
    "StRuntimeError",
    "StSyntaxError",
    "Token",
    "TokenKind",
    "compile_st",
    "parse",
    "parse_time_literal",
    "tokenize",
]

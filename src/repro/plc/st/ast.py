"""Abstract syntax tree for the Structured Text subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    """Integer, real, or TIME literal (TIME is stored in seconds)."""

    value: float
    is_integer: bool = False


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class VarRef:
    name: str


@dataclass(frozen=True)
class FieldRef:
    """Access to a function-block instance output, e.g. ``timer.Q``."""

    instance: str
    fieldname: str


@dataclass(frozen=True)
class UnaryOp:
    op: str  # 'not' | '-'
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * / mod = <> < <= > >= and or xor
    left: "Expr"
    right: "Expr"


Expr = Union[NumberLit, BoolLit, VarRef, FieldRef, UnaryOp, BinaryOp]


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    target: str
    expr: Expr


@dataclass(frozen=True)
class FbCall:
    """Invocation of a declared function-block instance."""

    instance: str
    args: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class IfStmt:
    #: (condition, body) per IF/ELSIF branch, in order
    branches: tuple[tuple[Expr, tuple["Stmt", ...]], ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class CaseEntry:
    """One CASE alternative: explicit values and/or inclusive ranges."""

    values: tuple[float, ...]
    ranges: tuple[tuple[float, float], ...]
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class CaseStmt:
    selector: Expr
    entries: tuple[CaseEntry, ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class WhileStmt:
    condition: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class RepeatStmt:
    body: tuple["Stmt", ...]
    until: Expr


@dataclass(frozen=True)
class ForStmt:
    variable: str
    start: Expr
    stop: Expr
    step: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class ExitStmt:
    pass


@dataclass(frozen=True)
class ReturnStmt:
    pass


Stmt = Union[
    Assign, FbCall, IfStmt, CaseStmt, WhileStmt, RepeatStmt, ForStmt,
    ExitStmt, ReturnStmt,
]


# -- declarations / program --------------------------------------------------------


@dataclass(frozen=True)
class VarDecl:
    """One declared variable or function-block instance."""

    name: str
    type_name: str  # bool/int/dint/real/lreal/time or ton/tof/ctu/ctd/r_trig/f_trig
    direction: str  # 'var' | 'var_input' | 'var_output'
    initializer: Expr | None = None

    @property
    def is_fb_instance(self) -> bool:
        """True for timer/counter/edge block instances."""
        return self.type_name in ("ton", "tof", "ctu", "ctd", "r_trig", "f_trig")


@dataclass(frozen=True)
class Program:
    """A parsed ST program: declarations plus the cyclic statement body."""

    declarations: tuple[VarDecl, ...]
    body: tuple[Stmt, ...]

    def inputs(self) -> tuple[VarDecl, ...]:
        """Declared VAR_INPUT variables."""
        return tuple(d for d in self.declarations if d.direction == "var_input")

    def outputs(self) -> tuple[VarDecl, ...]:
        """Declared VAR_OUTPUT variables."""
        return tuple(d for d in self.declarations if d.direction == "var_output")

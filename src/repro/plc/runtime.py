"""The PLC runtime: scan cycles over assigned I/O devices.

A :class:`PlcRuntime` executes the classic PLC loop — read the process
image, execute the control program, write outputs — once per cycle, and
owns one fieldbus :class:`CyclicConnection` per assigned I/O device.  The
process image namespaces IO by device: input ``"dev1.counter"`` is key
``counter`` from device ``dev1``; output ``"dev1.valve"`` is sent to it.

The runtime's timing behaviour comes from its :class:`PlatformModel`
(hardware vs vPLC), which is what the Section 2.1 experiments vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..fieldbus.controller import CyclicConnection
from ..fieldbus.protocol import ArState, ConnectionParams
from ..net.host import Host
from ..obs import get_registry
from ..simcore import Process, Simulator
from .platform import PlatformModel, HARDWARE_PLC
from .program import FunctionBlockProgram


@dataclass
class ScanStats:
    """Scan-cycle statistics."""

    scans: int = 0
    overruns: int = 0
    scan_times_ns: list[int] = field(default_factory=list)
    scan_start_times_ns: list[int] = field(default_factory=list)


class PlcRuntime:
    """One (virtual or hardware) PLC instance."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        program: FunctionBlockProgram,
        cycle_ns: int,
        platform: PlatformModel = HARDWARE_PLC,
        rng: np.random.Generator | None = None,
        program_exec_ns: int = 20_000,
        name: str | None = None,
    ) -> None:
        if cycle_ns <= 0:
            raise ValueError("cycle time must be positive")
        self.sim = sim
        self.host = host
        self.program = program
        self.cycle_ns = cycle_ns
        self.platform = platform
        self.name = name or host.name
        self.rng = rng if rng is not None else sim.streams.stream(f"plc/{self.name}")
        self._scan_time_fn = platform.scan_time_sampler(self.rng, program_exec_ns)
        self._release_jitter_fn = platform.jitter_sampler(self.rng)
        self.connections: dict[str, CyclicConnection] = {}
        self.stats = ScanStats()
        self.running = False
        self.crashed = False
        self._scan_process: Process | None = None
        self.on_crash: list[Callable[[], None]] = []
        self._m_crashes = get_registry().counter("plc.crashes", plc=self.name)

    # -- configuration -------------------------------------------------------

    def assign_device(
        self, device_name: str, params: ConnectionParams | None = None
    ) -> CyclicConnection:
        """Declare an I/O device this PLC controls."""
        if device_name in self.connections:
            raise ValueError(f"device {device_name!r} already assigned")
        connection = CyclicConnection(
            sim=self.sim,
            host=self.host,
            device_name=device_name,
            params=params or ConnectionParams(cycle_ns=self.cycle_ns),
            release_jitter_fn=self._release_jitter_fn,
        )
        self.connections[device_name] = connection
        return connection

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open all device connections and begin scanning."""
        if self.running:
            return
        if self.crashed:
            self.crashed = False  # restarted instance
        self.running = True
        for connection in self.connections.values():
            if connection.state in (ArState.IDLE, ArState.ABORTED):
                connection.open()
        self._scan_process = self.sim.process(
            self._scan_loop(), name=f"plc:{self.name}/scan"
        )

    def stop(self) -> None:
        """Orderly shutdown: release connections, stop scanning."""
        self.running = False
        if self._scan_process is not None:
            self._scan_process.stop()
            self._scan_process = None
        for connection in self.connections.values():
            connection.release()

    def crash(self) -> None:
        """Crash-stop: the PLC vanishes without releasing anything.

        This is the failure InstaPLC and the redundancy baselines detect.
        """
        if self.crashed:
            return
        self.running = False
        self.crashed = True
        self._m_crashes.inc()
        if self._scan_process is not None:
            self._scan_process.stop()
            self._scan_process = None
        for connection in self.connections.values():
            connection.fail_silently()
        for callback in self.on_crash:
            callback()
        self.sim.trace(f"plc:{self.name} crashed")

    def restart(self) -> None:
        """Recover from a crash: release dead connections, start scanning.

        The fault-injection repair path: equivalent to the operator power
        cycling a crashed (v)PLC.  A running instance is left untouched.
        """
        if self.running:
            return
        self.crashed = False
        self.stop()  # release any connections the crash left half-open
        self.start()

    # -- the scan loop -------------------------------------------------------

    def _scan_loop(self):
        next_release = self.sim.now
        dt_s = self.cycle_ns / 1e9
        while self.running:
            start = self.sim.now
            self.stats.scan_start_times_ns.append(start)
            image = self._read_process_image()
            outputs = self.program.execute(image, dt_s)
            self._write_process_image(outputs)
            scan_ns = self._scan_time_fn()
            self.stats.scans += 1
            self.stats.scan_times_ns.append(scan_ns)
            if scan_ns > self.cycle_ns:
                self.stats.overruns += 1
            yield scan_ns
            next_release += self.cycle_ns
            yield max(0, next_release - self.sim.now)

    def _read_process_image(self) -> dict[str, Any]:
        image: dict[str, Any] = {}
        for device_name, connection in self.connections.items():
            for key, value in connection.inputs.items():
                image[f"{device_name}.{key}"] = value
        return image

    def _write_process_image(self, outputs: dict[str, Any]) -> None:
        for image_key, value in outputs.items():
            device_name, _, key = image_key.partition(".")
            connection = self.connections.get(device_name)
            if connection is not None and key:
                connection.outputs[key] = value

    # -- queries -------------------------------------------------------------

    @property
    def all_running(self) -> bool:
        """True when every device connection reached RUNNING."""
        return bool(self.connections) and all(
            c.state is ArState.RUNNING for c in self.connections.values()
        )

    def inputs_of(self, device_name: str) -> dict[str, Any]:
        """Latest inputs received from one device."""
        return dict(self.connections[device_name].inputs)

"""PLC and virtual-PLC models.

- :mod:`repro.plc.program` — function-block control programs;
- :mod:`repro.plc.platform` — hardware vs vPLC timing-noise models;
- :mod:`repro.plc.runtime` — the scan-cycle runtime over fieldbus devices;
- :mod:`repro.plc.redundancy` — hardware-pair and Kubernetes failover
  baselines used by the Section 4 comparisons.
"""

from .platform import (
    HARDWARE_PLC,
    PLATFORMS,
    PlatformModel,
    VPLC_PREEMPT_RT,
    VPLC_STOCK_KERNEL,
)
from .program import (
    And,
    Block,
    Ctu,
    FunctionBlockProgram,
    Lambda,
    Limit,
    Not,
    Or,
    Pid,
    Scale,
    Ton,
    Wire,
    passthrough_program,
)
from .redundancy import (
    FailoverRecord,
    HW_SWITCHOVER_MAX_NS,
    HW_SWITCHOVER_MIN_NS,
    K8S_SWITCHOVER_MAX_NS,
    K8S_SWITCHOVER_MIN_NS,
    KubernetesFailoverModel,
    RedundantPlcPair,
)
from .runtime import PlcRuntime, ScanStats

__all__ = [
    "And",
    "Block",
    "Ctu",
    "FailoverRecord",
    "FunctionBlockProgram",
    "HARDWARE_PLC",
    "HW_SWITCHOVER_MAX_NS",
    "HW_SWITCHOVER_MIN_NS",
    "K8S_SWITCHOVER_MAX_NS",
    "K8S_SWITCHOVER_MIN_NS",
    "KubernetesFailoverModel",
    "Lambda",
    "Limit",
    "Not",
    "Or",
    "PLATFORMS",
    "Pid",
    "PlatformModel",
    "PlcRuntime",
    "RedundantPlcPair",
    "Scale",
    "ScanStats",
    "Ton",
    "VPLC_PREEMPT_RT",
    "VPLC_STOCK_KERNEL",
    "Wire",
    "passthrough_program",
]

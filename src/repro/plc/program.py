"""Control programs: an IEC 61131-3-flavoured function-block model.

A PLC's application logic is expressed as a network of function blocks
wired output-to-input, executed once per scan cycle in topological order.
The block library covers what the examples need — boolean logic, timers,
counters, PID, scaling — without pretending to be a full 61131 runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


class Block:
    """One function block.  Subclasses implement :meth:`evaluate`."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        """Produce outputs from inputs; ``dt_s`` is the scan period."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (default: stateless)."""


class Lambda(Block):
    """Wrap a plain function ``f(inputs) -> outputs`` as a block."""

    def __init__(self, name: str, fn: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        super().__init__(name)
        self._fn = fn

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        return self._fn(inputs)


class And(Block):
    """Boolean AND over every input value."""

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        return {"out": all(bool(v) for v in inputs.values())}


class Or(Block):
    """Boolean OR over every input value."""

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        return {"out": any(bool(v) for v in inputs.values())}


class Not(Block):
    """Boolean negation of input ``in``."""

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        return {"out": not bool(inputs.get("in"))}


class Scale(Block):
    """Linear scaling: ``out = in * gain + offset``."""

    def __init__(self, name: str, gain: float = 1.0, offset: float = 0.0) -> None:
        super().__init__(name)
        self.gain = gain
        self.offset = offset

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        return {"out": float(inputs.get("in", 0.0)) * self.gain + self.offset}


class Limit(Block):
    """Clamp input ``in`` to [low, high]."""

    def __init__(self, name: str, low: float, high: float) -> None:
        super().__init__(name)
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        value = float(inputs.get("in", 0.0))
        return {"out": min(self.high, max(self.low, value))}


class Ton(Block):
    """On-delay timer (TON): ``q`` goes true after ``in`` held for ``pt_s``."""

    def __init__(self, name: str, pt_s: float) -> None:
        super().__init__(name)
        if pt_s < 0:
            raise ValueError("preset time cannot be negative")
        self.pt_s = pt_s
        self._elapsed_s = 0.0

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        if bool(inputs.get("in")):
            self._elapsed_s = min(self.pt_s, self._elapsed_s + dt_s)
        else:
            self._elapsed_s = 0.0
        return {"q": self._elapsed_s >= self.pt_s, "et": self._elapsed_s}

    def reset(self) -> None:
        self._elapsed_s = 0.0


class Ctu(Block):
    """Count-up counter (CTU) with rising-edge detection and preset ``pv``."""

    def __init__(self, name: str, pv: int) -> None:
        super().__init__(name)
        self.pv = pv
        self._count = 0
        self._last_cu = False

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        cu = bool(inputs.get("cu"))
        if bool(inputs.get("reset")):
            self._count = 0
        elif cu and not self._last_cu:
            self._count += 1
        self._last_cu = cu
        return {"q": self._count >= self.pv, "cv": self._count}

    def reset(self) -> None:
        self._count = 0
        self._last_cu = False


class Pid(Block):
    """Discrete PID controller on error ``sp - pv`` with output clamping."""

    def __init__(
        self,
        name: str,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        out_low: float = float("-inf"),
        out_high: float = float("inf"),
    ) -> None:
        super().__init__(name)
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.out_low = out_low
        self.out_high = out_high
        self._integral = 0.0
        self._last_error: float | None = None

    def evaluate(self, inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        error = float(inputs.get("sp", 0.0)) - float(inputs.get("pv", 0.0))
        derivative = 0.0
        if self._last_error is not None and dt_s > 0:
            derivative = (error - self._last_error) / dt_s
        proposed = (
            self.kp * error + self.ki * (self._integral + error * dt_s)
            + self.kd * derivative
        )
        clamped = min(self.out_high, max(self.out_low, proposed))
        # Anti-windup: only integrate when not saturated against the error.
        if proposed == clamped or (proposed > clamped) != (error > 0):
            self._integral += error * dt_s
        self._last_error = error
        return {"out": clamped, "error": error}

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None


@dataclass(frozen=True)
class Wire:
    """Connects ``(src_block, src_key)`` to ``(dst_block, dst_key)``."""

    src_block: str
    src_key: str
    dst_block: str
    dst_key: str


@dataclass
class FunctionBlockProgram:
    """A wired network of blocks executed once per scan.

    ``input_map`` routes process-image inputs into block inputs as
    ``{"image_key": ("block", "key")}``; ``output_map`` routes block outputs
    to the process image as ``{"image_key": ("block", "key")}``.
    """

    blocks: dict[str, Block] = field(default_factory=dict)
    wires: list[Wire] = field(default_factory=list)
    input_map: dict[str, tuple[str, str]] = field(default_factory=dict)
    output_map: dict[str, tuple[str, str]] = field(default_factory=dict)

    def add_block(self, block: Block) -> Block:
        """Register a block (names must be unique)."""
        if block.name in self.blocks:
            raise ValueError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        return block

    def connect(self, src: str, src_key: str, dst: str, dst_key: str) -> None:
        """Wire a block output to a block input."""
        for name in (src, dst):
            if name not in self.blocks:
                raise KeyError(f"unknown block {name!r}")
        self.wires.append(Wire(src, src_key, dst, dst_key))

    def _execution_order(self) -> list[str]:
        dependencies: dict[str, set[str]] = {name: set() for name in self.blocks}
        for wire in self.wires:
            dependencies[wire.dst_block].add(wire.src_block)
        order: list[str] = []
        ready = sorted(n for n, deps in dependencies.items() if not deps)
        remaining = {n: set(deps) for n, deps in dependencies.items() if deps}
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for name, deps in list(remaining.items()):
                deps.discard(current)
                if not deps:
                    newly_ready.append(name)
                    del remaining[name]
            ready.extend(sorted(newly_ready))
            ready.sort()
        if remaining:
            # Cycles execute with one-scan-old values, like a real PLC:
            # append them in name order.
            order.extend(sorted(remaining))
        return order

    def execute(self, image_inputs: dict[str, Any], dt_s: float) -> dict[str, Any]:
        """Run one scan: map inputs, evaluate blocks, map outputs."""
        block_inputs: dict[str, dict[str, Any]] = {
            name: {} for name in self.blocks
        }
        for image_key, (block, key) in self.input_map.items():
            if image_key in image_inputs:
                block_inputs[block][key] = image_inputs[image_key]
        block_outputs: dict[str, dict[str, Any]] = getattr(
            self, "_last_outputs", {name: {} for name in self.blocks}
        )
        new_outputs: dict[str, dict[str, Any]] = {}
        for name in self._execution_order():
            for wire in self.wires:
                if wire.dst_block == name:
                    source = new_outputs.get(
                        wire.src_block, block_outputs.get(wire.src_block, {})
                    )
                    if wire.src_key in source:
                        block_inputs[name][wire.dst_key] = source[wire.src_key]
            new_outputs[name] = self.blocks[name].evaluate(
                block_inputs[name], dt_s
            )
        self._last_outputs = new_outputs
        result: dict[str, Any] = {}
        for image_key, (block, key) in self.output_map.items():
            outputs = new_outputs.get(block, {})
            if key in outputs:
                result[image_key] = outputs[key]
        return result

    def reset(self) -> None:
        """Reset every block and forget last-scan outputs."""
        for block in self.blocks.values():
            block.reset()
        if hasattr(self, "_last_outputs"):
            del self._last_outputs


def passthrough_program(mapping: dict[str, str]) -> FunctionBlockProgram:
    """A program that copies inputs to outputs (``{"out_key": "in_key"}``)."""
    program = FunctionBlockProgram()
    block = Lambda("copy", lambda inputs: dict(inputs))
    program.add_block(block)
    for out_key, in_key in mapping.items():
        program.input_map[in_key] = ("copy", in_key)
        program.output_map[out_key] = ("copy", in_key)
    return program

"""Controller-redundancy baselines from Section 4.

Two pre-InstaPLC high-availability mechanisms, used as comparison points:

- :class:`RedundantPlcPair` — the classic hardware approach (S7-1500R/H
  style): an active primary and a standby secondary joined by dedicated
  sync/heartbeat links; switchover takes a manufacturer-dependent
  50-300 ms.
- :class:`KubernetesFailoverModel` — vPLC-as-pod: failure is noticed by
  liveness probes and the pod is rescheduled; the literature the paper
  cites reports ~110 ms up to ~55.4 s.

Both expose the same ``inject_primary_failure()`` entry point as the
InstaPLC harness, so the switchover benchmark (E7) can sweep all three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simcore import Simulator
from ..simcore.units import MS, SEC
from .runtime import PlcRuntime

#: Paper: hardware PLC pairs switch over "within 50 ms to 300 ms".
HW_SWITCHOVER_MIN_NS = 50 * MS
HW_SWITCHOVER_MAX_NS = 300 * MS

#: Paper: Kubernetes-based approaches take ~110 ms to ~55.4 s.
K8S_SWITCHOVER_MIN_NS = 110 * MS
K8S_SWITCHOVER_MAX_NS = round(55.4 * SEC)


@dataclass
class FailoverRecord:
    """Timestamps of one injected failure and the resulting takeover."""

    failure_ns: int
    detection_ns: int | None = None
    takeover_started_ns: int | None = None
    secondary_running_ns: int | None = None

    @property
    def switchover_ns(self) -> int | None:
        """Failure-to-takeover-start delay (control-plane view)."""
        if self.takeover_started_ns is None:
            return None
        return self.takeover_started_ns - self.failure_ns


class RedundantPlcPair:
    """Hardware-style 1:1 PLC redundancy with dedicated heartbeat links.

    The pair shares state over a dedicated sync link (modeled as the
    secondary reading the primary's outputs directly, which is what the
    paper means by "special hardware settings such as dedicated links").
    On heartbeat loss the secondary waits out the takeover delay, then
    opens its own connections to the devices.
    """

    def __init__(
        self,
        sim: Simulator,
        primary: PlcRuntime,
        secondary: PlcRuntime,
        heartbeat_period_ns: int = 10 * MS,
        heartbeats_missed_for_failure: int = 3,
        takeover_delay_ns: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if set(primary.connections) != set(secondary.connections):
            raise ValueError("primary and secondary must control the same devices")
        self.sim = sim
        self.primary = primary
        self.secondary = secondary
        self.heartbeat_period_ns = heartbeat_period_ns
        self.heartbeats_missed_for_failure = heartbeats_missed_for_failure
        self.rng = rng if rng is not None else sim.streams.stream("redundancy/hw")
        if takeover_delay_ns is None:
            takeover_delay_ns = int(
                self.rng.uniform(HW_SWITCHOVER_MIN_NS, HW_SWITCHOVER_MAX_NS)
            )
        self.takeover_delay_ns = takeover_delay_ns
        self.record: FailoverRecord | None = None
        self._monitoring = False

    def start(self) -> None:
        """Start the primary and begin heartbeat supervision."""
        self.primary.start()
        self._monitoring = True
        self.sim.process(self._heartbeat_loop(), name="redundancy/heartbeat")

    def inject_primary_failure(self) -> None:
        """Crash the primary now (the heartbeat monitor must notice)."""
        self.record = FailoverRecord(failure_ns=self.sim.now)
        self.primary.crash()

    def _heartbeat_loop(self):
        missed = 0
        while self._monitoring:
            yield self.heartbeat_period_ns
            # The dedicated link makes liveness observable directly.
            if self.primary.crashed:
                missed += 1
            else:
                missed = 0
            if missed >= self.heartbeats_missed_for_failure:
                break
        if not self._monitoring or self.record is None:
            return
        self.record.detection_ns = self.sim.now
        yield self.takeover_delay_ns
        self.record.takeover_started_ns = self.sim.now
        # Sync link transferred state: secondary resumes the control task.
        for device_name, connection in self.primary.connections.items():
            self.secondary.connections[device_name].outputs = dict(
                connection.outputs
            )
        self.secondary.start()
        self.record.secondary_running_ns = self.sim.now
        self._monitoring = False


class KubernetesFailoverModel:
    """vPLC-as-pod failover: probe-based detection plus pod restart.

    There is no warm standby: the *same* runtime is restarted after a
    rescheduling delay.  The delay distribution is lognormal, clamped to
    the paper's reported 110 ms - 55.4 s range: most restarts are fast, but
    image pulls/scheduling stalls produce the multi-second tail.
    """

    def __init__(
        self,
        sim: Simulator,
        plc: PlcRuntime,
        probe_period_ns: int = 1 * SEC,
        probe_failures_needed: int = 3,
        rng: np.random.Generator | None = None,
        restart_delay_ns: int | None = None,
    ) -> None:
        self.sim = sim
        self.plc = plc
        self.probe_period_ns = probe_period_ns
        self.probe_failures_needed = probe_failures_needed
        self.rng = rng if rng is not None else sim.streams.stream("redundancy/k8s")
        self.restart_delay_ns = restart_delay_ns
        self.record: FailoverRecord | None = None
        self._monitoring = False

    def start(self) -> None:
        """Start the pod and its liveness supervision."""
        self.plc.start()
        self._monitoring = True
        self.sim.process(self._probe_loop(), name="redundancy/k8s-probe")

    def inject_primary_failure(self) -> None:
        """Crash the pod now."""
        self.record = FailoverRecord(failure_ns=self.sim.now)
        self.plc.crash()

    def sample_restart_delay_ns(self) -> int:
        """Draw a pod-restart delay in the paper's reported range."""
        if self.restart_delay_ns is not None:
            return self.restart_delay_ns
        # Lognormal centred near ~1 s with a heavy tail, clamped to range.
        draw = self.rng.lognormal(mean=float(np.log(1.0)), sigma=1.5) * SEC
        return int(min(K8S_SWITCHOVER_MAX_NS, max(K8S_SWITCHOVER_MIN_NS, draw)))

    def _probe_loop(self):
        failures = 0
        while self._monitoring:
            yield self.probe_period_ns
            if self.plc.crashed:
                failures += 1
            else:
                failures = 0
            if failures >= self.probe_failures_needed:
                break
        if not self._monitoring or self.record is None:
            return
        self.record.detection_ns = self.sim.now
        yield self.sample_restart_delay_ns()
        self.record.takeover_started_ns = self.sim.now
        self.plc.start()
        self.record.secondary_running_ns = self.sim.now
        self._monitoring = False

"""Execution-platform timing models: hardware PLC vs virtual PLC.

Section 2.1's core claim is that virtualization stacks do not meet OT timing
requirements: hardware PLCs use ASICs/FPGAs with sub-microsecond jitter,
while vPLCs inherit the host network and kernel's noise — even with
PREEMPT_RT, "unpredictable kernel-induced latencies" remain, and stock
kernels are far worse.

Each platform yields a *release jitter* sampler (extra nanoseconds added to
every cyclic activation) built from:

- a Gaussian base component (scheduler wake-up precision);
- a lognormal tail (cache/SMI/softirq interference);
- rare long spikes (kernel housekeeping, memory reclaim) with configurable
  probability — the events behind consecutive-jitter bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..simcore.units import MS, US


@dataclass(frozen=True)
class PlatformModel:
    """Timing-noise parameters of one execution platform."""

    name: str
    base_mean_ns: float
    base_std_ns: float
    tail_scale_ns: float
    tail_sigma: float
    spike_probability: float
    spike_min_ns: float
    spike_max_ns: float
    scan_overhead_ns: int

    def jitter_sampler(self, rng: np.random.Generator) -> Callable[[], int]:
        """Build a per-activation release-jitter sampler (ns, >= 0)."""

        def sample() -> int:
            value = rng.normal(self.base_mean_ns, self.base_std_ns)
            value += rng.lognormal(mean=0.0, sigma=self.tail_sigma) * self.tail_scale_ns
            if self.spike_probability > 0 and rng.random() < self.spike_probability:
                value += rng.uniform(self.spike_min_ns, self.spike_max_ns)
            return max(0, int(value))

        return sample

    def scan_time_sampler(
        self, rng: np.random.Generator, program_exec_ns: int
    ) -> Callable[[], int]:
        """Scan-time sampler: program execution plus platform overhead/noise."""
        jitter = self.jitter_sampler(rng)

        def sample() -> int:
            return program_exec_ns + self.scan_overhead_ns + jitter()

        return sample


#: Hardware PLC with an ASIC/FPGA cycle engine (Section 2.1's baseline):
#: sub-microsecond activation precision, no long tails.
HARDWARE_PLC = PlatformModel(
    name="hardware-plc",
    base_mean_ns=150.0,
    base_std_ns=40.0,
    tail_scale_ns=20.0,
    tail_sigma=0.5,
    spike_probability=0.0,
    spike_min_ns=0.0,
    spike_max_ns=0.0,
    scan_overhead_ns=2_000,
)

#: vPLC on Linux + PREEMPT_RT: microsecond-scale wake-up noise with
#: occasional tens-of-microseconds kernel-induced latencies.
VPLC_PREEMPT_RT = PlatformModel(
    name="vplc-preempt-rt",
    base_mean_ns=3_000.0,
    base_std_ns=1_200.0,
    tail_scale_ns=800.0,
    tail_sigma=1.0,
    spike_probability=2e-4,
    spike_min_ns=20.0 * US,
    spike_max_ns=150.0 * US,
    scan_overhead_ns=8_000,
)

#: vPLC on a stock kernel: larger baseline noise and millisecond spikes —
#: the configuration that visibly violates cycle budgets.
VPLC_STOCK_KERNEL = PlatformModel(
    name="vplc-stock-kernel",
    base_mean_ns=8_000.0,
    base_std_ns=4_000.0,
    tail_scale_ns=3_000.0,
    tail_sigma=1.3,
    spike_probability=2e-3,
    spike_min_ns=200.0 * US,
    spike_max_ns=5.0 * MS,
    scan_overhead_ns=15_000,
)

#: All built-in platforms by name.
PLATFORMS: dict[str, PlatformModel] = {
    model.name: model
    for model in (HARDWARE_PLC, VPLC_PREEMPT_RT, VPLC_STOCK_KERNEL)
}

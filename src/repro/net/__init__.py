"""Packet-level network substrate.

Devices (switches, hosts), ports, links, queue disciplines, topology
builders (industrial and data-center), static shortest-path routing, and the
Section 2.3 flow taxonomy with traffic generators.
"""

from .device import Device
from .flows import (
    BulkSender,
    CyclicSender,
    ELEPHANT_MIN_BYTES,
    FlowKind,
    FlowSpec,
    FlowStats,
    MICE_MAX_BYTES,
    PoissonSender,
    classify_flow,
)
from .host import Host, ServerNode
from .link import Link, Port
from .mrp import RecoveryEvent, RingRedundancyManager
from .packet import (
    ETHERNET_OVERHEAD_BYTES,
    MAX_PAYLOAD_BYTES,
    MIN_FRAME_BYTES,
    Packet,
    TrafficClass,
    VLAN_TAG_BYTES,
    WIRE_EXTRA_BYTES,
)
from .queues import FifoQueue, QueueDiscipline, StrictPriorityQueue
from .routing import (
    bfs_distances,
    install_shortest_path_routes,
    shortest_path,
    verify_routes,
)
from .switch import Switch
from .trace import PacketTracer, TraceRecord, postcard_trace_records
from .topology import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_PROP_DELAY_NS,
    Topology,
    build_bcube,
    build_fat_tree,
    build_leaf_spine,
    build_line,
    build_ring,
    build_star,
    build_tree,
    path_hop_count,
)

__all__ = [
    "BulkSender",
    "CyclicSender",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_PROP_DELAY_NS",
    "Device",
    "ELEPHANT_MIN_BYTES",
    "ETHERNET_OVERHEAD_BYTES",
    "FifoQueue",
    "FlowKind",
    "FlowSpec",
    "FlowStats",
    "Host",
    "Link",
    "MAX_PAYLOAD_BYTES",
    "MICE_MAX_BYTES",
    "MIN_FRAME_BYTES",
    "Packet",
    "PacketTracer",
    "PoissonSender",
    "Port",
    "ServerNode",
    "QueueDiscipline",
    "RecoveryEvent",
    "RingRedundancyManager",
    "StrictPriorityQueue",
    "Switch",
    "Topology",
    "TraceRecord",
    "TrafficClass",
    "VLAN_TAG_BYTES",
    "WIRE_EXTRA_BYTES",
    "bfs_distances",
    "build_bcube",
    "build_fat_tree",
    "build_leaf_spine",
    "build_line",
    "build_ring",
    "build_star",
    "build_tree",
    "classify_flow",
    "install_shortest_path_routes",
    "path_hop_count",
    "postcard_trace_records",
    "shortest_path",
    "verify_routes",
]

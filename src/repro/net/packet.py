"""Packets and frames.

A :class:`Packet` is the unit that travels the simulated network.  It is a
layer-2 frame with optional structured payload: industrial protocols
(PROFINET-style cyclic data, Section 2.3's 20-250 byte payloads) and IT
traffic (ML tensors, elephant flows) both map onto it.

Sizes follow Ethernet accounting: ``wire_size_bytes`` adds the 18-byte
Ethernet header+FCS, the 20-byte preamble+IPG, and pads to the 64-byte
minimum frame — small industrial payloads are dominated by this overhead,
which is exactly why PCIe/NIC per-packet costs hurt them (Section 2.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

#: Ethernet header (14) + FCS (4).
ETHERNET_OVERHEAD_BYTES = 18
#: 802.1Q VLAN tag, carried by all TSN/industrial frames here.
VLAN_TAG_BYTES = 4
#: Preamble + start-of-frame delimiter (8) + inter-packet gap (12).
WIRE_EXTRA_BYTES = 20
#: Minimum Ethernet frame (header + payload + FCS).
MIN_FRAME_BYTES = 64
#: Maximum standard Ethernet payload.
MAX_PAYLOAD_BYTES = 1500

_packet_ids = itertools.count(1)


class TrafficClass(Enum):
    """Coarse traffic classes used for queueing decisions.

    ``CYCLIC_RT`` is the paper's new flow type: never-ending, deterministic
    microflows (Section 2.3).  The others mirror the standard data-center
    taxonomy (mice / medium / elephant) plus network control.
    """

    NETWORK_CONTROL = 7
    CYCLIC_RT = 6
    ALARM = 5
    LATENCY_SENSITIVE = 4
    BEST_EFFORT = 1
    BULK = 0

    @property
    def pcp(self) -> int:
        """802.1Q Priority Code Point carried in the VLAN tag."""
        return self.value


@dataclass
class Packet:
    """A simulated layer-2 frame.

    Attributes
    ----------
    src, dst:
        Endpoint names (stand-ins for MAC addresses).
    payload_bytes:
        L2 payload size, excluding Ethernet/VLAN overhead.
    traffic_class:
        Queueing class (maps to a PCP value).
    flow_id:
        Identifier of the flow this packet belongs to.
    payload:
        Structured, protocol-specific content (dict), e.g. PROFINET cyclic
        data or an InstaPLC connect request.  Carried by reference — the
        simulator never serializes it.
    created_ns:
        Time the packet was created at its source.
    hops:
        Device names traversed, appended by the forwarding path.
    """

    src: str
    dst: str
    payload_bytes: int
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT
    flow_id: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    created_ns: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: list[str] = field(default_factory=list)
    sequence: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        if self.payload_bytes > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {self.payload_bytes}B exceeds Ethernet maximum "
                f"{MAX_PAYLOAD_BYTES}B; segment at a higher layer"
            )

    @property
    def frame_bytes(self) -> int:
        """Frame size on the wire excluding preamble/IPG (>= 64 bytes)."""
        raw = self.payload_bytes + ETHERNET_OVERHEAD_BYTES + VLAN_TAG_BYTES
        return max(raw, MIN_FRAME_BYTES)

    @property
    def wire_size_bytes(self) -> int:
        """Bytes occupying the link, including preamble and IPG."""
        return self.frame_bytes + WIRE_EXTRA_BYTES

    def serialization_time_ns(self, bandwidth_bps: float) -> int:
        """Time to clock this frame onto a link of the given bandwidth."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return round(self.wire_size_bytes * 8 / bandwidth_bps * 1e9)

    def copy_for_replication(self) -> "Packet":
        """A shallow copy with a fresh packet id (for mirroring/replication)."""
        clone = Packet(
            src=self.src,
            dst=self.dst,
            payload_bytes=self.payload_bytes,
            traffic_class=self.traffic_class,
            flow_id=self.flow_id,
            payload=dict(self.payload),
            created_ns=self.created_ns,
            sequence=self.sequence,
        )
        clone.hops = list(self.hops)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_bytes}B {self.traffic_class.name} "
            f"flow={self.flow_id!r} seq={self.sequence})"
        )

"""Packets and frames.

A :class:`Packet` is the unit that travels the simulated network.  It is a
layer-2 frame with optional structured payload: industrial protocols
(PROFINET-style cyclic data, Section 2.3's 20-250 byte payloads) and IT
traffic (ML tensors, elephant flows) both map onto it.

Sizes follow Ethernet accounting: ``wire_size_bytes`` adds the 18-byte
Ethernet header+FCS, the 20-byte preamble+IPG, and pads to the 64-byte
minimum frame — small industrial payloads are dominated by this overhead,
which is exactly why PCIe/NIC per-packet costs hurt them (Section 2.1).

``Packet`` is a slotted class with its wire sizes (and the 802.1Q PCP of
its traffic class) precomputed at construction, because the forwarding
hot path reads them several times per hop.  ``payload_bytes`` is
therefore fixed at construction; segment at a higher layer instead of
mutating it.

A module-level free list (:meth:`Packet.acquire` / :meth:`Packet.release`)
lets high-rate workload generators recycle dead frames instead of
allocating: ``release`` is an *explicit opt-in* for call sites that own
the end of a packet's life (e.g. an ML serving endpoint that has consumed
a frame); a released packet must have no other live references.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any

#: Ethernet header (14) + FCS (4).
ETHERNET_OVERHEAD_BYTES = 18
#: 802.1Q VLAN tag, carried by all TSN/industrial frames here.
VLAN_TAG_BYTES = 4
#: Preamble + start-of-frame delimiter (8) + inter-packet gap (12).
WIRE_EXTRA_BYTES = 20
#: Minimum Ethernet frame (header + payload + FCS).
MIN_FRAME_BYTES = 64
#: Maximum standard Ethernet payload.
MAX_PAYLOAD_BYTES = 1500

_packet_ids = itertools.count(1)

#: Free list for :meth:`Packet.acquire`; bounded so a burst cannot pin
#: unbounded memory.  Sized above the in-flight peak of the bursty ML
#: workloads (hundreds of clients x hundreds of segments per frame) so
#: steady state allocates no new packets.
_free_packets: list["Packet"] = []
_POOL_LIMIT = 32768


class TrafficClass(Enum):
    """Coarse traffic classes used for queueing decisions.

    ``CYCLIC_RT`` is the paper's new flow type: never-ending, deterministic
    microflows (Section 2.3).  The others mirror the standard data-center
    taxonomy (mice / medium / elephant) plus network control.
    """

    NETWORK_CONTROL = 7
    CYCLIC_RT = 6
    ALARM = 5
    LATENCY_SENSITIVE = 4
    BEST_EFFORT = 1
    BULK = 0

    @property
    def pcp(self) -> int:
        """802.1Q Priority Code Point carried in the VLAN tag."""
        return self.value


class Packet:
    """A simulated layer-2 frame.

    Attributes
    ----------
    src, dst:
        Endpoint names (stand-ins for MAC addresses).
    payload_bytes:
        L2 payload size, excluding Ethernet/VLAN overhead.
    traffic_class:
        Queueing class (maps to a PCP value); ``pcp`` caches that value.
    flow_id:
        Identifier of the flow this packet belongs to.
    payload:
        Structured, protocol-specific content (dict), e.g. PROFINET cyclic
        data or an InstaPLC connect request.  Carried by reference — the
        simulator never serializes it.
    created_ns:
        Time the packet was created at its source.
    hops:
        Device names traversed, appended by the forwarding path.
    frame_bytes, wire_size_bytes:
        Precomputed Ethernet frame accounting (see module docstring).
    """

    __slots__ = (
        "src",
        "dst",
        "payload_bytes",
        "traffic_class",
        "flow_id",
        "payload",
        "created_ns",
        "packet_id",
        "hops",
        "sequence",
        "pcp",
        "frame_bytes",
        "wire_size_bytes",
        "_pooled",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        flow_id: str = "",
        payload: dict[str, Any] | None = None,
        created_ns: int = 0,
        packet_id: int | None = None,
        hops: list[str] | None = None,
        sequence: int = 0,
    ) -> None:
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        if payload_bytes > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {payload_bytes}B exceeds Ethernet maximum "
                f"{MAX_PAYLOAD_BYTES}B; segment at a higher layer"
            )
        self.src = src
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.traffic_class = traffic_class
        self.flow_id = flow_id
        self.payload = {} if payload is None else payload
        self.created_ns = created_ns
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.hops = [] if hops is None else hops
        self.sequence = sequence
        self.pcp = traffic_class.value
        raw = payload_bytes + ETHERNET_OVERHEAD_BYTES + VLAN_TAG_BYTES
        frame = raw if raw >= MIN_FRAME_BYTES else MIN_FRAME_BYTES
        self.frame_bytes = frame
        self.wire_size_bytes = frame + WIRE_EXTRA_BYTES
        self._pooled = False

    # -- pooling -------------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        src: str,
        dst: str,
        payload_bytes: int,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        flow_id: str = "",
        payload: dict[str, Any] | None = None,
        created_ns: int = 0,
        sequence: int = 0,
    ) -> "Packet":
        """Create a packet, reusing a released instance when one is free.

        Identical to the constructor (including a fresh ``packet_id``)
        except that the object identity may be recycled from the pool.
        """
        if not _free_packets:
            return cls(
                src=src,
                dst=dst,
                payload_bytes=payload_bytes,
                traffic_class=traffic_class,
                flow_id=flow_id,
                payload=payload,
                created_ns=created_ns,
                sequence=sequence,
            )
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        if payload_bytes > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {payload_bytes}B exceeds Ethernet maximum "
                f"{MAX_PAYLOAD_BYTES}B; segment at a higher layer"
            )
        packet = _free_packets.pop()
        packet.src = src
        packet.dst = dst
        packet.payload_bytes = payload_bytes
        packet.traffic_class = traffic_class
        packet.flow_id = flow_id
        packet.payload = {} if payload is None else payload
        packet.created_ns = created_ns
        packet.packet_id = next(_packet_ids)
        packet.hops = []
        packet.sequence = sequence
        packet.pcp = traffic_class.value
        raw = payload_bytes + ETHERNET_OVERHEAD_BYTES + VLAN_TAG_BYTES
        frame = raw if raw >= MIN_FRAME_BYTES else MIN_FRAME_BYTES
        packet.frame_bytes = frame
        packet.wire_size_bytes = frame + WIRE_EXTRA_BYTES
        packet._pooled = False
        return packet

    def release(self) -> None:
        """Return this packet to the free pool.

        The caller asserts ownership of the packet's end of life: no other
        component may still reference it.  Double release is a no-op.
        """
        if self._pooled:
            return
        self._pooled = True
        # Drop references, never mutate in place: the payload dict may be
        # shared with the sender that built it.
        self.payload = None  # type: ignore[assignment]
        self.hops = None  # type: ignore[assignment]
        if len(_free_packets) < _POOL_LIMIT:
            _free_packets.append(self)

    @staticmethod
    def pool_size() -> int:
        """Number of released packets currently waiting for reuse."""
        return len(_free_packets)

    # -- wire accounting -----------------------------------------------------

    def serialization_time_ns(self, bandwidth_bps: float) -> int:
        """Time to clock this frame onto a link of the given bandwidth."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return round(self.wire_size_bytes * 8 / bandwidth_bps * 1e9)

    def copy_for_replication(self) -> "Packet":
        """A shallow copy with a fresh packet id (for mirroring/replication)."""
        clone = Packet.acquire(
            src=self.src,
            dst=self.dst,
            payload_bytes=self.payload_bytes,
            traffic_class=self.traffic_class,
            flow_id=self.flow_id,
            payload=dict(self.payload),
            created_ns=self.created_ns,
            sequence=self.sequence,
        )
        clone.hops = list(self.hops)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_bytes}B {self.traffic_class.name} "
            f"flow={self.flow_id!r} seq={self.sequence})"
        )

"""Ports and links.

A :class:`Port` belongs to a device and owns an egress queue; a
:class:`Link` joins exactly two ports.  Transmission is modeled in two
stages, as on real Ethernet:

1. **Serialization** — the frame occupies the transmitting port for
   ``wire_size / bandwidth``; the port is busy and further frames queue.
2. **Propagation** — after serialization the frame travels for the link's
   propagation delay and is handed to the peer device.

Links can be administratively downed (failure injection) and can drop frames
through a pluggable loss model — both are needed for the availability
experiments of Section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..obs import get_registry, get_telemetry
from ..simcore import Simulator
from .packet import Packet
from .queues import QueueDiscipline, StrictPriorityQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import Device


class Port:
    """One device-side endpoint of a link, with an egress queue."""

    def __init__(
        self,
        sim: Simulator,
        device: "Device",
        index: int,
        queue: QueueDiscipline | None = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.index = index
        # Explicit None check: an empty queue has len() == 0 and is falsy.
        self.queue: QueueDiscipline = (
            queue if queue is not None else StrictPriorityQueue()
        )
        self.link: Optional[Link] = None
        self.shaper = None  # set by repro.tsn when the port is TSN-scheduled
        self._transmitting = False
        #: Frame currently being clocked out (one at a time per port).
        self._tx_packet: Packet | None = None
        #: wire_size_bytes -> serialization ns, valid for ``_tx_cache_bw``.
        self._tx_cache: dict[int, int] = {}
        self._tx_cache_bw = 0.0
        #: Set by ``Link.__init__``; the port on the far end of our link.
        self._peer_port: Optional[Port] = None
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.egress_drops = 0
        # One shared per-frame serialization-time histogram across all
        # ports (ns buckets); null and free when observability is off.
        self._m_tx_ns = get_registry().histogram("net.port.tx_ns")
        # In-band telemetry probe, or None when the plane is inactive;
        # hot paths pay one attribute load + None test.
        self._tel = get_telemetry().port_probe(self)

    @property
    def name(self) -> str:
        """Human-readable port name, e.g. ``switch1[2]``."""
        return f"{self.device.name}[{self.index}]"

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the other end of the link, if connected."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def send(self, packet: Packet) -> None:
        """Queue a frame for egress and start transmitting if idle."""
        if not self._transmitting and self.shaper is None:
            link = self.link
            if link is not None and link.up and len(self.queue) == 0:
                # Idle unshaped port, empty queue: the frame would be
                # enqueued and immediately dequeued — transmit directly.
                self._begin_transmit(packet, link)
                return
        tel = self._tel
        if not self.queue.enqueue(packet):
            self.egress_drops += 1
            if tel is not None:
                tel.on_drop(packet)
            return
        if tel is not None:
            tel.on_enqueue(packet)
        self.try_transmit()

    def kick(self) -> None:
        """Re-evaluate transmission (called by shapers on gate changes)."""
        self.try_transmit()

    def try_transmit(self) -> None:
        """Begin transmitting the next eligible frame if the port is idle."""
        if self._transmitting:
            return
        link = self.link
        if link is None or not link.up:
            return
        if self.shaper is not None:
            packet, retry_ns = self.shaper.select(
                self.sim.now, self.queue, link.bandwidth_bps
            )
            if packet is None:
                if retry_ns is not None and retry_ns > 0:
                    self.sim.schedule(self.try_transmit, after=retry_ns)
                return
        else:
            packet = self.queue.dequeue()
            if packet is None:
                return
        self._begin_transmit(packet, link)

    def _begin_transmit(self, packet: Packet, link: "Link") -> None:
        """Clock ``packet`` out on ``link`` (the port must be idle)."""
        self._transmitting = True
        # Serialization time depends only on (wire size, bandwidth); memoise
        # per port, re-keyed whenever the link bandwidth changes.
        if link.bandwidth_bps != self._tx_cache_bw:
            self._tx_cache_bw = link.bandwidth_bps
            self._tx_cache = {}
        wire = packet.wire_size_bytes
        tx_ns = self._tx_cache.get(wire)
        if tx_ns is None:
            tx_ns = packet.serialization_time_ns(link.bandwidth_bps)
            self._tx_cache[wire] = tx_ns
        self._m_tx_ns.observe(tx_ns)
        tel = self._tel
        if tel is not None:
            tel.on_transmit(packet, tx_ns)
        # One frame in flight per port, so the packet rides on the port
        # itself instead of a per-frame closure.
        self._tx_packet = packet
        self.sim.schedule(self._finish_transmit, after=tx_ns)

    def _finish_transmit(self) -> None:
        packet = self._tx_packet
        self._tx_packet = None
        self._transmitting = False
        self.tx_frames += 1
        self.tx_bytes += packet.wire_size_bytes
        link = self.link
        if link is not None:
            link.propagate(packet, self)
        self.try_transmit()

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a frame arrives at this port."""
        self.rx_frames += 1
        self.rx_bytes += packet.wire_size_bytes
        self.device.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.name})"


class Link:
    """A full-duplex point-to-point link between two ports."""

    def __init__(
        self,
        sim: Simulator,
        port_a: Port,
        port_b: Port,
        bandwidth_bps: float = 1e9,
        propagation_delay_ns: int = 500,
        loss_model: Callable[[Packet], bool] | None = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_ns = propagation_delay_ns
        self.loss_model = loss_model
        self.up = True
        self.lost_frames = 0
        #: administrative down transitions (fault injection bookkeeping)
        self.downs = 0
        port_a.link = self
        port_b.link = self
        port_a._peer_port = port_b
        port_b._peer_port = port_a
        # One transition counter per link; null and free when obs is off.
        self._m_transitions = get_registry().counter(
            "net.link.state_changes", link=self.name
        )
        # Flight-recorder probe for state transitions (None when off).
        self._tel = get_telemetry().link_probe(self)

    @property
    def name(self) -> str:
        """Human-readable link name, e.g. ``cell0[0]<->leaf0[2]``."""
        return f"{self.port_a.name}<->{self.port_b.name}"

    def other_end(self, port: Port) -> Port:
        """The port opposite ``port`` on this link."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"{port!r} is not attached to this link")

    def propagate(self, packet: Packet, from_port: Port) -> None:
        """Carry a serialized frame to the far end (may drop it)."""
        if not self.up:
            self.lost_frames += 1
            return
        if self.loss_model is not None and self.loss_model(packet):
            self.lost_frames += 1
            return
        destination = from_port._peer_port
        self.sim.schedule(
            lambda: destination.deliver(packet),
            after=self.propagation_delay_ns,
        )

    def set_up(self) -> None:
        """Restore the link and restart any stalled transmissions."""
        if not self.up:
            self._m_transitions.inc()
            if self._tel is not None:
                self._tel.on_state(up=True)
        self.up = True
        self.port_a.try_transmit()
        self.port_b.try_transmit()

    def set_down(self) -> None:
        """Fail the link: in-queue frames stall, in-flight frames are lost."""
        if self.up:
            self.downs += 1
            self._m_transitions.inc()
            if self._tel is not None:
                self._tel.on_state(up=False)
        self.up = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"Link({self.port_a.name}<->{self.port_b.name}, {state})"

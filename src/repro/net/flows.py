"""Flow taxonomy and traffic generators.

Section 2.3 classifies data-center flows as mice (< 10 KB), medium
(~0.5 MB), and elephants (> 1 GB), then identifies the new vPLC flow type:
*cyclic, small-packet, strictly deterministic, never-ending*.  This module
encodes that taxonomy and provides host-attachable generators for each kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable

import numpy as np

from ..simcore import Process, Simulator
from .host import Host
from .packet import Packet, TrafficClass

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Flow-size thresholds from the paper's cited taxonomy.
MICE_MAX_BYTES = 10 * KB
MEDIUM_MAX_BYTES = 100 * MB
ELEPHANT_MIN_BYTES = 1 * GB


class FlowKind(Enum):
    """Flow categories, including the paper's new cyclic microflow."""

    MICE = auto()
    MEDIUM = auto()
    ELEPHANT = auto()
    CYCLIC_MICROFLOW = auto()


@dataclass(frozen=True)
class FlowSpec:
    """Static description of one flow.

    ``total_bytes`` is ``None`` for never-ending flows; ``period_ns`` is
    ``None`` for non-cyclic flows.
    """

    flow_id: str
    src: str
    dst: str
    total_bytes: int | None = None
    period_ns: int | None = None
    payload_bytes: int = MICE_MAX_BYTES
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT
    jitter_budget_ns: int | None = None

    @property
    def kind(self) -> FlowKind:
        """Classify per Section 2.3."""
        if self.total_bytes is None and self.period_ns is not None:
            return FlowKind.CYCLIC_MICROFLOW
        if self.total_bytes is None:
            return FlowKind.ELEPHANT  # unbounded stream without a cycle
        if self.total_bytes <= MICE_MAX_BYTES:
            return FlowKind.MICE
        if self.total_bytes >= ELEPHANT_MIN_BYTES:
            return FlowKind.ELEPHANT
        return FlowKind.MEDIUM

    @property
    def is_never_ending(self) -> bool:
        """True for the paper's new flow type (and unbounded streams)."""
        return self.total_bytes is None


def classify_flow(spec: FlowSpec) -> FlowKind:
    """Module-level alias for :attr:`FlowSpec.kind`."""
    return spec.kind


@dataclass
class FlowStats:
    """Counters a generator maintains while running."""

    packets_sent: int = 0
    bytes_sent: int = 0
    send_times_ns: list[int] = field(default_factory=list)


class CyclicSender:
    """Sends one small frame every cycle, forever — a vPLC-style microflow.

    ``release_jitter_fn`` models sender-side scheduling noise (e.g. a vPLC
    on a non-real-time kernel) as extra nanoseconds added per activation.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        release_jitter_fn: Callable[[], int] | None = None,
        start_ns: int = 0,
    ) -> None:
        if spec.period_ns is None or spec.period_ns <= 0:
            raise ValueError("cyclic flows need a positive period")
        self.sim = sim
        self.host = host
        self.spec = spec
        self.stats = FlowStats()
        self._release_jitter_fn = release_jitter_fn
        self._start_ns = start_ns
        self._process: Process | None = None
        self.running = False

    def start(self) -> None:
        """Begin emitting cyclic frames."""
        if self.running:
            return
        self.running = True
        self._process = self.sim.process(
            self._run(), name=f"cyclic:{self.spec.flow_id}"
        )

    def stop(self) -> None:
        """Silently stop — models a crashed/failed sender."""
        self.running = False
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _run(self):
        if self._start_ns:
            yield self._start_ns
        period = self.spec.period_ns
        next_release = self.sim.now
        while True:
            jitter = self._release_jitter_fn() if self._release_jitter_fn else 0
            if jitter > 0:
                yield jitter
            self._emit()
            next_release += period
            delay = next_release - self.sim.now
            yield max(0, delay)

    def _emit(self) -> None:
        self.stats.packets_sent += 1
        self.stats.bytes_sent += self.spec.payload_bytes
        self.stats.send_times_ns.append(self.sim.now)
        self.host.send(
            dst=self.spec.dst,
            payload_bytes=self.spec.payload_bytes,
            traffic_class=self.spec.traffic_class,
            flow_id=self.spec.flow_id,
            sequence=self.stats.packets_sent,
        )


class BulkSender:
    """Transfers ``total_bytes`` as back-to-back MTU frames (mice..elephant)."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        mtu_payload_bytes: int = 1460,
        inter_packet_gap_ns: int = 0,
        start_ns: int = 0,
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        if spec.total_bytes is None:
            raise ValueError("bulk flows need a finite size")
        self.sim = sim
        self.host = host
        self.spec = spec
        self.mtu_payload_bytes = mtu_payload_bytes
        self.inter_packet_gap_ns = inter_packet_gap_ns
        self.stats = FlowStats()
        self._start_ns = start_ns
        self._on_complete = on_complete
        self.completed = False

    def start(self) -> None:
        """Begin the transfer."""
        self.sim.process(self._run(), name=f"bulk:{self.spec.flow_id}")

    def _run(self):
        if self._start_ns:
            yield self._start_ns
        remaining = self.spec.total_bytes or 0
        while remaining > 0:
            size = min(remaining, self.mtu_payload_bytes)
            self.stats.packets_sent += 1
            self.stats.bytes_sent += size
            self.stats.send_times_ns.append(self.sim.now)
            self.host.send(
                dst=self.spec.dst,
                payload_bytes=size,
                traffic_class=self.spec.traffic_class,
                flow_id=self.spec.flow_id,
                sequence=self.stats.packets_sent,
            )
            remaining -= size
            if self.inter_packet_gap_ns:
                yield self.inter_packet_gap_ns
            else:
                yield None  # let the port drain; avoids unbounded queues
        self.completed = True
        if self._on_complete is not None:
            self._on_complete()


class PoissonSender:
    """Open-loop Poisson packet arrivals — generic IT background traffic."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        rate_pps: float,
        rng: np.random.Generator,
        start_ns: int = 0,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.host = host
        self.spec = spec
        self.rate_pps = rate_pps
        self.rng = rng
        self.stats = FlowStats()
        self._start_ns = start_ns
        self.running = False
        self._process: Process | None = None

    def start(self) -> None:
        """Begin emitting."""
        self.running = True
        self._process = self.sim.process(
            self._run(), name=f"poisson:{self.spec.flow_id}"
        )

    def stop(self) -> None:
        """Stop emitting."""
        self.running = False
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _run(self):
        if self._start_ns:
            yield self._start_ns
        mean_gap_ns = 1e9 / self.rate_pps
        while True:
            gap = max(1, int(self.rng.exponential(mean_gap_ns)))
            yield gap
            self.stats.packets_sent += 1
            self.stats.bytes_sent += self.spec.payload_bytes
            self.stats.send_times_ns.append(self.sim.now)
            self.host.send(
                dst=self.spec.dst,
                payload_bytes=self.spec.payload_bytes,
                traffic_class=self.spec.traffic_class,
                flow_id=self.spec.flow_id,
                sequence=self.stats.packets_sent,
            )

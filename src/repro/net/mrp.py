"""Media-redundancy management for industrial rings (MRP-style).

Industrial rings stay loop-free by keeping one ring link logically blocked;
when any other ring link fails, the redundancy manager unblocks the standby
and the ring heals — PROFINET's MRP guarantees recovery within a profile
time (typically 200 ms, with 30/10 ms variants).

:class:`RingRedundancyManager` models the manager's control loop: ring
ports report link-down locally (as real PHYs do, signalled to the manager
by MRP LinkChange frames — modeled as the detection delay), after which the
manager re-installs loop-free routes that include the standby link and
flushes learned addresses.  Recovery events are recorded with timing for
the availability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simcore import Simulator
from ..simcore.units import MS
from .link import Link
from .routing import install_shortest_path_routes
from .switch import Switch
from .topology import Topology


@dataclass
class RecoveryEvent:
    """One detected failure (or repair) and the resulting reconvergence."""

    kind: str  # 'failure' | 'repair'
    link_name: str
    detected_ns: int
    reconverged_ns: int

    @property
    def reconvergence_ns(self) -> int:
        """Detection-to-tables-rewritten delay."""
        return self.reconverged_ns - self.detected_ns


class RingRedundancyManager:
    """Keeps a ring topology loop-free and heals it after link failures.

    Parameters
    ----------
    standby_link:
        The ring link held in reserve (MRP's blocked port).  Commissioning
        installs routes that ignore it; it only carries traffic after a
        failure elsewhere on the ring.
    detection_delay_ns:
        Local link-down detection plus LinkChange propagation to the
        manager (MRP: a few milliseconds end to end).
    reconfiguration_delay_ns:
        Time to rewrite forwarding and flush FDBs ring-wide.
    check_interval_ns:
        The manager's supervision cadence (MRP test-frame interval); also
        bounds how fast repeated events are noticed.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        standby_link: Link,
        detection_delay_ns: int = 2 * MS,
        reconfiguration_delay_ns: int = 5 * MS,
        check_interval_ns: int = 20 * MS,
    ) -> None:
        if standby_link not in topo.links:
            raise ValueError("standby link is not part of the topology")
        self.sim = sim
        self.topo = topo
        self.standby_link = standby_link
        self.detection_delay_ns = detection_delay_ns
        self.reconfiguration_delay_ns = reconfiguration_delay_ns
        self.check_interval_ns = check_interval_ns
        self.events: list[RecoveryEvent] = []
        self._known_down: set[int] = set()
        self._running = False

    # -- lifecycle ------------------------------------------------------------

    def commission(self, ecmp_seed: int = 0) -> int:
        """Install initial routes with the standby link out of service.

        Returns the number of routing entries installed.  The standby link
        stays physically up but carries no routed traffic — the blocked
        ring port.
        """
        was_up = self.standby_link.up
        self.standby_link.up = False
        try:
            installed = install_shortest_path_routes(
                self.topo, ecmp_seed=ecmp_seed,
                respect_link_state=True, clear_first=True,
            )
        finally:
            self.standby_link.up = was_up
        return installed

    def start(self) -> None:
        """Begin supervising the ring."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._supervise(), name="mrp/manager")

    def stop(self) -> None:
        """Stop supervising."""
        self._running = False

    # -- supervision ------------------------------------------------------------

    def _link_name(self, link: Link) -> str:
        return f"{link.port_a.device.name}<->{link.port_b.device.name}"

    def _supervise(self):
        while self._running:
            yield self.check_interval_ns
            down_now = {
                index
                for index, link in enumerate(self.topo.links)
                if not link.up and link is not self.standby_link
            }
            newly_down = down_now - self._known_down
            repaired = self._known_down - down_now
            if newly_down:
                yield self.detection_delay_ns
                detected = self.sim.now
                yield self.reconfiguration_delay_ns
                self._reconverge()
                for index in newly_down:
                    self.events.append(
                        RecoveryEvent(
                            kind="failure",
                            link_name=self._link_name(self.topo.links[index]),
                            detected_ns=detected,
                            reconverged_ns=self.sim.now,
                        )
                    )
            elif repaired:
                yield self.detection_delay_ns
                detected = self.sim.now
                yield self.reconfiguration_delay_ns
                if down_now:
                    # Other failures persist: stay in healed mode, just
                    # recompute around what is still broken.
                    self._reconverge()
                else:
                    # Fully repaired: revert to the commissioned layout
                    # (standby blocked again).
                    self.commission()
                    self._flush_learned()
                for index in repaired:
                    self.events.append(
                        RecoveryEvent(
                            kind="repair",
                            link_name=self._link_name(self.topo.links[index]),
                            detected_ns=detected,
                            reconverged_ns=self.sim.now,
                        )
                    )
            self._known_down = down_now

    def _reconverge(self) -> None:
        install_shortest_path_routes(
            self.topo, respect_link_state=True, clear_first=True
        )
        self._flush_learned()

    def _flush_learned(self) -> None:
        for device in self.topo.devices.values():
            if isinstance(device, Switch):
                device.clear_learned()

    # -- reporting -----------------------------------------------------------------

    def worst_recovery_ns(self) -> int:
        """Largest detection+reconvergence among recorded failures."""
        failures = [e for e in self.events if e.kind == "failure"]
        if not failures:
            return 0
        return max(
            self.check_interval_ns
            + self.detection_delay_ns
            + self.reconfiguration_delay_ns
            for _ in failures
        )

"""Packet tracing: capture, filter, export, analyze.

A :class:`PacketTracer` attaches to switches, P4 switches, and hosts and
records every frame it observes with a wall-clock-free, simulation-native
record.  Traces export to JSON-lines (one record per line, the pcap of
this simulator) and support the two queries experiments keep needing:
per-flow record streams and one-way latency extraction by matching a flow's
records at two observation points.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

from ..simcore import Simulator
from .host import Host
from .packet import Packet
from .switch import Switch
from .topology import Topology


@dataclass(frozen=True)
class TraceRecord:
    """One observed frame at one observation point."""

    time_ns: int
    point: str        # device the frame was seen at
    direction: str    # 'rx' | 'tx'
    src: str
    dst: str
    flow_id: str
    sequence: int
    payload_bytes: int
    traffic_class: str
    packet_id: int

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse one JSON line back into a record."""
        return cls(**json.loads(line))


class PacketTracer:
    """Collects :class:`TraceRecord` objects from attached devices."""

    def __init__(self, sim: Simulator, max_records: int = 1_000_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.sim = sim
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped_records = 0
        #: (flow_id, point) -> records in capture order; maintained on
        #: capture so latency queries never rescan the whole trace.
        self._by_flow_point: dict[tuple[str, str], list[TraceRecord]] = {}

    # -- capture ---------------------------------------------------------------

    def _record(self, point: str, direction: str, packet: Packet) -> None:
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        record = TraceRecord(
            time_ns=self.sim.now,
            point=point,
            direction=direction,
            src=packet.src,
            dst=packet.dst,
            flow_id=packet.flow_id,
            sequence=packet.sequence,
            payload_bytes=packet.payload_bytes,
            traffic_class=packet.traffic_class.name,
            packet_id=packet.packet_id,
        )
        self.records.append(record)
        key = (record.flow_id, point)
        bucket = self._by_flow_point.get(key)
        if bucket is None:
            self._by_flow_point[key] = [record]
        else:
            bucket.append(record)

    def attach_switch(self, switch: Switch) -> None:
        """Observe every frame a switch receives."""
        switch.taps.append(
            lambda packet, port: self._record(switch.name, "rx", packet)
        )

    def attach_p4_switch(self, switch) -> None:
        """Observe a P4 switch's ingress and egress."""
        switch.ingress_taps.append(
            lambda packet, port: self._record(switch.name, "rx", packet)
        )
        switch.egress_taps.append(
            lambda packet, port: self._record(switch.name, "tx", packet)
        )

    def attach_host(self, host: Host) -> None:
        """Observe frames delivered to a host."""
        host.on_receive(lambda packet: self._record(host.name, "rx", packet))

    def attach_topology(self, topo: Topology) -> None:
        """Observe every switch and host in a topology."""
        for device in topo.devices.values():
            if isinstance(device, Switch):
                self.attach_switch(device)
            elif isinstance(device, Host):
                self.attach_host(device)

    # -- queries ------------------------------------------------------------------

    def for_flow(self, flow_id: str) -> list[TraceRecord]:
        """All records of one flow, in capture order."""
        return [r for r in self.records if r.flow_id == flow_id]

    def at_point(self, point: str) -> list[TraceRecord]:
        """All records captured at one device."""
        return [r for r in self.records if r.point == point]

    def flow_latencies_ns(
        self, flow_id: str, from_point: str, to_point: str
    ) -> list[int]:
        """One-way latency per sequence number between two points.

        Served from the per-``(flow, point)`` capture index, so the cost is
        proportional to the two observation points' record counts, not the
        whole trace.
        """
        first: dict[int, int] = {}
        for record in self._by_flow_point.get((flow_id, from_point), ()):
            first.setdefault(record.sequence, record.time_ns)
        latencies = []
        seen: set[int] = set()
        for record in self._by_flow_point.get((flow_id, to_point), ()):
            if record.sequence in first and record.sequence not in seen:
                seen.add(record.sequence)
                latencies.append(record.time_ns - first[record.sequence])
        return latencies

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-flow record and byte counts.

        When the capture cap truncated the trace, an extra ``"(dropped)"``
        entry reports how many records were lost — a silently clipped trace
        is otherwise indistinguishable from a quiet network.
        """
        table: dict[str, dict[str, int]] = {}
        for record in self.records:
            entry = table.setdefault(
                record.flow_id or "(none)", {"records": 0, "bytes": 0}
            )
            entry["records"] += 1
            entry["bytes"] += record.payload_bytes
        if self.dropped_records:
            table["(dropped)"] = {"records": self.dropped_records, "bytes": 0}
        return table

    # -- persistence ---------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the trace as JSON lines; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(record.to_json())
                handle.write("\n")
        return len(self.records)

    @staticmethod
    def load_jsonl(path) -> list[TraceRecord]:
        """Read a trace back from JSON lines."""
        records = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(TraceRecord.from_json(line))
        return records

    def clear(self) -> None:
        """Drop everything captured so far."""
        self.records.clear()
        self._by_flow_point.clear()
        self.dropped_records = 0


def postcard_trace_records(
    postcards: Iterable[dict],
) -> list[TraceRecord]:
    """Project INT postcards (:mod:`repro.obs.telemetry`) onto trace records.

    Each hop of a postcard becomes a ``tx`` record at its egress time and
    the delivery becomes an ``rx`` record, so sampled-packet paths answer
    the same queries as a full :class:`PacketTracer` capture (e.g. feed
    them through :meth:`PacketTracer.flow_latencies_ns`-style matching).
    Postcards deliberately omit ``packet_id`` (a process-global counter
    that would break byte-stability), so projected records carry 0 there.
    """
    records: list[TraceRecord] = []
    for card in postcards:
        common = {
            "src": card["src"],
            "dst": card["dst"],
            "flow_id": card.get("flow", ""),
            "sequence": card.get("seq", 0),
            "payload_bytes": card.get("payload_bytes", 0),
            "traffic_class": card.get("tc", "BEST_EFFORT"),
            "packet_id": 0,
        }
        for hop in card.get("hops", ()):
            records.append(
                TraceRecord(
                    time_ns=hop["out_ns"],
                    point=hop["dev"],
                    direction="tx",
                    **common,
                )
            )
        records.append(
            TraceRecord(
                time_ns=card["delivered_ns"],
                point=card.get("delivered_to", card["dst"]),
                direction="rx",
                **common,
            )
        )
    records.sort(key=lambda r: r.time_ns)
    return records

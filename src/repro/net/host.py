"""End hosts.

A :class:`Host` owns one or more ports and dispatches received frames to
registered handlers.  Applications (PLC runtimes, I/O device firmware, ML
clients, traffic generators) attach via :meth:`on_receive` or by subscribing
to a flow id.
"""

from __future__ import annotations

from typing import Callable

from ..obs import get_registry, get_telemetry
from ..simcore import Simulator
from .device import Device
from .link import Port
from .packet import Packet
from .packet import TrafficClass

ReceiveHandler = Callable[[Packet], None]


class Host(Device):
    """An end station with handler-based packet delivery."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: list[ReceiveHandler] = []
        self._flow_handlers: dict[str, list[ReceiveHandler]] = {}
        self.received: list[Packet] = []
        self.record_received = False
        self.rx_count = 0
        self.tx_count = 0
        registry = get_registry()
        self._m_rx = registry.counter("net.host.frames", host=name, direction="rx")
        self._m_tx = registry.counter("net.host.frames", host=name, direction="tx")
        # INT postcard begin/finish probe (None when telemetry is off).
        self._tel = get_telemetry().host_probe(self)

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register a handler for every frame addressed to this host."""
        self._handlers.append(handler)

    def on_flow(self, flow_id: str, handler: ReceiveHandler) -> None:
        """Register a handler only for frames of one flow."""
        self._flow_handlers.setdefault(flow_id, []).append(handler)

    def receive(self, packet: Packet, in_port: Port) -> None:
        if packet.dst != self.name and packet.dst != "*":
            # Frame flooded to us but not ours: drop silently like a NIC
            # without promiscuous mode.
            return
        self.rx_count += 1
        self._m_rx.inc()
        if self._tel is not None:
            self._tel.on_deliver(packet)
        if self.record_received:
            self.received.append(packet)
        for handler in self._handlers:
            handler(packet)
        for handler in self._flow_handlers.get(packet.flow_id, ()):
            handler(packet)

    def send(
        self,
        dst: str,
        payload_bytes: int,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        flow_id: str = "",
        payload: dict | None = None,
        sequence: int = 0,
        port_index: int | None = None,
    ) -> Packet:
        """Create a packet and hand it to the given port for egress."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no ports")
        packet = Packet.acquire(
            src=self.name,
            dst=dst,
            payload_bytes=payload_bytes,
            traffic_class=traffic_class,
            flow_id=flow_id,
            payload=payload or {},
            created_ns=self.sim.now,
            sequence=sequence,
        )
        self.tx_count += 1
        self._m_tx.inc()
        if self._tel is not None:
            self._tel.on_send(packet)
        self.ports[self._egress_port_for(dst, port_index)].send(packet)
        return packet

    def _egress_port_for(self, dst: str, port_index: int | None) -> int:
        """Pick the egress port (single-homed hosts just use port 0)."""
        if port_index is not None:
            return port_index
        return 0


class ServerNode(Host):
    """A multi-homed host that also forwards — BCube's server-centric role.

    Carries its own forwarding table (destination name -> port index), so
    routing can run *through* servers.  Forwarding costs
    ``forwarding_delay_ns`` per transited frame (software NIC-to-NIC
    forwarding on the server's CPU).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        forwarding_delay_ns: int = 5_000,
    ) -> None:
        super().__init__(sim, name)
        self.forwarding_delay_ns = forwarding_delay_ns
        self.forwarding_table: dict[str, int] = {}
        self.forwarded_frames = 0

    #: ServerNodes may be transited by routed paths.
    can_transit = True

    def install_route(self, destination: str, port_index: int) -> None:
        """Pin a route for frames this server relays."""
        if not 0 <= port_index < len(self.ports):
            raise ValueError(
                f"{self.name}: port {port_index} does not exist"
            )
        self.forwarding_table[destination] = port_index

    def receive(self, packet: Packet, in_port: Port) -> None:
        if packet.dst == self.name or packet.dst == "*":
            super().receive(packet, in_port)
            return
        out_index = self.forwarding_table.get(packet.dst)
        if out_index is None or out_index == in_port.index:
            return  # not ours and no relay route: drop
        if self._tel is not None:
            # Transit through a server counts as an INT hop: stamp ingress
            # here, egress happens at the outbound port.
            self._tel.hub.stamp_ingress(packet, self.name, self.sim.now)
        self.sim.schedule(
            lambda: self._relay(packet, out_index),
            after=self.forwarding_delay_ns,
        )

    def _relay(self, packet: Packet, out_index: int) -> None:
        packet.hops.append(self.name)
        self.forwarded_frames += 1
        self.ports[out_index].send(packet)

    def _egress_port_for(self, dst: str, port_index: int | None) -> int:
        if port_index is not None:
            return port_index
        # Multi-homed: originate along the installed route when known.
        return self.forwarding_table.get(dst, 0)

"""Egress queue disciplines.

Each output port owns a queue discipline deciding which frame transmits
next.  Three disciplines cover the paper's scenarios:

- :class:`FifoQueue` — plain store-and-forward (legacy industrial switches);
- :class:`StrictPriorityQueue` — 802.1Q strict priority by PCP, the default
  for converged IT/OT switches here;
- the TSN time-aware shaper lives in :mod:`repro.tsn.shaper` and wraps one
  of these per gate.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Protocol

from ..obs import get_registry
from .packet import Packet


class QueueDiscipline(Protocol):
    """Interface every egress queue implements."""

    def enqueue(self, packet: Packet) -> bool:
        """Accept a frame.  Returns ``False`` when the frame was dropped."""
        ...

    def dequeue(self) -> Packet | None:
        """Pop the next frame to transmit, or ``None`` when empty."""
        ...

    def __len__(self) -> int:
        ...

    def class_depth(self, pcp: int) -> int:
        """Frames queued for one PCP class (telemetry samplers read this;
        single-class disciplines report their total depth)."""
        ...


class FifoQueue:
    """Single FIFO with a finite capacity (drop-tail)."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._queue: deque[Packet] = deque()
        self.drops = 0
        # Queues carry no identity, so drops aggregate per discipline kind.
        self._m_drops = get_registry().counter("net.queue.drops", kind="fifo")

    def enqueue(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            self.drops += 1
            self._m_drops.inc()
            return False
        self._queue.append(packet)
        return True

    def dequeue(self) -> Packet | None:
        if not self._queue:
            return None
        return self._queue.popleft()

    def class_depth(self, pcp: int) -> int:
        """A FIFO has one class; every PCP reports the total depth."""
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class StrictPriorityQueue:
    """Eight PCP-indexed FIFOs served in strict priority order.

    Higher PCP always wins; within a PCP, FIFO order.  This is the 802.1Q
    default transmission-selection algorithm.
    """

    PCP_LEVELS = 8

    def __init__(self, capacity_per_class: int = 500) -> None:
        if capacity_per_class < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity_per_class = capacity_per_class
        self._queues: list[deque[Packet]] = [
            deque() for _ in range(self.PCP_LEVELS)
        ]
        #: Bitmask of non-empty PCP classes; bit_length()-1 is the highest
        #: occupied priority, making dequeue O(1) instead of an 8-way scan.
        self._occupied = 0
        self._size = 0
        self.drops = 0
        self._m_drops = get_registry().counter(
            "net.queue.drops", kind="strict_priority"
        )

    def enqueue(self, packet: Packet) -> bool:
        pcp = packet.pcp
        queue = self._queues[pcp]
        if len(queue) >= self.capacity_per_class:
            self.drops += 1
            self._m_drops.inc()
            return False
        queue.append(packet)
        self._occupied |= 1 << pcp
        self._size += 1
        return True

    def dequeue(self) -> Packet | None:
        mask = self._occupied
        if not mask:
            return None
        pcp = mask.bit_length() - 1
        queue = self._queues[pcp]
        packet = queue.popleft()
        if not queue:
            self._occupied = mask ^ (1 << pcp)
        self._size -= 1
        return packet

    def dequeue_from(self, allowed_pcps: Iterable[int]) -> Packet | None:
        """Pop the highest-priority frame among the allowed PCPs only.

        Used by the TSN time-aware shaper: only queues whose gate is open
        may transmit.
        """
        allowed = (
            allowed_pcps
            if isinstance(allowed_pcps, (set, frozenset))
            else set(allowed_pcps)
        )
        queues = self._queues
        for pcp in range(self.PCP_LEVELS - 1, -1, -1):
            if pcp in allowed and queues[pcp]:
                packet = queues[pcp].popleft()
                if not queues[pcp]:
                    self._occupied &= ~(1 << pcp)
                self._size -= 1
                return packet
        return None

    def peek_from(self, allowed_pcps: Iterable[int]) -> Packet | None:
        """Like :meth:`dequeue_from` but without removing the frame."""
        allowed = (
            allowed_pcps
            if isinstance(allowed_pcps, (set, frozenset))
            else set(allowed_pcps)
        )
        queues = self._queues
        for pcp in range(self.PCP_LEVELS - 1, -1, -1):
            if pcp in allowed and queues[pcp]:
                return queues[pcp][0]
        return None

    def class_depth(self, pcp: int) -> int:
        """Frames queued for one PCP class (O(1); samplers poll this)."""
        return len(self._queues[pcp])

    def occupancy_by_pcp(self) -> dict[int, int]:
        """Queue depth per PCP (only non-empty classes)."""
        return {
            pcp: len(queue)
            for pcp, queue in enumerate(self._queues)
            if queue
        }

    def __len__(self) -> int:
        return self._size

"""Static shortest-path routing.

Industrial networks are commissioned with fixed routes (Section 2.3), so we
precompute shortest paths and install static forwarding entries on every
forwarding device — switches, and :class:`repro.net.host.ServerNode`
servers in server-centric topologies like BCube.  When several equal-cost
next hops exist (leaf-spine fabrics), the tie is broken by a deterministic
hash of ``(device, destination)`` — a static-table stand-in for ECMP that
spreads destinations across spines.

Paths may only *transit* devices that can forward; a plain host can be an
endpoint but never a relay, which BFS respects via the transit set.
"""

from __future__ import annotations

import hashlib
from collections import deque

from .device import Device
from .host import Host
from .topology import Topology


def _can_forward(device: Device) -> bool:
    return hasattr(device, "install_route")


def bfs_distances(
    adjacency: dict[str, list[tuple[str, int]]],
    source: str,
    transit: set[str] | None = None,
) -> dict[str, int]:
    """Hop distance from ``source`` to every reachable device.

    With ``transit`` given, only the source and members of ``transit`` are
    expanded — other nodes can terminate a path but not relay it.
    """
    distances = {source: 0}
    frontier: deque[str] = deque([source])
    while frontier:
        current = frontier.popleft()
        if transit is not None and current != source and current not in transit:
            continue
        for neighbor, _ in adjacency[current]:
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                frontier.append(neighbor)
    return distances


def _tie_break(device_name: str, destination: str, choices: int, seed: int) -> int:
    digest = hashlib.sha256(
        f"{seed}/{device_name}/{destination}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "little") % choices


def _transit_set(topo: Topology) -> set[str]:
    return {
        name for name, device in topo.devices.items() if _can_forward(device)
    }


def shortest_path(topo: Topology, src: str, dst: str) -> list[str]:
    """Device names along one shortest valid path from ``src`` to ``dst``."""
    adjacency = topo.adjacency()
    transit = _transit_set(topo)
    distances = bfs_distances(adjacency, dst, transit=transit)
    if src not in distances:
        raise ValueError(f"no path from {src!r} to {dst!r}")
    path = [src]
    current = src
    while current != dst:
        candidates = [
            neighbor
            for neighbor, _ in adjacency[current]
            if distances.get(neighbor, float("inf")) == distances[current] - 1
            and (neighbor in transit or neighbor == dst)
        ]
        current = sorted(candidates)[0]
        path.append(current)
    return path


def install_shortest_path_routes(
    topo: Topology,
    ecmp_seed: int = 0,
    respect_link_state: bool = False,
    clear_first: bool = False,
) -> int:
    """Install static routes on all forwarding devices for every host.

    Returns the number of table entries installed.  Routes are loop-free by
    construction (each entry strictly decreases the BFS distance to the
    destination), which is what a ring-redundancy protocol's blocked port
    achieves in a physical ring.

    ``respect_link_state`` routes around down links (used by reconvergence
    after a failure); ``clear_first`` wipes existing tables so stale
    entries cannot shadow the new ones.
    """
    adjacency = topo.adjacency(only_up=respect_link_state)
    transit = _transit_set(topo)
    if clear_first:
        for device in topo.devices.values():
            if _can_forward(device):
                device.forwarding_table.clear()  # type: ignore[attr-defined]
    routers = [
        device for device in topo.devices.values() if _can_forward(device)
    ]
    installed = 0
    for host in topo.hosts():
        distances = bfs_distances(adjacency, host.name, transit=transit)
        for router in routers:
            if router.name not in distances or router.name == host.name:
                continue
            next_hops = [
                (neighbor, port_index)
                for neighbor, port_index in adjacency[router.name]
                if distances.get(neighbor, float("inf"))
                == distances[router.name] - 1
                and (neighbor in transit or neighbor == host.name)
            ]
            if not next_hops:
                continue
            next_hops.sort()
            choice = _tie_break(router.name, host.name, len(next_hops), ecmp_seed)
            _, port_index = next_hops[choice]
            router.install_route(host.name, port_index)
            installed += 1
    return installed


def verify_routes(topo: Topology) -> list[str]:
    """Check installed routes for loops and dead ends.

    Returns a list of human-readable problems (empty = all good).  Walks
    every (router, host) pair along the installed tables, transiting any
    forwarding device.
    """
    problems: list[str] = []
    hosts = {host.name for host in topo.hosts()}
    routers = [
        device for device in topo.devices.values() if _can_forward(device)
    ]
    max_hops = len(topo.devices) + 1
    for router in routers:
        for destination in hosts:
            if router.name == destination:
                continue
            current: Device = router
            visited: set[str] = set()
            hops = 0
            while _can_forward(current) and current.name != destination:
                if current.name in visited:
                    problems.append(
                        f"loop routing to {destination} starting at {router.name}"
                    )
                    break
                visited.add(current.name)
                out_index = current.forwarding_table.get(destination)  # type: ignore[attr-defined]
                if out_index is None:
                    problems.append(
                        f"{current.name} has no route to {destination}"
                    )
                    break
                peer = current.ports[out_index].peer
                if peer is None:
                    problems.append(
                        f"{current.name} routes {destination} to an unwired port"
                    )
                    break
                current = peer.device
                hops += 1
                if hops > max_hops:
                    problems.append(
                        f"path to {destination} from {router.name} too long"
                    )
                    break
            else:
                if current.name != destination:
                    problems.append(
                        f"route from {router.name} to {destination} "
                        f"ends at {current.name}"
                    )
    return problems

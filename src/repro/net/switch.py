"""Store-and-forward Ethernet switch.

The switch forwards by destination name using either a static forwarding
table (installed by :mod:`repro.net.routing`) or MAC-style learning with
flooding.  A configurable processing latency models the store-and-forward
pipeline (lookup + switching fabric), which for industrial switches is a
documented per-hop cost.
"""

from __future__ import annotations

from typing import Callable

from ..obs import get_registry, get_telemetry
from ..simcore import Simulator
from .device import Device
from .link import Port
from .packet import Packet
from .queues import QueueDiscipline, StrictPriorityQueue


class Switch(Device):
    """A learning switch with per-port strict-priority egress queues."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        processing_delay_ns: int = 1_000,
        queue_factory: Callable[[], QueueDiscipline] | None = None,
    ) -> None:
        super().__init__(sim, name)
        if processing_delay_ns < 0:
            raise ValueError("processing delay cannot be negative")
        self.processing_delay_ns = processing_delay_ns
        self._queue_factory = queue_factory or StrictPriorityQueue
        #: destination name -> egress port index (static routes win over
        #: learned entries)
        self.forwarding_table: dict[str, int] = {}
        self._learned: dict[str, int] = {}
        self.learning_enabled = True
        self.forwarded_frames = 0
        self.flooded_frames = 0
        self.filtered_frames = 0
        #: observers called on every received frame (monitoring hooks)
        self.taps: list[Callable[[Packet, Port], None]] = []
        registry = get_registry()
        self._m_forwarded = registry.counter(
            "net.switch.frames", switch=name, outcome="forwarded"
        )
        self._m_flooded = registry.counter(
            "net.switch.frames", switch=name, outcome="flooded"
        )
        self._m_filtered = registry.counter(
            "net.switch.frames", switch=name, outcome="filtered"
        )
        # INT ingress-stamp probe (None when the telemetry plane is off).
        self._tel = get_telemetry().switch_probe(self)

    def add_port(self, queue: QueueDiscipline | None = None) -> Port:
        """Attach a port, defaulting to this switch's queue factory."""
        if queue is None:
            queue = self._queue_factory()
        return super().add_port(queue=queue)

    def install_route(self, destination: str, port_index: int) -> None:
        """Pin a static route for ``destination`` to a local port."""
        if not 0 <= port_index < len(self.ports):
            raise ValueError(
                f"{self.name}: port {port_index} does not exist "
                f"(have {len(self.ports)})"
            )
        self.forwarding_table[destination] = port_index

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Learn, look up, and forward after the processing delay."""
        if self._tel is not None:
            self._tel.on_ingress(packet)
        for tap in self.taps:
            tap(packet, in_port)
        if self.learning_enabled and packet.src:
            self._learned[packet.src] = in_port.index
        self.sim.schedule(
            lambda: self._forward(packet, in_port),
            after=self.processing_delay_ns,
        )

    def _forward(self, packet: Packet, in_port: Port) -> None:
        packet.hops.append(self.name)
        out_index = self.forwarding_table.get(packet.dst)
        if out_index is None:
            out_index = self._learned.get(packet.dst)
        if out_index is None:
            self._flood(packet, in_port)
            return
        if out_index == in_port.index:
            # Destination is back where the frame came from: filter it, as a
            # real bridge would.
            self.filtered_frames += 1
            self._m_filtered.inc()
            return
        self.forwarded_frames += 1
        self._m_forwarded.inc()
        self.ports[out_index].send(packet)

    def _flood(self, packet: Packet, in_port: Port) -> None:
        self.flooded_frames += 1
        self._m_flooded.inc()
        for port in self.ports:
            if port.index != in_port.index and port.link is not None:
                port.send(packet.copy_for_replication())

    def clear_learned(self) -> None:
        """Forget all dynamically learned addresses."""
        self._learned.clear()

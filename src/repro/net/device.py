"""Base class for network devices."""

from __future__ import annotations

from ..simcore import Simulator
from .link import Port
from .packet import Packet
from .queues import QueueDiscipline


class Device:
    """Anything with ports: switches, hosts, programmable data planes."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list[Port] = []

    def add_port(self, queue: QueueDiscipline | None = None) -> Port:
        """Create and attach a new port."""
        port = Port(self.sim, self, index=len(self.ports), queue=queue)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Handle an arriving frame.  Subclasses must override."""
        raise NotImplementedError

    def neighbor_devices(self) -> list["Device"]:
        """Devices directly connected to this one."""
        neighbors = []
        for port in self.ports:
            peer = port.peer
            if peer is not None:
                neighbors.append(peer.device)
        return neighbors

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, ports={len(self.ports)})"

"""Topology container and builders.

Section 2.3 contrasts industrial topologies — "line, ring, star, or tree,
carefully engineered ... largely static after commissioning" — with
data-center designs (Clos, fat-tree, leaf-spine).  This module builds all of
them over the same :class:`Device`/:class:`Link` substrate so the Figure 6
experiments can compare them directly.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..simcore import Simulator
from .device import Device
from .host import Host, ServerNode
from .link import Link
from .packet import Packet
from .queues import QueueDiscipline
from .switch import Switch

#: Industrial copper/fiber run at cell scale: ~100 m => ~500 ns.
DEFAULT_PROP_DELAY_NS = 500
#: Gigabit Ethernet, the common industrial/TSN rate.
DEFAULT_BANDWIDTH_BPS = 1e9


class Topology:
    """A named collection of devices and the links joining them."""

    def __init__(self, sim: Simulator, name: str = "topology") -> None:
        self.sim = sim
        self.name = name
        self.devices: dict[str, Device] = {}
        self.links: list[Link] = []

    # -- construction -------------------------------------------------------

    def add_switch(self, name: str, **kwargs) -> Switch:
        """Create a switch and register it."""
        return self._register(Switch(self.sim, name, **kwargs))

    def add_host(self, name: str) -> Host:
        """Create a host and register it."""
        return self._register(Host(self.sim, name))

    def add_server(self, name: str, forwarding_delay_ns: int = 5_000) -> ServerNode:
        """Create a forwarding server (for server-centric topologies)."""
        return self._register(ServerNode(self.sim, name, forwarding_delay_ns))

    def add_device(self, device: Device) -> Device:
        """Register an externally constructed device (e.g. a P4 switch)."""
        return self._register(device)

    def _register(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def connect(
        self,
        a: "Device | str",
        b: "Device | str",
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
        loss_model: Callable[[Packet], bool] | None = None,
        queue_a: QueueDiscipline | None = None,
        queue_b: QueueDiscipline | None = None,
    ) -> Link:
        """Create a full-duplex link between two devices."""
        device_a = self._resolve(a)
        device_b = self._resolve(b)
        port_a = device_a.add_port(queue=queue_a)
        port_b = device_b.add_port(queue=queue_b)
        link = Link(
            self.sim,
            port_a,
            port_b,
            bandwidth_bps=bandwidth_bps,
            propagation_delay_ns=propagation_delay_ns,
            loss_model=loss_model,
        )
        self.links.append(link)
        return link

    def _resolve(self, device: "Device | str") -> Device:
        if isinstance(device, Device):
            return device
        try:
            return self.devices[device]
        except KeyError:
            raise KeyError(f"no device named {device!r} in {self.name}") from None

    # -- queries ------------------------------------------------------------

    def hosts(self) -> list[Host]:
        """All registered hosts, in insertion order."""
        return [d for d in self.devices.values() if isinstance(d, Host)]

    def switches(self) -> list[Switch]:
        """All registered switches, in insertion order."""
        return [d for d in self.devices.values() if isinstance(d, Switch)]

    def adjacency(self, only_up: bool = False) -> dict[str, list[tuple[str, int]]]:
        """Adjacency map: device name -> [(neighbor name, local port index)].

        With ``only_up`` set, administratively/physically down links are
        excluded — the view a reconverging control plane works from.
        """
        result: dict[str, list[tuple[str, int]]] = {
            name: [] for name in self.devices
        }
        for link in self.links:
            if only_up and not link.up:
                continue
            a, b = link.port_a, link.port_b
            result[a.device.name].append((b.device.name, a.index))
            result[b.device.name].append((a.device.name, b.index))
        return result

    def link_between(self, a: str, b: str) -> Link | None:
        """The first link joining devices ``a`` and ``b``, if any."""
        for link in self.links:
            ends = {link.port_a.device.name, link.port_b.device.name}
            if ends == {a, b}:
                return link
        return None

    def is_connected(self) -> bool:
        """True when every device is reachable from every other."""
        if not self.devices:
            return True
        adjacency = self.adjacency()
        start = next(iter(self.devices))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor, _ in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.devices)


# -- builders ----------------------------------------------------------------


def build_line(
    sim: Simulator,
    host_count: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """A line of switches, one host per switch — classic fieldbus daisy chain."""
    if host_count < 1:
        raise ValueError("need at least one host")
    topo = Topology(sim, name=f"line{host_count}")
    previous: Switch | None = None
    for i in range(host_count):
        switch = topo.add_switch(f"sw{i}")
        host = topo.add_host(f"h{i}")
        topo.connect(switch, host, bandwidth_bps, propagation_delay_ns)
        if previous is not None:
            topo.connect(previous, switch, bandwidth_bps, propagation_delay_ns)
        previous = switch
    return topo


def build_ring(
    sim: Simulator,
    switch_count: int,
    hosts_per_switch: int = 1,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """An industrial ring (e.g. MRP): switches in a cycle, hosts hanging off.

    Note: ring routing must break the loop; :mod:`repro.net.routing` computes
    loop-free shortest paths, playing the role of the ring protocol's blocked
    port.
    """
    if switch_count < 3:
        raise ValueError("a ring needs at least three switches")
    topo = Topology(sim, name=f"ring{switch_count}")
    switches = [topo.add_switch(f"sw{i}") for i in range(switch_count)]
    for i, switch in enumerate(switches):
        topo.connect(
            switch,
            switches[(i + 1) % switch_count],
            bandwidth_bps,
            propagation_delay_ns,
        )
        for j in range(hosts_per_switch):
            host = topo.add_host(f"h{i}_{j}")
            topo.connect(switch, host, bandwidth_bps, propagation_delay_ns)
    return topo


def build_star(
    sim: Simulator,
    host_count: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """One central switch with all hosts attached."""
    if host_count < 1:
        raise ValueError("need at least one host")
    topo = Topology(sim, name=f"star{host_count}")
    center = topo.add_switch("sw0")
    for i in range(host_count):
        host = topo.add_host(f"h{i}")
        topo.connect(center, host, bandwidth_bps, propagation_delay_ns)
    return topo


def build_tree(
    sim: Simulator,
    depth: int,
    fanout: int,
    hosts_per_leaf: int = 1,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """A balanced switch tree with hosts under the leaf switches."""
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be at least 1")
    topo = Topology(sim, name=f"tree_d{depth}_f{fanout}")
    root = topo.add_switch("sw_root")
    level = [root]
    counter = 0
    for current_depth in range(1, depth + 1):
        next_level = []
        for parent in level:
            for _ in range(fanout):
                child = topo.add_switch(f"sw{counter}")
                counter += 1
                topo.connect(parent, child, bandwidth_bps, propagation_delay_ns)
                next_level.append(child)
        level = next_level
    for leaf_index, leaf in enumerate(level):
        for j in range(hosts_per_leaf):
            host = topo.add_host(f"h{leaf_index}_{j}")
            topo.connect(leaf, host, bandwidth_bps, propagation_delay_ns)
    return topo


def build_leaf_spine(
    sim: Simulator,
    leaf_count: int,
    spine_count: int,
    hosts_per_leaf: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    uplink_bandwidth_bps: float | None = None,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """A two-tier leaf-spine fabric (every leaf connects to every spine)."""
    if leaf_count < 1 or spine_count < 1:
        raise ValueError("need at least one leaf and one spine")
    uplink = uplink_bandwidth_bps or bandwidth_bps
    topo = Topology(sim, name=f"leafspine_{leaf_count}x{spine_count}")
    spines = [topo.add_switch(f"spine{i}") for i in range(spine_count)]
    for leaf_index in range(leaf_count):
        leaf = topo.add_switch(f"leaf{leaf_index}")
        for spine in spines:
            topo.connect(leaf, spine, uplink, propagation_delay_ns)
        for j in range(hosts_per_leaf):
            host = topo.add_host(f"h{leaf_index}_{j}")
            topo.connect(leaf, host, bandwidth_bps, propagation_delay_ns)
    return topo


def build_fat_tree(
    sim: Simulator,
    k: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """A k-ary fat tree (k even): k pods, k^2/4 cores, k^3/4 hosts."""
    if k < 2 or k % 2 != 0:
        raise ValueError("fat tree requires an even k >= 2")
    topo = Topology(sim, name=f"fattree_k{k}")
    half = k // 2
    cores = [topo.add_switch(f"core{i}") for i in range(half * half)]
    for pod in range(k):
        aggs = [topo.add_switch(f"agg{pod}_{i}") for i in range(half)]
        edges = [topo.add_switch(f"edge{pod}_{i}") for i in range(half)]
        for agg_index, agg in enumerate(aggs):
            for edge in edges:
                topo.connect(agg, edge, bandwidth_bps, propagation_delay_ns)
            for c in range(half):
                core = cores[agg_index * half + c]
                topo.connect(core, agg, bandwidth_bps, propagation_delay_ns)
        for edge_index, edge in enumerate(edges):
            for h in range(half):
                host = topo.add_host(f"h{pod}_{edge_index}_{h}")
                topo.connect(edge, host, bandwidth_bps, propagation_delay_ns)
    return topo


def build_bcube(
    sim: Simulator,
    n: int,
    k: int = 1,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_ns: int = DEFAULT_PROP_DELAY_NS,
) -> Topology:
    """A BCube(n, k): server-centric recursive topology (Guo et al.).

    ``n^(k+1)`` hosts; level-l has ``n^k`` switches, each connecting the
    ``n`` hosts whose index differs only in digit ``l`` of their base-n
    representation.  Hosts are :class:`ServerNode` instances, multi-homed
    with ``k+1`` ports and able to relay — the server-centric property
    that distinguishes BCube from switch-centric fabrics.
    """
    if n < 2 or k < 0:
        raise ValueError("BCube requires n >= 2 and k >= 0")
    topo = Topology(sim, name=f"bcube_n{n}_k{k}")
    host_count = n ** (k + 1)
    hosts = [topo.add_server(f"h{i}") for i in range(host_count)]
    for level in range(k + 1):
        stride = n**level
        switch_count = host_count // n
        for switch_index in range(switch_count):
            switch = topo.add_switch(f"sw{level}_{switch_index}")
            # Hosts connected to this level-l switch share all base-n
            # digits except digit l.
            base = (switch_index % stride) + (switch_index // stride) * (
                stride * n
            )
            for j in range(n):
                host = hosts[base + j * stride]
                topo.connect(switch, host, bandwidth_bps, propagation_delay_ns)
    return topo


def path_hop_count(topo: Topology, src: str, dst: str) -> int:
    """Number of links on the shortest path between two devices (BFS)."""
    if src == dst:
        return 0
    adjacency = topo.adjacency()
    seen = {src}
    frontier: list[tuple[str, int]] = [(src, 0)]
    while frontier:
        next_frontier: list[tuple[str, int]] = []
        for current, distance in frontier:
            for neighbor, _ in adjacency[current]:
                if neighbor == dst:
                    return distance + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append((neighbor, distance + 1))
        frontier = next_frontier
    raise ValueError(f"no path from {src!r} to {dst!r}")

"""The host-side packet path for XDP reflection.

Composes the stages a reflected frame traverses inside the end host:

``PHY/MAC -> PCIe DMA (rx) -> driver poll -> XDP program -> driver tx ->
PCIe DMA (tx) -> PHY/MAC``

plus kernel noise on the executing core.  The path is single-core: frames
are processed one at a time, so overlapping arrivals queue — with many
concurrent TSN flows this queueing, together with cache contention, is what
drives the jitter growth on the right side of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ebpf.executor import ExecutionEnvironment
from ..ebpf.program import XdpProgram
from ..net.device import Device
from ..net.link import Port
from ..net.packet import Packet
from ..simcore import Simulator
from .kernel import KernelNoiseModel, PREEMPT_RT_ISOLATED
from .pcie import PcieModel


@dataclass(frozen=True)
class DriverModel:
    """Fixed driver-path costs around the XDP hook (busy-polling NAPI)."""

    rx_fixed_ns: float = 4_300.0
    tx_fixed_ns: float = 3_400.0
    noise_std_ns: float = 180.0

    def rx_ns(self, rng: np.random.Generator) -> float:
        """Sample the receive-side driver cost."""
        return self.rx_fixed_ns + abs(rng.normal(0.0, self.noise_std_ns))

    def tx_ns(self, rng: np.random.Generator) -> float:
        """Sample the transmit-side driver cost."""
        return self.tx_fixed_ns + abs(rng.normal(0.0, self.noise_std_ns))


@dataclass
class XdpHostModel:
    """End-to-end host residence-time sampler for one reflected frame."""

    program: XdpProgram
    rng: np.random.Generator
    pcie: PcieModel = field(default_factory=PcieModel)
    driver: DriverModel = field(default_factory=DriverModel)
    kernel: KernelNoiseModel = PREEMPT_RT_ISOLATED
    active_flows: int = 1

    def __post_init__(self) -> None:
        self.environment = ExecutionEnvironment(
            rng=self.rng, active_flows=self.active_flows
        )

    def set_active_flows(self, count: int) -> None:
        """Update the concurrent-flow count (affects contention)."""
        self.active_flows = count
        self.environment.active_flows = count

    def residence_ns(self, frame_bytes: int) -> float:
        """Sample wire-in to wire-out residence time for one frame."""
        total = self.pcie.rx_latency_ns(frame_bytes, self.rng)
        total += self.driver.rx_ns(self.rng)
        total += self.environment.execute_ns(self.program)
        total += self.driver.tx_ns(self.rng)
        total += self.pcie.tx_latency_ns(frame_bytes, self.rng)
        total += self.kernel.sample_ns(self.rng)
        return total


class XdpReflectorHost(Device):
    """A host whose NIC runs an XDP program in native mode and reflects.

    Single processing core: overlapping arrivals serialize.  Every frame is
    sent back out the ingress port with src/dst swapped, like the paper's
    reflection point.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        model: XdpHostModel,
    ) -> None:
        super().__init__(sim, name)
        self.model = model
        self._core_free_at = 0
        self.reflected = 0
        self.queueing_delays_ns: list[int] = []

    def receive(self, packet: Packet, in_port: Port) -> None:
        now = self.sim.now
        start = max(now, self._core_free_at)
        self.queueing_delays_ns.append(start - now)
        residence = round(self.model.residence_ns(packet.frame_bytes))
        self._core_free_at = start + residence
        done_in = self._core_free_at - now
        self.sim.schedule(lambda: self._reflect(packet, in_port), after=done_in)

    def _reflect(self, packet: Packet, in_port: Port) -> None:
        reflected = packet.copy_for_replication()
        reflected.src, reflected.dst = packet.dst, packet.src
        reflected.hops.append(self.name)
        self.reflected += 1
        in_port.send(reflected)

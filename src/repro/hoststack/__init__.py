"""Host network path models: PCIe, driver, kernel noise, XDP reflection.

These models make the Section 2.1 contention sources explicit — PCIe fixed
costs dominating small packets, kernel-induced latencies surviving
PREEMPT_RT, and per-flow cache contention — and compose them into the
reflect path that Traffic Reflection measures.
"""

from .kernel import (
    CacheContentionModel,
    KernelNoiseModel,
    PREEMPT_RT_ISOLATED,
    PREEMPT_RT_SHARED,
    STOCK_KERNEL,
)
from .path import DriverModel, XdpHostModel, XdpReflectorHost
from .pcie import PcieModel

__all__ = [
    "CacheContentionModel",
    "DriverModel",
    "KernelNoiseModel",
    "PREEMPT_RT_ISOLATED",
    "PREEMPT_RT_SHARED",
    "PcieModel",
    "STOCK_KERNEL",
    "XdpHostModel",
    "XdpReflectorHost",
]

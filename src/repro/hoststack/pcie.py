"""PCIe transaction latency model.

Section 2.1: "PCIe ... has a heavy latency toll for small packets — common
in industrial automation — contributing to more than 90% to the overall NIC
latency".  The model follows the structure measured by Neugebauer et al.
(SIGCOMM'18): a packet transfer decomposes into fixed per-transaction costs
(doorbell write, descriptor fetch, completion) plus a size-dependent DMA
component.  For a 64-byte industrial frame the fixed part dominates, which
is exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PcieModel:
    """Latency parameters of one PCIe link + NIC DMA engine.

    Defaults approximate a Gen3 x8 NIC: ~350 ns fixed RX cost, ~450 ns
    fixed TX cost (doorbell + descriptor round trip), 8 GB/s effective DMA
    bandwidth, and tens of nanoseconds of arbitration noise.
    """

    rx_fixed_ns: float = 350.0
    tx_fixed_ns: float = 450.0
    dma_bandwidth_gbps: float = 64.0  # 8 GB/s
    noise_std_ns: float = 30.0
    #: IOMMU/IOTLB miss probability and penalty (Section 2.1 cites IO memory
    #: management reducing NIC-to-CPU bandwidth and adding delays).
    iotlb_miss_probability: float = 0.002
    iotlb_miss_penalty_ns: float = 2_000.0

    def dma_ns(self, size_bytes: int) -> float:
        """Size-dependent DMA transfer time."""
        if size_bytes < 0:
            raise ValueError("size cannot be negative")
        return size_bytes * 8 / self.dma_bandwidth_gbps

    def rx_latency_ns(self, size_bytes: int, rng: np.random.Generator) -> float:
        """Sample wire-to-memory latency for one received frame."""
        return self._sample(self.rx_fixed_ns, size_bytes, rng)

    def tx_latency_ns(self, size_bytes: int, rng: np.random.Generator) -> float:
        """Sample memory-to-wire latency for one transmitted frame."""
        return self._sample(self.tx_fixed_ns, size_bytes, rng)

    def _sample(
        self, fixed_ns: float, size_bytes: int, rng: np.random.Generator
    ) -> float:
        value = fixed_ns + self.dma_ns(size_bytes)
        value += abs(rng.normal(0.0, self.noise_std_ns))
        if rng.random() < self.iotlb_miss_probability:
            value += self.iotlb_miss_penalty_ns
        return value

    def fixed_fraction(self, size_bytes: int) -> float:
        """Share of total latency that is size-independent (the 90% claim)."""
        fixed = self.rx_fixed_ns + self.tx_fixed_ns
        total = fixed + 2 * self.dma_ns(size_bytes)
        return fixed / total

"""Kernel-induced latency noise.

Even in XDP native mode — where a reflected packet never becomes an skb —
the executing CPU is subject to kernel noise: timer ticks, RCU callbacks,
IPIs, cache pollution from other cores.  PREEMPT_RT shortens but does not
eliminate these windows ("cannot be considered hard real-time", Section
2.1); a stock kernel adds much longer, rarer stalls.

:class:`KernelNoiseModel` samples a per-packet additive latency from a
mixture: a small always-present Gaussian plus rare preemption windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simcore.units import US


@dataclass(frozen=True)
class KernelNoiseModel:
    """Additive per-packet kernel noise."""

    name: str
    base_std_ns: float
    preemption_probability: float
    preemption_min_ns: float
    preemption_max_ns: float

    def sample_ns(self, rng: np.random.Generator) -> float:
        """Draw one per-packet noise value (>= 0)."""
        value = abs(rng.normal(0.0, self.base_std_ns))
        if self.preemption_probability > 0 and rng.random() < self.preemption_probability:
            value += rng.uniform(self.preemption_min_ns, self.preemption_max_ns)
        return value


#: PREEMPT_RT host dedicated to packet processing (isolated core, no RT
#: throttling): tight base noise, rare short preemptions.
PREEMPT_RT_ISOLATED = KernelNoiseModel(
    name="preempt-rt-isolated",
    base_std_ns=60.0,
    preemption_probability=5e-5,
    preemption_min_ns=2.0 * US,
    preemption_max_ns=20.0 * US,
)

#: PREEMPT_RT without core isolation: housekeeping shares the core.
PREEMPT_RT_SHARED = KernelNoiseModel(
    name="preempt-rt-shared",
    base_std_ns=150.0,
    preemption_probability=5e-4,
    preemption_min_ns=5.0 * US,
    preemption_max_ns=50.0 * US,
)

#: Stock (non-RT) kernel: long tail from non-preemptible sections.
STOCK_KERNEL = KernelNoiseModel(
    name="stock-kernel",
    base_std_ns=400.0,
    preemption_probability=2e-3,
    preemption_min_ns=20.0 * US,
    preemption_max_ns=500.0 * US,
)


# Re-exported here because callers think of cache contention as a host
# property; it lives in repro.ebpf.contention to avoid an import cycle.
from ..ebpf.contention import CacheContentionModel

__all__ = [
    "CacheContentionModel",
    "KernelNoiseModel",
    "PREEMPT_RT_ISOLATED",
    "PREEMPT_RT_SHARED",
    "STOCK_KERNEL",
]

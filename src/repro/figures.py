"""Programmatic figure regeneration behind a declarative spec registry.

Each of the paper's artifacts is described by a :class:`FigureSpec` — name,
one-line summary, parameter schema with defaults, and the callable that
reruns the experiment.  Specs are the contract shared by the command-line
interface (``python -m repro``), the parallel experiment engine
(:mod:`repro.runner`), and the benchmark suite::

    from repro.figures import registry

    spec = registry()["fig5"]
    rows = spec.run(seed=3)          # validated params, Rows result
    print(rows.to_table())

Figure functions return :class:`Rows` — a ``list`` of dicts with
``to_csv()`` / ``to_json()`` / ``to_table()`` serialization helpers.

The legacy module-level ``FIGURES`` dict and the free functions
``rows_to_csv`` / ``rows_to_table`` still work but emit a
``DeprecationWarning``; use :func:`registry` and the :class:`Rows` methods
instead.
"""

from __future__ import annotations

import csv
import io
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .corpus import PAPER_COUNTS, analyze_corpus, generate_corpus
from .ebpf import paper_variants
from .instaplc import run_fig5
from .mlnet import (
    DEFECT_DETECTION,
    OBJECT_IDENTIFICATION,
    PAPER_CLIENT_COUNTS,
    run_point,
)
from .obs import get_tracer
from .reflection import run_flow_scaling, run_variant_sweep
from .simcore.units import MS

#: Render formats understood by :meth:`Rows.render` and the CLI ``--format``.
FORMATS = ("table", "csv", "json")

#: Status marker rendered for cells that produced no data (see
#: :func:`failure_rows`); mirrors the PacketTracer ``(dropped)`` row.
FAILED_MARKER = "(failed)"


def failure_rows(figure: str, error: str | None = None) -> Rows:
    """Placeholder rows for a sweep cell that failed to produce data.

    Degraded sweeps still render and export every requested figure; cells
    that crashed or timed out contribute one marker row instead of
    silently vanishing from the output.
    """
    return Rows(
        [{"figure": figure, "status": FAILED_MARKER,
          "error": error or "unknown error"}]
    )


class Rows(list):
    """A list of plain-dict rows with serialization helpers.

    Subclasses ``list`` so every pre-existing consumer (CSV writers, row
    comparisons, ``len``) keeps working unchanged.
    """

    def to_csv(self) -> str:
        """Render as CSV text with a header row."""
        if not self:
            return ""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self[0].keys()))
        writer.writeheader()
        writer.writerows(self)
        return buffer.getvalue()

    def to_json(self, indent: int | None = None) -> str:
        """Render as a JSON array of objects."""
        return json.dumps(list(self), indent=indent)

    def to_table(self) -> str:
        """Render as an aligned text table."""
        if not self:
            return "(no data)"
        headers = list(self[0].keys())
        widths = [
            max(len(str(header)), *(len(str(row[header])) for row in self))
            for header in headers
        ]
        lines = [
            "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
            "-" * (sum(widths) + 2 * (len(widths) - 1)),
        ]
        for row in self:
            lines.append(
                "  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths))
            )
        return "\n".join(lines)

    def render(self, fmt: str) -> str:
        """Render in one of :data:`FORMATS`."""
        if fmt == "table":
            return self.to_table()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json(indent=2)
        raise ValueError(
            f"unknown format {fmt!r}; choose one of {', '.join(FORMATS)}"
        )


class UnknownFigureError(ValueError):
    """Raised for a figure name not present in the registry."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown figure {name!r}; available: {', '.join(available)}"
        )
        self.name = name
        self.available = available


def parse_int_tuple(text: str) -> tuple[int, ...]:
    """Parse ``"1,5,25"`` (or ``"1:5:25"``) into ``(1, 5, 25)``.

    The ``:`` separator exists for ``--param`` grid values, where ``,``
    already separates grid entries.
    """
    if isinstance(text, (tuple, list)):
        return tuple(int(v) for v in text)
    parts = str(text).replace(":", ",").split(",")
    return tuple(int(part) for part in parts if part.strip())


@dataclass(frozen=True)
class ParamSpec:
    """One tunable parameter of a figure experiment."""

    name: str
    default: Any
    doc: str = ""
    #: Parser applied to string values (CLI flags, ``--param`` grids).
    parse: Callable[[str], Any] = int

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` (possibly a string) to the parameter's type."""
        if isinstance(value, str):
            return self.parse(value)
        if isinstance(self.default, tuple) and isinstance(value, list):
            return tuple(value)
        return value


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one reproducible figure."""

    name: str
    doc: str
    fn: Callable[..., Rows]
    params: tuple[ParamSpec, ...] = field(default_factory=tuple)
    #: Optional pass/fail judge over the produced rows; the experiment
    #: runner records its result in the run manifest (chaos campaigns use
    #: this to turn sweeps into compliance matrices).
    verdict: Callable[[Rows], str | None] | None = None

    def defaults(self) -> dict[str, Any]:
        """Default value for every parameter."""
        return {p.name: p.default for p in self.params}

    def resolve(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Merge ``overrides`` into the defaults, rejecting unknown names."""
        params = self.defaults()
        for key, value in (overrides or {}).items():
            if key not in params:
                valid = ", ".join(p.name for p in self.params) or "(none)"
                raise ValueError(
                    f"figure {self.name!r} has no parameter {key!r}; "
                    f"valid parameters: {valid}"
                )
            params[key] = self.param(key).coerce(value)
        return params

    def param(self, name: str) -> ParamSpec:
        """Look up one :class:`ParamSpec` by name."""
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def run(self, seed: int = 0, **overrides: Any) -> Rows:
        """Execute the experiment with validated parameters."""
        params = self.resolve(overrides)
        with get_tracer().span(
            "figure.run", figure=self.name, seed=seed, **params
        ):
            return self.fn(seed=seed, **params)


def fig1(seed: int = 0) -> Rows:
    """Figure 1: term occurrences with permutations."""
    report = analyze_corpus(generate_corpus(seed=seed))
    return Rows(
        {
            "term_group": name,
            "occurrences": count,
            "paper": PAPER_COUNTS[name],
        }
        for name, count in sorted(report.counts.items(), key=lambda i: i[1])
    )


def fig4_delay(cycles: int = 400, seed: int = 0) -> Rows:
    """Figure 4 left: delay quantiles per eBPF variant (µs)."""
    results = run_variant_sweep(paper_variants(), cycles=cycles, seed=seed)
    rows = Rows()
    for name, result in results.items():
        cdf = result.delay_cdf()
        rows.append(
            {
                "variant": name,
                "p50_us": round(cdf.quantile(0.5), 3),
                "p90_us": round(cdf.quantile(0.9), 3),
                "p99_us": round(cdf.quantile(0.99), 3),
            }
        )
    return rows


def fig4_jitter(
    flow_counts: tuple[int, ...] = (1, 5, 25),
    cycles: int = 400,
    seed: int = 0,
) -> Rows:
    """Figure 4 right: jitter quantiles vs concurrent flows (ns)."""
    results = run_flow_scaling(
        paper_variants()[0], list(flow_counts), cycles=cycles, seed=seed
    )
    rows = Rows()
    for count, result in results.items():
        cdf = result.jitter_cdf()
        rows.append(
            {
                "flows": count,
                "p50_ns": round(cdf.quantile(0.5)),
                "p90_ns": round(cdf.quantile(0.9)),
                "p99_ns": round(cdf.quantile(0.99)),
            }
        )
    return rows


def fig5(duration_ms: int = 3000, crash_ms: int = 1500, seed: int = 0) -> Rows:
    """Figure 5: packets per 50 ms around the switchover."""
    result = run_fig5(
        duration_ns=duration_ms * MS, crash_ns=crash_ms * MS, seed=seed
    )
    vplc1 = result.binned("vplc1").counts
    vplc2 = result.binned("vplc2").counts
    to_io = result.binned("to_io").counts
    return Rows(
        {
            "t_ms": index * 50,
            "from_vplc1": int(vplc1[index]),
            "from_vplc2": int(vplc2[index]),
            "to_io": int(to_io[index]),
        }
        for index in range(len(to_io))
    )


def fig6(duration_ms: int = 400, seed: int = 0) -> Rows:
    """Figure 6: mean inference latency per app/topology/client count."""
    rows = Rows()
    for app in (OBJECT_IDENTIFICATION, DEFECT_DETECTION):
        for topology in ("ring", "leaf-spine", "ml-aware"):
            for clients in PAPER_CLIENT_COUNTS:
                point = run_point(
                    app, topology, clients,
                    duration_ns=duration_ms * MS, seed=seed,
                )
                rows.append(
                    {
                        "app": app.name,
                        "topology": topology,
                        "clients": clients,
                        "mean_latency_ms": round(point.mean_latency_ms, 3),
                        "p99_latency_ms": round(point.p99_latency_ms, 3),
                    }
                )
    return rows


_SPECS: dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec(
            name="fig1",
            doc="Figure 1: term occurrences with permutations.",
            fn=fig1,
        ),
        FigureSpec(
            name="fig4-delay",
            doc="Figure 4 left: delay quantiles per eBPF variant (µs).",
            fn=fig4_delay,
            params=(
                ParamSpec("cycles", 400, "reflection cycles per variant"),
            ),
        ),
        FigureSpec(
            name="fig4-jitter",
            doc="Figure 4 right: jitter quantiles vs concurrent flows (ns).",
            fn=fig4_jitter,
            params=(
                ParamSpec(
                    "flow_counts", (1, 5, 25),
                    "concurrent flow counts (comma-separated)",
                    parse=parse_int_tuple,
                ),
                ParamSpec("cycles", 400, "reflection cycles per flow count"),
            ),
        ),
        FigureSpec(
            name="fig5",
            doc="Figure 5: packets per 50 ms around the switchover.",
            fn=fig5,
            params=(
                ParamSpec("duration_ms", 3000, "simulated duration (ms)"),
                ParamSpec("crash_ms", 1500, "vPLC1 crash instant (ms)"),
            ),
        ),
        FigureSpec(
            name="fig6",
            doc="Figure 6: mean inference latency per app/topology/client count.",
            fn=fig6,
            params=(
                ParamSpec("duration_ms", 400, "simulated duration (ms)"),
            ),
        ),
    )
}


def registry() -> dict[str, FigureSpec]:
    """A fresh name → :class:`FigureSpec` mapping of every known figure."""
    return dict(_SPECS)


def get_spec(name: str) -> FigureSpec:
    """Resolve ``name``, raising :class:`UnknownFigureError` with the
    available names on a miss.

    Chaos campaigns (``chaos-*``, see :mod:`repro.chaos.spec`) resolve
    here too, so the runner and CLI sweep them like any figure;
    :func:`registry` itself stays figure-only (``repro all`` regenerates
    the paper's artifacts, not fault campaigns).
    """
    try:
        return _SPECS[name]
    except KeyError:
        pass
    # Late import: repro.chaos builds on Rows/FigureSpec defined above.
    from .chaos.spec import figure_specs
    from .faultdemo import demo_fault_specs

    chaos_specs = figure_specs()
    try:
        return chaos_specs[name]
    except KeyError:
        pass
    # Intentionally faulty demo figures (runner fault-tolerance smoke
    # tests); empty unless REPRO_DEMO_FAULTS is set in the environment.
    demo_specs = demo_fault_specs()
    try:
        return demo_specs[name]
    except KeyError:
        raise UnknownFigureError(
            name, tuple(_SPECS) + tuple(chaos_specs) + tuple(demo_specs)
        ) from None


def run_figure(name: str, seed: int = 0, **overrides: Any) -> Rows:
    """Validate ``name`` and parameters, then run the figure."""
    return get_spec(name).run(seed=seed, **overrides)


# -- deprecated aliases -------------------------------------------------------


def __getattr__(name: str) -> Any:
    if name == "FIGURES":
        warnings.warn(
            "repro.figures.FIGURES is deprecated; "
            "use repro.figures.registry() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {spec_name: spec.fn for spec_name, spec in _SPECS.items()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def rows_to_csv(rows: list[dict[str, Any]]) -> str:
    """Deprecated: use :meth:`Rows.to_csv`."""
    warnings.warn(
        "rows_to_csv is deprecated; use Rows.to_csv() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Rows(rows).to_csv()


def rows_to_table(rows: list[dict[str, Any]]) -> str:
    """Deprecated: use :meth:`Rows.to_table`."""
    warnings.warn(
        "rows_to_table is deprecated; use Rows.to_table() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Rows(rows).to_table()

"""Programmatic figure regeneration.

Each ``fig*`` function reruns one of the paper's experiments with the same
parameters the benchmark suite uses and returns plain rows (list of dicts)
ready for CSV export or printing — the data behind the published plot.
Used by the command-line interface (``python -m repro``).
"""

from __future__ import annotations

import csv
import io
from typing import Any

from .corpus import PAPER_COUNTS, analyze_corpus, generate_corpus
from .ebpf import paper_variants
from .instaplc import run_fig5
from .mlnet import (
    DEFECT_DETECTION,
    OBJECT_IDENTIFICATION,
    PAPER_CLIENT_COUNTS,
    run_point,
)
from .reflection import run_flow_scaling, run_variant_sweep
from .simcore.units import MS, SEC

Rows = list[dict[str, Any]]


def fig1(seed: int = 0) -> Rows:
    """Figure 1: term occurrences with permutations."""
    report = analyze_corpus(generate_corpus(seed=seed))
    return [
        {
            "term_group": name,
            "occurrences": count,
            "paper": PAPER_COUNTS[name],
        }
        for name, count in sorted(report.counts.items(), key=lambda i: i[1])
    ]


def fig4_delay(cycles: int = 400, seed: int = 0) -> Rows:
    """Figure 4 left: delay quantiles per eBPF variant (µs)."""
    results = run_variant_sweep(paper_variants(), cycles=cycles, seed=seed)
    rows = []
    for name, result in results.items():
        cdf = result.delay_cdf()
        rows.append(
            {
                "variant": name,
                "p50_us": round(cdf.quantile(0.5), 3),
                "p90_us": round(cdf.quantile(0.9), 3),
                "p99_us": round(cdf.quantile(0.99), 3),
            }
        )
    return rows


def fig4_jitter(
    flow_counts: tuple[int, ...] = (1, 5, 25),
    cycles: int = 400,
    seed: int = 0,
) -> Rows:
    """Figure 4 right: jitter quantiles vs concurrent flows (ns)."""
    results = run_flow_scaling(
        paper_variants()[0], list(flow_counts), cycles=cycles, seed=seed
    )
    rows = []
    for count, result in results.items():
        cdf = result.jitter_cdf()
        rows.append(
            {
                "flows": count,
                "p50_ns": round(cdf.quantile(0.5)),
                "p90_ns": round(cdf.quantile(0.9)),
                "p99_ns": round(cdf.quantile(0.99)),
            }
        )
    return rows


def fig5(seed: int = 0) -> Rows:
    """Figure 5: packets per 50 ms around the switchover."""
    result = run_fig5(duration_ns=3 * SEC, crash_ns=round(1.5 * SEC), seed=seed)
    vplc1 = result.binned("vplc1").counts
    vplc2 = result.binned("vplc2").counts
    to_io = result.binned("to_io").counts
    return [
        {
            "t_ms": index * 50,
            "from_vplc1": int(vplc1[index]),
            "from_vplc2": int(vplc2[index]),
            "to_io": int(to_io[index]),
        }
        for index in range(len(to_io))
    ]


def fig6(duration_ms: int = 400, seed: int = 0) -> Rows:
    """Figure 6: mean inference latency per app/topology/client count."""
    rows = []
    for app in (OBJECT_IDENTIFICATION, DEFECT_DETECTION):
        for topology in ("ring", "leaf-spine", "ml-aware"):
            for clients in PAPER_CLIENT_COUNTS:
                point = run_point(
                    app, topology, clients,
                    duration_ns=duration_ms * MS, seed=seed,
                )
                rows.append(
                    {
                        "app": app.name,
                        "topology": topology,
                        "clients": clients,
                        "mean_latency_ms": round(point.mean_latency_ms, 3),
                        "p99_latency_ms": round(point.p99_latency_ms, 3),
                    }
                )
    return rows


FIGURES = {
    "fig1": fig1,
    "fig4-delay": fig4_delay,
    "fig4-jitter": fig4_jitter,
    "fig5": fig5,
    "fig6": fig6,
}


def rows_to_csv(rows: Rows) -> str:
    """Render rows as CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def rows_to_table(rows: Rows) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return "(no data)"
    headers = list(rows[0].keys())
    widths = [
        max(len(str(header)), *(len(str(row[header])) for row in rows))
        for header in headers
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-" * (sum(widths) + 2 * (len(widths) - 1)),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths))
        )
    return "\n".join(lines)

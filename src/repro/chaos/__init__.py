"""Chaos campaigns: systematic, deterministic, observable fault injection.

The paper's availability claims (§2.2 classes, §4 switchover) are
robustness claims; this package turns ad-hoc fault injection into a
first-class subsystem:

- :mod:`repro.chaos.scenario` — declarative
  :class:`~repro.chaos.scenario.FaultScenario` descriptions (link flaps,
  PLC crashes, host-wide virtualization incidents, correlated outages,
  scheduled maintenance windows) with analytic availability predictions;
- :mod:`repro.chaos.engine` — the campaign engine:
  :func:`~repro.chaos.engine.run_campaign` executes a scenario with
  per-component random streams, measures per-cell availability, judges it
  against the §2 availability classes, and replays bit-identically from
  ``(seed, scenario)``;
- :mod:`repro.chaos.spec` — :class:`~repro.chaos.spec.ChaosSpec` projects
  campaigns into the figure registry (``chaos-*``) so the parallel runner
  sweeps them and records verdicts in the run manifest.

CLI: ``repro chaos run|replay|report|list`` (see :mod:`repro.chaos.cli`).
"""

from .engine import (
    CAMPAIGN_SCHEMA,
    CampaignResult,
    CellReport,
    ReplayReport,
    factory_binder,
    intervals_fingerprint,
    replay_campaign,
    run_campaign,
)
from .scenario import (
    KINDS,
    SCENARIOS,
    ComponentSpec,
    FaultScenario,
    MaintenanceSpec,
    get_scenario,
)
from .spec import (
    CHAOS_PARAMS,
    CHAOS_PREFIX,
    ChaosSpec,
    campaign_verdict,
    chaos_registry,
    figure_specs,
    get_chaos_spec,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CHAOS_PARAMS",
    "CHAOS_PREFIX",
    "CampaignResult",
    "CellReport",
    "ChaosSpec",
    "ComponentSpec",
    "FaultScenario",
    "KINDS",
    "MaintenanceSpec",
    "ReplayReport",
    "SCENARIOS",
    "campaign_verdict",
    "chaos_registry",
    "factory_binder",
    "figure_specs",
    "get_chaos_spec",
    "get_scenario",
    "intervals_fingerprint",
    "replay_campaign",
    "run_campaign",
]

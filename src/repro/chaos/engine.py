"""The chaos campaign engine: run, measure, judge, replay.

A *campaign* executes one :class:`~repro.chaos.scenario.FaultScenario` on
the discrete-event simulator: every stochastic component becomes an
exponential renewal process on its **own** named random stream
(``chaos/<scenario>/<component>``), every maintenance window becomes a
deterministic periodic process, and a
:class:`~repro.core.faults.CellDowntimeLog` tracks each cell's outage
intervals.  The result is judged twice:

- **compliance** — measured availability against the scenario's
  :class:`~repro.core.requirements.AvailabilityRequirement` (the §2
  availability classes), yielding the pass/fail *verdict*;
- **validation** — measured against the analytic steady-state prediction,
  within the scenario's documented tolerance (the model-vs-measurement
  agreement contract).

Determinism contract: a campaign is a pure function of
``(scenario, seed)``.  Per-component streams mean the failure schedule of
one component never depends on any other, so two runs produce
byte-identical per-cell outage intervals — :meth:`CampaignResult.fingerprint`
is the replay identity, and :func:`replay_campaign` re-executes and
compares interval-by-interval.

Faults can optionally touch live objects: pass a *binder* mapping each
component spec to concrete ``(fail, repair)`` callables (see
:func:`factory_binder`, which wires a
:class:`~repro.core.convergence.ConvergedFactory`'s real links and vPLCs).
Bookkeeping and measurement are identical either way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .. import __version__
from ..core.convergence import ConvergedFactory
from ..core.faults import FaultInjector, FaultTarget, MaintenanceWindow
from ..figures import Rows
from ..obs import get_telemetry, get_tracer
from ..simcore import Simulator
from ..simcore.units import SEC
from .scenario import ComponentSpec, FaultScenario, MaintenanceSpec

CAMPAIGN_SCHEMA = "repro.chaos/campaign/v1"

#: A binder maps a scenario component to live ``(fail, repair)`` callables.
Binder = Callable[[ComponentSpec | MaintenanceSpec], tuple[
    Callable[[], None], Callable[[], None]
]]


def _noop() -> None:
    return None


@dataclass
class CellReport:
    """Measured vs required vs predicted availability for one cell."""

    cell: int
    outages: int
    downtime_ns: int
    availability: float
    predicted: float
    required: float
    ok: bool
    within_tolerance: bool
    fingerprint: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "cell": self.cell,
            "outages": self.outages,
            "downtime_ns": self.downtime_ns,
            "availability": self.availability,
            "predicted": self.predicted,
            "required": self.required,
            "ok": self.ok,
            "within_tolerance": self.within_tolerance,
            "fingerprint": self.fingerprint,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced, replayable from its header."""

    scenario: str
    seed: int
    cells: int
    horizon_ns: int
    requirement: str
    required: float
    tolerance: float
    faults_injected: int
    params: dict[str, Any] = field(default_factory=dict)
    reports: list[CellReport] = field(default_factory=list)
    #: per-cell outage intervals — the bit-identical replay identity
    intervals: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """``pass`` when every cell meets the availability class."""
        return "pass" if all(report.ok for report in self.reports) else "fail"

    @property
    def mean_availability(self) -> float:
        return sum(r.availability for r in self.reports) / len(self.reports)

    @property
    def max_abs_error(self) -> float:
        """Largest measured-vs-analytic disagreement across cells."""
        return max(
            abs(r.availability - r.predicted) for r in self.reports
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of all outage intervals."""
        return intervals_fingerprint(self.intervals)

    def rows(self) -> Rows:
        """Per-cell verdict rows (the campaign's :class:`Rows` form)."""
        return Rows(
            {
                "scenario": self.scenario,
                "cell": report.cell,
                "outages": report.outages,
                "downtime_ns": report.downtime_ns,
                "availability": round(report.availability, 9),
                "predicted": round(report.predicted, 9),
                "required": round(report.required, 9),
                "ok": report.ok,
                "within_tolerance": report.within_tolerance,
                "fingerprint": report.fingerprint,
            }
            for report in self.reports
        )

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "version": __version__,
            "scenario": self.scenario,
            "seed": self.seed,
            "cells": self.cells,
            "horizon_ns": self.horizon_ns,
            "requirement": self.requirement,
            "required": self.required,
            "tolerance": self.tolerance,
            "faults_injected": self.faults_injected,
            "params": self.params,
            "verdict": self.verdict,
            "fingerprint": self.fingerprint(),
            "cells_report": [report.as_dict() for report in self.reports],
            "intervals": {
                str(cell) : [list(pair) for pair in pairs]
                for cell, pairs in self.intervals.items()
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignResult":
        schema = payload.get("schema")
        if schema != CAMPAIGN_SCHEMA:
            raise ValueError(
                f"unsupported campaign schema {schema!r}; "
                f"expected {CAMPAIGN_SCHEMA}"
            )
        result = cls(
            scenario=payload["scenario"],
            seed=payload["seed"],
            cells=payload["cells"],
            horizon_ns=payload["horizon_ns"],
            requirement=payload["requirement"],
            required=payload["required"],
            tolerance=payload["tolerance"],
            faults_injected=payload["faults_injected"],
            params=dict(payload.get("params") or {}),
            reports=[
                CellReport(**report)
                for report in payload.get("cells_report", [])
            ],
            intervals={
                int(cell): [tuple(pair) for pair in pairs]
                for cell, pairs in payload.get("intervals", {}).items()
            },
        )
        return result

    @classmethod
    def load(cls, path: Path | str) -> "CampaignResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


def intervals_fingerprint(
    intervals: dict[int, list[tuple[int, int]]]
) -> str:
    """Canonical SHA-256 of per-cell outage intervals."""
    canonical = json.dumps(
        {
            str(cell): [list(pair) for pair in intervals[cell]]
            for cell in sorted(intervals)
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cell_fingerprint(pairs: list[tuple[int, int]]) -> str:
    canonical = json.dumps([list(pair) for pair in pairs],
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def run_campaign(
    scenario: FaultScenario,
    seed: int = 0,
    binder: Binder | None = None,
    params: dict[str, Any] | None = None,
) -> CampaignResult:
    """Execute one chaos campaign; pure function of ``(scenario, seed)``.

    ``binder``, when given, attaches each component's fail/repair to live
    objects (e.g. real links and vPLCs of a
    :class:`~repro.core.convergence.ConvergedFactory`); measurement is
    unchanged.  ``params`` is recorded verbatim for provenance.
    """
    sim = Simulator(seed=seed)
    injector = FaultInjector(
        sim,
        cells=scenario.cells,
        per_target_streams=True,
        stream_prefix=f"chaos/{scenario.name}",
    )
    telemetry = get_telemetry()

    def _flight_wrap(fn: Callable[[], None], name: str, kind: str):
        """When telemetry is on, note the fault on the flight recorder and
        snapshot the fabric's recent history the moment a fault fires."""
        if not telemetry.enabled:
            return fn

        def wrapped() -> None:
            fn()
            telemetry.flight.note(name, sim.now, f"chaos.{kind}")
            if kind == "fault":
                telemetry.flight.snapshot(f"chaos.fault:{name}", sim.now)

        return wrapped

    for component in scenario.components:
        fail, repair = binder(component) if binder else (_noop, _noop)
        fail = _flight_wrap(fail, component.name, "fault")
        repair = _flight_wrap(repair, component.name, "repair")
        injector.register(
            FaultTarget(
                name=component.name,
                component_class=_component_class(component),
                fail=fail,
                repair=repair,
                affected_cells=component.affected_cells,
            )
        )
    for window in scenario.maintenance:
        fail, repair = binder(window) if binder else (_noop, _noop)
        fail = _flight_wrap(fail, window.name, "maintenance")
        repair = _flight_wrap(repair, window.name, "repair")
        injector.register_maintenance(
            MaintenanceWindow(
                target=FaultTarget(
                    name=window.name,
                    component_class=_window_class(window),
                    fail=fail,
                    repair=repair,
                    affected_cells=window.affected_cells,
                ),
                period_ns=int(window.period_s * SEC),
                duration_ns=int(window.duration_s * SEC),
                first_start_ns=int(window.first_start_s * SEC),
            )
        )

    horizon_ns = scenario.horizon_ns
    with get_tracer().span(
        "chaos.campaign", scenario=scenario.name, seed=seed,
        cells=scenario.cells, horizon_ns=horizon_ns,
    ) as span:
        injector.start()
        sim.run(until=horizon_ns)
        injector.stop()
        span.set(faults=injector.failures_injected)

    predicted = scenario.predicted_availability()
    required = scenario.requirement.availability
    intervals = injector.outage_intervals(horizon_ns)
    reports = []
    for log in injector.logs:
        availability = log.availability(horizon_ns)
        reports.append(
            CellReport(
                cell=log.cell,
                outages=len(intervals[log.cell]),
                downtime_ns=log.downtime_ns(horizon_ns),
                availability=availability,
                predicted=predicted[log.cell],
                required=required,
                ok=scenario.requirement.admits(availability),
                within_tolerance=(
                    abs(availability - predicted[log.cell])
                    <= scenario.tolerance
                ),
                fingerprint=_cell_fingerprint(intervals[log.cell]),
            )
        )
    return CampaignResult(
        scenario=scenario.name,
        seed=seed,
        cells=scenario.cells,
        horizon_ns=horizon_ns,
        requirement=scenario.requirement.name,
        required=required,
        tolerance=scenario.tolerance,
        faults_injected=injector.failures_injected,
        params=dict(params or {}),
        reports=reports,
        intervals=intervals,
    )


def _component_class(component: ComponentSpec):
    from ..core.availability_analysis import ComponentClass

    return ComponentClass(
        name=component.name,
        mtbf_s=component.mtbf_s,
        mttr_s=component.mttr_s,
    )


def _window_class(window: MaintenanceSpec):
    from ..core.availability_analysis import ComponentClass

    # MTBF/MTTR rendering of the deterministic schedule, for reporting.
    return ComponentClass(
        name=window.name,
        mtbf_s=window.period_s - window.duration_s,
        mttr_s=window.duration_s,
    )


@dataclass
class ReplayReport:
    """Outcome of replaying a campaign against a reference result."""

    scenario: str
    seed: int
    identical: bool
    fingerprint: str
    reference_fingerprint: str
    mismatched_cells: list[int] = field(default_factory=list)

    def describe(self) -> str:
        if self.identical:
            return (
                f"replay OK: {self.scenario} seed={self.seed} "
                f"fingerprint={self.fingerprint[:12]}"
            )
        cells = ", ".join(str(cell) for cell in self.mismatched_cells)
        return (
            f"replay MISMATCH: {self.scenario} seed={self.seed} "
            f"cells [{cells}] diverged "
            f"({self.fingerprint[:12]} != {self.reference_fingerprint[:12]})"
        )


def replay_campaign(
    scenario: FaultScenario,
    reference: CampaignResult,
) -> tuple[CampaignResult, ReplayReport]:
    """Re-run ``(scenario, reference.seed)`` and compare intervals exactly."""
    result = run_campaign(scenario, seed=reference.seed,
                          params=reference.params)
    mismatched = [
        cell
        for cell in sorted(reference.intervals)
        if result.intervals.get(cell) != reference.intervals[cell]
    ]
    report = ReplayReport(
        scenario=scenario.name,
        seed=reference.seed,
        identical=not mismatched
        and result.fingerprint() == reference.fingerprint(),
        fingerprint=result.fingerprint(),
        reference_fingerprint=reference.fingerprint(),
        mismatched_cells=mismatched,
    )
    return result, report


def factory_binder(factory: ConvergedFactory) -> Binder:
    """Bind scenario components onto a live converged factory.

    - ``link-flap`` on cell *i* downs/restores the cell's backhaul link;
    - ``plc-crash`` on cell *i* crash-stops/restarts the cell's vPLC;
    - ``virt-incident`` / ``correlated-outage`` crash and restart every
      vPLC at once (the host-wide incident);
    - maintenance windows stop and restart the affected cells' vPLCs.

    Component blast radii must fit the factory's cell count.
    """

    def bind(spec: ComponentSpec | MaintenanceSpec):
        for cell in spec.affected_cells:
            if cell >= len(factory.cells):
                raise ValueError(
                    f"component {spec.name!r} affects cell {cell}, but the "
                    f"factory has only {len(factory.cells)} cells"
                )
        if isinstance(spec, MaintenanceSpec):
            plcs = [factory.cells[c].vplc for c in spec.affected_cells]
            return (
                lambda: [plc.stop() for plc in plcs],
                lambda: [plc.start() for plc in plcs],
            )
        if spec.kind == "link-flap":
            (cell,) = spec.affected_cells[:1]
            leaf = f"leaf{cell // factory.config.vplcs_per_leaf}"
            link = factory.topo.link_between(f"cell{cell}", leaf)
            return link.set_down, link.set_up
        if spec.kind == "plc-crash":
            (cell,) = spec.affected_cells[:1]
            plc = factory.cells[cell].vplc
            return plc.crash, plc.restart
        # Host-wide incident: every affected vPLC crashes together.
        plcs = [factory.cells[c].vplc for c in spec.affected_cells]
        return (
            lambda: [plc.crash() for plc in plcs],
            lambda: [plc.restart() for plc in plcs],
        )

    return bind

"""The ``repro chaos`` subcommand: run, replay, and report campaigns.

Usage::

    python -m repro chaos list
    python -m repro chaos run link-flaps correlated --seeds 0..2 \\
        --param mttr_scale=1,2,4 --jobs 4 --manifest chaos-manifest.json
    python -m repro chaos run maintenance --campaign-dir campaigns/
    python -m repro chaos replay --scenario link-flaps --seed 7
    python -m repro chaos replay --campaign campaigns/chaos_link_flaps.seed7.*.json
    python -m repro chaos report chaos-manifest.json

``run`` fans campaigns out over the supervised runner (grid sweeps,
result cache, manifest with per-job ``verdict`` entries, plus
``--timeout/--retries/--resume`` fault tolerance; a crashed or hung
campaign job becomes a failed manifest record and exit code 3 instead of
aborting the sweep).  ``replay`` re-executes
a campaign from ``(seed, scenario)`` alone and verifies the per-cell
outage intervals are byte-identical — against a saved campaign file when
given, or against an independent second run otherwise.  ``report``
renders the compliance summary of a run manifest or a campaign file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..runner import RunManifest, expand_grid, run_jobs
from .engine import CampaignResult, replay_campaign, run_campaign
from .spec import chaos_registry, get_chaos_spec


def add_chaos_parser(subparsers: argparse._SubParsersAction) -> None:
    """Attach the ``chaos`` subcommand tree to the main parser."""
    chaos = subparsers.add_parser(
        "chaos", help="run / replay / report deterministic fault campaigns"
    )
    actions = chaos.add_subparsers(dest="chaos_command", required=True)

    actions.add_parser("list", help="list shipped chaos scenarios")

    sub = actions.add_parser(
        "run", help="run campaigns over a (scenario x seed x param) grid"
    )
    sub.add_argument(
        "scenarios", nargs="*", default=[], metavar="SCENARIO",
        help="scenarios to run (default: all shipped scenarios)",
    )
    sub.add_argument(
        "--seeds", default="0", metavar="LIST",
        help="seeds: comma list '0,1,2' or inclusive range '0..4'",
    )
    sub.add_argument(
        "--param", action="append", default=None, metavar="NAME=V1,V2",
        help="grid values for cells/mtbf_scale/mttr_scale/horizon_s",
    )
    sub.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    sub.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="reuse the runner result cache in DIR (default: no cache)",
    )
    sub.add_argument(
        "--manifest", type=Path, default=None,
        help="write the JSON run manifest (with verdicts) here",
    )
    sub.add_argument(
        "--campaign-dir", type=Path, default=None, metavar="DIR",
        help="write one full replayable campaign JSON per job into DIR",
    )
    sub.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any campaign verdict is 'fail'",
    )
    from ..cli import (
        _add_backend_args,
        _add_resilience_args,
        _add_status_args,
    )

    _add_backend_args(sub)
    _add_resilience_args(sub)
    _add_status_args(sub)

    sub = actions.add_parser(
        "replay",
        help="re-run a campaign from (seed, scenario) and verify intervals",
    )
    sub.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="scenario to replay (required unless --campaign is given)",
    )
    sub.add_argument("--seed", type=int, default=0, help="campaign seed")
    sub.add_argument(
        "--param", action="append", default=None, metavar="NAME=V",
        help="scenario parameter override (single values, repeatable)",
    )
    sub.add_argument(
        "--campaign", type=Path, default=None, metavar="FILE",
        help="saved campaign JSON to verify against (overrides the flags)",
    )

    sub = actions.add_parser(
        "report", help="summarize a run manifest or campaign JSON"
    )
    sub.add_argument(
        "path", type=Path, metavar="FILE",
        help="manifest JSON from 'chaos run --manifest' or a campaign JSON",
    )


def dispatch_chaos(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro chaos ...`` namespace."""
    command = getattr(args, "chaos_command", None)
    if command == "list":
        return _run_list()
    if command == "run":
        return _run_run(args)
    if command == "replay":
        return _run_replay(args)
    if command == "report":
        return _run_report(args)
    raise ValueError(f"unknown chaos command {command!r}")


def _run_list() -> int:
    for name, spec in chaos_registry().items():
        scenario = spec.build()
        print(
            f"{name:14s} {spec.doc}  "
            f"[predicted mean availability "
            f"{scenario.predicted_mean_availability():.6f}, "
            f"requirement {scenario.requirement.name}]"
        )
    return 0


def _job_label(record) -> str:
    parts = [record.figure, f"seed={record.seed}"]
    parts += [f"{k}={v}" for k, v in record.params.items()]
    return " ".join(parts)


def _run_run(args: argparse.Namespace) -> int:
    from ..cli import (
        EXIT_DEGRADED,
        _backend_kwargs,
        _report_degraded,
        _resilience_kwargs,
        _status_path,
        parse_param_grid,
        parse_seeds,
    )
    from ..runner import ResultCache

    names = list(getattr(args, "scenarios", None) or [])
    if not names:
        names = list(chaos_registry())
    figures = [get_chaos_spec(name).figure_name for name in names]
    jobs = expand_grid(
        figures,
        seeds=parse_seeds(getattr(args, "seeds", "0")),
        grid=parse_param_grid(getattr(args, "param", None)),
    )
    cache_dir = getattr(args, "cache_dir", None)
    manifest_path: Path | None = getattr(args, "manifest", None)
    if manifest_path is not None:
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
    result = run_jobs(
        jobs,
        workers=getattr(args, "jobs", None),
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        checkpoint=manifest_path,
        status_path=_status_path(
            args,
            manifest_path.parent if manifest_path is not None else None,
        ),
        **_resilience_kwargs(args),
        **_backend_kwargs(args),
    )
    campaign_dir: Path | None = getattr(args, "campaign_dir", None)
    for outcome in result.outcomes:
        record = outcome.record
        if not record.ok:
            print(
                f"  {_job_label(record)}: {record.status.upper()} "
                f"({record.error})"
            )
            continue
        verdict = (record.verdict or "?").upper()
        print(f"  {_job_label(record)}: {verdict}")
        if campaign_dir is not None:
            # Recompute inline to obtain the full outage intervals (cheap;
            # rows alone carry only per-cell fingerprints).
            spec = get_chaos_spec(record.figure)
            campaign = spec.run(seed=record.seed, **record.params)
            stem = record.figure.replace("-", "_")
            path = campaign.save(
                campaign_dir
                / f"{stem}.seed{record.seed}.{record.key[:8]}.json"
            )
            print(f"    wrote {path}")
    if manifest_path is not None:
        manifest_path.write_text(result.manifest.to_json() + "\n")
        print(f"wrote {manifest_path}")
    failed = [
        outcome.record
        for outcome in result.outcomes
        if outcome.record.ok and outcome.record.verdict == "fail"
    ]
    crashed = result.failures
    print(
        f"{len(result.outcomes)} campaign(s): "
        f"{len(result.outcomes) - len(failed) - len(crashed)} pass, "
        f"{len(failed)} fail"
        + (f", {len(crashed)} crashed" if crashed else "")
    )
    if crashed:
        hint = (
            f"resume with: repro chaos run ... --resume {manifest_path}"
            if manifest_path is not None
            else "rerun with --manifest to enable --resume"
        )
        _report_degraded(result, hint)
        return EXIT_DEGRADED
    if failed and getattr(args, "strict", False):
        return 1
    return 0


def _parse_single_params(specs: list[str] | None) -> dict[str, str]:
    params: dict[str, str] = {}
    for item in specs or []:
        name, sep, value = item.partition("=")
        if not sep or not name.strip() or not value.strip():
            raise ValueError(f"bad --param {item!r}; expected NAME=VALUE")
        params[name.strip()] = value.strip()
    return params


def _run_replay(args: argparse.Namespace) -> int:
    campaign_path: Path | None = getattr(args, "campaign", None)
    if campaign_path is not None:
        reference = CampaignResult.load(campaign_path)
        spec = get_chaos_spec(reference.scenario)
        scenario = spec.build(**reference.params)
    else:
        name = getattr(args, "scenario", None)
        if not name:
            raise ValueError("replay needs --scenario NAME or --campaign FILE")
        spec = get_chaos_spec(name)
        params = _parse_single_params(getattr(args, "param", None))
        scenario = spec.build(**params)
        reference = run_campaign(
            scenario, seed=getattr(args, "seed", 0), params=spec.resolve(params)
        )
    _, report = replay_campaign(scenario, reference)
    print(report.describe())
    return 0 if report.identical else 1


def _format_availability(value: float) -> str:
    return f"{value:.6f}"


def _report_campaign(campaign: CampaignResult) -> int:
    print(
        f"{campaign.scenario} seed={campaign.seed} "
        f"cells={campaign.cells} faults={campaign.faults_injected} "
        f"verdict={campaign.verdict.upper()}"
    )
    print(
        f"  requirement {campaign.requirement} "
        f">= {_format_availability(campaign.required)}; "
        f"analytic tolerance {campaign.tolerance:g}"
    )
    for report in campaign.reports:
        marker = "ok " if report.ok else "FAIL"
        print(
            f"  cell {report.cell}: {marker} "
            f"measured={_format_availability(report.availability)} "
            f"predicted={_format_availability(report.predicted)} "
            f"outages={report.outages} "
            f"downtime={report.downtime_ns / 1e9:.3f}s"
        )
    print(f"  fingerprint {campaign.fingerprint()}")
    return 0


def _report_manifest(manifest: RunManifest, path: Path) -> int:
    judged = [r for r in manifest.records if r.verdict is not None]
    retries = sum(max(r.attempts - 1, 0) for r in manifest.records)
    header = (
        f"{path}: {len(manifest.records)} job(s), "
        f"{len(judged)} with verdicts"
    )
    if manifest.failed:
        header += f", {manifest.failed} crashed/timed out"
    if retries:
        header += f", {retries} retry attempt(s)"
    print(header)
    for record in judged:
        suffix = (
            f" [{record.attempts} attempts]" if record.attempts > 1 else ""
        )
        print(
            f"  {_job_label(record)}: "
            f"{(record.verdict or '?').upper()}{suffix}"
        )
    for record in manifest.failures():
        print(
            f"  {_job_label(record)}: {record.status.upper()} "
            f"({record.error or '?'})"
        )
    failed = sum(1 for r in judged if r.verdict == "fail")
    print(f"{len(judged) - failed} pass, {failed} fail")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    path: Path = args.path
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from None
    if payload.get("schema", "").startswith("repro.chaos/campaign"):
        return _report_campaign(CampaignResult.from_dict(payload))
    return _report_manifest(RunManifest.from_dict(payload), path)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    parser = argparse.ArgumentParser(prog="repro-chaos")
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_chaos_parser(subparsers)
    return dispatch_chaos(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Declarative fault scenarios for chaos campaigns.

A :class:`FaultScenario` is a pure data description of *what can break* in
an N-cell plant: stochastic components (exponential MTBF/MTTR renewal
processes, :class:`ComponentSpec`) and deterministic scheduled maintenance
windows (:class:`MaintenanceSpec`).  Because the description is pure data,
the analytic steady-state availability of every cell is computable up
front (:meth:`FaultScenario.predicted_availability`), and every campaign
run can be checked against it — the same measured-vs-analytic agreement
contract the fault-injection integration tests establish, promoted to a
first-class verdict.

Time scale: scenario times are **compressed seconds**.  Real MTBFs are
months; running campaigns at full scale would collect no statistics, so
shipped scenarios state their profiles at a compressed scale that
preserves every MTBF:MTTR ratio (and therefore every availability) while
packing hundreds of failure cycles into a few simulated hours.  The
``mtbf_scale`` / ``mttr_scale`` knobs sweep the profiles around their
defaults without editing the scenario.

Shipped scenarios (the §2.2 failure taxonomy):

- ``link-flaps`` — each cell's backhaul link flaps independently;
- ``plc-crashes`` — each cell's vPLC crash-stops and restarts;
- ``virt-incident`` — one host-wide virtualization-stack incident takes
  every cell down together (the consolidation blast radius);
- ``correlated`` — per-cell links *and* shared fabric *and* shared
  virtualization stack fail as independent processes whose outages
  overlap;
- ``maintenance`` — a deterministic, seed-independent maintenance window
  recurs on a fixed period across all cells.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..core.requirements import AvailabilityRequirement, DATACENTER_TYPICAL
from ..simcore.units import SEC

#: Fault kinds a scenario component may declare; bindings map these onto
#: live objects (a real link, a real vPLC) when a campaign drives a factory.
KINDS = ("link-flap", "plc-crash", "virt-incident", "correlated-outage")


@dataclass(frozen=True)
class ComponentSpec:
    """One stochastic failure process: MTBF/MTTR plus its blast radius."""

    name: str
    kind: str
    mtbf_s: float
    mttr_s: float
    affected_cells: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of "
                f"{', '.join(KINDS)}"
            )
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if not self.affected_cells:
            raise ValueError(f"component {self.name!r} affects no cells")

    @property
    def availability(self) -> float:
        """Steady-state availability of this component."""
        return self.mtbf_s / (self.mtbf_s + self.mttr_s)


@dataclass(frozen=True)
class MaintenanceSpec:
    """One deterministic periodic downtime window."""

    name: str
    period_s: float
    duration_s: float
    affected_cells: tuple[int, ...]
    first_start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.duration_s <= 0:
            raise ValueError("maintenance period and duration must be positive")
        if self.duration_s >= self.period_s:
            raise ValueError("maintenance window must be shorter than its period")
        if not self.affected_cells:
            raise ValueError(f"window {self.name!r} affects no cells")

    @property
    def availability(self) -> float:
        """Long-run availability contributed by this window."""
        return 1.0 - self.duration_s / self.period_s


@dataclass(frozen=True)
class FaultScenario:
    """A named, fully declarative chaos scenario.

    ``tolerance`` documents how closely a campaign's measured per-cell
    availability must agree with :meth:`predicted_availability` at the
    scenario's default horizon — the replay/validation contract the test
    suite enforces for every shipped scenario.
    """

    name: str
    doc: str
    cells: int
    components: tuple[ComponentSpec, ...] = ()
    maintenance: tuple[MaintenanceSpec, ...] = ()
    horizon_s: float = 3600.0
    requirement: AvailabilityRequirement = DATACENTER_TYPICAL
    #: documented measured-vs-analytic agreement bound (absolute)
    tolerance: float = 3e-3

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("need at least one cell")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        for spec in self.components + self.maintenance:
            for cell in spec.affected_cells:
                if not 0 <= cell < self.cells:
                    raise ValueError(
                        f"component {spec.name!r} affects unknown cell {cell}"
                    )

    @property
    def horizon_ns(self) -> int:
        """Observation horizon in simulated nanoseconds."""
        return int(self.horizon_s * SEC)

    def predicted_availability(self) -> dict[int, float]:
        """Analytic steady-state availability per cell.

        Independent alternating renewal processes compose in series: a
        cell is up exactly when every component affecting it is up, so its
        availability is the product of the component availabilities
        (stochastic and maintenance alike).
        """
        prediction = {}
        for cell in range(self.cells):
            availability = 1.0
            for spec in self.components + self.maintenance:
                if cell in spec.affected_cells:
                    availability *= spec.availability
            prediction[cell] = availability
        return prediction

    def predicted_mean_availability(self) -> float:
        """Plant-mean analytic availability."""
        values = self.predicted_availability().values()
        return sum(values) / self.cells


def _all_cells(cells: int) -> tuple[int, ...]:
    return tuple(range(cells))


def link_flaps(
    cells: int = 4, mtbf_scale: float = 1.0, mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """Independent backhaul link flaps, one per cell."""
    return FaultScenario(
        name="link-flaps",
        doc="Each cell's backhaul link flaps independently.",
        cells=cells,
        components=tuple(
            ComponentSpec(
                name=f"backhaul{cell}",
                kind="link-flap",
                mtbf_s=40.0 * mtbf_scale,
                mttr_s=0.03 * mttr_scale,
                affected_cells=(cell,),
            )
            for cell in range(cells)
        ),
        horizon_s=horizon_s,
    )


def plc_crashes(
    cells: int = 4, mtbf_scale: float = 1.0, mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """Independent vPLC crash/restart cycles, one per cell."""
    return FaultScenario(
        name="plc-crashes",
        doc="Each cell's vPLC crash-stops and is restarted.",
        cells=cells,
        components=tuple(
            ComponentSpec(
                name=f"vplc{cell}",
                kind="plc-crash",
                mtbf_s=25.0 * mtbf_scale,
                mttr_s=0.008 * mttr_scale,
                affected_cells=(cell,),
            )
            for cell in range(cells)
        ),
        horizon_s=horizon_s,
    )


def virt_incident(
    cells: int = 4, mtbf_scale: float = 1.0, mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """One shared virtualization-stack incident downs every cell at once."""
    return FaultScenario(
        name="virt-incident",
        doc=(
            "Host-wide virtualization incidents take every consolidated "
            "cell down together."
        ),
        cells=cells,
        components=(
            ComponentSpec(
                name="virt-stack",
                kind="virt-incident",
                mtbf_s=15.0 * mtbf_scale,
                mttr_s=0.09 * mttr_scale,
                affected_cells=_all_cells(cells),
            ),
        ),
        horizon_s=horizon_s,
    )


def correlated(
    cells: int = 4, mtbf_scale: float = 1.0, mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """Per-cell links plus shared fabric plus shared virtualization stack."""
    per_cell = tuple(
        ComponentSpec(
            name=f"backhaul{cell}",
            kind="link-flap",
            mtbf_s=40.0 * mtbf_scale,
            mttr_s=0.03 * mttr_scale,
            affected_cells=(cell,),
        )
        for cell in range(cells)
    )
    shared = (
        ComponentSpec(
            name="fabric",
            kind="correlated-outage",
            mtbf_s=30.0 * mtbf_scale,
            mttr_s=0.05 * mttr_scale,
            affected_cells=_all_cells(cells),
        ),
        ComponentSpec(
            name="virt-stack",
            kind="virt-incident",
            mtbf_s=20.0 * mtbf_scale,
            mttr_s=0.04 * mttr_scale,
            affected_cells=_all_cells(cells),
        ),
    )
    return FaultScenario(
        name="correlated",
        doc=(
            "Correlated multi-component outages: independent per-cell and "
            "shared failure processes whose downtime overlaps."
        ),
        cells=cells,
        components=per_cell + shared,
        horizon_s=horizon_s,
    )


def maintenance(
    cells: int = 4, mtbf_scale: float = 1.0, mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """Deterministic plant-wide maintenance windows (seed-independent).

    ``mtbf_scale`` stretches the period and ``mttr_scale`` the window
    length, mirroring the stochastic scenarios' knobs.
    """
    return FaultScenario(
        name="maintenance",
        doc="A scheduled maintenance window recurs across all cells.",
        cells=cells,
        maintenance=(
            MaintenanceSpec(
                name="plant-maintenance",
                period_s=600.0 * mtbf_scale,
                duration_s=0.3 * mttr_scale,
                first_start_s=300.0 * mtbf_scale,
                affected_cells=_all_cells(cells),
            ),
        ),
        horizon_s=horizon_s,
        # Deterministic schedule: measured equals predicted up to interval
        # clipping at the horizon.
        tolerance=1e-6,
    )


#: Scenario name → factory.  Factories share one signature so the runner
#: can sweep ``cells`` / ``mtbf_scale`` / ``mttr_scale`` / ``horizon_s``
#: uniformly across scenarios.
SCENARIOS: dict[str, Callable[..., FaultScenario]] = {
    "link-flaps": link_flaps,
    "plc-crashes": plc_crashes,
    "virt-incident": virt_incident,
    "correlated": correlated,
    "maintenance": maintenance,
}


def get_scenario(
    name: str,
    cells: int = 4,
    mtbf_scale: float = 1.0,
    mttr_scale: float = 1.0,
    horizon_s: float = 3600.0,
) -> FaultScenario:
    """Build a shipped scenario by name, raising with the valid names."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    return factory(
        cells=cells,
        mtbf_scale=mtbf_scale,
        mttr_scale=mttr_scale,
        horizon_s=horizon_s,
    )


def scaled(scenario: FaultScenario, horizon_s: float) -> FaultScenario:
    """A copy of ``scenario`` observed over a different horizon."""
    return replace(scenario, horizon_s=horizon_s)

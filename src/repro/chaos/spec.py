"""``ChaosSpec`` — declarative campaigns alongside ``FigureSpec``.

A :class:`ChaosSpec` describes one sweepable chaos campaign the way a
:class:`~repro.figures.FigureSpec` describes one figure: a name, a doc
line, a scenario factory, and a parameter schema (``cells`` /
``mtbf_scale`` / ``mttr_scale`` / ``horizon_s``).  Each spec also projects
itself into the figure registry under ``chaos-<scenario>`` so the whole
PR-1 runner stack — :func:`repro.runner.expand_grid`,
:func:`repro.runner.run_jobs`, the result cache, and ``repro sweep`` —
drives campaigns without special cases::

    from repro.runner import expand_grid, run_jobs

    jobs = expand_grid(
        ["chaos-link-flaps", "chaos-correlated"],
        seeds=range(3),
        grid={"mttr_scale": [1, 2, 4]},
    )
    result = run_jobs(jobs)
    result.manifest.records[0].verdict   # "pass" / "fail"

The projected figure carries a *verdict function* (all cells compliant →
``pass``), which the runner evaluates per job and records in the manifest —
so a sweep's manifest is a compliance matrix over (scenario × seed × MTBF ×
MTTR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..figures import FigureSpec, ParamSpec, Rows
from .engine import CampaignResult, run_campaign
from .scenario import SCENARIOS, FaultScenario

#: Figure-registry prefix for projected campaign specs.
CHAOS_PREFIX = "chaos-"

#: The shared sweepable parameter schema of every shipped scenario.
CHAOS_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec("cells", 4, "production cells in the plant"),
    ParamSpec(
        "mtbf_scale", 1.0, "multiplier on every component MTBF", parse=float
    ),
    ParamSpec(
        "mttr_scale", 1.0, "multiplier on every component MTTR", parse=float
    ),
    ParamSpec(
        "horizon_s", 3600.0, "observation horizon (compressed seconds)",
        parse=float,
    ),
)


def campaign_verdict(rows: Rows) -> str:
    """Manifest verdict for campaign rows: every cell must comply.

    Empty rows are a ``fail``: a campaign always produces at least one
    cell row, so an empty result (e.g. a failed or truncated sweep cell)
    cannot demonstrate compliance.
    """
    if not rows:
        return "fail"
    return "pass" if all(row.get("ok") for row in rows) else "fail"


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative description of one sweepable chaos campaign."""

    name: str
    doc: str
    factory: Callable[..., FaultScenario]
    params: tuple[ParamSpec, ...] = CHAOS_PARAMS

    @property
    def figure_name(self) -> str:
        """Name this spec occupies in the figure registry."""
        return f"{CHAOS_PREFIX}{self.name}"

    def resolve(
        self, overrides: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Merge ``overrides`` into the defaults, rejecting unknown names."""
        params = {p.name: p.default for p in self.params}
        for key, value in (overrides or {}).items():
            if key not in params:
                valid = ", ".join(p.name for p in self.params)
                raise ValueError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"valid parameters: {valid}"
                )
            spec = next(p for p in self.params if p.name == key)
            params[key] = spec.coerce(value)
        return params

    def build(self, **overrides: Any) -> FaultScenario:
        """Materialize the scenario with validated parameters."""
        return self.factory(**self.resolve(overrides))

    def run(self, seed: int = 0, **overrides: Any) -> CampaignResult:
        """Run one campaign and return the full replayable result."""
        params = self.resolve(overrides)
        return run_campaign(
            self.factory(**params), seed=seed, params=params
        )

    def to_figure_spec(self) -> FigureSpec:
        """Project into a :class:`FigureSpec` the runner can execute."""

        def fn(seed: int = 0, **params: Any) -> Rows:
            return self.run(seed=seed, **params).rows()

        fn.__name__ = self.figure_name.replace("-", "_")
        fn.__doc__ = self.doc
        return FigureSpec(
            name=self.figure_name,
            doc=self.doc,
            fn=fn,
            params=self.params,
            verdict=campaign_verdict,
        )


_CHAOS_SPECS: dict[str, ChaosSpec] = {
    name: ChaosSpec(
        name=name,
        doc=factory().doc,
        factory=factory,
    )
    for name, factory in SCENARIOS.items()
}

_FIGURE_SPECS: dict[str, FigureSpec] = {
    spec.figure_name: spec.to_figure_spec()
    for spec in _CHAOS_SPECS.values()
}


def chaos_registry() -> dict[str, ChaosSpec]:
    """A fresh scenario-name → :class:`ChaosSpec` mapping."""
    return dict(_CHAOS_SPECS)


def get_chaos_spec(name: str) -> ChaosSpec:
    """Resolve a scenario name (with or without the ``chaos-`` prefix)."""
    if name.startswith(CHAOS_PREFIX):
        name = name[len(CHAOS_PREFIX):]
    try:
        return _CHAOS_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"available: {', '.join(_CHAOS_SPECS)}"
        ) from None


def figure_specs() -> dict[str, FigureSpec]:
    """Campaigns projected as figure specs (``chaos-*`` names)."""
    return dict(_FIGURE_SPECS)

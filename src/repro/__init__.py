"""repro — reproduction of *Data Centers Manufacturing Steel* (HotNets '25).

The package implements, in pure Python, every system the paper describes or
depends on:

- a deterministic discrete-event simulation kernel (:mod:`repro.simcore`);
- a packet-level network substrate with industrial and data-center
  topologies (:mod:`repro.net`);
- Time-Sensitive Networking primitives (:mod:`repro.tsn`);
- a PROFINET-style cyclic real-time fieldbus (:mod:`repro.fieldbus`);
- PLC / virtual-PLC models including redundancy (:mod:`repro.plc`);
- a host-network-path and eBPF/XDP cost model with the paper's
  Traffic Reflection measurement harness (:mod:`repro.hoststack`,
  :mod:`repro.ebpf`, :mod:`repro.reflection`);
- a P4-style programmable data plane and the InstaPLC high-availability
  application built on it (:mod:`repro.p4`, :mod:`repro.instaplc`);
- ML-aware industrial topology design (:mod:`repro.mlnet`);
- the proceedings term-gap analysis of Figure 1 (:mod:`repro.corpus`);
- requirement models and compliance checks for Section 2
  (:mod:`repro.core`).

See ``DESIGN.md`` for the per-experiment index and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.9.0"

__all__ = ["__version__"]

"""Intentionally faulty demo figures for the fault-tolerant runner.

The chaos engine (PR 3) injects faults into the *simulated* plant; this
module injects them into the *runner itself*, so the supervised sweep
path — crash isolation, timeouts, retries, resume — can be exercised
end-to-end from the CLI without touching real figures.

The specs are invisible unless ``REPRO_DEMO_FAULTS`` is set in the
environment: ``repro list`` / ``repro all`` never see them, but with the
flag set they resolve through :func:`repro.figures.get_spec` like any
figure, so ``repro sweep faulty-demo`` works::

    REPRO_DEMO_FAULTS=1 python -m repro sweep faulty-demo fig1 \\
        --param marker=/tmp/fixed --retries 1 --manifest m.json
    touch /tmp/fixed
    REPRO_DEMO_FAULTS=1 python -m repro sweep faulty-demo fig1 \\
        --param marker=/tmp/fixed --resume m.json --manifest m.json

- ``faulty-demo`` raises until its ``marker`` file exists ("the figure
  got fixed"), then succeeds — the checkpoint/resume demo.
- ``hang-demo`` sleeps ``sleep_s`` seconds — the timeout demo.
- ``exit-demo`` kills its worker process with ``os._exit`` — the
  dead-worker demo.
"""

from __future__ import annotations

import os
import time

from .figures import FigureSpec, ParamSpec, Rows

#: Environment flag gating the demo specs into the figure registry.
ENV_FLAG = "REPRO_DEMO_FAULTS"


def demo_faults_enabled() -> bool:
    """Whether the faulty demo figures are visible to ``get_spec``."""
    return bool(os.environ.get(ENV_FLAG))


def faulty_demo(seed: int = 0, marker: str = "") -> Rows:
    """Raise until ``marker`` exists on disk, then return one row."""
    if marker and os.path.exists(marker):
        return Rows([{"seed": seed, "status": "recovered"}])
    raise RuntimeError(
        f"faulty-demo: induced failure (marker file {marker!r} absent)"
    )


def hang_demo(seed: int = 0, sleep_s: float = 60.0) -> Rows:
    """Sleep past any reasonable per-job timeout."""
    time.sleep(sleep_s)
    return Rows([{"seed": seed, "slept_s": sleep_s}])


def exit_demo(seed: int = 0, code: int = 17) -> Rows:
    """Kill the worker process outright (no exception to catch)."""
    os._exit(code)


_DEMO_SPECS: dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec(
            name="faulty-demo",
            doc="Demo: raises until its marker file exists.",
            fn=faulty_demo,
            params=(
                ParamSpec(
                    "marker", "", "path that, once created, fixes the figure",
                    parse=str,
                ),
            ),
        ),
        FigureSpec(
            name="hang-demo",
            doc="Demo: sleeps sleep_s seconds (exercises timeouts).",
            fn=hang_demo,
            params=(
                ParamSpec("sleep_s", 60.0, "sleep duration (s)", parse=float),
            ),
        ),
        FigureSpec(
            name="exit-demo",
            doc="Demo: kills its worker process via os._exit.",
            fn=exit_demo,
            params=(ParamSpec("code", 17, "process exit code"),),
        ),
    )
}


def demo_fault_specs() -> dict[str, FigureSpec]:
    """The demo specs when enabled, else an empty mapping."""
    if not demo_faults_enabled():
        return {}
    return dict(_DEMO_SPECS)

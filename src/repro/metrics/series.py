"""Sample series and summary statistics.

Section 2.1 of the paper criticizes existing vPLC evaluations for failing to
report "critical performance metrics such as jitter and worst-case
latency/jitter".  :class:`SampleSeries` therefore always exposes worst-case
values and high percentiles alongside the usual mean/median.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of a sample series (units follow the input)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (for reports)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p99.9": self.p999,
        }


class SampleSeries:
    """An append-only series of numeric samples with cached statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted_cache: np.ndarray | None = None

    def add(self, value: float) -> None:
        """Append one sample."""
        self._samples.append(float(value))
        self._sorted_cache = None

    def extend(self, values: "np.ndarray | list[float]") -> None:
        """Append many samples."""
        self._samples.extend(float(v) for v in values)
        self._sorted_cache = None

    def __len__(self) -> int:
        return len(self._samples)

    def values(self) -> np.ndarray:
        """Samples in insertion order."""
        return np.asarray(self._samples, dtype=float)

    def _sorted(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(np.asarray(self._samples, dtype=float))
        return self._sorted_cache

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not self._samples:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.percentile(self._sorted(), q))

    def summary(self) -> SeriesSummary:
        """Compute the full summary.  Raises on an empty series."""
        if not self._samples:
            raise ValueError(f"series {self.name!r} is empty")
        data = self._sorted()
        return SeriesSummary(
            count=len(data),
            mean=float(np.mean(data)),
            std=float(np.std(data)),
            minimum=float(data[0]),
            maximum=float(data[-1]),
            p50=float(np.percentile(data, 50)),
            p90=float(np.percentile(data, 90)),
            p99=float(np.percentile(data, 99)),
            p999=float(np.percentile(data, 99.9)),
        )

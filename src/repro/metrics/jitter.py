"""Jitter analysis for cyclic real-time traffic.

The paper stresses two under-reported phenomena (Section 2.1):

- **worst-case jitter**, not just averages; and
- **consecutive jitter events** — "periods where jitter repeatedly occurs
  cycle after cycle", which matter because industrial devices halt when no
  valid packet arrives for several consecutive cycles (PROFINET watchdog
  counter expiration).

Given the arrival timestamps of a cyclic flow, this module computes
cycle-to-cycle jitter, jitter relative to the nominal period, consecutive
jitter-event runs, and watchdog expirations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class JitterReport:
    """Jitter statistics of one cyclic flow (all values in nanoseconds)."""

    nominal_period_ns: int
    sample_count: int
    mean_abs_jitter_ns: float
    max_abs_jitter_ns: float
    peak_to_peak_ns: float
    std_ns: float

    def meets_bound(self, bound_ns: float) -> bool:
        """True when the worst-case absolute jitter is within ``bound_ns``."""
        return self.max_abs_jitter_ns <= bound_ns


@dataclass(frozen=True)
class ConsecutiveJitterRun:
    """A maximal run of consecutive cycles whose jitter exceeds a threshold."""

    start_index: int
    length: int


def interarrival_times(arrivals_ns: "np.ndarray | list[int]") -> np.ndarray:
    """Differences between consecutive arrival timestamps."""
    stamps = np.asarray(arrivals_ns, dtype=np.int64)
    if stamps.size < 2:
        raise ValueError("need at least two arrivals to compute interarrivals")
    return np.diff(stamps)


def period_jitter(
    arrivals_ns: "np.ndarray | list[int]", nominal_period_ns: int
) -> np.ndarray:
    """Signed deviation of each interarrival from the nominal period."""
    return interarrival_times(arrivals_ns) - np.int64(nominal_period_ns)


def jitter_report(
    arrivals_ns: "np.ndarray | list[int]", nominal_period_ns: int
) -> JitterReport:
    """Compute the :class:`JitterReport` for a cyclic arrival series."""
    deviations = period_jitter(arrivals_ns, nominal_period_ns).astype(float)
    return JitterReport(
        nominal_period_ns=nominal_period_ns,
        sample_count=deviations.size,
        mean_abs_jitter_ns=float(np.mean(np.abs(deviations))),
        max_abs_jitter_ns=float(np.max(np.abs(deviations))),
        peak_to_peak_ns=float(np.max(deviations) - np.min(deviations)),
        std_ns=float(np.std(deviations)),
    )


def consecutive_jitter_runs(
    arrivals_ns: "np.ndarray | list[int]",
    nominal_period_ns: int,
    threshold_ns: float,
) -> list[ConsecutiveJitterRun]:
    """Find maximal runs of cycles whose |jitter| exceeds ``threshold_ns``."""
    deviations = period_jitter(arrivals_ns, nominal_period_ns)
    exceeds = np.abs(deviations) > threshold_ns
    runs: list[ConsecutiveJitterRun] = []
    start: int | None = None
    for index, flag in enumerate(exceeds):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            runs.append(ConsecutiveJitterRun(start, index - start))
            start = None
    if start is not None:
        runs.append(ConsecutiveJitterRun(start, len(exceeds) - start))
    return runs


def longest_consecutive_jitter(
    arrivals_ns: "np.ndarray | list[int]",
    nominal_period_ns: int,
    threshold_ns: float,
) -> int:
    """Length of the longest consecutive jitter run (0 when none)."""
    runs = consecutive_jitter_runs(arrivals_ns, nominal_period_ns, threshold_ns)
    return max((run.length for run in runs), default=0)


def watchdog_expirations(
    arrivals_ns: "np.ndarray | list[int]",
    nominal_period_ns: int,
    watchdog_factor: int = 3,
) -> int:
    """Count watchdog expirations in an arrival series.

    A PROFINET-style watchdog expires when no packet arrives within
    ``watchdog_factor`` nominal cycles of the previous one.
    """
    if watchdog_factor < 1:
        raise ValueError("watchdog_factor must be >= 1")
    gaps = interarrival_times(arrivals_ns)
    limit = watchdog_factor * nominal_period_ns
    return int(np.count_nonzero(gaps > limit))

"""Empirical cumulative distribution functions.

The paper presents all Traffic Reflection results as CDFs (Figure 4).  This
module builds empirical CDFs from samples and provides the comparisons the
figure's claims rest on: median shift and (approximate) stochastic dominance
("the 25-flow jitter CDF lies right of the 1-flow CDF").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF over a fixed sample set."""

    xs: np.ndarray  # sorted sample values
    ps: np.ndarray  # cumulative probabilities, same length as xs

    @classmethod
    def from_samples(cls, samples: "np.ndarray | list[float]") -> "Cdf":
        """Build the standard empirical CDF (step function at each sample)."""
        data = np.sort(np.asarray(samples, dtype=float))
        if data.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        probabilities = np.arange(1, data.size + 1, dtype=float) / data.size
        return cls(xs=data, ps=probabilities)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.xs, x, side="right")) / self.xs.size

    def quantile(self, p: float) -> float:
        """Smallest x with P(X <= x) >= p, for p in (0, 1]."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        index = int(np.searchsorted(self.ps, p, side="left"))
        index = min(index, self.xs.size - 1)
        return float(self.xs[index])

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def as_points(self) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs, e.g. for plotting or serialization."""
        return list(zip(self.xs.tolist(), self.ps.tolist()))


def median_shift(left: Cdf, right: Cdf) -> float:
    """``right.median - left.median`` — positive when *right* is slower."""
    return right.median - left.median


def dominates(slower: Cdf, faster: Cdf, quantiles: int = 99) -> bool:
    """Approximate first-order stochastic dominance check.

    Returns ``True`` when, at every probed quantile, ``slower`` has a value
    greater than or equal to ``faster`` — i.e. the ``slower`` CDF lies to the
    right.  Used by the Figure 4 benchmarks to assert "more flows => more
    jitter" as a distribution-level statement.
    """
    probes = np.linspace(0.01, 0.99, quantiles)
    return all(slower.quantile(p) >= faster.quantile(p) for p in probes)


def dominance_fraction(slower: Cdf, faster: Cdf, quantiles: int = 99) -> float:
    """Fraction of probed quantiles at which ``slower`` >= ``faster``.

    A softer version of :func:`dominates` for noisy comparisons: 1.0 means
    full dominance, 0.5 means the distributions interleave.
    """
    probes = np.linspace(0.01, 0.99, quantiles)
    hits = sum(1 for p in probes if slower.quantile(p) >= faster.quantile(p))
    return hits / len(probes)

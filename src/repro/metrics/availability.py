"""Availability algebra: nines, MTBF/MTTR, and downtime budgets.

Section 2.2 frames the availability gap numerically: motion control demands
at least 99.9999 % availability — under 31.5 s of downtime per year — while
data centers "typically aim for monthly downtime of a few minutes".  This
module makes those statements computable and lets the InstaPLC benchmarks
translate observed outage durations into availability figures.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_YEAR = 365.0 * 24 * 3600


def nines_to_availability(nines: float) -> float:
    """Convert a 'number of nines' to an availability fraction.

    >>> round(nines_to_availability(6), 8)
    0.999999
    """
    if nines <= 0:
        raise ValueError("nines must be positive")
    return 1.0 - 10.0 ** (-nines)


def availability_to_nines(availability: float) -> float:
    """Inverse of :func:`nines_to_availability`."""
    if not 0.0 < availability < 1.0:
        raise ValueError("availability must be in (0, 1)")
    import math

    return -math.log10(1.0 - availability)


def downtime_per_year_s(availability: float) -> float:
    """Allowed downtime (seconds/year) at a given availability fraction."""
    if not 0.0 < availability <= 1.0:
        raise ValueError("availability must be in (0, 1]")
    return (1.0 - availability) * SECONDS_PER_YEAR


def availability_from_downtime(downtime_s_per_year: float) -> float:
    """Availability fraction implied by a yearly downtime budget."""
    if downtime_s_per_year < 0:
        raise ValueError("downtime cannot be negative")
    return 1.0 - downtime_s_per_year / SECONDS_PER_YEAR


def availability_from_mtbf_mttr(mtbf_s: float, mttr_s: float) -> float:
    """Steady-state availability of a repairable component.

    ``A = MTBF / (MTBF + MTTR)`` — the standard renewal-process result used
    for fiber links and network devices alike.
    """
    if mtbf_s <= 0 or mttr_s < 0:
        raise ValueError("MTBF must be positive and MTTR non-negative")
    return mtbf_s / (mtbf_s + mttr_s)


def series_availability(availabilities: list[float]) -> float:
    """Availability of components that must *all* be up (series system)."""
    result = 1.0
    for availability in availabilities:
        result *= availability
    return result


def parallel_availability(availabilities: list[float]) -> float:
    """Availability of redundant components where *any one* suffices."""
    unavailable = 1.0
    for availability in availabilities:
        unavailable *= 1.0 - availability
    return 1.0 - unavailable


@dataclass(frozen=True)
class OutageLog:
    """A set of observed outages over an observation window."""

    observation_s: float
    outage_durations_s: tuple[float, ...]

    @property
    def total_downtime_s(self) -> float:
        """Sum of all outage durations."""
        return sum(self.outage_durations_s)

    @property
    def availability(self) -> float:
        """Observed availability over the window."""
        if self.observation_s <= 0:
            raise ValueError("observation window must be positive")
        return 1.0 - self.total_downtime_s / self.observation_s

    def projected_yearly_downtime_s(self) -> float:
        """Extrapolate the observed downtime rate to one year."""
        return self.total_downtime_s / self.observation_s * SECONDS_PER_YEAR

    def meets(self, required_availability: float) -> bool:
        """True when observed availability meets the requirement."""
        return self.availability >= required_availability

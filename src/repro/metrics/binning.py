"""Time-series binning.

Figure 5 of the paper plots "packets per 50 ms" around the InstaPLC
switchover.  :func:`bin_counts` turns raw event timestamps into exactly that
representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinnedSeries:
    """Event counts per fixed-width time bin."""

    bin_width_ns: int
    start_ns: int
    counts: np.ndarray

    @property
    def bin_starts_ns(self) -> np.ndarray:
        """Start time of each bin."""
        return self.start_ns + np.arange(self.counts.size) * self.bin_width_ns

    def rate_per_bin(self) -> np.ndarray:
        """Alias for :attr:`counts` (reads better at call sites)."""
        return self.counts

    def first_empty_bin(self) -> int | None:
        """Index of the first bin with zero events, or ``None``."""
        zeros = np.flatnonzero(self.counts == 0)
        if zeros.size == 0:
            return None
        return int(zeros[0])


def bin_counts(
    timestamps_ns: "np.ndarray | list[int]",
    bin_width_ns: int,
    start_ns: int = 0,
    end_ns: int | None = None,
) -> BinnedSeries:
    """Count events per ``bin_width_ns`` window.

    ``end_ns`` (exclusive) fixes the number of bins even when the tail is
    empty — Figure 5 needs trailing zero bins after vPLC1 stops.
    """
    if bin_width_ns <= 0:
        raise ValueError("bin width must be positive")
    stamps = np.asarray(timestamps_ns, dtype=np.int64)
    if end_ns is None:
        end_ns = int(stamps.max()) + 1 if stamps.size else start_ns + bin_width_ns
    if end_ns <= start_ns:
        raise ValueError("end must be after start")
    bin_count = -(-(end_ns - start_ns) // bin_width_ns)  # ceil division
    counts = np.zeros(bin_count, dtype=np.int64)
    in_range = stamps[(stamps >= start_ns) & (stamps < end_ns)]
    indices = (in_range - start_ns) // bin_width_ns
    np.add.at(counts, indices, 1)
    return BinnedSeries(bin_width_ns=bin_width_ns, start_ns=start_ns, counts=counts)

"""Measurement substrate: series statistics, CDFs, jitter, availability.

These are the metrics the paper says industrial evaluations must report:
worst-case latency/jitter, consecutive jitter events, watchdog expirations,
availability in nines, and packets-per-bin time series.
"""

from .availability import (
    OutageLog,
    SECONDS_PER_YEAR,
    availability_from_downtime,
    availability_from_mtbf_mttr,
    availability_to_nines,
    downtime_per_year_s,
    nines_to_availability,
    parallel_availability,
    series_availability,
)
from .binning import BinnedSeries, bin_counts
from .cdf import Cdf, dominance_fraction, dominates, median_shift
from .jitter import (
    ConsecutiveJitterRun,
    JitterReport,
    consecutive_jitter_runs,
    interarrival_times,
    jitter_report,
    longest_consecutive_jitter,
    period_jitter,
    watchdog_expirations,
)
from .series import SampleSeries, SeriesSummary

__all__ = [
    "BinnedSeries",
    "Cdf",
    "ConsecutiveJitterRun",
    "JitterReport",
    "OutageLog",
    "SECONDS_PER_YEAR",
    "SampleSeries",
    "SeriesSummary",
    "availability_from_downtime",
    "availability_from_mtbf_mttr",
    "availability_to_nines",
    "bin_counts",
    "consecutive_jitter_runs",
    "dominance_fraction",
    "dominates",
    "downtime_per_year_s",
    "interarrival_times",
    "jitter_report",
    "longest_consecutive_jitter",
    "median_shift",
    "nines_to_availability",
    "parallel_availability",
    "period_jitter",
    "series_availability",
    "watchdog_expirations",
]

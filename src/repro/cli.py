"""Command-line interface: regenerate the paper's figures, in parallel.

Usage::

    python -m repro list
    python -m repro fig5 --format json
    python -m repro fig4-delay --csv out/fig4_delay.csv --seed 3 --cycles 100
    python -m repro all --out-dir results/ --jobs 4
    python -m repro sweep --figure fig4-jitter --seeds 0..4 \\
        --param cycles=100,400 --jobs 4 --out-dir sweeps/

``all`` and ``sweep`` fan jobs out over a ``multiprocessing`` pool
(``--jobs``, default: CPU count) and reuse a content-addressed on-disk
result cache (``--cache-dir``, default ``.repro-cache``; disable with
``--no-cache``).  ``sweep`` prints a JSON run manifest (see
:mod:`repro.runner.manifest`) to stdout, with per-job progress on stderr.

Observability (see :mod:`repro.obs`)::

    python -m repro sweep --profile --trace-out traces/ fig5 \\
        --manifest manifest.json
    python -m repro obs manifest.json --top 10

``--trace-out DIR`` writes one Chrome trace-event JSON per computed job
(load in Perfetto or ``chrome://tracing``); ``--profile`` times every
simulator event callback.  Both embed metrics snapshots in the manifest,
which ``repro obs`` renders as a metrics / hot-spot summary.

In-band network telemetry (see :mod:`repro.obs.telemetry`)::

    python -m repro sweep fig6 --telemetry --manifest runs/manifest.json
    python -m repro obs telemetry runs/telemetry/   # samplers + postcards
    python -m repro obs flight runs/telemetry/      # flight-recorder dumps

``--telemetry [DIR]`` turns on INT-style postcards (1-in-N packet
sampling), bounded time-series rings (queue depth, link utilization), and
a fault flight recorder inside every computed job; each job writes
``*.postcards.jsonl`` + ``*.telemetry.json`` and embeds a digest in the
manifest, which ``repro report`` renders as a "Network telemetry" section.

Chaos campaigns (see :mod:`repro.chaos`)::

    python -m repro chaos list
    python -m repro chaos run link-flaps --seeds 0..2 --param mttr_scale=1,2
    python -m repro chaos replay --scenario link-flaps --seed 7

Resilient sweeps (see :mod:`repro.runner.supervisor`)::

    python -m repro sweep fig5 fig6 --seeds 0..4 \\
        --timeout 300 --retries 1 --manifest sweep.json
    # ... a cell crashed / the box rebooted?  Rerun only what's missing:
    python -m repro sweep fig5 fig6 --seeds 0..4 \\
        --timeout 300 --retries 1 --resume sweep.json --manifest sweep.json

``--manifest`` is flushed after every completed job, so an interrupted
sweep leaves a valid (partial) manifest behind.  Failed cells render a
``(failed)`` marker row instead of aborting the sweep.

Cross-run observability (see :mod:`repro.obs.report`,
:mod:`repro.obs.history`, :mod:`repro.obs.status`)::

    python -m repro all --out-dir results/      # heartbeats results/status.json
    python -m repro obs tail results/ --follow  # live ok/failed/retry counts
    python -m repro report results/             # report.html + report.md
    python -m repro bench record                # BENCH_<date>.json + history
    python -m repro bench compare --warn-only   # regression check vs history

``report`` aggregates a run directory's manifest, row CSVs, metrics, and
verdicts into a self-contained HTML + markdown report.  ``bench record``
times the ``benchmarks/`` suite and appends to an append-only history;
``bench compare`` flags median shifts outside a MAD-scaled noise band.

Exit codes: 0 success, 1 bench regression (without ``--warn-only``) or
failed strict chaos verdicts, 2 usage/argument errors, 3 sweep completed
*degraded* (some jobs failed or timed out; resume with ``--resume``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from . import __version__
from .figures import (
    FORMATS,
    FigureSpec,
    UnknownFigureError,
    failure_rows,
    get_spec,
    registry,
)
from .obs import hotspot_table
from .obs.metrics import sorted_histogram_items
from .runner import (
    DEFAULT_CACHE_DIR,
    JobRecord,
    ResultCache,
    RunManifest,
    expand_grid,
    run_jobs,
)

#: Exit code for a sweep that completed but with failed/timed-out jobs.
EXIT_DEGRADED = 3


def _add_resilience_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-job timeout in seconds (default: none)",
    )
    sub.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts per failed job (default: 0)",
    )
    sub.add_argument(
        "--backoff", type=float, default=None, metavar="SEC",
        help="base retry backoff in seconds (default: 0.05, deterministic)",
    )
    sub.add_argument(
        "--resume", type=Path, default=None, metavar="MANIFEST",
        help=(
            "skip cells this earlier run manifest already completed "
            "(their rows are re-served from the cache)"
        ),
    )


def _add_telemetry_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--telemetry", nargs="?", const="auto", default=None, metavar="DIR",
        help=(
            "enable the in-band network telemetry plane (INT postcards, "
            "ring samplers, flight recorder) and write one "
            "*.postcards.jsonl + *.telemetry.json per computed job into "
            "DIR (default: 'telemetry' inside the run directory)"
        ),
    )
    sub.add_argument(
        "--telemetry-interval", type=int, default=64, metavar="N",
        help="sample 1-in-N packets for INT postcards (default: 64)",
    )


def _add_status_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--status", type=Path, default=None, metavar="FILE",
        help=(
            "live status heartbeat file (default: status.json in --out-dir "
            "or next to --manifest; see 'repro obs tail')"
        ),
    )
    sub.add_argument(
        "--no-status", action="store_true",
        help="disable the live status heartbeat",
    )
    sub.add_argument(
        "--sweeptrace", nargs="?", const="auto", default=None,
        metavar="FILE",
        help=(
            "record the sweep control plane's distributed trace "
            "(submission, attempts, retries, worker lifecycle, "
            "checkpoints, cache hits) to FILE (default: "
            "sweep.events.jsonl next to the manifest; see "
            "'repro obs timeline')"
        ),
    )


def _add_cache_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    sub.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; do not read or write the cache",
    )
    _add_backend_args(sub)


def _add_backend_args(sub: argparse.ArgumentParser) -> None:
    """``--backend``/``--stream-rows``/``--chunk-rows`` — shared with the
    chaos CLI, which has its own cache/jobs flags."""
    sub.add_argument(
        "--backend", default=None, metavar="SPEC",
        help=(
            "executor backend NAME[:WORKERS]: serial, local-pool[:N], or "
            "subprocess:N ('repro worker' children over stdio); default: "
            "auto (env REPRO_BACKEND, else picked from --jobs)"
        ),
    )
    sub.add_argument(
        "--stream-rows", nargs="?", const="auto", default=None, metavar="DIR",
        help=(
            "stream job rows through content-addressed chunked JSONL files "
            "instead of the supervising process's memory; DIR defaults to "
            "the cache's row store (so the default needs the cache enabled)"
        ),
    )
    sub.add_argument(
        "--chunk-rows", type=int, default=None, metavar="N",
        help="rows per streamed chunk file (default: 256)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures of 'Data Centers Manufacturing Steel' "
            "(HotNets '25) from the simulation models."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available figures")

    for name, spec in registry().items():
        sub = subparsers.add_parser(name, help=spec.doc)
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument(
            "--csv", type=Path, default=None,
            help="write the rows to this CSV file instead of printing",
        )
        sub.add_argument(
            "--out", type=Path, default=None,
            help="write the rows to this file in --format",
        )
        sub.add_argument(
            "--format", choices=FORMATS, default="table",
            help="render format (default: table)",
        )
        for param in spec.params:
            sub.add_argument(
                f"--{param.name.replace('_', '-')}",
                dest=param.name, default=None, metavar="V",
                help=f"{param.doc} (default: {param.default})",
            )

    sub = subparsers.add_parser(
        "all", help="regenerate every figure (parallel, cached)"
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--out-dir", type=Path, default=Path("results"),
        help="directory receiving one CSV per figure plus manifest.json",
    )
    _add_cache_args(sub)
    _add_resilience_args(sub)
    _add_status_args(sub)
    _add_telemetry_args(sub)

    sub = subparsers.add_parser(
        "sweep", help="run a (figure x seed x param) grid in parallel"
    )
    sub.add_argument(
        "figures", nargs="*", default=[], metavar="FIGURE",
        help="figures to sweep (default: all figures)",
    )
    sub.add_argument(
        "--figure", action="append", default=None, metavar="NAME",
        help="figure to sweep (repeatable; same as the positional form)",
    )
    sub.add_argument(
        "--seeds", default="0", metavar="LIST",
        help="seeds: comma list '0,1,2' or inclusive range '0..4'",
    )
    sub.add_argument(
        "--param", action="append", default=None, metavar="NAME=V1,V2",
        help=(
            "grid values for one parameter (repeatable); tuple-valued "
            "params use ':' inside one value, e.g. flow_counts=1:5:25"
        ),
    )
    sub.add_argument(
        "--out-dir", type=Path, default=None,
        help="also write one CSV per job into this directory",
    )
    sub.add_argument(
        "--manifest", type=Path, default=None,
        help="write the JSON run manifest here instead of stdout",
    )
    sub.add_argument(
        "--trace-out", type=Path, default=None, metavar="DIR",
        help=(
            "enable span tracing and write one Chrome trace-event JSON "
            "(plus JSONL) per computed job into DIR"
        ),
    )
    sub.add_argument(
        "--profile", action="store_true",
        help=(
            "time every simulator event callback and attach per-job "
            "hot-spot tables to the manifest"
        ),
    )
    _add_cache_args(sub)
    _add_resilience_args(sub)
    _add_status_args(sub)
    _add_telemetry_args(sub)

    subparsers.add_parser(
        "worker",
        help=(
            "run as a stdio job-protocol worker (internal: spawned by the "
            "'subprocess' executor backend, locally or over SSH)"
        ),
    )

    from .chaos.cli import add_chaos_parser

    add_chaos_parser(subparsers)

    sub = subparsers.add_parser(
        "obs",
        help=(
            "observability: summarize a run manifest, 'tail' a running "
            "sweep's status heartbeat, render a sweep 'timeline', or "
            "inspect 'telemetry' / 'flight' snapshots"
        ),
    )
    sub.add_argument(
        "target", metavar="RUN|tail|timeline|telemetry|flight",
        help=(
            "manifest JSON (or run directory) written by 'repro sweep'/"
            "'repro all'; or the literal 'tail' to watch a live sweep; "
            "'timeline' to render the control-plane Gantt + critical "
            "path from a --sweeptrace run; or 'telemetry' / 'flight' to "
            "render *.telemetry.json snapshots written by --telemetry"
        ),
    )
    sub.add_argument(
        "tail_path", nargs="?", type=Path, default=None, metavar="PATH",
        help=(
            "with 'tail': the status.json (or the sweep's run directory "
            "holding one); with 'timeline': the run directory (or its "
            "sweep.events.jsonl); with 'telemetry'/'flight': a "
            ".telemetry.json file or the telemetry directory; default: "
            "current directory"
        ),
    )
    sub.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hot-spot rows to show per job (default: 10)",
    )
    sub.add_argument(
        "--follow", "-f", action="store_true",
        help="with 'tail': keep polling until the sweep finishes",
    )
    sub.add_argument(
        "--interval", type=float, default=0.5, metavar="SEC",
        help="with 'tail --follow': polling interval (default: 0.5)",
    )
    sub.add_argument(
        "--chrome", type=Path, default=None, metavar="OUT",
        help=(
            "with 'timeline': also merge the engine events and per-job "
            "Chrome traces into one cross-process trace file at OUT"
        ),
    )

    sub = subparsers.add_parser(
        "report",
        help="aggregate a finished run into HTML + markdown reports",
    )
    sub.add_argument(
        "run_dir", type=Path, metavar="RUN_DIR|MANIFEST",
        help=(
            "run directory (holding manifest.json) from 'repro all' / "
            "'repro sweep --out-dir', or a manifest file"
        ),
    )
    sub.add_argument(
        "--out-dir", type=Path, default=None, metavar="DIR",
        help="where report.html / report.md go (default: the run dir)",
    )
    sub.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="merged hot-spot rows in the report (default: 10)",
    )

    bench = subparsers.add_parser(
        "bench", help="record / compare benchmark wall-time trajectories"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    sub = bench_sub.add_parser(
        "record",
        help="time the benchmarks suite and append to the history store",
    )
    sub.add_argument(
        "--history", type=Path, default=Path(".repro-bench"), metavar="DIR",
        help="history directory (default: .repro-bench)",
    )
    sub.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="BENCH_*.json output path (default: derived inside --history)",
    )
    sub.add_argument(
        "--suite", default="benchmarks", metavar="PATH",
        help="pytest target to time (default: benchmarks)",
    )
    sub.add_argument(
        "-k", dest="select", default=None, metavar="EXPR",
        help="pytest -k selection expression",
    )
    sub.add_argument(
        "--from", dest="samples_from", type=Path, default=None,
        metavar="FILE",
        help=(
            "ingest samples from an existing BENCH_*.json or pytest-hook "
            "samples file instead of running pytest"
        ),
    )
    sub.add_argument(
        "--no-history", action="store_true",
        help="write the BENCH file only; do not append to the history",
    )
    sub = bench_sub.add_parser(
        "compare",
        help="judge a BENCH_*.json against the history's noise band",
    )
    sub.add_argument(
        "bench_file", nargs="?", type=Path, default=None, metavar="FILE",
        help="BENCH_*.json to judge (default: newest in --history)",
    )
    sub.add_argument(
        "--history", type=Path, default=Path(".repro-bench"), metavar="DIR",
        help="history directory (default: .repro-bench)",
    )
    sub.add_argument(
        "--window", type=int, default=8, metavar="N",
        help="history entries the baseline median spans (default: 8)",
    )
    sub.add_argument(
        "--mad-factor", type=float, default=4.0, metavar="F",
        help="noise-band width in MAD-scaled sigmas (default: 4.0)",
    )
    sub.add_argument(
        "--min-rel", type=float, default=0.10, metavar="R",
        help="minimum relative noise band (default: 0.10)",
    )
    sub.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI bring-up mode)",
    )
    return parser


def parse_seeds(text: str) -> list[int]:
    """Parse ``"0,1,2"`` or the inclusive range ``"0..4"``."""
    text = text.strip()
    if ".." in text:
        first, _, last = text.partition("..")
        return list(range(int(first), int(last) + 1))
    return [int(part) for part in text.split(",") if part.strip()]


def parse_param_grid(specs: list[str] | None) -> dict[str, list[str]]:
    """Parse repeated ``NAME=V1,V2`` flags into a grid mapping."""
    grid: dict[str, list[str]] = {}
    for item in specs or []:
        name, sep, values = item.partition("=")
        name = name.strip()
        if not sep or not name or not values:
            raise ValueError(
                f"bad --param {item!r}; expected NAME=V1,V2,..."
            )
        grid.setdefault(name, []).extend(
            part for part in values.split(",") if part.strip()
        )
    return grid


def _cache_from(args: argparse.Namespace) -> ResultCache | None:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", DEFAULT_CACHE_DIR))


def _make_progress(total: int):
    """Build a per-job progress printer with live counts and an ETA.

    The running ``[done/total ok=.. failed=..]`` prefix and the ETA are
    the in-terminal twin of the ``status.json`` heartbeat: both are
    derived from completed :class:`JobRecord` durations only, so neither
    can perturb results.
    """
    done = ok = failed = 0
    durations: list[float] = []

    def progress(record: JobRecord) -> None:
        nonlocal done, ok, failed
        done += 1
        label = " ".join(
            [record.figure, f"seed={record.seed}"]
            + [f"{k}={v}" for k, v in record.params.items()]
        )
        if not record.ok:
            failed += 1
            state = (
                f"{record.status.upper()} after "
                f"{record.attempts} attempt(s): {record.error}"
            )
        else:
            ok += 1
            if not record.cached and record.wall_time_s > 0:
                durations.append(record.wall_time_s)
            state = "cached" if record.cached else f"{record.wall_time_s:.2f}s"
            state += f" ({record.rows} rows)"
            if record.attempts > 1:
                state += f" [{record.attempts} attempts]"
        prefix = f"[{done}/{total} ok={ok} failed={failed}]"
        eta = ""
        remaining = total - done
        if remaining and durations:
            eta_s = remaining * (sum(durations) / len(durations))
            eta = f" eta ~{eta_s:.0f}s"
        print(f"  {prefix} {label}: {state}{eta}", file=sys.stderr)

    return progress


def _status_path(
    args: argparse.Namespace, *bases: Path | None
) -> Path | None:
    """Resolve the heartbeat location: --status wins, then the run dir."""
    if getattr(args, "no_status", False):
        return None
    explicit = getattr(args, "status", None)
    if explicit is not None:
        return explicit
    for base in bases:
        if base is not None:
            return Path(base) / "status.json"
    return None


def _telemetry_kwargs(
    args: argparse.Namespace, *bases: Path | None
) -> dict[str, Any]:
    """Resolve ``--telemetry [DIR]`` against the run directory."""
    choice = getattr(args, "telemetry", None)
    if choice is None:
        return {}
    if choice != "auto":
        telemetry_dir = Path(choice)
    else:
        base = next((Path(b) for b in bases if b is not None), Path("."))
        telemetry_dir = base / "telemetry"
    return {
        "telemetry_dir": telemetry_dir,
        "telemetry_interval": getattr(args, "telemetry_interval", 64),
    }


def _sweeptrace_kwargs(
    args: argparse.Namespace, *bases: Path | None
) -> dict[str, Any]:
    """Resolve ``--sweeptrace [FILE]`` against the run directory."""
    choice = getattr(args, "sweeptrace", None)
    if choice is None:
        return {}
    if choice != "auto":
        return {"sweeptrace": Path(choice)}
    from .obs.sweeptrace import EVENTS_FILENAME

    base = next((Path(b) for b in bases if b is not None), Path("."))
    return {"sweeptrace": base / EVENTS_FILENAME}


def _resilience_kwargs(args: argparse.Namespace) -> dict[str, Any]:
    resume = getattr(args, "resume", None)
    return {
        "timeout_s": getattr(args, "timeout", None),
        "retries": getattr(args, "retries", 0),
        "backoff": getattr(args, "backoff", None),
        "resume_from": RunManifest.load(resume) if resume else None,
    }


def _backend_kwargs(args: argparse.Namespace) -> dict[str, Any]:
    """Resolve ``--backend`` / ``--stream-rows`` / ``--chunk-rows``."""
    kwargs: dict[str, Any] = {"backend": getattr(args, "backend", None)}
    stream = getattr(args, "stream_rows", None)
    if stream is not None:
        kwargs["stream_rows"] = True if stream == "auto" else Path(stream)
    chunk = getattr(args, "chunk_rows", None)
    if chunk is not None:
        kwargs["chunk_rows"] = chunk
    return kwargs


def _report_degraded(result, resume_hint: str) -> None:
    failures = result.failures
    print(
        f"repro: {len(failures)} of {len(result.outcomes)} job(s) "
        f"failed; completed cells are kept ({resume_hint})",
        file=sys.stderr,
    )


def _csv_name(record: JobRecord, multi: bool) -> str:
    stem = record.figure.replace("-", "_")
    if not multi:
        return f"{stem}.csv"
    return f"{stem}.seed{record.seed}.{record.key[:8]}.csv"


def _run_figure_command(spec: FigureSpec, args: argparse.Namespace) -> int:
    overrides = {
        param.name: value
        for param in spec.params
        if (value := getattr(args, param.name, None)) is not None
    }
    rows = spec.run(seed=getattr(args, "seed", 0), **overrides)
    csv_path: Path | None = getattr(args, "csv", None)
    out_path: Path | None = getattr(args, "out", None)
    fmt: str = getattr(args, "format", "table") or "table"
    if csv_path is not None:
        csv_path.parent.mkdir(parents=True, exist_ok=True)
        csv_path.write_text(rows.to_csv())
        print(f"wrote {csv_path} ({len(rows)} rows)")
    if out_path is not None:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rows.render(fmt))
        print(f"wrote {out_path} ({len(rows)} rows)")
    if csv_path is None and out_path is None:
        print(rows.render(fmt))
    return 0


def _run_all(args: argparse.Namespace) -> int:
    out_dir: Path = getattr(args, "out_dir", Path("results"))
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = out_dir / "manifest.json"
    jobs = expand_grid(list(registry()), seeds=[getattr(args, "seed", 0)])
    result = run_jobs(
        jobs,
        workers=getattr(args, "jobs", None),
        cache=_cache_from(args),
        progress=_make_progress(len(jobs)),
        checkpoint=manifest_path,
        status_path=_status_path(args, out_dir),
        **_backend_kwargs(args),
        **_telemetry_kwargs(args, out_dir),
        **_sweeptrace_kwargs(args, out_dir),
        **_resilience_kwargs(args),
    )
    for outcome in result.outcomes:
        target = out_dir / _csv_name(outcome.record, multi=False)
        if outcome.record.ok:
            target.write_text(outcome.rows.to_csv())
            print(f"wrote {target} ({len(outcome.rows)} rows)")
        else:
            # Partial-figure rendering: a failed cell still exports a
            # placeholder CSV so downstream tooling sees every figure.
            target.write_text(
                failure_rows(
                    outcome.record.figure, outcome.record.error
                ).to_csv()
            )
            print(f"wrote {target} ((failed) marker row)")
        outcome.record.rows_path = str(target)
    manifest_path.write_text(result.manifest.to_json() + "\n")
    print(
        f"wrote {manifest_path} "
        f"({result.manifest.cache_hits} cached, "
        f"{result.manifest.cache_misses} computed, "
        f"{result.manifest.failed} failed, "
        f"{result.manifest.wall_time_s:.2f}s)"
    )
    if not result.ok:
        _report_degraded(
            result, f"resume with: repro all --resume {manifest_path}"
        )
        return EXIT_DEGRADED
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    figures = list(getattr(args, "figures", None) or [])
    figures += [
        name
        for name in getattr(args, "figure", None) or []
        if name not in figures
    ]
    if not figures:
        figures = list(registry())
    jobs = expand_grid(
        figures,
        seeds=parse_seeds(getattr(args, "seeds", "0")),
        grid=parse_param_grid(getattr(args, "param", None)),
    )
    manifest_path: Path | None = getattr(args, "manifest", None)
    if manifest_path is not None:
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
    out_dir: Path | None = getattr(args, "out_dir", None)
    result = run_jobs(
        jobs,
        workers=getattr(args, "jobs", None),
        cache=_cache_from(args),
        progress=_make_progress(len(jobs)),
        trace_dir=getattr(args, "trace_out", None),
        profile=getattr(args, "profile", False),
        checkpoint=manifest_path,
        status_path=_status_path(
            args,
            out_dir,
            manifest_path.parent if manifest_path is not None else None,
        ),
        **_backend_kwargs(args),
        **_telemetry_kwargs(
            args,
            out_dir,
            manifest_path.parent if manifest_path is not None else None,
        ),
        **_sweeptrace_kwargs(
            args,
            out_dir,
            manifest_path.parent if manifest_path is not None else None,
        ),
        **_resilience_kwargs(args),
    )
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        for outcome in result.outcomes:
            target = out_dir / _csv_name(outcome.record, multi=True)
            rows = (
                outcome.rows
                if outcome.record.ok
                else failure_rows(
                    outcome.record.figure, outcome.record.error
                )
            )
            target.write_text(rows.to_csv())
            outcome.record.rows_path = str(target)
    if manifest_path is not None:
        manifest_path.write_text(result.manifest.to_json() + "\n")
        print(f"wrote {manifest_path}", file=sys.stderr)
    else:
        print(result.manifest.to_json())
    if not result.ok:
        hint = (
            f"resume with: repro sweep ... --resume {manifest_path}"
            if manifest_path is not None
            else "rerun with --manifest to enable --resume"
        )
        _report_degraded(result, hint)
        return EXIT_DEGRADED
    return 0


def _format_ns(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f}us"
    return f"{value:.0f}ns"


def _job_label(record: JobRecord) -> str:
    parts = [record.figure, f"seed={record.seed}"]
    parts += [f"{k}={v}" for k, v in record.params.items()]
    return " ".join(parts)


def _run_obs_timeline(args: argparse.Namespace) -> int:
    """``repro obs timeline RUN_DIR [--chrome OUT]``."""
    from .obs import sweeptrace as st

    target = getattr(args, "tail_path", None) or Path(".")
    events_path = st.resolve_events_path(target)
    timeline = st.build_timeline(st.load_events(events_path))
    segments = st.critical_path(timeline)
    print(st.format_timeline(timeline, segments))
    chrome = getattr(args, "chrome", None)
    if chrome is not None:
        count = st.write_merged_chrome(events_path, chrome)
        print(f"\nwrote {chrome} ({count} trace events)")
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    target = getattr(args, "target", None)
    if target == "tail":
        return _run_obs_tail(args)
    if target == "timeline":
        return _run_obs_timeline(args)
    if target == "telemetry":
        return _run_obs_telemetry(args)
    if target == "flight":
        return _run_obs_flight(args)
    path = Path(args.target)
    if path.is_dir():
        path = path / "manifest.json"
    try:
        manifest = RunManifest.load(path)
    except OSError as exc:
        raise ValueError(f"cannot read manifest {path}: {exc}") from None
    top: int = getattr(args, "top", 10)
    records = manifest.records
    ok = sum(1 for r in records if r.status == "ok")
    cached = sum(1 for r in records if r.status == "cached")
    retries = sum(max(r.attempts - 1, 0) for r in records)
    observed = [record for record in records if record.metrics]
    summary = (
        f"{path}: {len(records)} job(s): {ok} ok, {cached} cached, "
        f"{manifest.failed} failed"
    )
    if retries:
        summary += f", {retries} retry attempt(s)"
    print(f"{summary}; {len(observed)} with observability data")
    for record in manifest.failures():
        print(
            f"  {_job_label(record)}: {record.status.upper()} after "
            f"{record.attempts} attempt(s): {record.error or '?'}"
        )
    slowest = sorted(
        (record for record in records if not record.cached),
        key=lambda record: record.wall_time_s,
        reverse=True,
    )[:5]
    if slowest:
        print("\nslowest jobs:")
        table = [("job", "wall", "attempts", "backend")] + [
            (
                _job_label(record),
                f"{record.wall_time_s:.2f}s",
                str(record.attempts),
                record.backend or "-",
            )
            for record in slowest
        ]
        widths = [
            max(len(row[col]) for row in table) for col in range(4)
        ]
        for row in table:
            print(
                "  " + "  ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                ).rstrip()
            )
    if not observed:
        print(
            "  (no metrics in this manifest; rerun the sweep with "
            "--trace-out and/or --profile)"
        )
        return 0
    for record in observed:
        timing = f"{record.wall_time_s:.2f}s"
        if record.attempts > 1:
            timing += f", {record.attempts} attempts"
        print(f"\n{_job_label(record)}  [{timing}]")
        if record.trace_path:
            print(f"  trace: {record.trace_path}")
        metrics = record.metrics or {}
        counters = metrics.get("counters") or {}
        gauges = metrics.get("gauges") or {}
        histograms = metrics.get("histograms") or {}
        if counters:
            print("  counters:")
            for key in sorted(counters):
                print(f"    {key} = {counters[key]}")
        if gauges:
            print("  gauges:")
            for key in sorted(gauges):
                print(f"    {key} = {gauges[key]}")
        if histograms:
            print("  histograms:")
            for key, h in sorted_histogram_items(histograms):
                count = h.get("count", 0)
                mean = (h.get("sum", 0) / count) if count else 0.0
                print(
                    f"    {key}  count={count} "
                    f"mean={_format_ns(mean)} "
                    f"min={_format_ns(h.get('min'))} "
                    f"max={_format_ns(h.get('max'))}"
                )
        if record.hotspots:
            print("  hot spots:")
            for line in hotspot_table(record.hotspots, top=top).splitlines():
                print(f"    {line}")
    return 0


def _telemetry_snapshots(args: argparse.Namespace):
    """Resolve ``repro obs telemetry|flight PATH`` into snapshot payloads."""
    from .obs.telemetry import load_snapshot, snapshot_paths

    target = getattr(args, "tail_path", None) or Path(".")
    try:
        paths = snapshot_paths(target)
    except FileNotFoundError as exc:
        raise ValueError(str(exc)) from None
    return [(path, load_snapshot(path)) for path in paths]


def _run_obs_telemetry(args: argparse.Namespace) -> int:
    from .obs.telemetry import format_snapshot

    for path, payload in _telemetry_snapshots(args):
        print(format_snapshot(payload, name=path.name))
    return 0


def _run_obs_flight(args: argparse.Namespace) -> int:
    from .obs.telemetry import format_flight

    for path, payload in _telemetry_snapshots(args):
        print(format_flight(payload, name=path.name))
    return 0


def _run_obs_tail(args: argparse.Namespace) -> int:
    import os
    import time

    from .obs.status import (
        STATE_RUNNING,
        format_status,
        load_status,
        resolve_status_path,
    )

    target = getattr(args, "tail_path", None) or Path(".")
    follow: bool = getattr(args, "follow", False)
    interval: float = max(getattr(args, "interval", 0.5), 0.05)
    path = resolve_status_path(target)  # friendly ValueError when missing
    last_stamp: float | None = None
    last_inode: int | None = None
    status: dict[str, Any] = {}
    while True:
        try:
            inode = os.stat(path).st_ino
            status = load_status(path)
        except (OSError, ValueError):
            # The supervisor swaps status.json in atomically, but a fresh
            # sweep recreating the file can leave a gap where it is
            # missing or half-readable; keep polling instead of dying.
            if not follow:
                raise
            time.sleep(interval)
            continue
        if inode != last_inode:
            # New inode = the file was atomically replaced (heartbeat or
            # a brand-new sweep reusing the path): treat it as fresh even
            # if its updated_at matches what we last printed.
            last_inode = inode
            last_stamp = None
        stamp = status.get("updated_at")
        if stamp != last_stamp:
            print(format_status(status), flush=True)
            last_stamp = stamp
        if not follow or status.get("state") != STATE_RUNNING:
            break
        time.sleep(interval)
    return EXIT_DEGRADED if status.get("failed") else 0


def _run_report(args: argparse.Namespace) -> int:
    from datetime import datetime, timezone

    from .obs.report import build_report, resolve_manifest_path

    target: Path = args.run_dir
    manifest_path = resolve_manifest_path(target)  # friendly error on miss
    report = build_report(target, top_hotspots=getattr(args, "top", 10))
    out_dir: Path = getattr(args, "out_dir", None) or manifest_path.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M:%S UTC")
    md_path = out_dir / "report.md"
    html_path = out_dir / "report.html"
    md_path.write_text(report.to_markdown(generated_at=stamp))
    html_path.write_text(report.to_html(generated_at=stamp))
    manifest = report.manifest
    print(f"wrote {html_path}")
    print(f"wrote {md_path}")
    verdicts = report.all_requirement_verdicts()
    met = sum(1 for v in verdicts if v.verdict == "meets")
    print(
        f"{len(manifest.records)} job(s): {manifest.cache_hits} cached, "
        f"{manifest.cache_misses} computed, {manifest.failed} failed; "
        f"{met}/{len(verdicts)} requirement-class checks met"
    )
    return 0


def _bench_history_dir(args: argparse.Namespace) -> Path:
    return getattr(args, "history", None) or Path(".repro-bench")


def _run_bench_record(args: argparse.Namespace) -> int:
    import json
    import platform
    from datetime import datetime, timezone

    from .obs.history import BenchHistory, BenchReport, BenchSample

    history_dir = _bench_history_dir(args)
    samples_from: Path | None = getattr(args, "samples_from", None)
    if samples_from is not None:
        try:
            payload = json.loads(samples_from.read_text())
        except OSError as exc:
            raise ValueError(
                f"cannot read samples file {samples_from}: {exc}"
            ) from None
        samples = [
            BenchSample.from_dict(entry)
            for entry in payload.get("samples", [])
        ]
    else:
        samples = _collect_bench_samples(
            suite=getattr(args, "suite", "benchmarks"),
            select=getattr(args, "select", None),
        )
    if not samples:
        raise ValueError(
            "no benchmark samples collected; is the suite path right?"
        )
    now = datetime.now(timezone.utc)
    report = BenchReport(
        recorded_at=now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        samples=samples,
        meta={
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    )
    out: Path | None = getattr(args, "out", None)
    if out is None:
        out = history_dir / (
            f"BENCH_{now.strftime('%Y-%m-%d_%H%M%S')}.json"
        )
    report.save(out)
    print(f"wrote {out} ({len(samples)} benchmark(s))")
    if not getattr(args, "no_history", False):
        path = BenchHistory(history_dir).append(report)
        print(f"appended to {path}")
    return 0


def _collect_bench_samples(suite: str, select: str | None):
    """Time ``suite`` via a pytest subprocess and the conftest hook."""
    import os
    import subprocess
    import tempfile

    from .obs.history import BenchSample

    src_dir = str(Path(__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        out_file = Path(tmp) / "samples.json"
        env["REPRO_BENCH_OUT"] = str(out_file)
        cmd = [
            sys.executable, "-m", "pytest", suite, "-q",
            "-p", "no:cacheprovider",
        ]
        if select:
            cmd += ["-k", select]
        proc = subprocess.run(cmd, env=env)
        if not out_file.exists():
            raise ValueError(
                f"benchmark run produced no samples (pytest exit "
                f"{proc.returncode}); does {suite} exist and does its "
                f"conftest honor REPRO_BENCH_OUT?"
            )
        if proc.returncode != 0:
            print(
                f"repro bench: pytest exited {proc.returncode}; recording "
                f"the samples that did complete",
                file=sys.stderr,
            )
        import json

        payload = json.loads(out_file.read_text())
        return [
            BenchSample.from_dict(entry)
            for entry in payload.get("samples", [])
        ]


def _run_bench_compare(args: argparse.Namespace) -> int:
    from .obs.history import (
        STATUS_REGRESSION,
        BenchHistory,
        BenchReport,
        detect_regressions,
        format_findings,
    )

    history_dir = _bench_history_dir(args)
    history = BenchHistory(history_dir)
    if not history.reports():
        # First run (empty or absent history.jsonl) is not a failure:
        # CI seeds the history with this very invocation sequence, so a
        # missing baseline must exit 0 with an explicit explanation.
        print(
            f"repro bench: no history yet at {history.path}; nothing to "
            f"compare against. Run 'repro bench record' to start one."
        )
        return 0
    bench_file: Path | None = getattr(args, "bench_file", None)
    if bench_file is None:
        candidates = sorted(history_dir.glob("BENCH_*.json"))
        if not candidates:
            raise ValueError(
                f"no BENCH_*.json under {history_dir}; run "
                f"'repro bench record' first or pass a file"
            )
        bench_file = candidates[-1]
    try:
        report = BenchReport.load(bench_file)
    except OSError as exc:
        raise ValueError(
            f"cannot read bench file {bench_file}: {exc}"
        ) from None
    findings = detect_regressions(
        history,
        report,
        window=getattr(args, "window", 8),
        mad_factor=getattr(args, "mad_factor", 4.0),
        min_rel=getattr(args, "min_rel", 0.10),
    )
    print(f"{bench_file} vs {history.path}:")
    print(format_findings(findings))
    regressions = [f for f in findings if f.status == STATUS_REGRESSION]
    fresh = sum(1 for f in findings if f.status == "new")
    summary = (
        f"{len(findings)} benchmark(s): {len(regressions)} regression(s)"
    )
    if fresh:
        summary += f", {fresh} without history yet"
    print(summary)
    if regressions:
        if getattr(args, "warn_only", False):
            print(
                "repro bench: regressions detected, but --warn-only is "
                "set; not failing",
                file=sys.stderr,
            )
            return 0
        return 1
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    command = getattr(args, "bench_command", None)
    if command == "record":
        return _run_bench_record(args)
    if command == "compare":
        return _run_bench_compare(args)
    raise ValueError(f"unknown bench command {command!r}")


def dispatch(args: argparse.Namespace) -> int:
    """Execute a parsed (or hand-built) namespace.

    Unlike raw ``FIGURES[args.command]``, unknown figure names get a
    friendly error listing the available figures — this is the entry point
    for callers that bypass ``argparse``.
    """
    command = getattr(args, "command", None)
    if command == "list":
        for name, spec in registry().items():
            print(f"{name:12s} {spec.doc}")
        return 0
    if command == "worker":
        # The stdio protocol owns stdout; no friendly-error wrapping — a
        # protocol violation must kill the child visibly.
        from .runner.worker import worker_main

        return worker_main()
    try:
        if command == "all":
            return _run_all(args)
        if command == "sweep":
            return _run_sweep(args)
        if command == "obs":
            return _run_obs(args)
        if command == "report":
            return _run_report(args)
        if command == "bench":
            return _run_bench(args)
        if command == "chaos":
            from .chaos.cli import dispatch_chaos

            return dispatch_chaos(args)
        spec = get_spec(str(command))
        return _run_figure_command(spec, args)
    except (UnknownFigureError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    return dispatch(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

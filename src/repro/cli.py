"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig5
    python -m repro fig4-delay --csv out/fig4_delay.csv --seed 3
    python -m repro all --out-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .figures import FIGURES, rows_to_csv, rows_to_table


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures of 'Data Centers Manufacturing Steel' "
            "(HotNets '25) from the simulation models."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available figures")
    for name, fn in FIGURES.items():
        sub = subparsers.add_parser(name, help=(fn.__doc__ or "").splitlines()[0])
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument(
            "--csv", type=Path, default=None,
            help="write the rows to this CSV file instead of printing",
        )
    sub = subparsers.add_parser("all", help="regenerate every figure")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--out-dir", type=Path, default=Path("results"),
        help="directory receiving one CSV per figure",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, fn in FIGURES.items():
            summary = (fn.__doc__ or "").splitlines()[0]
            print(f"{name:12s} {summary}")
        return 0
    if args.command == "all":
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name, fn in FIGURES.items():
            rows = fn(seed=args.seed)
            target = args.out_dir / f"{name.replace('-', '_')}.csv"
            target.write_text(rows_to_csv(rows))
            print(f"wrote {target} ({len(rows)} rows)")
        return 0
    rows = FIGURES[args.command](seed=args.seed)
    if args.csv is not None:
        args.csv.parent.mkdir(parents=True, exist_ok=True)
        args.csv.write_text(rows_to_csv(rows))
        print(f"wrote {args.csv} ({len(rows)} rows)")
    else:
        print(rows_to_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

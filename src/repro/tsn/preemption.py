"""802.1Qbu / 802.3br frame preemption.

Strict priority cannot help an express frame that arrives while a 1500-byte
best-effort frame is already on the wire: transmission is non-preemptive
and the express frame eats up to ~12 us of head-of-line blocking per hop
(the exact penalty the TSN-protection ablation measures).  Frame preemption
fixes this: a *preemptable* frame in progress is interrupted at the next
64-byte boundary, the *express* frame is transmitted, and the remainder
continues as a fragment carrying its own 12-byte overhead.

Usage::

    from repro.tsn import enable_preemption
    config = enable_preemption(switch.ports[2])
    ...
    config.preemptions  # how often the express path cut in

Model notes: fragmentation affects *timing* only — the receiver is handed
the complete frame when its final fragment finishes (we do not model
receive-side reassembly state).  A frame may be preempted repeatedly; each
cut honours the 64-byte minimum-fragment rule on both sides, and an
express frame that arrives before the first 64 bytes are out waits for the
boundary, as in 802.3br.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.link import Port
from ..net.packet import Packet

#: Minimum transmittable fragment (802.3br): 64 bytes on the wire.
MIN_FRAGMENT_BYTES = 64
#: Per-additional-fragment overhead: SMD-C header + mCRC.
FRAGMENT_OVERHEAD_BYTES = 12

#: Payload key carrying a fragment's remaining wire bytes.
_REMAINING_KEY = "_preempt_remaining_bytes"


@dataclass
class PreemptionConfig:
    """Express-class selection plus observability counters."""

    express_pcps: frozenset[int] = frozenset({5, 6, 7})
    preemptions: int = 0
    hold_waits: int = 0  # express had to wait for the 64-byte boundary

    def is_express(self, packet: Packet) -> bool:
        """True when the frame belongs to an express class."""
        return packet.pcp in self.express_pcps


class _PreemptingPort:
    """Interruptible transmit machinery, patched over one port."""

    def __init__(self, port: Port, config: PreemptionConfig) -> None:
        self.port = port
        self.config = config
        self._current: Packet | None = None
        self._current_started_ns = 0
        self._current_total_bytes = 0
        self._finish_event = None
        port.send = self._send  # type: ignore[method-assign]
        port.try_transmit = self._try_transmit  # type: ignore[method-assign]
        port.kick = self._try_transmit  # type: ignore[method-assign]

    # -- queue entry -----------------------------------------------------

    def _send(self, packet: Packet) -> None:
        if not self.port.queue.enqueue(packet):
            self.port.egress_drops += 1
            return
        if (
            self._current is not None
            and self.config.is_express(packet)
            and not self.config.is_express(self._current)
        ):
            self._request_preemption(self._current)
        self._try_transmit()

    # -- transmission ------------------------------------------------------

    def _try_transmit(self) -> None:
        port = self.port
        if self._current is not None or port.link is None or not port.link.up:
            return
        packet = port.queue.dequeue()
        if packet is None:
            return
        remaining = packet.payload.pop(_REMAINING_KEY, None)
        self._begin(packet, remaining or packet.wire_size_bytes)

    def _begin(self, packet: Packet, wire_bytes: int) -> None:
        port = self.port
        self._current = packet
        self._current_started_ns = port.sim.now
        self._current_total_bytes = wire_bytes
        self._finish_event = port.sim.schedule(
            lambda: self._finish(packet),
            after=self._bytes_to_ns(wire_bytes),
        )

    def _finish(self, packet: Packet) -> None:
        port = self.port
        self._current = None
        self._finish_event = None
        port.tx_frames += 1
        port.tx_bytes += packet.wire_size_bytes
        if port.link is not None:
            port.link.propagate(packet, port)
        self._try_transmit()

    # -- preemption ----------------------------------------------------------

    def _request_preemption(self, victim: Packet) -> None:
        """Cut ``victim`` now, or at the 64-byte boundary if too early."""
        if self._current is not victim or self._finish_event is None:
            return
        sent = self._ns_to_bytes(self.port.sim.now - self._current_started_ns)
        remaining = self._current_total_bytes - sent
        if remaining <= MIN_FRAGMENT_BYTES:
            # Nearly done: finishing is faster than fragmenting.
            return
        if sent < MIN_FRAGMENT_BYTES:
            # 802.3br: the first fragment must reach 64 bytes; hold the
            # express frame until the boundary, then cut.
            self.config.hold_waits += 1
            wait_ns = self._bytes_to_ns(MIN_FRAGMENT_BYTES - sent)
            self.port.sim.schedule(
                lambda: self._request_preemption(victim), after=wait_ns
            )
            return
        self._cut(victim, remaining)

    def _cut(self, victim: Packet, remaining_bytes: int) -> None:
        assert self._finish_event is not None
        self._finish_event.cancel()
        self._finish_event = None
        self._current = None
        self.config.preemptions += 1
        victim.payload[_REMAINING_KEY] = (
            remaining_bytes + FRAGMENT_OVERHEAD_BYTES
        )
        self.port.queue.enqueue(victim)
        self._try_transmit()

    # -- unit conversion -------------------------------------------------------

    def _bytes_to_ns(self, size_bytes: int) -> int:
        assert self.port.link is not None
        return round(size_bytes * 8 / self.port.link.bandwidth_bps * 1e9)

    def _ns_to_bytes(self, duration_ns: int) -> int:
        assert self.port.link is not None
        return int(duration_ns * self.port.link.bandwidth_bps / 8e9)


def enable_preemption(
    port: Port, express_pcps: frozenset[int] = frozenset({5, 6, 7})
) -> PreemptionConfig:
    """Enable 802.1Qbu on a port; returns the config with counters.

    Incompatible with a TSN shaper on the same port (gates already remove
    the interference preemption targets); raises if one is installed.
    """
    if port.shaper is not None:
        raise ValueError(
            f"port {port.name} has a time-aware shaper; preemption and "
            f"gating are alternative protections in this model"
        )
    config = PreemptionConfig(express_pcps=express_pcps)
    _PreemptingPort(port, config)
    return config

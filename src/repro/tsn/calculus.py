"""Network-calculus worst-case latency bounds.

Deterministic guarantees are the currency of industrial networking: a
vendor must *bound* latency and jitter, not report percentiles (Section
2.1).  This module provides the standard min-plus results for the traffic
this library models:

- token-bucket arrival curves ``alpha(t) = burst + rate * t`` (a cyclic
  microflow is the special case ``burst = frame``, ``rate = frame/period``);
- rate-latency service curves ``beta(t) = R * max(0, t - T)``;
- the delay bound ``h(alpha, beta) = T + burst / R``;
- the backlog bound ``v(alpha, beta) = burst + rate * T``;
- concatenation (pay-bursts-only-once) across hops;
- residual service under strict priority with non-preemptive blocking.

The tests validate the bounds *against the simulator*: measured worst-case
delays must never exceed the computed bounds, and the bounds must be tight
enough to be useful (within a small factor of the measurement).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.flows import FlowSpec
from ..net.packet import Packet


@dataclass(frozen=True)
class ArrivalCurve:
    """Token-bucket arrival curve: ``alpha(t) = burst_bits + rate_bps*t``."""

    burst_bits: float
    rate_bps: float

    def __post_init__(self) -> None:
        if self.burst_bits < 0 or self.rate_bps < 0:
            raise ValueError("burst and rate must be non-negative")

    def at(self, t_s: float) -> float:
        """Maximum bits that may arrive in any window of length ``t_s``."""
        if t_s < 0:
            raise ValueError("time must be non-negative")
        return self.burst_bits + self.rate_bps * t_s

    def __add__(self, other: "ArrivalCurve") -> "ArrivalCurve":
        """Aggregate of independent flows (curves add)."""
        return ArrivalCurve(
            burst_bits=self.burst_bits + other.burst_bits,
            rate_bps=self.rate_bps + other.rate_bps,
        )

    @classmethod
    def for_cyclic_flow(cls, spec: FlowSpec) -> "ArrivalCurve":
        """The curve of one cyclic microflow (one frame per period)."""
        if spec.period_ns is None or spec.period_ns <= 0:
            raise ValueError("flow is not cyclic")
        frame_bits = (
            Packet(src=spec.src, dst=spec.dst, payload_bytes=spec.payload_bytes)
            .wire_size_bytes * 8
        )
        return cls(
            burst_bits=frame_bits,
            rate_bps=frame_bits / (spec.period_ns / 1e9),
        )


@dataclass(frozen=True)
class ServiceCurve:
    """Rate-latency service curve: ``beta(t) = R * max(0, t - T)``."""

    rate_bps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("service rate must be positive")
        if self.latency_s < 0:
            raise ValueError("service latency cannot be negative")

    def at(self, t_s: float) -> float:
        """Guaranteed bits served in any backlogged window of ``t_s``."""
        return self.rate_bps * max(0.0, t_s - self.latency_s)

    def concatenate(self, other: "ServiceCurve") -> "ServiceCurve":
        """End-to-end curve of two servers in tandem.

        Min-plus convolution of rate-latency curves: rates take the min,
        latencies add — the pay-bursts-only-once theorem.
        """
        return ServiceCurve(
            rate_bps=min(self.rate_bps, other.rate_bps),
            latency_s=self.latency_s + other.latency_s,
        )


def delay_bound_s(arrival: ArrivalCurve, service: ServiceCurve) -> float:
    """Worst-case delay ``h(alpha, beta) = T + b / R`` (stable system).

    Raises when the arrival rate exceeds the service rate (unbounded
    backlog — no finite bound exists).
    """
    if arrival.rate_bps > service.rate_bps:
        raise ValueError(
            f"unstable: arrival rate {arrival.rate_bps:.0f} bps exceeds "
            f"service rate {service.rate_bps:.0f} bps"
        )
    return service.latency_s + arrival.burst_bits / service.rate_bps


def backlog_bound_bits(arrival: ArrivalCurve, service: ServiceCurve) -> float:
    """Worst-case backlog ``v(alpha, beta) = b + r * T``."""
    if arrival.rate_bps > service.rate_bps:
        raise ValueError("unstable system has no backlog bound")
    return arrival.burst_bits + arrival.rate_bps * service.latency_s


def strict_priority_residual(
    port_rate_bps: float,
    base_latency_s: float,
    higher_priority: ArrivalCurve | None,
    max_lower_frame_bits: float,
) -> ServiceCurve:
    """Residual service for one class under strict priority.

    The class sees the port minus everything higher-priority, delayed by
    one maximal lower-priority frame (non-preemptive blocking):

    ``R' = C - r_H``, ``T' = T + (b_H + L_max) / (C - r_H)``.
    """
    if higher_priority is None:
        higher_priority = ArrivalCurve(0.0, 0.0)
    residual_rate = port_rate_bps - higher_priority.rate_bps
    if residual_rate <= 0:
        raise ValueError("higher-priority traffic saturates the port")
    extra_latency = (
        higher_priority.burst_bits + max_lower_frame_bits
    ) / residual_rate
    return ServiceCurve(
        rate_bps=residual_rate,
        latency_s=base_latency_s + extra_latency,
    )


def switch_service_curve(
    port_rate_bps: float,
    processing_delay_ns: int,
    propagation_delay_ns: int = 0,
) -> ServiceCurve:
    """The full-rate service curve of one store-and-forward hop."""
    return ServiceCurve(
        rate_bps=port_rate_bps,
        latency_s=(processing_delay_ns + propagation_delay_ns) / 1e9,
    )


def path_delay_bound_s(
    arrival: ArrivalCurve,
    hop_curves: list[ServiceCurve],
) -> float:
    """End-to-end bound over a path (pay bursts only once)."""
    if not hop_curves:
        raise ValueError("need at least one hop")
    end_to_end = hop_curves[0]
    for curve in hop_curves[1:]:
        end_to_end = end_to_end.concatenate(curve)
    return delay_bound_s(arrival, end_to_end)

"""802.1CB-style Frame Replication and Elimination for Reliability (FRER).

Seamless redundancy: a talker's stream is replicated over disjoint paths and
duplicates are eliminated near the listener, so a single link failure loses
no frame and adds no recovery delay.  This complements the availability
story of Section 4 — InstaPLC protects against *controller* failure, FRER
against *path* failure.

Implemented pieces:

- :class:`SequenceRecovery` — the vector recovery algorithm (accept a
  sequence number once within a sliding history window);
- :class:`StreamSplitter` — replicates selected flows out multiple ports of
  a switch;
- :class:`StreamMerger` — host-side wrapper applying recovery before
  delivering to the application.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..net.host import Host
from ..net.link import Port
from ..net.packet import Packet
from ..net.switch import Switch


class SequenceRecovery:
    """Per-stream duplicate elimination with a bounded history window."""

    def __init__(self, history_length: int = 64) -> None:
        if history_length < 1:
            raise ValueError("history length must be at least 1")
        self.history_length = history_length
        self._seen: deque[int] = deque(maxlen=history_length)
        self._seen_set: set[int] = set()
        self.accepted = 0
        self.discarded = 0

    def accept(self, sequence: int) -> bool:
        """Return ``True`` the first time a sequence number is seen."""
        if sequence in self._seen_set:
            self.discarded += 1
            return False
        if len(self._seen) == self.history_length:
            oldest = self._seen[0]
            self._seen_set.discard(oldest)
        self._seen.append(sequence)
        self._seen_set.add(sequence)
        self.accepted += 1
        return True

    def reset(self) -> None:
        """Forget all history (stream restart)."""
        self._seen.clear()
        self._seen_set.clear()


class StreamSplitter(Switch):
    """A switch that replicates configured flows out several egress ports.

    Non-configured traffic is forwarded normally.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: flow id -> list of egress port indices receiving a copy
        self.split_table: dict[str, list[int]] = {}
        self.replicated_frames = 0

    def configure_split(self, flow_id: str, port_indices: list[int]) -> None:
        """Replicate ``flow_id`` out every listed port."""
        if len(port_indices) < 2:
            raise ValueError("splitting needs at least two egress ports")
        for index in port_indices:
            if not 0 <= index < len(self.ports):
                raise ValueError(f"port {index} does not exist on {self.name}")
        self.split_table[flow_id] = list(port_indices)

    def _forward(self, packet: Packet, in_port: Port) -> None:
        targets = self.split_table.get(packet.flow_id)
        if targets is None:
            super()._forward(packet, in_port)
            return
        packet.hops.append(self.name)
        self.replicated_frames += 1
        for index in targets:
            if index != in_port.index:
                self.ports[index].send(packet.copy_for_replication())


class StreamMerger:
    """Attach to a host to deliver each stream sequence exactly once."""

    def __init__(
        self,
        host: Host,
        flow_id: str,
        deliver: Callable[[Packet], None],
        history_length: int = 64,
    ) -> None:
        self.recovery = SequenceRecovery(history_length=history_length)
        self.flow_id = flow_id
        self._deliver = deliver
        host.on_flow(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if self.recovery.accept(packet.sequence):
            self._deliver(packet)

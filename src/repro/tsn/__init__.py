"""Time-Sensitive Networking primitives.

- :mod:`repro.tsn.gcl` — 802.1Qbv gate control lists;
- :mod:`repro.tsn.shaper` — the time-aware shaper with guard bands;
- :mod:`repro.tsn.scheduler` — no-wait schedule synthesis for cyclic flows;
- :mod:`repro.tsn.frer` — 802.1CB frame replication & elimination.
"""

from .annealing import AnnealingSynthesizer
from .calculus import (
    ArrivalCurve,
    ServiceCurve,
    backlog_bound_bits,
    delay_bound_s,
    path_delay_bound_s,
    strict_priority_residual,
    switch_service_curve,
)
from .cbs import CreditBasedShaper
from .frer import SequenceRecovery, StreamMerger, StreamSplitter
from .preemption import (
    FRAGMENT_OVERHEAD_BYTES,
    MIN_FRAGMENT_BYTES,
    PreemptionConfig,
    enable_preemption,
)
from .gcl import (
    ALL_PCPS,
    GateControlEntry,
    GateControlList,
    always_open,
    protected_window_gcl,
)
from .scheduler import (
    HopWindow,
    InfeasibleScheduleError,
    ScheduleSynthesizer,
    ScheduledFlow,
    TsnSchedule,
)
from .shaper import TimeAwareShaper

__all__ = [
    "ALL_PCPS",
    "AnnealingSynthesizer",
    "ArrivalCurve",
    "ServiceCurve",
    "backlog_bound_bits",
    "delay_bound_s",
    "path_delay_bound_s",
    "strict_priority_residual",
    "switch_service_curve",
    "CreditBasedShaper",
    "FRAGMENT_OVERHEAD_BYTES",
    "GateControlEntry",
    "GateControlList",
    "MIN_FRAGMENT_BYTES",
    "PreemptionConfig",
    "enable_preemption",
    "HopWindow",
    "InfeasibleScheduleError",
    "ScheduleSynthesizer",
    "ScheduledFlow",
    "SequenceRecovery",
    "StreamMerger",
    "StreamSplitter",
    "TimeAwareShaper",
    "TsnSchedule",
    "always_open",
    "protected_window_gcl",
]
